(* Golden-output regression anchors: the flagship System Context document
   over the banking model, byte-for-byte. If one of these fails after an
   intentional change, regenerate the golden text with
   `dune exec bin/awbdoc.exe -- -t <tpl> --sample banking` and review the
   diff like any other code change. *)

module S = Xml_base.Serialize
module Spec = Docgen.Spec

let check = Alcotest.check
let string_t = Alcotest.string

let template_src =
  "<document title=\"System Context\">\
   <table-of-contents/>\
   <with-single type=\"SystemBeingDesigned\">\
   <section><heading>System Context: <label/></heading>\
   <p>Documents: <value-of query=\"start focus; follow has to(Document); sort-by label\"/>.</p>\
   </section></with-single>\
   <section><heading>Users</heading>\
   <ol><for nodes=\"start type(User); sort-by label\">\
   <li><if><test><has-prop name=\"superuser\"/></test>\
   <then><b><label/></b></then><else><label/></else></if></li>\
   </for></ol></section>\
   <section><heading>Deployment</heading>\
   <grid-table rows=\"start type(Server); sort-by label\" \
   cols=\"start type(Program); sort-by label\" rel=\"runs\"/></section>\
   <table-of-omissions types=\"Document\"/>\
   </document>"

let golden =
  "<document title=\"System Context\">\
   <div class=\"table-of-contents\"><ol>\
   <li class=\"toc-depth-0\">System Context: Retail Banking Platform</li>\
   <li class=\"toc-depth-0\">Users</li>\
   <li class=\"toc-depth-0\">Deployment</li>\
   </ol></div>\
   <div class=\"section\"><h2>System Context: Retail Banking Platform</h2>\
   <p>Documents: Risk Assessment, System Context.</p></div>\
   <div class=\"section\"><h2>Users</h2>\
   <ol><li><b>alice</b></li><li><b>bob</b></li><li>carol</li></ol></div>\
   <div class=\"section\"><h2>Deployment</h2>\
   <table class=\"awb-table\">\
   <tr><td>row\\col</td><td>NightlyBatch</td><td>TellerApp</td></tr>\
   <tr><td>app-cluster-01</td><td>1</td><td/></tr>\
   <tr><td>web-frontend-01</td><td/><td>1</td></tr>\
   </table></div>\
   <div class=\"table-of-omissions\"><ul>\
   <li>Risk Assessment (Document)</li><li>System Context (Document)</li>\
   </ul></div>\
   </document>"

let generate engine =
  let model = Awb.Samples.banking_model () in
  let template =
    Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string template_src)
  in
  let result =
    match engine with
    | `Host -> Docgen.generate ~engine:`Host model ~template
    | `Functional -> Docgen.generate ~engine:`Functional model ~template
  in
  S.to_string result.Spec.document

let test_golden_host () = check string_t "host output" golden (generate `Host)
let test_golden_functional () = check string_t "functional output" golden (generate `Functional)

let test_golden_html () =
  (* The same document, HTML-serialized: td without content must keep an
     explicit closing tag. *)
  let model = Awb.Samples.banking_model () in
  let template =
    Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string template_src)
  in
  let result = Docgen.generate ~engine:`Host model ~template in
  let html = S.to_html_string result.Spec.document in
  check Alcotest.bool "empty cells close explicitly" true
    (Astring.String.is_infix ~affix:"<td></td>" html);
  check Alcotest.bool "no self-closing tags in html" false
    (Astring.String.is_infix ~affix:"/>" html)

let suite =
  [
    ( "golden.system-context",
      [
        Alcotest.test_case "host engine" `Quick test_golden_host;
        Alcotest.test_case "functional engine" `Quick test_golden_functional;
        Alcotest.test_case "html serialization" `Quick test_golden_html;
      ] );
  ]
