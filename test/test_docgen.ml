(* Tests for the document-generation subsystem: each directive, the two
   engines' byte-for-byte agreement, error handling in both styles, the
   phase/mutation instrumentation, stream splitting, and the genuine
   XQuery core. *)

module N = Xml_base.Node
module S = Xml_base.Serialize
module M = Awb.Model


module Spec = Docgen.Spec

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let banking = Awb.Samples.banking_model ()

let template src = Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string src)

let run_f ?backend ?(model = banking) src =
  Docgen.generate ~engine:`Functional ?backend model ~template:(template src)

let run_h ?backend ?(model = banking) src =
  Docgen.generate ~engine:`Host ?backend model ~template:(template src)

let doc_string (r : Spec.result) = S.to_string r.Spec.document

(* ------------------------------------------------------------------ *)
(* Individual directives (host engine; the equivalence test below     *)
(* carries the functional engine over the same inputs)                 *)
(* ------------------------------------------------------------------ *)

let test_passthrough () =
  let r = run_h "<document><p class=\"x\">hello</p></document>" in
  check string_t "copied" "<document><p class=\"x\">hello</p></document>" (doc_string r)

let test_for_and_label () =
  let r =
    run_h
      "<document><ol><for nodes=\"start type(User); sort-by label\"><li><label/></li></for></ol></document>"
  in
  check string_t "user list"
    "<document><ol><li>alice</li><li>bob</li><li>carol</li></ol></document>"
    (doc_string r)

let test_paper_example () =
  (* The paper's motivating template: a numbered list of users, with
     superusers bolded. *)
  let r =
    run_h
      "<document><ol><for nodes=\"start type(User); sort-by label\"><li><if><test><has-prop \
       name=\"superuser\"/></test><then><if><test><focus-is-type \
       type=\"User\"/></test><then><b><label/></b></then></if></then><else><label/></else></if></li></for></ol></document>"
  in
  check string_t "superusers bolded"
    "<document><ol><li><b>alice</b></li><li><b>bob</b></li><li>carol</li></ol></document>"
    (doc_string r)

let test_property () =
  let r =
    run_h
      "<document><for nodes='start type(User); filter prop(firstName = \"Alice\")'>\
       <property name=\"lastName\"/>/<property name=\"nope\"/></for></document>"
  in
  check string_t "property text" "<document>Alvarez/</document>" (doc_string r)

let test_value_of_count_of () =
  let r =
    run_h
      "<document><value-of query=\"start type(DataStore); sort-by label\" separator=\" + \"/>\
       =<count-of query=\"start type(DataStore)\"/></document>"
  in
  check string_t "value-of and count-of" "<document>audit-log + ledger-db=2</document>"
    (doc_string r)

let test_with_single () =
  let r =
    run_h "<document><with-single type=\"SystemBeingDesigned\"><label/></with-single></document>"
  in
  check string_t "bound focus" "<document>Retail Banking Platform</document>" (doc_string r)

let test_focus_query () =
  (* start focus: queries relative to the current focus. *)
  let r =
    run_h
      "<document><for nodes='start type(User); filter prop(firstName = \"Alice\")'>\
       <value-of query=\"start focus; follow likes; sort-by label\"/></for></document>"
  in
  check string_t "focus-relative query" "<document>bob</document>" (doc_string r)

let test_sections_and_toc () =
  let r =
    run_h
      "<document><table-of-contents/><section><heading>One</heading><p>a</p>\
       <section><heading>Two</heading><p>b</p></section></section></document>"
  in
  let s = doc_string r in
  check bool_t "toc div present" true
    (Astring.String.is_infix ~affix:"class=\"table-of-contents\"" s);
  check bool_t "outer entry" true
    (Astring.String.is_infix ~affix:"<li class=\"toc-depth-0\">One</li>" s);
  check bool_t "inner entry" true
    (Astring.String.is_infix ~affix:"<li class=\"toc-depth-1\">Two</li>" s);
  check bool_t "h2 for depth 0" true (Astring.String.is_infix ~affix:"<h2>One</h2>" s);
  check bool_t "h3 for depth 1" true (Astring.String.is_infix ~affix:"<h3>Two</h3>" s);
  check bool_t "no leftover placeholder" false
    (Astring.String.is_infix ~affix:"TOC-PLACEHOLDER" s)

let test_omissions () =
  (* Visit one document, then list omissions over Document: only the
     unvisited one shows. *)
  let r =
    run_h
      "<document><for nodes=\"start type(Document); filter has-prop(version)\"><label/></for>\
       <table-of-omissions types=\"Document\"/></document>"
  in
  let s = doc_string r in
  check bool_t "visited not listed" false
    (Astring.String.is_infix ~affix:"<li>System Context (Document)</li>" s);
  check bool_t "unvisited listed" true
    (Astring.String.is_infix ~affix:"<li>Risk Assessment (Document)</li>" s)

let test_omissions_empty () =
  let r =
    run_h
      "<document><for nodes=\"start type(Document)\"><label/></for>\
       <table-of-omissions types=\"Document\"/></document>"
  in
  check bool_t "nothing omitted" true
    (Astring.String.is_infix ~affix:"Nothing was omitted." (doc_string r))

let test_grid_table () =
  let r =
    run_h
      "<document><grid-table rows=\"start type(Server); sort-by label\" \
       cols=\"start type(Program); sort-by label\" rel=\"runs\"/></document>"
  in
  let s = doc_string r in
  check bool_t "corner" true (Astring.String.is_infix ~affix:{|<td>row\col</td>|} s);
  check bool_t "col title" true (Astring.String.is_infix ~affix:"<td>NightlyBatch</td>" s);
  check bool_t "row title" true (Astring.String.is_infix ~affix:"<td>app-cluster-01</td>" s);
  check bool_t "a filled cell" true (Astring.String.is_infix ~affix:"<td>1</td>" s);
  check bool_t "an empty cell" true (Astring.String.is_infix ~affix:"<td/>" s)

let test_marker_substitution () =
  let r =
    run_h
      "<document><marker-table name=\"TABLE-1\" rows=\"start type(Server); sort-by label\" \
       cols=\"start type(Program); sort-by label\" rel=\"runs\"/>\
       <blob>pasted text TABLE-1-GOES-HERE more pasted text</blob></document>"
  in
  let s = doc_string r in
  check bool_t "marker replaced" false (Astring.String.is_infix ~affix:"TABLE-1-GOES-HERE" s);
  check bool_t "table spliced into the text" true
    (Astring.String.is_infix ~affix:"pasted text <table class=\"awb-table\">" s);
  check bool_t "text after survives" true (Astring.String.is_infix ~affix:"</table> more pasted text" s)

let test_marker_multiple_occurrences () =
  let r =
    run_h
      "<document><marker-table name=\"T\" rows=\"start type(Server)\" \
       cols=\"start type(Program)\" rel=\"runs\"/><p>T-GOES-HERE and T-GOES-HERE</p></document>"
  in
  let s = doc_string r in
  let count_tables s =
    let re = Str.regexp_string "<table" in
    let rec go i acc =
      match Str.search_forward re s i with
      | j -> go (j + 1) (acc + 1)
      | exception Not_found -> acc
    in
    go 0 0
  in
  check int_t "two copies" 2 (count_tables s)

let test_rich_property () =
  (* HTML-valued properties are strings internally, XML on output: the
     directive parses and splices the fragment. *)
  let r =
    run_h
      "<document><for nodes=\"start type(Document); filter has-prop(body)\">\
       <rich-property name=\"body\"/></for></document>"
  in
  check string_t "fragment spliced as XML" "<document><p>System context.</p></document>"
    (doc_string r);
  (* Both engines agree, including on the missing-property (empty) case. *)
  let tpl =
    "<document><for nodes=\"start type(Document); sort-by label\">\
     <rich-property name=\"body\"/>|</for></document>"
  in
  check string_t "engines agree" (doc_string (run_h tpl)) (doc_string (run_f tpl))

let test_unused_marker_is_a_problem () =
  let r =
    run_h
      "<document><marker-table name=\"LOST\" rows=\"start type(Server)\" \
       cols=\"start type(Program)\" rel=\"runs\"/><p>no marker here</p></document>"
  in
  check bool_t "problem recorded" true
    (List.exists
       (fun p -> Astring.String.is_infix ~affix:"LOST-GOES-HERE never appears" p)
       r.Spec.problems)

(* ------------------------------------------------------------------ *)
(* Error handling, both styles                                         *)
(* ------------------------------------------------------------------ *)

let failed_message (r : Spec.result) =
  match N.child_element r.Spec.document "message" with
  | Some m -> N.string_value m
  | None -> ""

let failed_location (r : Spec.result) =
  match N.child_element r.Spec.document "location" with
  | Some l -> N.string_value l
  | None -> ""

let test_rich_property_malformed () =
  let m = Awb.Samples.banking_model () in
  let doc =
    List.find
      (fun n -> M.prop_string n "name" = "System Context")
      (M.nodes_of_type m "Document")
  in
  M.set_prop doc "body" (M.V_html "<p>unterminated");
  let tpl =
    "<document><for nodes='start type(Document); filter prop(name = \"System Context\")'>\
     <rich-property name=\"body\"/></for></document>"
  in
  let rh = run_h ~model:m tpl and rf = run_f ~model:m tpl in
  check bool_t "host reports malformed html" true
    (Astring.String.is_infix ~affix:"should be well-formed XML" (failed_message rh));
  check string_t "same message" (failed_message rh) (failed_message rf);
  check string_t "same location" (failed_location rh) (failed_location rf)


let test_with_single_error () =
  (* Two SystemBeingDesigned nodes: the System Context document's
     signature failure. *)
  let m = Awb.Samples.banking_model () in
  ignore (Awb.Model.add_node m "SystemBeingDesigned" ~props:[ ("name", Awb.Model.V_string "impostor") ]);
  let tpl = "<document><with-single type=\"SystemBeingDesigned\"><label/></with-single></document>" in
  let rf = run_f ~model:m tpl in
  let rh = run_h ~model:m tpl in
  let expected = "There should have been exactly one SystemBeingDesigned node, but there were 2." in
  check string_t "functional message" expected (failed_message rf);
  check string_t "host message" expected (failed_message rh);
  check string_t "same location" (failed_location rf) (failed_location rh);
  check string_t "location names the directive" "document/with-single" (failed_location rh)

let test_error_cases_agree () =
  let cases =
    [
      ("missing nodes attr", "<document><for><label/></for></document>");
      ("bad query", "<document><for nodes=\"zigzag\"><label/></for></document>");
      ("if without test", "<document><if><then>x</then></if></document>");
      ("if without then", "<document><if><test><focus-is-type type=\"User\"/></test></if></document>");
      ("label without focus", "<document><label/></document>");
      ("property without name", "<document><for nodes=\"start type(User)\"><property/></for></document>");
      ( "required property missing",
        "<document><for nodes=\"start type(Document)\"><required-property name=\"version\"/></for></document>"
      );
      ("unknown condition", "<document><if><test><zorp/></test><then>x</then></if></document>");
      ("grid missing rel", "<document><grid-table rows=\"start all\" cols=\"start all\"/></document>");
    ]
  in
  List.iter
    (fun (name, tpl) ->
      let rf = run_f tpl and rh = run_h tpl in
      check bool_t (name ^ ": functional failed") true (failed_message rf <> "");
      check string_t (name ^ ": same message") (failed_message rf) (failed_message rh);
      check string_t (name ^ ": same location") (failed_location rf) (failed_location rh))
    cases

let test_error_stats_styles () =
  let tpl =
    "<document><for nodes=\"start type(User)\"><label/></for>\
     <with-single type=\"SystemBeingDesigned\"><label/></with-single></document>"
  in
  let rf = run_f tpl and rh = run_h tpl in
  (* The functional engine pays an error check at (nearly) every call even
     on the happy path; the host engine raises nothing. *)
  check bool_t "functional checks errors everywhere" true (rf.Spec.stats.Spec.error_checks > 10);
  check int_t "host raises nothing on success" 0 rh.Spec.stats.Spec.exceptions_raised;
  check int_t "host checks nothing" 0 rh.Spec.stats.Spec.error_checks;
  (* And on failure the host pays exactly one exception. *)
  let rh_fail = run_h "<document><label/></document>" in
  check int_t "one exception on failure" 1 rh_fail.Spec.stats.Spec.exceptions_raised

let test_phase_stats () =
  let tpl =
    "<document><table-of-contents/><section><heading>H</heading>\
     <for nodes=\"start type(User)\"><label/></for></section>\
     <table-of-omissions types=\"User\"/></document>"
  in
  let rf = run_f tpl and rh = run_h tpl in
  check int_t "functional: five phases" 5 rf.Spec.stats.Spec.phases;
  check int_t "host: generate + patch" 2 rh.Spec.stats.Spec.phases;
  check bool_t "functional copies the document repeatedly" true
    (rf.Spec.stats.Spec.nodes_copied > 50);
  check int_t "host copies nothing between phases" 0 rh.Spec.stats.Spec.nodes_copied

(* ------------------------------------------------------------------ *)
(* Cross-engine equivalence                                            *)
(* ------------------------------------------------------------------ *)

let equivalence_templates =
  [
    "<document><p>plain</p></document>";
    "<document><ol><for nodes=\"start type(User); sort-by label\"><li><label/></li></for></ol></document>";
    "<document><for nodes=\"start type(User); sort-by label\"><if><test><has-prop \
     name=\"superuser\"/></test><then><b><label/></b></then><else><label/></else></if></for></document>";
    "<document><with-single type=\"SystemBeingDesigned\"><h1><label/></h1>\
     <value-of query=\"start focus; follow has to(Document); sort-by label\"/></with-single></document>";
    "<document><table-of-contents/><section><heading>Servers</heading>\
     <for nodes=\"start type(Server); sort-by label\"><p><label/>: <property name=\"cpuCount\"/></p></for>\
     </section><section><heading>Data</heading><grid-table rows=\"start type(Server); sort-by label\" \
     cols=\"start type(DataStore); sort-by label\" rel=\"connects-to\"/></section>\
     <table-of-omissions types=\"Server DataStore\"/></document>";
    "<document><marker-table name=\"TABLE-1\" rows=\"start type(Server); sort-by label\" \
     cols=\"start type(Program); sort-by label\" rel=\"runs\"/>\
     <blob>before TABLE-1-GOES-HERE after</blob></document>";
    "<document><for nodes=\"start type(System); sort-by label\"><section><heading><label/></heading>\
     <p>used by <value-of query=\"start focus; follow uses backward; distinct; sort-by label\"/></p>\
     </section></for><table-of-contents/></document>";
  ]

let test_engines_agree () =
  List.iteri
    (fun i tpl ->
      let rf = run_f tpl and rh = run_h tpl in
      check string_t (Printf.sprintf "template %d: same document" i) (doc_string rh)
        (doc_string rf);
      check (Alcotest.list string_t)
        (Printf.sprintf "template %d: same problems" i)
        rh.Spec.problems rf.Spec.problems)
    equivalence_templates

let test_engines_agree_on_glass () =
  let model = Awb.Samples.glass_model () in
  let tpl =
    "<document><h1>Catalog</h1><for nodes=\"start type(GlassPiece); sort-by prop(year)\">\
     <section><heading><label/></heading><p><property name=\"color\"/>, \
     <property name=\"year\"/>: by <value-of query=\"start focus; follow made-by\"/></p>\
     </section></for><table-of-contents/></document>"
  in
  let rf = Docgen.generate ~engine:`Functional model ~template:(template tpl) in
  let rh = Docgen.generate ~engine:`Host model ~template:(template tpl) in
  check string_t "glass catalog agreement" (S.to_string rh.Spec.document)
    (S.to_string rf.Spec.document);
  check bool_t "has lalique" true
    (Astring.String.is_infix ~affix:"by Lalique" (S.to_string rh.Spec.document))

let test_backend_choice_is_invisible () =
  (* Same engine, different query backends: identical output. *)
  let tpl = List.nth equivalence_templates 4 in
  let a = run_h ~backend:Spec.Native_queries tpl in
  let b = run_h ~backend:Spec.Xquery_queries tpl in
  check string_t "backend invisible" (doc_string a) (doc_string b)

(* ------------------------------------------------------------------ *)
(* Streams                                                             *)
(* ------------------------------------------------------------------ *)

let test_streams_split () =
  let wrapped, _ =
    Docgen.generate_with_streams ~engine:`Functional banking
      ~template:(template "<document><p>x</p></document>")
  in
  let split = Docgen.Streams.split wrapped in
  check string_t "document stream" "<document><p>x</p></document>"
    (S.to_string split.Docgen.Streams.document);
  (* The banking model carries validation warnings; they ride the problems
     stream. *)
  check bool_t "problems stream nonempty" true (split.Docgen.Streams.problems <> []);
  match Docgen.Streams.split (N.element "oops") with
  | exception Docgen.Streams.Malformed_stream _ -> ()
  | _ -> Alcotest.fail "malformed stream accepted"

(* ------------------------------------------------------------------ *)
(* The genuine XQuery core                                             *)
(* ------------------------------------------------------------------ *)

let xq_failed (r : Docgen.Spec.result) =
  N.is_element r.Spec.document && N.name r.Spec.document = "generation-failed"

let test_xq_engine_basic () =
  let tpl = template "<document><ol><for nodes=\"type:User\"><li><label/></li></for></ol></document>" in
  let r = Docgen.generate ~engine:`Xq banking ~template:tpl in
  if xq_failed r then Alcotest.failf "xq engine failed: %s" (N.string_value r.Spec.document);
  let doc = r.Spec.document in
  let s = S.to_string doc in
  check bool_t "alice present" true (Astring.String.is_infix ~affix:"<li>alice</li>" s);
  check bool_t "three items" true
    (List.length (N.find_all (fun n -> N.is_element n && N.name n = "li") doc) = 3)

let test_xq_engine_subtypes () =
  (* type:Person must include User instances via the exported metamodel
     hierarchy, interpreted by XQuery itself. *)
  let tpl = template "<document><for nodes=\"type:Person\"><li><label/></li></for></document>" in
  let r = Docgen.generate ~engine:`Xq banking ~template:tpl in
  if xq_failed r then Alcotest.fail "xq engine failed";
  check int_t "subtype instances found" 3
    (List.length (N.find_all (fun n -> N.is_element n && N.name n = "li") r.Spec.document))

let test_xq_engine_conditions_and_props () =
  let tpl =
    template
      "<document><for nodes=\"type:User\"><if><test><has-prop name=\"superuser\"/></test>\
       <then><b><label/></b></then><else><label/></else></if></for></document>"
  in
  let r = Docgen.generate ~engine:`Xq banking ~template:tpl in
  if xq_failed r then Alcotest.fail "xq engine failed";
  let s = S.to_string r.Spec.document in
  check bool_t "alice bolded" true (Astring.String.is_infix ~affix:"<b>alice</b>" s);
  check bool_t "carol plain" true (Astring.String.is_infix ~affix:"carol" s)

let test_xq_engine_matches_host_on_core_subset () =
  (* On the shared subset, the XQuery core and the host engine agree. *)
  let xq_tpl = template "<document><for nodes=\"type:User\"><li><label/></li></for></document>" in
  let host_tpl = template "<document><for nodes=\"start type(User)\"><li><label/></li></for></document>" in
  let r = Docgen.generate ~engine:`Xq banking ~template:xq_tpl in
  if xq_failed r then Alcotest.fail "xq engine failed";
  let host = Docgen.generate ~engine:`Host banking ~template:host_tpl in
  check string_t "same output" (S.to_string host.Spec.document) (S.to_string r.Spec.document)

let test_xq_engine_error_convention () =
  (* label without focus: the error travels as an <error> element in the
     output value — the only channel XQuery offers. *)
  let tpl = template "<document><label/></document>" in
  let r = Docgen.generate ~engine:`Xq banking ~template:tpl in
  if not (xq_failed r) then Alcotest.fail "expected the error-value convention to surface";
  match N.child_element r.Spec.document "message" with
  | Some m -> check string_t "error message" "label needs a focus" (N.string_value m)
  | None -> Alcotest.fail "generation-failed without a message"

(* ------------------------------------------------------------------ *)
(* Degradation levels (Skeleton: enrichment phases skipped)            *)
(* ------------------------------------------------------------------ *)

(* One template exercising every enrichment directive: toc, omissions,
   and a marker table with its paste-in marker. *)
let skeleton_tpl =
  "<document><table-of-contents/><section><heading>Servers</heading>\
   <ol><for nodes=\"start type(Server); sort-by label\"><li><label/></li></for></ol>\
   </section><table-of-omissions types=\"Server\"/>\
   <marker-table name=\"T1\" rows=\"start type(Server); sort-by label\" \
   cols=\"start type(Program); sort-by label\" rel=\"runs\"/>\
   <p>T1-GOES-HERE</p></document>"

let test_skeleton_skips_enrichment () =
  let full = Docgen.generate ~engine:`Host banking ~template:(template skeleton_tpl) in
  let skel =
    Docgen.generate ~engine:`Host ~level:Spec.Skeleton banking
      ~template:(template skeleton_tpl)
  in
  let fs = doc_string full and ss = doc_string skel in
  let has affix s = Astring.String.is_infix ~affix s in
  check bool_t "skeleton differs from full" true (fs <> ss);
  (* Enrichment is stubbed, not computed... *)
  check bool_t "toc stubbed" true (has "class=\"table-of-contents degraded\"" ss);
  check bool_t "no toc entries" false (has "toc-depth-0" ss);
  check bool_t "omissions stubbed" true (has "table-of-omissions degraded" ss);
  check bool_t "marker table not built" false (has "<table class=\"awb-table\"" ss);
  check bool_t "marker text left in place" true (has "T1-GOES-HERE" ss);
  (* ...while the core content is still fully generated. *)
  check bool_t "body rows still generated" true (has "<li>app-cluster-01</li>" ss);
  check bool_t "full output had the real toc" true (has "toc-depth-0" fs);
  check bool_t "full output pasted the table" false (has "T1-GOES-HERE" fs)

let test_skeleton_engines_agree () =
  let h =
    Docgen.generate ~engine:`Host ~level:Spec.Skeleton banking
      ~template:(template skeleton_tpl)
  in
  let f =
    Docgen.generate ~engine:`Functional ~level:Spec.Skeleton banking
      ~template:(template skeleton_tpl)
  in
  check string_t "skeleton engines agree byte-for-byte" (doc_string h) (doc_string f);
  (* Skeleton strips the functional engine down to its generation walk:
     no marker phases, no whole-document copies. *)
  check int_t "functional skeleton is single-phase" 1 f.Spec.stats.Spec.phases;
  check int_t "no inter-phase copies" 0 f.Spec.stats.Spec.nodes_copied

let suite =
  [
    ( "docgen.directives",
      [
        Alcotest.test_case "passthrough" `Quick test_passthrough;
        Alcotest.test_case "for + label" `Quick test_for_and_label;
        Alcotest.test_case "the paper's superuser example" `Quick test_paper_example;
        Alcotest.test_case "property" `Quick test_property;
        Alcotest.test_case "value-of / count-of" `Quick test_value_of_count_of;
        Alcotest.test_case "with-single" `Quick test_with_single;
        Alcotest.test_case "focus-relative queries" `Quick test_focus_query;
        Alcotest.test_case "sections and toc" `Quick test_sections_and_toc;
        Alcotest.test_case "omissions" `Quick test_omissions;
        Alcotest.test_case "omissions empty" `Quick test_omissions_empty;
        Alcotest.test_case "grid table" `Quick test_grid_table;
        Alcotest.test_case "rich-property" `Quick test_rich_property;
        Alcotest.test_case "marker substitution" `Quick test_marker_substitution;
        Alcotest.test_case "marker multiple occurrences" `Quick test_marker_multiple_occurrences;
        Alcotest.test_case "unused marker is a problem" `Quick test_unused_marker_is_a_problem;
      ] );
    ( "docgen.errors",
      [
        Alcotest.test_case "with-single failure" `Quick test_with_single_error;
        Alcotest.test_case "malformed rich-property" `Quick test_rich_property_malformed;
        Alcotest.test_case "error cases agree across engines" `Quick test_error_cases_agree;
        Alcotest.test_case "error-handling styles measurably differ" `Quick test_error_stats_styles;
        Alcotest.test_case "phase counts differ" `Quick test_phase_stats;
      ] );
    ( "docgen.equivalence",
      [
        Alcotest.test_case "engines agree on banking" `Quick test_engines_agree;
        Alcotest.test_case "engines agree on glass catalog" `Quick test_engines_agree_on_glass;
        Alcotest.test_case "query backend invisible" `Quick test_backend_choice_is_invisible;
      ] );
    ( "docgen.degradation",
      [
        Alcotest.test_case "skeleton skips enrichment" `Quick test_skeleton_skips_enrichment;
        Alcotest.test_case "skeleton engines agree" `Quick test_skeleton_engines_agree;
      ] );
    ("docgen.streams", [ Alcotest.test_case "split" `Quick test_streams_split ]);
    ( "docgen.xquery-core",
      [
        Alcotest.test_case "basic generation" `Quick test_xq_engine_basic;
        Alcotest.test_case "subtype reasoning in XQuery" `Quick test_xq_engine_subtypes;
        Alcotest.test_case "conditions and properties" `Quick test_xq_engine_conditions_and_props;
        Alcotest.test_case "matches host engine" `Quick test_xq_engine_matches_host_on_core_subset;
        Alcotest.test_case "error-value convention" `Quick test_xq_engine_error_convention;
      ] );
  ]
