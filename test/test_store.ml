(* The crash-safe collection store: the I/O fault plane's determinism
   (same seed, same schedule — the discipline test_chaos proves for the
   shard transport, pushed down to the filesystem), the faultable file's
   repair contract, the segment codec, torn-tail vs mid-log recovery,
   manifest damage tolerance, the recorder's incremental sink, the store
   conservation checker, and a miniature in-suite run of the kill-point
   crash oracle. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

module Io_fault = Store.Io_fault
module Segment = Store.Segment
module Manifest = Store.Manifest
module Scrub = Store.Scrub
module Oracle = Store.Oracle

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lopsided-test-store-%d-%d" (Unix.getpid ()) !n)
    in
    let rec rm_rf p =
      match Unix.lstat p with
      | exception Unix.Unix_error _ -> ()
      | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        (try Unix.rmdir p with Unix.Unix_error _ -> ())
      | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    in
    rm_rf d;
    d

let doc_xml i = Printf.sprintf "<doc n=\"%d\"><p>%s</p></doc>" i (String.make 60 'z')

let put_ok s ~doc body =
  match Store.put s ~collection:"c" ~doc body with
  | Ok h -> h
  | Error e -> Alcotest.failf "put %s: %s" doc (Store.error_message e)

(* ------------------------------------------------------------------ *)
(* Io_fault plane                                                      *)
(* ------------------------------------------------------------------ *)

let test_plane_deterministic () =
  let p =
    Io_fault.of_seed ~short_write_rate:0.1 ~fsync_fail_rate:0.1 ~fsync_ignore_rate:0.05
      ~crash_rate:0.05 99
  in
  check bool_t "write schedule reproducible" true
    (Io_fault.schedule p ~op:Io_fault.Write 400 = Io_fault.schedule p ~op:Io_fault.Write 400);
  check bool_t "fsync schedule reproducible" true
    (Io_fault.schedule p ~op:Io_fault.Fsync 400 = Io_fault.schedule p ~op:Io_fault.Fsync 400);
  let q = Io_fault.of_seed ~short_write_rate:0.1 ~fsync_fail_rate:0.1 ~crash_rate:0.05 100 in
  check bool_t "different seed, different schedule" false
    (Io_fault.schedule p ~op:Io_fault.Write 400 = Io_fault.schedule q ~op:Io_fault.Write 400)

let test_plane_none_injects_nothing () =
  check bool_t "none is disabled" false (Io_fault.enabled Io_fault.none);
  let zero = Io_fault.of_seed 7 in
  check bool_t "zero rates disabled" false (Io_fault.enabled zero);
  check bool_t "no faults at zero rates" true
    (List.for_all Option.is_none (Io_fault.schedule zero ~op:Io_fault.Write 500))

let test_plane_rates_roughly_honored () =
  let p = Io_fault.of_seed ~fsync_fail_rate:0.1 42 in
  let faulted =
    List.length (List.filter Option.is_some (Io_fault.schedule p ~op:Io_fault.Fsync 2000))
  in
  (* 10% of 2000 = 200; allow generous slack, fail only on gross skew. *)
  check bool_t "fault count in a sane band" true (faulted > 100 && faulted < 400)

(* A plane that fails every fsync: the repair contract must leave the
   file back at the last barrier, so nothing unacknowledged survives. *)
let test_faultable_file_repair () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "f" in
  let p = Io_fault.of_seed ~fsync_fail_rate:1.0 5 in
  let f = Io_fault.openf ~plane:p path in
  Io_fault.append f "doomed bytes";
  check int_t "buffered, not committed" 0 (Io_fault.committed f);
  check int_t "logical length counts the buffer" 12 (Io_fault.length f);
  (match Io_fault.fsync f with
  | () -> Alcotest.fail "fsync_fail plane let a barrier through"
  | exception Io_fault.Fault _ -> ());
  Io_fault.repair f;
  check int_t "repair discards pending" 0 (Io_fault.length f);
  Io_fault.close f;
  check int_t "nothing reached the disk" 0 (Unix.stat path).Unix.st_size

let test_faultable_file_fsync_ignore () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let p = Io_fault.of_seed ~fsync_ignore_rate:1.0 5 in
  let f = Io_fault.openf ~plane:p (Filename.concat dir "f") in
  Io_fault.append f "hello";
  (* The lying disk: the barrier reports success... *)
  Io_fault.fsync f;
  (* ...but nothing became durable. *)
  check int_t "committed stays at the last real barrier" 0 (Io_fault.committed f);
  Io_fault.close f

(* ------------------------------------------------------------------ *)
(* Segment codec                                                       *)
(* ------------------------------------------------------------------ *)

let test_segment_crc_vector () =
  check int_t "IEEE 802.3 check value" 0xcbf43926 (Segment.crc32 "123456789")

let test_segment_roundtrip () =
  let r =
    { Segment.kind = `Put; epoch = 3; collection = "c"; doc = "d1";
      hash = String.make 32 'a'; snapshot = "<doc/>" }
  in
  let wire = Segment.encode r in
  (match Segment.scan_one wire 0 with
  | Segment.Rec (r', fin) ->
    check bool_t "record survives the codec" true (r' = r);
    check int_t "end offset is the wire length" (String.length wire) fin
  | _ -> Alcotest.fail "encoded record did not scan");
  (* A tombstone too. *)
  let d = { Segment.kind = `Delete; epoch = 0; collection = "c"; doc = "d1"; hash = ""; snapshot = "" } in
  match Segment.scan_one (Segment.encode d) 0 with
  | Segment.Rec (d', _) -> check bool_t "tombstone survives" true (d' = d)
  | _ -> Alcotest.fail "encoded tombstone did not scan"

let test_segment_flip_detected () =
  let r =
    { Segment.kind = `Put; epoch = 1; collection = "c"; doc = "d";
      hash = String.make 32 'b'; snapshot = "payload payload payload" }
  in
  let wire = Bytes.of_string (Segment.encode r) in
  Bytes.set wire 9 (Char.chr (Char.code (Bytes.get wire 9) lxor 0x40));
  match Segment.scan_one (Bytes.to_string wire) 0 with
  | Segment.Rec _ -> Alcotest.fail "flipped byte scanned as clean"
  | Segment.Torn _ | Segment.Damaged _ | Segment.End -> ()

(* ------------------------------------------------------------------ *)
(* Store: basics, rotation, recovery                                   *)
(* ------------------------------------------------------------------ *)

let test_store_basics_and_reopen () =
  let dir = fresh_dir () in
  let s = Store.open_store ~max_segment_bytes:512 dir in
  let hashes = List.init 12 (fun i -> (Printf.sprintf "d%d" i, put_ok s ~doc:(Printf.sprintf "d%d" i) (doc_xml i))) in
  check bool_t "rotation happened" true (Store.segment_count s > 1);
  (match Store.delete s ~collection:"c" ~doc:"d3" with
  | Ok true -> ()
  | _ -> Alcotest.fail "delete of a live doc");
  (match Store.delete s ~collection:"c" ~doc:"nope" with
  | Ok false -> ()
  | _ -> Alcotest.fail "delete of an absent doc must say so");
  check int_t "doc count tracks the tombstone" 11 (Store.doc_count s);
  Store.close s;
  let s2 = Store.open_store dir in
  check int_t "reopen recovers the live set" 11 (Store.doc_count s2);
  check bool_t "tombstone held across reopen" false (Store.mem s2 ~collection:"c" ~doc:"d3");
  List.iter
    (fun (doc, h) ->
      if doc <> "d3" then
        match Store.get s2 ~collection:"c" ~doc with
        | Ok (snap, h') ->
          check Alcotest.string (doc ^ " hash") h h';
          check Alcotest.string (doc ^ " content hash") h
            (Digest.to_hex (Digest.string snap))
        | Error e -> Alcotest.failf "get %s: %s" doc (Store.error_message e))
    hashes;
  check bool_t "collections lists c" true (Store.collections s2 = [ "c" ]);
  Store.close s2

let test_store_torn_tail_truncated () =
  let dir = fresh_dir () in
  let s = Store.open_store dir in
  let h0 = put_ok s ~doc:"keep" (doc_xml 0) in
  Store.close s;
  (* A crash mid-append: half a record at EOF. *)
  let seg = Filename.concat dir (Segment.seg_name 0) in
  let torn =
    let r = { Segment.kind = `Put; epoch = 0; collection = "c"; doc = "torn"; hash = String.make 32 'c'; snapshot = doc_xml 1 } in
    let w = Segment.encode r in
    String.sub w 0 (String.length w / 2)
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc torn;
  close_out oc;
  let size_with_tail = (Unix.stat seg).Unix.st_size in
  let s2 = Store.open_store dir in
  check int_t "one torn tail truncated" 1 (Store.counts s2).Store.n_truncated_tails;
  check bool_t "tail physically gone" true ((Unix.stat seg).Unix.st_size < size_with_tail);
  check bool_t "torn record not resurrected" false (Store.mem s2 ~collection:"c" ~doc:"torn");
  (match Store.get s2 ~collection:"c" ~doc:"keep" with
  | Ok (_, h) -> check Alcotest.string "earlier doc intact" h0 h
  | Error e -> Alcotest.failf "get keep: %s" (Store.error_message e));
  check int_t "nothing quarantined" 0 (List.length (Store.quarantined s2));
  Store.close s2;
  check bool_t "scrub is clean after truncation" true (Scrub.clean (Scrub.run dir))

let test_store_mid_log_damage_quarantined () =
  let dir = fresh_dir () in
  let s = Store.open_store ~max_segment_bytes:512 dir in
  for i = 0 to 11 do
    ignore (put_ok s ~doc:(Printf.sprintf "d%d" i) (doc_xml i))
  done;
  Store.close s;
  (* Bit rot inside the first record of segment 0 — live data follows,
     so this is mid-log damage, not a torn tail. *)
  let seg = Filename.concat dir (Segment.seg_name 0) in
  let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (Segment.header_len + 6) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let s2 = Store.open_store dir in
  (* The damaged region is inside the checkpoint, so the read path is
     the detector: the victim's docs answer corrupt (and quarantine the
     segment); the other segments keep serving. *)
  let served, corrupt =
    List.fold_left
      (fun (ok, bad) (d, _) ->
        match Store.get s2 ~collection:"c" ~doc:d with
        | Ok _ -> (ok + 1, bad)
        | Error (`Corrupt _) -> (ok, bad + 1)
        | Error e -> Alcotest.failf "get %s: %s" d (Store.error_message e))
      (0, 0) (Store.list_docs s2 ~collection:"c")
  in
  check bool_t "victim docs corrupt" true (corrupt > 0);
  check bool_t "rest of the store serves" true (served > 0);
  check int_t "every doc answered" 12 (served + corrupt);
  check int_t "segment quarantined" 1 (List.length (Store.quarantined s2));
  check bool_t "crc failures counted, never served" true
    ((Store.counts s2).Store.n_read_crc_failures > 0);
  Store.close s2;
  (* Close checkpointed the quarantine; the offline scrub must agree
     nothing damaged is left unquarantined. *)
  let report = Scrub.run dir in
  check bool_t "scrub sees the damage" true (report.Scrub.damaged <> []);
  check int_t "all damage quarantined" 0 (List.length (Scrub.unquarantined_damage report));
  (* Reopen again: the quarantine persists via the manifest. *)
  let s3 = Store.open_store dir in
  check int_t "quarantine survives reopen" 1 (List.length (Store.quarantined s3));
  Store.close s3

let test_manifest_roundtrip_and_damage () =
  let m =
    {
      Manifest.next_seg = 3;
      active = 2;
      epoch = 7;
      segs = [ (0, 500); (2, 120) ];
      quarantined = [ (1, "bit rot") ];
      docs =
        [ { Manifest.l_collection = "c"; l_doc = "d"; l_hash = String.make 32 'd';
            l_seg = 0; l_off = 8; l_len = 90 } ];
    }
  in
  check bool_t "manifest codec round-trips" true (Manifest.decode (Manifest.encode m) = m);
  (* A damaged manifest is reported, not fatal — and the store rebuilds
     the index by scanning segments from their headers. *)
  let dir = fresh_dir () in
  let s = Store.open_store dir in
  let h = put_ok s ~doc:"survivor" (doc_xml 9) in
  Store.close s;
  let mpath = Filename.concat dir Manifest.file_name in
  let fd = Unix.openfile mpath [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 10 Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd 10 Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  (match Manifest.load ~dir with
  | `Damaged _ -> ()
  | `Manifest _ | `Missing -> Alcotest.fail "corrupted manifest loaded as clean");
  let s2 = Store.open_store dir in
  (match Store.get s2 ~collection:"c" ~doc:"survivor" with
  | Ok (_, h') -> check Alcotest.string "doc recovered by full scan" h h'
  | Error e -> Alcotest.failf "get survivor: %s" (Store.error_message e));
  Store.close s2

(* ------------------------------------------------------------------ *)
(* Recorder: incremental sink + torn-tail-tolerant load                *)
(* ------------------------------------------------------------------ *)

let rec_entry i =
  Server.Recorder.entry ~ts:(float_of_int i *. 0.01) ~meth:"POST" ~path:"/generate"
    ~tenant:"acme" ~deadline_ms:1000 ~body:(Printf.sprintf "body-%d" i) ()

let test_recorder_sink_incremental () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "cap.rec" in
  let r = Server.Recorder.create () in
  Server.Recorder.attach_sink r ~path ~every:4 ();
  for i = 0 to 5 do
    Server.Recorder.record r (rec_entry i)
  done;
  (* 6 recorded, flush-every-4: the file holds the first flush only —
     what a crash right now would preserve. *)
  let on_disk = Server.Recorder.load path in
  check int_t "flushed batch durable before detach" 4 (List.length on_disk);
  let written = Server.Recorder.detach_sink r in
  check int_t "detach flushes the backlog" 6 written;
  check int_t "all entries after detach" 6 (List.length (Server.Recorder.load path));
  (* A torn tail (crash mid-flush) keeps the parsed prefix. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x00\x00\x01\xffgarbage";
  close_out oc;
  let tolerated = Server.Recorder.load path in
  check int_t "torn tail tolerated" 6 (List.length tolerated);
  check Alcotest.string "entries intact" "body-5"
    (List.nth tolerated 5).Server.Recorder.e_body

let test_store_invariant_checker () =
  let acked = [ ("a", "h1"); ("b", "h2") ] in
  check int_t "clean run, no violations" 0
    (List.length
       (Server.Recorder.check_store_invariants ~acked ~recovered:acked ~escapes:0));
  check bool_t "lost acked write flagged" true
    (Server.Recorder.check_store_invariants ~acked ~recovered:[ ("a", "h1") ] ~escapes:0
     <> []);
  check bool_t "content mismatch flagged" true
    (Server.Recorder.check_store_invariants ~acked
       ~recovered:[ ("a", "h1"); ("b", "WRONG") ] ~escapes:0
     <> []);
  check bool_t "resurrection flagged" true
    (Server.Recorder.check_store_invariants ~acked
       ~recovered:(("ghost", "h3") :: acked) ~escapes:0
     <> []);
  check bool_t "escapes flagged" true
    (Server.Recorder.check_store_invariants ~acked ~recovered:acked ~escapes:1 <> [])

(* ------------------------------------------------------------------ *)
(* The crash oracle, in miniature                                      *)
(* ------------------------------------------------------------------ *)

(* A small in-suite run of the kill-point oracle (the bench runs the
   full 200+ trial matrix): re-exec this test binary as the child
   ingester — test_main calls [Oracle.maybe_run_child] first — under
   crash + short-write + fsync-fail faults, and require exact
   acknowledged-prefix recovery on every trial. *)
let test_oracle_exact_recovery () =
  let tmp = fresh_dir () in
  let rates =
    { Oracle.r_crash = 0.04; r_short = 0.02; r_ffail = 0.02; r_fignore = 0. }
  in
  let s =
    Oracle.run_trials ~exe:Sys.executable_name ~tmp ~trials:16 ~seed0:3100 ~n:30 rates
  in
  check int_t "16 trials ran" 16 s.Oracle.s_trials;
  check bool_t "some trials hit a kill point" true (s.Oracle.s_killed > 0);
  check int_t "no acked write lost" 0 s.Oracle.s_lost;
  check int_t "no unacked write resurrected" 0 s.Oracle.s_resurrected;
  check int_t "no checksum escapes" 0 s.Oracle.s_escapes;
  check int_t "no unquarantined damage" 0 s.Oracle.s_unquarantined_damage

(* ------------------------------------------------------------------ *)
(* Replication: quorum edges, failover, catch-up                       *)
(* ------------------------------------------------------------------ *)

module Replica = Store.Replica
module Repl_log = Store.Repl_log

let repl_config ?(segbytes = 64 * 1024) () =
  {
    Replica.default_config with
    Replica.max_segment_bytes = segbytes;
    probe_interval_s = 0.;  (* tests drive respawn/repair by hand *)
    call_timeout_s = 1.;
  }

let repl_put cl ~doc body =
  match Replica.put cl ~collection:"c" ~doc body with
  | Ok h -> h
  | Error e -> Alcotest.failf "replicated put %s: %s" doc (Replica.error_message e)

(* Epoch-stamped record codec: the replication term survives the
   segment round-trip, the promotion marker is a first-class record,
   and the replicate-frame payloads ship positions and digests
   faithfully. *)
let test_repl_epoch_codec () =
  let r =
    {
      Segment.kind = `Put;
      epoch = 7;
      collection = "c";
      doc = "d1";
      hash = "00112233445566778899aabbccddeeff";
      snapshot = "<doc/>";
    }
  in
  (match Segment.scan_one (Segment.magic ^ Segment.encode r) Segment.header_len with
  | Segment.Rec (r', _) ->
    check int_t "epoch survives the segment codec" 7 r'.Segment.epoch;
    check bool_t "record fields survive" true (r' = r)
  | _ -> Alcotest.fail "epoch-stamped record did not scan");
  (match
     Segment.scan_one
       (Segment.magic ^ Segment.encode (Segment.epoch_marker 9))
       Segment.header_len
   with
  | Segment.Rec (m, _) ->
    check bool_t "promotion marker is an `Epoch record" true (m.Segment.kind = `Epoch);
    check int_t "promotion marker carries the term" 9 m.Segment.epoch
  | _ -> Alcotest.fail "epoch marker did not scan");
  let w =
    {
      Repl_log.w_epoch = 3;
      w_expect = Some (2, 4096);
      w_kind = `Put;
      w_collection = "c";
      w_doc = "d2";
      w_body = "<doc n=\"2\"/>";
    }
  in
  let w' = Repl_log.decode_write (Repl_log.encode_write w) (ref 1) in
  check bool_t "replicate payload round-trips" true (w' = w);
  let a =
    { Repl_log.a_applied = true; a_hash = String.make 32 'a'; a_pre = (2, 4096); a_post = (2, 4300) }
  in
  check bool_t "write reply round-trips" true
    (Repl_log.decode_write_reply (Repl_log.encode_write_reply a) = a);
  let st =
    {
      Repl_log.st_epoch = 5;
      st_pos = (3, 128);
      st_total = 9000;
      st_segs = [ { Repl_log.g_id = 2; g_len = 4096; g_digest = String.make 32 'b' } ];
      st_quarantined = 1;
    }
  in
  check bool_t "status round-trips" true (Repl_log.decode_status (Repl_log.encode_status st) = st)

(* W unreachable: ingest refuses cleanly (and rolls the primary back),
   reads keep serving, and recovery of the followers restores writes. *)
let test_repl_quorum_unavailable_reads_serve () =
  let dir = fresh_dir () in
  let cl = Replica.create ~config:(repl_config ()) ~dir () in
  Fun.protect
    ~finally:(fun () -> Replica.shutdown cl)
    (fun () ->
      let h1 = repl_put cl ~doc:"d1" (doc_xml 1) in
      let p = Replica.primary cl in
      for i = 0 to Replica.replica_count cl - 1 do
        if i <> p then Replica.kill_node cl i
      done;
      (match Replica.put cl ~collection:"c" ~doc:"d2" (doc_xml 2) with
      | Error (`Unavailable _) -> ()
      | Ok _ -> Alcotest.fail "write acked without a quorum"
      | Error e -> Alcotest.failf "expected quorum refusal, got %s" (Replica.error_message e));
      check bool_t "quorum failure counted" true (Replica.quorum_failures cl > 0);
      (match Replica.get cl ~collection:"c" ~doc:"d1" with
      | Ok (_, h) -> check Alcotest.string "reads serve through the outage" h1 h
      | Error e -> Alcotest.failf "read during outage: %s" (Replica.error_message e));
      (match Replica.get cl ~collection:"c" ~doc:"d2" with
      | Error `Not_found -> ()
      | Ok _ -> Alcotest.fail "refused write visible"
      | Error e -> Alcotest.failf "read of refused doc: %s" (Replica.error_message e));
      for i = 0 to Replica.replica_count cl - 1 do
        if i <> p then check bool_t "respawned" true (Replica.respawn_node cl i)
      done;
      ignore (Replica.repair cl);
      ignore (repl_put cl ~doc:"d2" (doc_xml 2));
      check bool_t "converged after recovery" true
        (Replica.repair_until_converged cl ~max_rounds:4))

(* Deposed-primary rejoin: a record that reached only the old primary
   (injected behind the coordinator's back) is truncated on rejoin —
   never resurrected — once a new term has been established. *)
let test_repl_deposed_primary_truncates_tail () =
  let dir = fresh_dir () in
  let cl = Replica.create ~config:(repl_config ()) ~dir () in
  Fun.protect
    ~finally:(fun () -> Replica.shutdown cl)
    (fun () ->
      ignore (repl_put cl ~doc:"d1" (doc_xml 1));
      let p = Replica.primary cl in
      (* The unreplicated tail: a write shipped straight to the primary's
         backend, bypassing quorum. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX (Replica.node_socket cl p));
      Frame.send_frame fd
        (Repl_log.encode_write
           {
             Repl_log.w_epoch = Replica.epoch cl;
             w_expect = None;
             w_kind = `Put;
             w_collection = "c";
             w_doc = "ghost";
             w_body = doc_xml 99;
           });
      ignore (Frame.recv_frame fd);
      Unix.close fd;
      (* Depose it: partition, force a write through a new primary. *)
      Replica.set_partition cl p true;
      ignore (repl_put cl ~doc:"d2" (doc_xml 2));
      check bool_t "failover promoted a new primary" true (Replica.primary cl <> p);
      check bool_t "promotion counted" true (Replica.promotions cl > 0);
      (* Rejoin and repair: the ghost must go. *)
      Replica.set_partition cl p false;
      check bool_t "converged after rejoin" true
        (Replica.repair_until_converged cl ~max_rounds:6);
      check bool_t "unreplicated tail truncated" true (Replica.truncated_tails cl > 0);
      (match Replica.get cl ~collection:"c" ~doc:"ghost" with
      | Error `Not_found -> ()
      | Ok _ -> Alcotest.fail "unacked write resurrected after rejoin"
      | Error e -> Alcotest.failf "ghost read: %s" (Replica.error_message e));
      (match Replica.get cl ~collection:"c" ~doc:"d2" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "acked write lost: %s" (Replica.error_message e)))

(* Catch-up across a missed rotation: a follower that was dead through
   whole-segment turnover is streamed the missing suffix and converges
   byte-identically. *)
let test_repl_catchup_after_rotation () =
  let dir = fresh_dir () in
  let cl = Replica.create ~config:(repl_config ~segbytes:512 ()) ~dir () in
  Fun.protect
    ~finally:(fun () -> Replica.shutdown cl)
    (fun () ->
      ignore (repl_put cl ~doc:"d0" (doc_xml 0));
      let p = Replica.primary cl in
      let victim = (p + 1) mod Replica.replica_count cl in
      Replica.kill_node cl victim;
      (* ~200-byte docs against 512-byte segments: several rotations. *)
      for i = 1 to 12 do
        ignore (repl_put cl ~doc:(Printf.sprintf "d%d" i) (doc_xml i))
      done;
      check bool_t "victim respawned" true (Replica.respawn_node cl victim);
      check bool_t "catch-up converged" true (Replica.repair_until_converged cl ~max_rounds:6);
      check bool_t "anti-entropy actually repaired" true (Replica.repairs cl > 0);
      match Replica.statuses cl |> Array.to_list |> List.filter_map Fun.id with
      | st :: rest ->
        check bool_t "all replicas report one position" true
          (List.for_all (fun s -> s.Repl_log.st_pos = st.Repl_log.st_pos) rest)
      | [] -> Alcotest.fail "no statuses after catch-up")

(* The replication oracle, in miniature: a few seeded kill/partition
   storms (the bench runs the 200+ trial matrix) must lose nothing
   acked, resurrect nothing refused, and converge byte-identically. *)
let test_repl_oracle_mini () =
  let tmp = fresh_dir () in
  let rates = { Oracle.r_crash = 0.02; r_short = 0.02; r_ffail = 0.02; r_fignore = 0. } in
  let s = Oracle.run_repl_trials ~tmp ~trials:3 ~seed0:4200 ~n:18 rates in
  check int_t "3 trials ran" 3 s.Oracle.rs_trials;
  check int_t "no quorum-acked write lost" 0 s.Oracle.rs_lost;
  check int_t "no refused write resurrected" 0 s.Oracle.rs_resurrected;
  check int_t "every trial converged byte-identically" 0 s.Oracle.rs_diverged

let suite =
  [
    ( "store",
      [
        Alcotest.test_case "fault schedule is seed-deterministic" `Quick
          test_plane_deterministic;
        Alcotest.test_case "zero rates inject nothing" `Quick test_plane_none_injects_nothing;
        Alcotest.test_case "rates roughly honored" `Quick test_plane_rates_roughly_honored;
        Alcotest.test_case "failed barrier repairs to the last barrier" `Quick
          test_faultable_file_repair;
        Alcotest.test_case "fsync_ignore lies without committing" `Quick
          test_faultable_file_fsync_ignore;
        Alcotest.test_case "crc32 standard vector" `Quick test_segment_crc_vector;
        Alcotest.test_case "segment record round-trips" `Quick test_segment_roundtrip;
        Alcotest.test_case "flipped byte never scans clean" `Quick test_segment_flip_detected;
        Alcotest.test_case "put/get/delete/rotate/reopen" `Quick test_store_basics_and_reopen;
        Alcotest.test_case "torn tail truncated, not quarantined" `Quick
          test_store_torn_tail_truncated;
        Alcotest.test_case "mid-log damage quarantined, store serves on" `Quick
          test_store_mid_log_damage_quarantined;
        Alcotest.test_case "manifest round-trip; damage rebuilds by scan" `Quick
          test_manifest_roundtrip_and_damage;
        Alcotest.test_case "recorder sink flushes incrementally" `Quick
          test_recorder_sink_incremental;
        Alcotest.test_case "store conservation checker flags violations" `Quick
          test_store_invariant_checker;
        Alcotest.test_case "crash oracle: exact acked-prefix recovery" `Slow
          test_oracle_exact_recovery;
        Alcotest.test_case "epoch-stamped records and replicate payloads round-trip" `Quick
          test_repl_epoch_codec;
        Alcotest.test_case "quorum unreachable: writes refuse, reads serve" `Slow
          test_repl_quorum_unavailable_reads_serve;
        Alcotest.test_case "deposed primary rejoins with its tail truncated" `Slow
          test_repl_deposed_primary_truncates_tail;
        Alcotest.test_case "catch-up across a missed segment rotation" `Slow
          test_repl_catchup_after_rotation;
        Alcotest.test_case "replication oracle: seeded storms, miniature" `Slow
          test_repl_oracle_mini;
      ] );
  ]
