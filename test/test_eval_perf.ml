(* The evaluator fast path (doc-order keys, hash node-set algebra, lazy
   early-exit sequences) and the compiled plan executor must both be
   optimizations, not dialects: on any query they accept, they have to
   produce byte-identical output to the seed algorithms. The randomized
   oracle here runs every (document, query) pair four ways — optimized +
   fast, optimized + seed, unoptimized + seed, and the compiled plan —
   and requires the same display string from all four.

   The query grammar is deliberately restricted to non-raising
   constructs: every generated query is valid on every generated
   document (empty results are fine), so a mismatch can only mean an
   evaluator bug, never a differently-reported error. *)

module N = Xml_base.Node
module E = Xquery.Engine
module V = Xquery.Value

(* ------------------------------------------------------------------ *)
(* Random documents                                                   *)
(* ------------------------------------------------------------------ *)

let tags = [ "a"; "b"; "c"; "d" ]
let values = [ "v1"; "v2"; "v3" ]

let gen_doc : N.t QCheck.arbitrary =
  let open QCheck.Gen in
  (* Nodes are mutable and single-parent: build fresh trees at sample
     time, never share a node value across generated documents. *)
  let rec node depth =
    if depth = 0 then map N.text (oneofl [ "x"; "y"; "v1" ])
    else
      let* tag = oneofl tags in
      let* with_attr = bool in
      let* attrs =
        if with_attr then
          let* v = oneofl values in
          return [ N.attribute "v" v ]
        else return []
      in
      let* fanout = int_range 0 3 in
      let* children = list_repeat fanout (node (depth - 1)) in
      return (N.element ~attrs ~children tag)
  in
  let g =
    let* kids = list_repeat 3 (node 3) in
    return (N.document [ N.element ~children:kids "root" ])
  in
  QCheck.make ~print:Xml_base.Serialize.to_string g

(* ------------------------------------------------------------------ *)
(* Random queries                                                     *)
(* ------------------------------------------------------------------ *)

(* Everything here is total on the documents above: paths may come back
   empty, string comparisons over untyped attribute values never raise,
   and a context item is always bound (hoisted paths evaluate even when
   the loop they were lifted from is empty). *)
let gen_query : string QCheck.arbitrary =
  let open QCheck.Gen in
  let path =
    oneofl
      [
        "//a"; "//b"; "//c"; "//a//b"; "//b/c"; "/root/a"; "//a/@v"; "//b/@v";
        "//*/@v"; "//a/text()";
        (* node-only EBV predicates: the lazy layer streams these *)
        "//a[b]"; "//a[@v]"; "//a//b[c]";
      ]
  in
  let nodeset =
    oneof
      [
        path;
        (let* p = path in
         let* q = path in
         return (Printf.sprintf "(%s | %s)" p q));
        (let* p = path in
         let* q = path in
         return (Printf.sprintf "(%s intersect %s)" p q));
        (let* p = path in
         let* q = path in
         return (Printf.sprintf "(%s except %s)" p q));
      ]
  in
  let g =
    oneof
      [
        nodeset;
        (let* p = nodeset in
         return (Printf.sprintf "count(%s)" p));
        (let* p = nodeset in
         return (Printf.sprintf "exists(%s)" p));
        (let* p = nodeset in
         return (Printf.sprintf "empty(%s)" p));
        (let* p = nodeset in
         let* k = int_range 1 3 in
         return (Printf.sprintf "(%s)[%d]" p k));
        (* the count-comparison rewrite targets, both orders *)
        (let* p = nodeset in
         return (Printf.sprintf "count(%s) > 0" p));
        (let* p = nodeset in
         return (Printf.sprintf "count(%s) = 0" p));
        (let* p = nodeset in
         return (Printf.sprintf "0 < count(%s)" p));
        (* existential general comparison over untyped values *)
        (let* p = path in
         let* v = oneofl values in
         return (Printf.sprintf "%s = \"%s\"" p v));
        (let* p = path in
         let* v = oneofl values in
         return (Printf.sprintf "%s != \"%s\"" p v));
        (let* p = path in
         return (Printf.sprintf "distinct-values(%s)" p));
        (* quantifiers with lazy sources *)
        (let* p = path in
         let* v = oneofl values in
         return (Printf.sprintf "some $x in %s satisfies $x = \"%s\"" p v));
        (let* p = path in
         let* v = oneofl values in
         return (Printf.sprintf "every $x in %s satisfies $x = \"%s\"" p v));
        (* FLWORs: invariant-path hoisting, positional variables, where *)
        (let* p = path in
         let* q = path in
         return (Printf.sprintf "for $x in %s return count(%s)" p q));
        (let* p = path in
         let* q = oneofl [ "b"; "c"; "@v" ] in
         return (Printf.sprintf "for $x in %s where exists($x/%s) return $x" p q));
        (let* p = path in
         return (Printf.sprintf "for $x at $i in %s where $i = 2 return $x" p));
        (let* p = path in
         let* q = path in
         return
           (Printf.sprintf "for $x in %s let $y := count(%s) where $y > 1 return $y" p
              q));
      ]
  in
  QCheck.make ~print:(fun s -> s) g

let run ~optimize ~fast doc q =
  V.to_display_string
    (E.eval_query ~optimize ~fast_eval:fast
       ~context_item:(V.Node doc) q)

let run_plan doc q =
  V.to_display_string
    (E.run
       ~opts:(E.Exec_opts.make ~mode:E.Exec_opts.Plan ~context_item:(V.Node doc) ())
       (E.compile q))

let prop_fast_matches_seed =
  QCheck.Test.make ~name:"random queries: plan = fast path = seed path = unoptimized"
    ~count:500
    (QCheck.pair gen_doc gen_query)
    (fun (doc, q) ->
      let fast = run ~optimize:true ~fast:true doc q in
      let seed = run ~optimize:true ~fast:false doc q in
      let raw = run ~optimize:false ~fast:false doc q in
      let plan = run_plan doc q in
      if fast <> seed then
        QCheck.Test.fail_reportf "fast/seed disagree on %s:\n  fast: %s\n  seed: %s" q
          fast seed
      else if seed <> raw then
        QCheck.Test.fail_reportf "optimizer changed %s:\n  opt: %s\n  raw: %s" q seed
          raw
      else if plan <> seed then
        QCheck.Test.fail_reportf "plan/seed disagree on %s:\n  plan: %s\n  seed: %s" q
          plan seed
      else true)

(* ------------------------------------------------------------------ *)
(* Document-order keys under mutation                                 *)
(* ------------------------------------------------------------------ *)

let all_nodes doc =
  List.concat_map (fun n -> n :: N.attributes n) (N.descendant_or_self doc)

let sign x = compare x 0

(* Every pair, both orders: the O(1) cached-key comparator must agree
   with the seed's path-walking comparator. *)
let check_order_agrees what doc =
  let ns = all_nodes doc in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let fast = sign (N.compare_document_order a b) in
          let slow = sign (N.compare_document_order_via_paths a b) in
          if fast <> slow then
            Alcotest.failf "%s: keys disagree with paths (%d vs %d) for #%d / #%d" what
              fast slow (N.id a) (N.id b))
        ns)
    ns

let build_mutation_doc () =
  let leaf i = N.element ~attrs:[ N.attribute "v" (string_of_int i) ] "leaf" in
  let sec i =
    N.element ~children:(List.init 3 (fun j -> leaf ((10 * i) + j))) "sec"
  in
  N.document [ N.element ~children:(List.init 3 sec) "root" ]

let test_doc_order_keys_mutation () =
  let doc = build_mutation_doc () in
  check_order_agrees "fresh tree" doc;
  let root = List.hd (N.children doc) in
  let secs = N.children root in
  (* append after the numbering is cached: the key cache must notice *)
  N.append_child root (N.element "appendix");
  check_order_agrees "after append_child" doc;
  N.insert_child root 1 (N.element "inserted");
  check_order_agrees "after insert_child" doc;
  (* structural reorder through set_children *)
  let kids = N.children root in
  List.iter N.detach kids;
  N.set_children root (List.rev kids);
  check_order_agrees "after set_children reorder" doc;
  (* detach a subtree, check the remaining tree, then graft it back *)
  let sec0 = List.hd secs in
  N.detach sec0;
  check_order_agrees "after detach (remaining tree)" doc;
  check_order_agrees "after detach (detached subtree)" sec0;
  N.append_child root sec0;
  check_order_agrees "after re-adopt" doc;
  (* attribute mutations renumber too: attributes carry order keys *)
  N.set_attribute root "id" "r1";
  check_order_agrees "after set_attribute" doc;
  N.remove_attribute root "id";
  check_order_agrees "after remove_attribute" doc

(* Four domains sort the same freshly built — hence unnumbered — tree:
   each must observe the same correct order even though they race to
   build the lazy pre-order numbering (the renumber publication goes
   through the atomic valid flag). *)
let test_doc_order_concurrent_domains () =
  let leaf i = N.element ~attrs:[ N.attribute "v" (string_of_int i) ] "leaf" in
  let sec i =
    N.element ~children:(List.init 20 (fun j -> leaf ((100 * i) + j))) "sec"
  in
  let doc = N.document [ N.element ~children:(List.init 50 sec) "root" ] in
  let ns = all_nodes doc in
  let expected = List.map N.id (List.sort N.compare_document_order_via_paths ns) in
  let sort () = List.map N.id (List.sort N.compare_document_order ns) in
  let workers = List.init 4 (fun _ -> Domain.spawn sort) in
  List.iteri
    (fun i d ->
      Alcotest.(check (list int))
        (Printf.sprintf "domain %d agrees with the path oracle" i)
        expected (Domain.join d))
    workers

let test_doc_order_cross_tree () =
  let d1 = build_mutation_doc () and d2 = build_mutation_doc () in
  let a = List.hd (N.children d1) and b = List.hd (N.children d2) in
  (* distinct trees: both comparators order them consistently and
     asymmetrically *)
  let ab = sign (N.compare_document_order a b) in
  let ba = sign (N.compare_document_order b a) in
  Alcotest.(check int) "cross-tree antisymmetric" (-ab) ba;
  Alcotest.(check bool) "cross-tree decided" true (ab <> 0)

(* ------------------------------------------------------------------ *)
(* Fast-path/seed agreement on reviewed edge cases                    *)
(* ------------------------------------------------------------------ *)

let eval_str ~fast doc q =
  V.to_display_string (E.eval_query ~fast_eval:fast ~context_item:(V.Node doc) q)

(* Errors count as observable outcomes: the fast path and the plan
   executor must raise exactly when the seed raises, with the same code
   and message. *)
let check_fast_matches_seed doc q =
  let show fast =
    try eval_str ~fast doc q
    with Xquery.Errors.Error _ as e -> "raised " ^ Printexc.to_string e
  in
  let show_plan () =
    try run_plan doc q
    with Xquery.Errors.Error _ as e -> "raised " ^ Printexc.to_string e
  in
  Alcotest.(check string) q (show false) (show true);
  Alcotest.(check string) (q ^ " [plan]") (show false) (show_plan ())

let test_lazy_ebv_duplicate_atomics () =
  (* (//a//b) reaches the single <b> through both nested <a>s; the seed
     dedups the parenthesized node set before /name() atomizes it, so
     its EBV sees one atomic — an undeduped lazy stream would see two
     and raise FORG0006. The fast path must materialize atomizing
     operands and agree with the seed (including on the unparenthesized
     forms, where duplicate atomics make BOTH paths raise). *)
  let doc = Xml_base.Parser.parse_string "<root><a><a><b>x</b></a></a></root>" in
  List.iter (check_fast_matches_seed doc)
    [
      "boolean((//a//b)/name())";
      "not((//a//b)/name())";
      "boolean(//a//b/name())";
      "not(//a//b/name())";
      "boolean(//a//b/text())";
      "boolean(//a//b)";
      "exists(//a//b[ancestor::a])";
      "some $x in //a//b satisfies $x = \"x\"";
    ];
  Alcotest.(check string) "atomizing path EBV" "true"
    (eval_str ~fast:true doc "boolean((//a//b)/name())")

let test_lazy_filter_streams_correctly () =
  let doc =
    Xml_base.Parser.parse_string
      "<root><a><a><b><c/></b></a></a><a v=\"1\"/><a><d/></a></root>"
  in
  List.iter (check_fast_matches_seed doc)
    [
      "exists(//a[b])";
      "empty(//a[b])";
      "exists(//a[@v])";
      "exists(//a//b[c])";
      "count(//a[b])";
      (* positional predicates must NOT stream: stream order/multiplicity
         differs from the eager deduped base *)
      "exists((//a//b)[2])";
      "count((//a//b)[1])";
    ]

let test_distinct_values_large_ints () =
  let doc = Xml_base.Parser.parse_string "<r/>" in
  let q = "distinct-values((9007199254740993, 9007199254740992, 9007199254740993))" in
  check_fast_matches_seed doc q;
  (* 2^53 and 2^53+1 collapse to the same double; as ints they must stay
     distinct, exactly as the seed's int/int comparison keeps them. *)
  Alcotest.(check string) "big ints stay distinct"
    "9007199254740993 9007199254740992" (eval_str ~fast:true doc q);
  (* doubles mixed with non-representable ints fall back to the scan *)
  check_fast_matches_seed doc
    "distinct-values((9007199254740993, 9007199254740992.0))";
  check_fast_matches_seed doc "distinct-values((1, 1.0, 2, \"s\"))"

(* ------------------------------------------------------------------ *)
(* Optimizer rewrites                                                 *)
(* ------------------------------------------------------------------ *)

let opt_stats q =
  match (E.compile q).E.opt_stats with
  | Some st -> st
  | None -> Alcotest.fail "optimizer stats missing"

let test_count_cmp_rewrite () =
  let st = opt_stats "count(//a) > 0" in
  Alcotest.(check int) "count(e) > 0 rewritten" 1
    st.Xquery.Optimizer.count_cmp_rewrites;
  let st = opt_stats "0 = count(//a)" in
  Alcotest.(check int) "0 = count(e) rewritten" 1
    st.Xquery.Optimizer.count_cmp_rewrites;
  (* count against a non-sentinel literal is left alone *)
  let st = opt_stats "count(//a) > 2" in
  Alcotest.(check int) "count(e) > 2 untouched" 0
    st.Xquery.Optimizer.count_cmp_rewrites

let test_path_hoisting () =
  let st = opt_stats "for $x in //a return count(//b)" in
  Alcotest.(check int) "invariant path hoisted" 1 st.Xquery.Optimizer.paths_hoisted;
  (* a path over the loop variable depends on the binding: not hoisted *)
  let st = opt_stats "for $x in //a return count($x/b)" in
  Alcotest.(check int) "variant path kept" 0 st.Xquery.Optimizer.paths_hoisted

(* ------------------------------------------------------------------ *)
(* Service counters                                                   *)
(* ------------------------------------------------------------------ *)

let test_service_opt_counters () =
  let svc = Service.create () in
  let q = "for $x in //a return count(//b) > 0" in
  (match Service.compile_query svc q with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "compile failed: %s" m);
  (* second compile is a cache hit and must not double-count the pass *)
  ignore (Service.compile_query svc q);
  let c = Service.counters svc in
  Alcotest.(check int) "count rewrites accumulated once" 1
    c.Service.opt_count_rewrites;
  Alcotest.(check int) "hoists accumulated once" 1 c.Service.opt_paths_hoisted;
  Alcotest.(check int) "one miss" 1 c.Service.query_misses;
  Alcotest.(check int) "one hit" 1 c.Service.query_hits

let suite =
  [
    ( "eval.fast-path-oracle",
      List.map QCheck_alcotest.to_alcotest [ prop_fast_matches_seed ] );
    ( "eval.doc-order-keys",
      [
        Alcotest.test_case "keys agree with paths across mutations" `Quick
          test_doc_order_keys_mutation;
        Alcotest.test_case "cross-tree comparisons stay consistent" `Quick
          test_doc_order_cross_tree;
        Alcotest.test_case "concurrent domains agree on one shared tree" `Quick
          test_doc_order_concurrent_domains;
      ] );
    ( "eval.fast-path-edge-cases",
      [
        Alcotest.test_case "EBV of atomizing paths with duplicate nodes" `Quick
          test_lazy_ebv_duplicate_atomics;
        Alcotest.test_case "streamed filters agree with eager filters" `Quick
          test_lazy_filter_streams_correctly;
        Alcotest.test_case "distinct-values keeps large ints exact" `Quick
          test_distinct_values_large_ints;
      ] );
    ( "eval.optimizer-rewrites",
      [
        Alcotest.test_case "count comparisons become exists/empty" `Quick
          test_count_cmp_rewrite;
        Alcotest.test_case "loop-invariant paths hoist to lets" `Quick
          test_path_hoisting;
        Alcotest.test_case "service accumulates optimizer stats" `Quick
          test_service_opt_counters;
      ] );
  ]
