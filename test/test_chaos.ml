(* The chaos-hardening plane: frame integrity (CRC32 + structured
   nack), the deterministic fault schedule, the per-shard circuit
   breaker state machine, and live-cluster coverage for the two
   resilience paths the fault plane exists to prove — corruption
   detected and failed over without desyncing a backend, and a stalled
   shard hedged around with exactly one response per request. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

module Frame = Server.Frame
module Chaos = Server.Chaos
module Breaker = Server.Breaker
module Shard = Server.Shard

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_crc32_vector () =
  (* The IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926. *)
  check int_t "standard check value" 0xcbf43926 (Frame.crc32 "123456789")

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = "Ghello \x00\xff frame" in
      Frame.send_frame a payload;
      check Alcotest.string "payload survives the wire" payload (Frame.recv_frame b))

let test_frame_encode_layout () =
  let payload = "xyzzy" in
  let wire = Frame.encode payload in
  check Alcotest.string "payload sits at payload_offset" payload
    (String.sub wire Frame.payload_offset (String.length payload));
  (* encode and send_frame must put identical bytes on the wire. *)
  with_socketpair (fun a b ->
      Frame.send_all a wire;
      check Alcotest.string "encode is send_frame's bytes" payload (Frame.recv_frame b))

let test_frame_corruption_detected_and_framed () =
  with_socketpair (fun a b ->
      (* One payload byte flipped, CRC left stale: the receiver must
         detect the damage, and — the nack contract — the next frame on
         the same stream must still parse, because the length header
         was consumed before the damage was found. *)
      let wire = Bytes.of_string (Frame.encode "Gdamaged payload") in
      Bytes.set wire (Frame.payload_offset + 3)
        (Char.chr (Char.code (Bytes.get wire (Frame.payload_offset + 3)) lxor 0xff));
      Frame.send_all a (Bytes.to_string wire);
      Frame.send_frame a "Gclean payload";
      (match Frame.recv_frame b with
      | _ -> Alcotest.fail "corrupted frame parsed as clean"
      | exception Frame.Crc_mismatch -> ());
      check Alcotest.string "stream survives the bad frame" "Gclean payload"
        (Frame.recv_frame b))

let test_frame_version_rejected () =
  with_socketpair (fun a b ->
      let wire = Bytes.of_string (Frame.encode "Gpayload") in
      Bytes.set wire 4 '\x07';
      Frame.send_all a (Bytes.to_string wire);
      match Frame.recv_frame b with
      | _ -> Alcotest.fail "wrong version byte accepted"
      | exception Frame.Protocol_error _ -> ())

let test_nack_roundtrip () =
  let p = Frame.nack "bad frame crc" in
  (match Frame.nack_reason p with
  | Some r -> check Alcotest.string "reason survives" "bad frame crc" r
  | None -> Alcotest.fail "nack payload not recognized");
  check bool_t "ordinary payload is not a nack" true (Frame.nack_reason "Gxx" = None)

(* ------------------------------------------------------------------ *)
(* Chaos schedule                                                      *)
(* ------------------------------------------------------------------ *)

let test_chaos_deterministic () =
  let c = Chaos.of_seed 1234 in
  check bool_t "same seed, same schedule" true
    (Chaos.schedule c ~shard:0 400 = Chaos.schedule c ~shard:0 400);
  check bool_t "decide agrees with schedule" true
    (List.init 50 (fun seq -> Chaos.decide c ~shard:3 ~seq)
    = Chaos.schedule c ~shard:3 50);
  check bool_t "different seed, different schedule" true
    (Chaos.schedule c ~shard:0 400
    <> Chaos.schedule (Chaos.of_seed 1235) ~shard:0 400);
  check bool_t "different shard, different schedule" true
    (Chaos.schedule c ~shard:0 400 <> Chaos.schedule c ~shard:1 400)

let test_chaos_none_passes () =
  check bool_t "none injects nothing" true
    (List.for_all (fun a -> a = Chaos.Pass) (Chaos.schedule Chaos.none ~shard:0 500))

let test_chaos_rates_roughly_honored () =
  (* of_seed's standard schedule faults ~26% of frames. The bound is
     loose — it catches a broken draw (all-Pass, all-fault), not
     statistical wobble. *)
  let c = Chaos.of_seed 9 in
  let faults =
    List.filter (fun a -> a <> Chaos.Pass) (Chaos.schedule c ~shard:0 2000)
    |> List.length
  in
  check bool_t (Printf.sprintf "fault fraction %d/2000 within [0.10, 0.45]" faults) true
    (faults > 200 && faults < 900)

(* ------------------------------------------------------------------ *)
(* Breaker state machine                                               *)
(* ------------------------------------------------------------------ *)

let bcfg = { Breaker.failure_threshold = 3; timeout_rate_threshold = 0.5; window = 4; cooldown_s = 10. }

let test_breaker_trips_on_consecutive_failures () =
  let b = Breaker.create ~config:bcfg () in
  let now = 100. in
  check int_t "starts closed" 0 (Breaker.state_code b);
  Breaker.record_failure b ~now ();
  Breaker.record_failure b ~now ();
  check int_t "below threshold stays closed" 0 (Breaker.state_code b);
  Breaker.record_failure b ~now ();
  check int_t "third consecutive failure trips open" 1 (Breaker.state_code b);
  check bool_t "open inside cooldown blocks routing" true (Breaker.blocked b ~now:(now +. 1.));
  check bool_t "no probe inside cooldown" false (Breaker.try_probe b ~now:(now +. 1.));
  check int_t "one trip counted" 1 (Breaker.trips b)

let test_breaker_success_interrupts_the_count () =
  let b = Breaker.create ~config:bcfg () in
  let now = 100. in
  Breaker.record_failure b ~now ();
  Breaker.record_failure b ~now ();
  Breaker.record_success b;
  Breaker.record_failure b ~now ();
  Breaker.record_failure b ~now ();
  check int_t "consecutive count reset by success" 0 (Breaker.state_code b)

let test_breaker_trips_on_timeout_rate () =
  (* Failures never consecutive enough to trip the count, but 3 of the
     4-outcome window are timeouts: the rate threshold must fire. *)
  let b =
    Breaker.create ~config:{ bcfg with Breaker.failure_threshold = 100 } ()
  in
  let now = 100. in
  Breaker.record_success b;
  Breaker.record_failure b ~timeout:true ~now ();
  Breaker.record_failure b ~timeout:true ~now ();
  check int_t "window not yet full" 0 (Breaker.state_code b);
  Breaker.record_failure b ~timeout:true ~now ();
  check int_t "timeout rate over a full window trips open" 1 (Breaker.state_code b)

let test_breaker_half_open_single_probe () =
  let b = Breaker.create ~config:bcfg () in
  let now = 100. in
  for _ = 1 to 3 do
    Breaker.record_failure b ~now ()
  done;
  let after = now +. bcfg.Breaker.cooldown_s +. 0.1 in
  check bool_t "cooldown over: routing may consider the shard" false
    (Breaker.blocked b ~now:after);
  check bool_t "first caller claims the probe slot" true (Breaker.try_probe b ~now:after);
  check int_t "now half-open" 2 (Breaker.state_code b);
  check bool_t "second caller is refused while the probe flies" false
    (Breaker.try_probe b ~now:after);
  check bool_t "half-open with probe in flight blocks routing" true
    (Breaker.blocked b ~now:after);
  Breaker.record_success b;
  check int_t "probe success closes the circuit" 0 (Breaker.state_code b);
  check bool_t "closed admits freely" true (Breaker.try_probe b ~now:after)

let test_breaker_reopens_on_probe_failure () =
  let b = Breaker.create ~config:bcfg () in
  let now = 100. in
  for _ = 1 to 3 do
    Breaker.record_failure b ~now ()
  done;
  let after = now +. bcfg.Breaker.cooldown_s +. 0.1 in
  check bool_t "probe admitted" true (Breaker.try_probe b ~now:after);
  Breaker.record_failure b ~now:after ();
  check int_t "probe failure re-opens" 1 (Breaker.state_code b);
  check bool_t "cooldown restarts" false (Breaker.try_probe b ~now:(after +. 1.));
  check bool_t "next probe admitted after the fresh cooldown" true
    (Breaker.try_probe b ~now:(after +. bcfg.Breaker.cooldown_s +. 0.2));
  Breaker.record_success b;
  check int_t "second probe closes" 0 (Breaker.state_code b)

let test_breaker_force_open () =
  let b = Breaker.create ~config:bcfg () in
  Breaker.force_open b ~now:100.;
  check int_t "forced open" 1 (Breaker.state_code b);
  check bool_t "blocked inside cooldown" true (Breaker.blocked b ~now:100.5)

(* ------------------------------------------------------------------ *)
(* Failover chain                                                      *)
(* ------------------------------------------------------------------ *)

let test_failover_chain_matches_the_walk () =
  let r = Server.Router.create [ 0; 1; 2; 3 ] in
  List.iter
    (fun k ->
      let chain = Server.Router.failover_chain r k in
      check int_t "chain covers every shard" 4 (List.length chain);
      check int_t "chain is duplicate-free" 4
        (List.length (List.sort_uniq compare chain));
      (* The chain IS the exclusion walk: dropping its first i shards
         must route to element i. *)
      check int_t "head is the home shard" (Server.Router.route r k) (List.hd chain);
      List.iteri
        (fun i expected ->
          let dead = List.filteri (fun j _ -> j < i) chain in
          match
            Server.Router.route_excluding r ~exclude:(fun id -> List.mem id dead) k
          with
          | Some got -> check int_t "walk lands on chain element" expected got
          | None -> Alcotest.fail "walk exhausted before the chain did")
        chain;
      check int_t "limit truncates" 2
        (List.length (Server.Router.failover_chain ~limit:2 r k)))
    (List.init 50 (fun i -> Printf.sprintf "chain-key-%d" (i * 131)))

(* ------------------------------------------------------------------ *)
(* Live clusters                                                       *)
(* ------------------------------------------------------------------ *)

let users_tpl =
  "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"

let bodies = List.init 8 (fun i -> Printf.sprintf "%s<!-- v%d -->" users_tpl i)

let gen ?(deadline_ms = 0) cluster body =
  let status, _, _ =
    Shard.generate cluster ~id:"t" ~engine:"host" ~level:Docgen.Spec.Full ~deadline_ms
      ~body
  in
  status

(* A seed whose schedule corrupts exactly the first data frame to shard
   0 and passes the next few — found by scan so the test is
   deterministic without hardcoding a magic constant. *)
let corrupt_then_clean_seed () =
  let rec scan seed =
    if seed > 10_000 then Alcotest.fail "no corrupt-then-clean seed under 10000"
    else
      let c = { Chaos.none with Chaos.seed; corrupt_rate = 0.5 } in
      match Chaos.schedule c ~shard:0 4 with
      | Chaos.Corrupt :: rest when List.for_all (fun a -> a = Chaos.Pass) rest -> c
      | _ -> scan (seed + 1)
  in
  scan 0

let test_corruption_fails_over_without_desync () =
  let chaos = corrupt_then_clean_seed () in
  let cluster =
    Shard.start
      ~config:
        {
          Shard.default_cluster_config with
          Shard.shards = 1;
          drain_timeout_s = 5.;
          chaos = Some chaos;
        }
      ()
  in
  Fun.protect
    ~finally:(fun () -> Shard.shutdown cluster)
    (fun () ->
      (* Frame 0 to shard 0 is corrupted in flight: the backend must
         answer a structured nack (not desync), the front must count a
         failover, and with no other shard the client sees 503. *)
      check int_t "corrupted exchange fails over to 503" 503 (gen cluster users_tpl);
      check bool_t "failover counted" true (Shard.failovers cluster >= 1);
      (* The backend survived the bad frame: the supervisor never had a
         corpse to reap... *)
      check int_t "backend not restarted" 0 (Shard.restarts cluster);
      (* ...and once the probe restores the route, the very same backend
         process serves the next request — a desynced or wedged stream
         would fail here. *)
      let deadline = Clock.now () +. 10. in
      while Shard.healthy_count cluster < 1 && Clock.now () < deadline do
        Thread.delay 0.05
      done;
      check int_t "same backend serves the next request" 200 (gen cluster users_tpl);
      check int_t "still no restart" 0 (Shard.restarts cluster))

let test_hedge_covers_a_stalled_shard () =
  (* A kernel-level stall: SIGSTOP one backend, so frames to it are
     accepted by the socket but never answered — the deterministic
     equivalent of a chaos Stall verdict, without a race against the
     fault schedule. Probes are slowed way down so the supervisor
     cannot hide the stall by failing the shard first; the hedge path
     must do the covering. *)
  let cluster =
    Shard.start
      ~config:
        {
          Shard.default_cluster_config with
          Shard.shards = 2;
          drain_timeout_s = 5.;
          probe_interval_s = 30.;
          hedge = true;
          hedge_min_delay_s = 0.05;
        }
      ()
  in
  let stopped = ref None in
  Fun.protect
    ~finally:(fun () ->
      (match !stopped with
      | Some pid -> ( try Unix.kill pid Sys.sigcont with Unix.Unix_error _ -> ())
      | None -> ());
      Shard.shutdown cluster)
    (fun () ->
      (* Warm both shards so every pooled connection exists and the
         hedge decision is about latency, not connect time. *)
      List.iter (fun b -> check int_t "warm" 200 (gen cluster b)) bodies;
      let victim = (Shard.pids cluster).(0) in
      Unix.kill victim Sys.sigstop;
      stopped := Some victim;
      (* Every request must still get exactly one 200: bodies homed on
         the live shard answer directly; bodies homed on the stalled
         shard hang past the hedge delay, fire a hedge at the ring
         successor, and use its reply. *)
      let oks =
        List.fold_left
          (fun acc b -> if gen ~deadline_ms:2000 cluster b = 200 then acc + 1 else acc)
          0 bodies
      in
      check int_t "exactly one 200 per request under the stall" (List.length bodies) oks;
      check bool_t "hedges fired" true (Shard.hedges cluster >= 1);
      check bool_t "a hedge reply was used" true (Shard.hedge_wins cluster >= 1);
      (* The observability contract: breaker state, hedge counters. *)
      let m = Shard.metrics cluster in
      check bool_t "breaker gauge exposed" true
        (Astring.String.is_infix ~affix:"lopsided_shard_breaker_state" m);
      check bool_t "hedge counters exposed" true
        (Astring.String.is_infix ~affix:"lopsided_shard_hedges_total" m
        && Astring.String.is_infix ~affix:"lopsided_shard_hedge_wins_total" m);
      Unix.kill victim Sys.sigcont;
      stopped := None)

(* ------------------------------------------------------------------ *)
(* Recorder round-trip                                                 *)
(* ------------------------------------------------------------------ *)

let test_recorder_roundtrip () =
  let r = Server.Recorder.create ~capacity:4 () in
  for i = 1 to 6 do
    Server.Recorder.record r
      (Server.Recorder.entry ~ts:(float_of_int i) ~meth:"POST" ~path:"/generate"
         ~tenant:(Printf.sprintf "t%d" i) ~deadline_ms:(i * 100)
         ~body:(Printf.sprintf "<doc v=\"%d\"/>" i) ())
  done;
  (* Capacity 4, 6 writes: the two oldest fell off the ring. *)
  check int_t "ring holds capacity" 4 (Server.Recorder.length r);
  check int_t "overwrites counted" 2 (Server.Recorder.dropped r);
  let path = Filename.temp_file "chaos_rec" ".rec" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      check int_t "save writes the survivors" 4 (Server.Recorder.save r path);
      match Server.Recorder.load path with
      | [] -> Alcotest.fail "empty load"
      | first :: _ as es ->
        check int_t "load round-trips" 4 (List.length es);
        check bool_t "timestamps re-based to zero" true (first.Server.Recorder.e_ts = 0.);
        let last = List.nth es 3 in
        check Alcotest.string "payload survives" "<doc v=\"6\"/>" last.Server.Recorder.e_body;
        check Alcotest.string "tenant survives" "t6" last.Server.Recorder.e_tenant;
        check int_t "deadline survives" 600 last.Server.Recorder.e_deadline_ms)

let test_invariant_checker_flags_losses () =
  let clean =
    {
      Server.Recorder.sent = 10;
      responses = 9;
      conn_errors = 1;
      status_counts = [ (200, 7); (503, 2) ];
    }
  in
  let metrics_text =
    "lopsided_server_accepted_total 7\nlopsided_server_shed_total 2\n\
     lopsided_server_buffers_created_total 3\nlopsided_server_buffers_idle 2\n\
     lopsided_server_buffers_dropped_total 1\n"
  in
  check bool_t "clean run has no violations" true
    (Server.Recorder.check_invariants ~ledger:clean ~metrics_text = []);
  (* A lost response (sent <> responses + conn_errors) must be caught. *)
  let lost = { clean with Server.Recorder.responses = 8 } in
  check bool_t "lost response flagged" true
    (Server.Recorder.check_invariants ~ledger:lost ~metrics_text <> []);
  (* More 200s than the server admitted: double-send or phantom. *)
  let phantom = { clean with Server.Recorder.status_counts = [ (200, 9) ] } in
  check bool_t "phantom success flagged" true
    (Server.Recorder.check_invariants ~ledger:phantom ~metrics_text <> []);
  (* A leaked pool buffer after drain. *)
  let leaky =
    "lopsided_server_accepted_total 7\nlopsided_server_shed_total 2\n\
     lopsided_server_buffers_created_total 3\nlopsided_server_buffers_idle 1\n\
     lopsided_server_buffers_dropped_total 1\n"
  in
  check bool_t "buffer leak flagged" true
    (Server.Recorder.check_invariants ~ledger:clean ~metrics_text:leaky <> [])

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "crc32 standard vector" `Quick test_crc32_vector;
        Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
        Alcotest.test_case "encode layout matches the wire" `Quick test_frame_encode_layout;
        Alcotest.test_case "corruption detected, stream stays framed" `Quick
          test_frame_corruption_detected_and_framed;
        Alcotest.test_case "wrong version rejected" `Quick test_frame_version_rejected;
        Alcotest.test_case "nack round-trip" `Quick test_nack_roundtrip;
        Alcotest.test_case "schedule is seed-deterministic" `Quick test_chaos_deterministic;
        Alcotest.test_case "none injects nothing" `Quick test_chaos_none_passes;
        Alcotest.test_case "rates roughly honored" `Quick test_chaos_rates_roughly_honored;
        Alcotest.test_case "breaker trips on consecutive failures" `Quick
          test_breaker_trips_on_consecutive_failures;
        Alcotest.test_case "breaker count resets on success" `Quick
          test_breaker_success_interrupts_the_count;
        Alcotest.test_case "breaker trips on timeout rate" `Quick
          test_breaker_trips_on_timeout_rate;
        Alcotest.test_case "half-open admits one probe" `Quick
          test_breaker_half_open_single_probe;
        Alcotest.test_case "probe failure re-opens" `Quick
          test_breaker_reopens_on_probe_failure;
        Alcotest.test_case "force open" `Quick test_breaker_force_open;
        Alcotest.test_case "failover chain matches the exclusion walk" `Quick
          test_failover_chain_matches_the_walk;
        Alcotest.test_case "recorder ring round-trips" `Quick test_recorder_roundtrip;
        Alcotest.test_case "invariant checker flags losses" `Quick
          test_invariant_checker_flags_losses;
        Alcotest.test_case "corrupt frame fails over, backend survives" `Slow
          test_corruption_fails_over_without_desync;
        Alcotest.test_case "hedge covers a stalled shard" `Slow
          test_hedge_covers_a_stalled_shard;
      ] );
  ]
