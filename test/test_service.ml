(* The service layer: LRU behaviour, cache counters, deadlines as typed
   errors, error isolation within a batch, and the serial-vs-parallel
   oracle (byte-identical documents across 1, 2, and 4 domains). *)

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let banking = Awb.Samples.banking_model ()

let users_tpl =
  "<document><ol><for nodes=\"start type(User); sort-by label\"><li><label/></li></for></ol>\
   </document>"

let report_tpl =
  "<document><table-of-contents/><for nodes=\"start type(User); sort-by label\">\
   <section><heading><label/></heading>\
   <p><value-of query=\"start focus; follow uses; distinct; sort-by label\"/></p>\
   </section></for><table-of-omissions types=\"User Document\"/></document>"

let failing_tpl =
  "<document><for nodes=\"start type(Document); sort-by label\">\
   <p><required-property name=\"version\"/></p></for></document>"

(* ------------------------------------------------------------------ *)
(* The LRU itself                                                      *)
(* ------------------------------------------------------------------ *)

let test_lru_hit_miss_eviction () =
  let lru = Service.Lru.create ~capacity:2 in
  Service.Lru.add lru "a" 1;
  Service.Lru.add lru "b" 2;
  check (Alcotest.option int_t) "hit a" (Some 1) (Service.Lru.find lru "a");
  (* "a" was just used, so adding "c" must evict "b". *)
  Service.Lru.add lru "c" 3;
  check bool_t "b evicted" false (Service.Lru.mem lru "b");
  check bool_t "a survives" true (Service.Lru.mem lru "a");
  check bool_t "c present" true (Service.Lru.mem lru "c");
  check (Alcotest.option int_t) "miss b" None (Service.Lru.find lru "b");
  check int_t "hits" 1 (Service.Lru.hits lru);
  check int_t "misses" 1 (Service.Lru.misses lru);
  check int_t "evictions" 1 (Service.Lru.evictions lru);
  check int_t "length" 2 (Service.Lru.length lru)

let test_lru_replace_and_zero_capacity () =
  let lru = Service.Lru.create ~capacity:2 in
  Service.Lru.add lru "k" 1;
  Service.Lru.add lru "k" 2;
  check (Alcotest.option int_t) "replaced" (Some 2) (Service.Lru.find lru "k");
  check int_t "no eviction on replace" 0 (Service.Lru.evictions lru);
  let off = Service.Lru.create ~capacity:0 in
  Service.Lru.add off "k" 1;
  check bool_t "capacity 0 stores nothing" false (Service.Lru.mem off "k")

(* ------------------------------------------------------------------ *)
(* Cache behaviour through the service                                 *)
(* ------------------------------------------------------------------ *)

let svc ?(domains = 1) ?(capacity = 32) () =
  Service.create
    ~config:
      { Service.default_config with Service.domains; cache_capacity = capacity }
    ()

let req ?engine ?deadline ~id tpl =
  Service.request ?engine ?deadline ~id ~template:(Service.Template_xml tpl)
    ~model:(Service.Model_value banking) ()

let ok_exn (r : Service.response) =
  match r.Service.result with
  | Ok out -> out
  | Error e -> Alcotest.failf "%s failed: %s" r.Service.request_id (Service.error_to_string e)

let test_template_cache_hits () =
  let t = svc () in
  List.iter
    (fun i -> ignore (ok_exn (Service.run t (req ~id:(string_of_int i) users_tpl))))
    [ 1; 2; 3 ];
  let c = Service.counters t in
  check int_t "one template miss" 1 c.Service.template_misses;
  check int_t "two template hits" 2 c.Service.template_hits;
  check int_t "requests" 3 c.Service.requests;
  check int_t "succeeded" 3 c.Service.succeeded

let test_model_cache_hits () =
  let xml = Awb.Xml_io.export_string banking in
  let t = svc () in
  let model = Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml } in
  let mk id = Service.request ~id ~template:(Service.Template_xml users_tpl) ~model () in
  let r1 = Service.run t (mk "a") and r2 = Service.run t (mk "b") in
  check string_t "same output from cached model" (ok_exn r1).Service.document
    (ok_exn r2).Service.document;
  let c = Service.counters t in
  check int_t "one model miss" 1 c.Service.model_misses;
  check int_t "one model hit" 1 c.Service.model_hits

let test_query_cache_via_xq_engine () =
  let t = svc () in
  let tpl = "<document><for nodes=\"type:User\"><li><label/></li></for></document>" in
  ignore (ok_exn (Service.run t (req ~engine:`Xq ~id:"x1" tpl)));
  ignore (ok_exn (Service.run t (req ~engine:`Xq ~id:"x2" tpl)));
  let c = Service.counters t in
  check int_t "xq core compiled once" 1 c.Service.query_misses;
  check int_t "second run hit the compiled core" 1 c.Service.query_hits

let test_compile_query_cached () =
  let t = svc () in
  (match Service.compile_query t "1 + 1" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "compile failed: %s" m);
  (match Service.compile_query t "1 + 1" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "recompile failed: %s" m);
  let c = Service.counters t in
  check int_t "compiled once" 1 c.Service.query_misses;
  check int_t "served from cache" 1 c.Service.query_hits;
  match Service.compile_query t "1 +" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "syntax error accepted"

let test_eviction_counted () =
  let t = svc ~capacity:1 () in
  ignore (ok_exn (Service.run t (req ~id:"a" users_tpl)));
  ignore (ok_exn (Service.run t (req ~id:"b" report_tpl)));
  ignore (ok_exn (Service.run t (req ~id:"c" users_tpl)));
  let c = Service.counters t in
  check bool_t "evictions counted" true (c.Service.evictions >= 2);
  check int_t "every lookup missed" 3 c.Service.template_misses

(* ------------------------------------------------------------------ *)
(* Deadlines and error isolation                                       *)
(* ------------------------------------------------------------------ *)

let test_deadline_expiry_is_typed () =
  let t = svc () in
  let r = Service.run t (req ~deadline:0. ~id:"late" users_tpl) in
  (match r.Service.result with
  | Error (Service.Deadline_exceeded { deadline_s; _ }) ->
    check (Alcotest.float 1e-9) "deadline echoed" 0. deadline_s
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded");
  let c = Service.counters t in
  check int_t "counted as deadline failure" 1 c.Service.deadline_failures

let test_default_deadline_from_config () =
  let t =
    Service.create
      ~config:{ Service.default_config with Service.default_deadline = Some 0. }
      ()
  in
  match (Service.run t (req ~id:"late" users_tpl)).Service.result with
  | Error (Service.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "config deadline not applied"

let test_error_isolation_in_batch () =
  let t = svc ~domains:2 () in
  let batch =
    [
      req ~id:"ok1" users_tpl;
      { (req ~id:"broken" failing_tpl) with Service.template = Service.Template_xml "<oops" };
      req ~id:"genfail" failing_tpl;
      req ~id:"ok2" report_tpl;
    ]
  in
  match Service.run_batch t batch with
  | [ r1; r2; r3; r4 ] ->
    ignore (ok_exn r1);
    ignore (ok_exn r4);
    (match r2.Service.result with
    | Error (Service.Template_error _) -> ()
    | _ -> Alcotest.fail "parse failure not typed as Template_error");
    (match r3.Service.result with
    | Error (Service.Generation_failed { message; _ }) ->
      check bool_t "carries the engine message" true
        (Astring.String.is_infix ~affix:"should have a property version" message)
    | _ -> Alcotest.fail "generation failure not typed as Generation_failed")
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Resource governance and fault injection                             *)
(* ------------------------------------------------------------------ *)

let gov_svc ?(domains = 1) ?deadline ?fuel ?(retries = 2) ?(quarantine_after = 0)
    ?(cooldown = 30.) ?fault () =
  Service.create
    ~config:
      {
        Service.default_config with
        Service.domains;
        default_deadline = deadline;
        fuel;
        retries;
        backoff_s = 0.0005;
        quarantine_after;
        quarantine_cooldown_s = cooldown;
        fault;
      }
    ()

let fault ?(seed = 42) ?(deadline_rate = 0.) ?(fuel_rate = 0.) ?(transient_rate = 0.)
    ?(transient_attempts = 2) ?(fast_fault_rate = 0.) ?(crash_rate = 0.) () =
  {
    Service.Fault.seed;
    deadline_rate;
    fuel_rate;
    transient_rate;
    transient_attempts;
    fast_fault_rate;
    crash_rate;
    load_signal = None;
  }

(* Templates whose generation would run for hours unpreempted: nested
   for-loops multiply the model's node fan-out a dozen times over. One
   per template dialect (the host/functional engines speak the AWB query
   language, the xq dispatch core its own nodes= spec). *)
let runaway_host_tpl =
  let rec go n =
    if n = 0 then "<p><label/></p>"
    else "<for nodes=\"start type(User); sort-by label\">" ^ go (n - 1) ^ "</for>"
  in
  "<document>" ^ go 12 ^ "</document>"

let runaway_xq_tpl =
  let rec go n = if n = 0 then "<x/>" else "<for nodes=\"all\">" ^ go (n - 1) ^ "</for>" in
  "<document>" ^ go 8 ^ "</document>"

(* The acceptance scenario: a runaway query under a 50 ms deadline is
   preempted mid-generation — inside the evaluator, not at a phase
   boundary it never reaches — on both template dialects, in bounded
   time, while a well-behaved request in the same batch completes. *)
let test_midquery_deadline_preemption () =
  let t = gov_svc ~domains:2 ~deadline:0.05 () in
  let t0 = Unix.gettimeofday () in
  let rs =
    Service.run_batch t
      [
        req ~engine:`Xq ~id:"runaway-xq" runaway_xq_tpl;
        req ~id:"ok" users_tpl;
        req ~id:"runaway-host" runaway_host_tpl;
      ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check bool_t "preempted in bounded time" true (elapsed < 5.);
  (match rs with
  | [ rxq; rok; rhost ] ->
    ignore (ok_exn rok);
    List.iter
      (fun (r : Service.response) ->
        match r.Service.result with
        | Error (Service.Deadline_exceeded { deadline_s; _ }) ->
          check (Alcotest.float 1e-9) "deadline echoed" 0.05 deadline_s
        | Error e ->
          Alcotest.failf "%s: wrong error %s" r.Service.request_id
            (Service.error_to_string e)
        | Ok _ -> Alcotest.failf "%s: runaway completed?" r.Service.request_id)
      [ rxq; rhost ]
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs));
  check int_t "both counted as deadline failures" 2
    (Service.counters t).Service.deadline_failures

(* The drain race: preempt_inflight runs BEFORE the request registers —
   the server's drain can fire while a worker holds a job it has popped
   but not yet started. The preempt deadline must stick and bound the
   later attempt; without stickiness this runaway (no client deadline,
   no default) would run essentially forever and wedge the drain. *)
let test_preempt_deadline_is_sticky () =
  let t = gov_svc ~retries:0 () in
  ignore
    (Service.preempt_inflight t ~deadline_ns:(Clock.now_ns () + Clock.ns_of_s 0.05));
  let t0 = Unix.gettimeofday () in
  (match (Service.run t (req ~id:"late-arrival" runaway_host_tpl)).Service.result with
  | Error (Service.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "runaway completed past a sticky preempt deadline");
  check bool_t "bounded by the sticky deadline" true (Unix.gettimeofday () -. t0 < 5.);
  (* Repeated preempts keep the tightest deadline: a later, looser drain
     request must not loosen the bound. *)
  ignore
    (Service.preempt_inflight t ~deadline_ns:(Clock.now_ns () + Clock.ns_of_s 60.));
  match (Service.run t (req ~id:"still-bounded" runaway_host_tpl)).Service.result with
  | Error (Service.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "loosening preempt deadline was accepted"

let test_transient_retry_recovers () =
  (* transient_attempts = 2: the injected fault fires on attempts 0 and
     1, so 2 retries recover the request. *)
  let t = gov_svc ~retries:2 ~fault:(fault ~transient_rate:1.0 ~transient_attempts:2 ()) () in
  ignore (ok_exn (Service.run t (req ~id:"flaky" users_tpl)));
  let c = Service.counters t in
  check int_t "two retries performed" 2 c.Service.retries;
  check int_t "request succeeded" 1 c.Service.succeeded

let test_transient_exhausts_retries () =
  let t = gov_svc ~retries:1 ~fault:(fault ~transient_rate:1.0 ~transient_attempts:5 ()) () in
  (match (Service.run t (req ~id:"doomed" users_tpl)).Service.result with
  | Error (Service.Generation_failed { code; _ }) ->
    check string_t "structured transient code" "transient" code
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure after retry budget");
  check int_t "one retry performed" 1 (Service.counters t).Service.retries

let xq_users_tpl = "<document><for nodes=\"type:User\"><li><label/></li></for></document>"

let test_fast_fault_degrades_to_seed () =
  let t = gov_svc ~fault:(fault ~fast_fault_rate:1.0 ()) () in
  ignore (ok_exn (Service.run t (req ~engine:`Xq ~id:"fastfault" xq_users_tpl)));
  let c = Service.counters t in
  check int_t "one fallback to the seed evaluator" 1 c.Service.fast_fallbacks;
  check int_t "request succeeded anyway" 1 c.Service.succeeded

let test_injected_fuel_exhaustion () =
  let t = gov_svc ~fault:(fault ~fuel_rate:1.0 ()) () in
  (match (Service.run t (req ~engine:`Xq ~id:"starved" xq_users_tpl)).Service.result with
  | Error (Service.Resource_exhausted { resource = Xquery.Errors.Fuel; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected fuel exhaustion");
  check int_t "counted as resource failure" 1 (Service.counters t).Service.resource_failures

let test_injected_deadline_overrun () =
  let t = gov_svc ~fault:(fault ~deadline_rate:1.0 ()) () in
  (match (Service.run t (req ~id:"overrun" users_tpl)).Service.result with
  | Error (Service.Deadline_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected deadline overrun");
  check int_t "counted as deadline failure" 1 (Service.counters t).Service.deadline_failures

(* Same seed, same faults: the injector must be schedule-independent. *)
let test_fault_injection_deterministic () =
  let outcome () =
    let t = gov_svc ~retries:0 ~fault:(fault ~seed:7 ~transient_rate:0.5 ()) () in
    List.map
      (fun i ->
        match
          (Service.run t (req ~id:(Printf.sprintf "r%d" i) users_tpl)).Service.result
        with
        | Ok _ -> true
        | Error _ -> false)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  check (Alcotest.list bool_t) "same seed, same fault pattern" (outcome ()) (outcome ());
  check bool_t "a 0.5 rate both fires and spares across 8 requests" true
    (let o = outcome () in
     List.mem true o && List.mem false o)

let test_quarantine_trip_and_release () =
  let t = gov_svc ~quarantine_after:2 ~cooldown:0.05 () in
  let fail_once id =
    match (Service.run t (req ~id failing_tpl)).Service.result with
    | Error (Service.Generation_failed _) -> ()
    | r ->
      Alcotest.failf "%s: expected Generation_failed, got %s" id
        (match r with Ok _ -> "Ok" | Error e -> Service.error_to_string e)
  in
  fail_once "f1";
  fail_once "f2" (* second consecutive failure trips the breaker *);
  (match (Service.run t (req ~id:"f3" failing_tpl)).Service.result with
  | Error (Service.Quarantined { retry_after_s; _ }) ->
    check bool_t "cooldown echoed" true (retry_after_s > 0.)
  | r ->
    Alcotest.failf "expected Quarantined, got %s"
      (match r with Ok _ -> "Ok" | Error e -> Service.error_to_string e));
  (* Other templates are untouched by the open breaker. *)
  ignore (ok_exn (Service.run t (req ~id:"good" users_tpl)));
  Unix.sleepf 0.06;
  (* Past the cooldown the breaker closes and the template runs again. *)
  fail_once "f4";
  let c = Service.counters t in
  check int_t "one trip" 1 c.Service.quarantine_trips;
  check int_t "one rejection" 1 c.Service.quarantine_rejections;
  check int_t "one release" 1 c.Service.quarantine_releases

(* A quarantined template must not block other domains' work: a batch
   mixing rejected and healthy requests completes with the healthy ones
   untouched. *)
let test_quarantine_isolated_across_domains () =
  let t = gov_svc ~domains:4 ~quarantine_after:2 ~cooldown:30. () in
  List.iter
    (fun id -> ignore (Service.run t (req ~id failing_tpl)))
    [ "trip1"; "trip2" ];
  let rs =
    Service.run_batch t
      [
        req ~id:"bad1" failing_tpl;
        req ~id:"good1" users_tpl;
        req ~id:"bad2" failing_tpl;
        req ~engine:`Xq ~id:"good2"
          "<document><for nodes=\"type:User\"><li><label/></li></for></document>";
        req ~id:"bad3" failing_tpl;
        req ~id:"good3" report_tpl;
      ]
  in
  List.iter
    (fun (r : Service.response) ->
      let is_bad =
        Astring.String.is_prefix ~affix:"bad" r.Service.request_id
      in
      match r.Service.result with
      | Error (Service.Quarantined _) when is_bad -> ()
      | Ok _ when not is_bad -> ()
      | Ok _ -> Alcotest.failf "%s: quarantined template ran" r.Service.request_id
      | Error e ->
        Alcotest.failf "%s: %s" r.Service.request_id (Service.error_to_string e))
    rs;
  check int_t "three rejections" 3 (Service.counters t).Service.quarantine_rejections

(* ------------------------------------------------------------------ *)
(* The serial-vs-parallel oracle                                       *)
(* ------------------------------------------------------------------ *)

let oracle_batch () =
  (* A mixed batch: different templates, engines, and repeat traffic. *)
  List.concat_map
    (fun round ->
      [
        req ~id:(Printf.sprintf "u%d" round) users_tpl;
        req ~engine:`Functional ~id:(Printf.sprintf "r%d" round) report_tpl;
        req ~engine:`Xq ~id:(Printf.sprintf "x%d" round)
          "<document><for nodes=\"type:User\"><li><label/></li></for></document>";
      ])
    [ 1; 2; 3; 4 ]

let test_parallel_matches_serial () =
  let serial = Service.run_batch ~domains:1 (svc ()) (oracle_batch ()) in
  List.iter
    (fun domains ->
      let par = Service.run_batch ~domains (svc ()) (oracle_batch ()) in
      check int_t "same cardinality" (List.length serial) (List.length par);
      List.iter2
        (fun (a : Service.response) (b : Service.response) ->
          check string_t "ids in request order" a.Service.request_id b.Service.request_id;
          check string_t
            (Printf.sprintf "%s byte-identical across %d domains" a.Service.request_id
               domains)
            (ok_exn a).Service.document (ok_exn b).Service.document)
        serial par)
    [ 2; 4 ]

let test_pool_runs_everything_once () =
  let n = 37 in
  let tasks = Array.init n (fun i () -> i * i) in
  let results, stats = Service.Pool.run ~domains:4 tasks in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check int_t "task result in its slot" (i * i) v
      | Error e -> Alcotest.failf "task %d failed: %s" i (Printexc.to_string e))
    results;
  check int_t "all tasks executed exactly once" n
    (Array.fold_left ( + ) 0 stats.Service.Pool.executed)

let test_pool_isolates_exceptions () =
  let tasks =
    Array.init 8 (fun i () -> if i = 3 then failwith "boom" else i)
  in
  let results, _ = Service.Pool.run ~domains:2 tasks in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 3, Error (Failure m) -> check string_t "the failure" "boom" m
      | 3, _ -> Alcotest.fail "task 3 should have failed"
      | _, Ok v -> check int_t "neighbours unharmed" i v
      | _, Error e -> Alcotest.failf "task %d failed: %s" i (Printexc.to_string e))
    results

(* ------------------------------------------------------------------ *)
(* The re-exported top-level API                                       *)
(* ------------------------------------------------------------------ *)

let test_lopsided_generate_document () =
  let model_xml = Awb.Xml_io.export_string banking in
  (match
     Lopsided.generate_document ~metamodel:Awb.Samples.it_architecture ~model_xml
       ~template_xml:users_tpl ()
   with
  | Ok { Lopsided.document; problems } ->
    check bool_t "document generated" true
      (Astring.String.is_infix ~affix:"<li>alice</li>" document);
    check bool_t "banking model problems surface" true (problems <> [])
  | Error m -> Alcotest.failf "generate_document failed: %s" m);
  match
    Lopsided.generate_document ~metamodel:Awb.Samples.it_architecture ~model_xml
      ~template_xml:"<oops" ()
  with
  | Error m -> check bool_t "typed template error" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "malformed template accepted"

let test_engine_dispatch_agreement () =
  let template =
    Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string report_tpl)
  in
  let doc engine =
    Xml_base.Serialize.to_string
      (Docgen.generate ~engine banking ~template).Docgen.Spec.document
  in
  check string_t "host and functional agree through the dispatcher" (doc `Host)
    (doc `Functional);
  List.iter
    (fun e ->
      check bool_t "engine name round-trips" true
        (Docgen.engine_of_string (Docgen.engine_name e) = Ok e))
    Docgen.all_engines

(* ------------------------------------------------------------------ *)
(* Result cache (stale-while-revalidate support)                       *)
(* ------------------------------------------------------------------ *)

let test_result_cache_store_and_lookup () =
  let t =
    Service.create
      ~config:{ Service.default_config with Service.result_cache_cap = 8 }
      ()
  in
  let r = req ~id:"first" users_tpl in
  (* Before any generation: a miss. *)
  check bool_t "empty cache misses" true (Service.lookup_result t r = None);
  let out = ok_exn (Service.run t r) in
  (* A completed Full-level generation is cached; the lookup returns the
     same bytes plus a non-negative age. *)
  (match Service.lookup_result t (req ~id:"other-id" users_tpl) with
  | None -> Alcotest.fail "completed generation was not cached"
  | Some (cached, age_s) ->
    check string_t "cached document identical" out.Service.document
      cached.Service.document;
    check bool_t "age non-negative" true (age_s >= 0.));
  (* The key covers the engine: another engine's result is a miss. *)
  check bool_t "different engine misses" true
    (Service.lookup_result t (req ~engine:`Functional ~id:"x" users_tpl) = None);
  (* And the template bytes. *)
  check bool_t "different template misses" true
    (Service.lookup_result t
       (req ~id:"y" "<document><p>other</p></document>")
    = None);
  (* Failures are never cached. *)
  let bad =
    "<document><for nodes=\"start type(Document); sort-by label\">\
     <p><required-property name=\"version\"/></p></for></document>"
  in
  (match (Service.run t (req ~id:"fails" bad)).Service.result with
  | Ok _ -> Alcotest.fail "expected the required-property template to fail"
  | Error _ -> ());
  check bool_t "failure not cached" true (Service.lookup_result t (req ~id:"z" bad) = None);
  let c = Service.counters t in
  check bool_t "stores counted" true (c.Service.result_stores >= 1);
  check bool_t "hits counted" true (c.Service.result_hits >= 1);
  check bool_t "misses counted" true (c.Service.result_misses >= 3)

let test_result_cache_refresh_claim () =
  let t =
    Service.create
      ~config:{ Service.default_config with Service.result_cache_cap = 8 }
      ()
  in
  let r = req ~id:"r1" users_tpl in
  (* Nothing cached: nothing to refresh. *)
  check bool_t "no entry, no claim" false (Service.claim_refresh t r);
  ignore (ok_exn (Service.run t r));
  (* First claim wins; duplicates inside the cooldown are refused, so a
     burst of stale hits enqueues one background refresh, not dozens. *)
  check bool_t "first claim wins" true (Service.claim_refresh t r);
  check bool_t "duplicate claim refused" false (Service.claim_refresh t r);
  (* A successful re-generation stores afresh and resets the claim. *)
  ignore (ok_exn (Service.run t (req ~id:"r2" users_tpl)));
  check bool_t "claim reset by store" true (Service.claim_refresh t r)

let test_result_cache_disabled_by_default () =
  let t = svc () in
  let r = req ~id:"d1" users_tpl in
  ignore (ok_exn (Service.run t r));
  check bool_t "cap 0 stores nothing" true (Service.lookup_result t r = None);
  check int_t "no stores counted" 0 (Service.counters t).Service.result_stores

let test_request_level_reaches_engine () =
  let t = svc () in
  let toc_tpl =
    "<document><table-of-contents/><section><heading>Users</heading>\
     <p>body</p></section></document>"
  in
  let full = ok_exn (Service.run t (req ~id:"lvl-full" toc_tpl)) in
  let skel_req =
    Service.request ~level:Docgen.Spec.Skeleton ~id:"lvl-skel"
      ~template:(Service.Template_xml toc_tpl)
      ~model:(Service.Model_value banking) ()
  in
  let skel = ok_exn (Service.run t skel_req) in
  check bool_t "full computed the toc" true
    (Astring.String.is_infix ~affix:"toc-depth-0" full.Service.document);
  check bool_t "skeleton stubbed the toc" true
    (Astring.String.is_infix ~affix:"table-of-contents degraded" skel.Service.document)

let suite =
  [
    ( "service.lru",
      [
        Alcotest.test_case "hit/miss/eviction" `Quick test_lru_hit_miss_eviction;
        Alcotest.test_case "replace + zero capacity" `Quick test_lru_replace_and_zero_capacity;
      ] );
    ( "service.cache",
      [
        Alcotest.test_case "template cache hits" `Quick test_template_cache_hits;
        Alcotest.test_case "model cache hits" `Quick test_model_cache_hits;
        Alcotest.test_case "xq core compiled once" `Quick test_query_cache_via_xq_engine;
        Alcotest.test_case "compile_query cached" `Quick test_compile_query_cached;
        Alcotest.test_case "evictions counted" `Quick test_eviction_counted;
      ] );
    ( "service.requests",
      [
        Alcotest.test_case "deadline expiry is typed" `Quick test_deadline_expiry_is_typed;
        Alcotest.test_case "config default deadline" `Quick test_default_deadline_from_config;
        Alcotest.test_case "batch isolates errors" `Quick test_error_isolation_in_batch;
      ] );
    ( "service.governance",
      [
        Alcotest.test_case "mid-query deadline preemption" `Quick
          test_midquery_deadline_preemption;
        Alcotest.test_case "preempt deadline is sticky" `Quick
          test_preempt_deadline_is_sticky;
        Alcotest.test_case "transient retry recovers" `Quick test_transient_retry_recovers;
        Alcotest.test_case "transient exhausts retries" `Quick
          test_transient_exhausts_retries;
        Alcotest.test_case "fast fault degrades to seed" `Quick
          test_fast_fault_degrades_to_seed;
        Alcotest.test_case "injected fuel exhaustion" `Quick test_injected_fuel_exhaustion;
        Alcotest.test_case "injected deadline overrun" `Quick
          test_injected_deadline_overrun;
        Alcotest.test_case "fault injection is deterministic" `Quick
          test_fault_injection_deterministic;
        Alcotest.test_case "quarantine trips and releases" `Quick
          test_quarantine_trip_and_release;
        Alcotest.test_case "quarantine isolated across domains" `Quick
          test_quarantine_isolated_across_domains;
      ] );
    ( "service.parallel",
      [
        Alcotest.test_case "parallel output = serial output (2, 4 domains)" `Quick
          test_parallel_matches_serial;
        Alcotest.test_case "pool executes each task once" `Quick
          test_pool_runs_everything_once;
        Alcotest.test_case "pool isolates exceptions" `Quick test_pool_isolates_exceptions;
      ] );
    ( "service.result-cache",
      [
        Alcotest.test_case "store and lookup" `Quick test_result_cache_store_and_lookup;
        Alcotest.test_case "refresh claim dedup" `Quick test_result_cache_refresh_claim;
        Alcotest.test_case "disabled by default" `Quick test_result_cache_disabled_by_default;
        Alcotest.test_case "request level reaches the engine" `Quick
          test_request_level_reaches_engine;
      ] );
    ( "service.api",
      [
        Alcotest.test_case "Lopsided.generate_document" `Quick test_lopsided_generate_document;
        Alcotest.test_case "engine dispatcher agreement" `Quick
          test_engine_dispatch_agreement;
      ] );
  ]
