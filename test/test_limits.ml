(* Resource governance: budgets must be invisible until they trip, and
   must always trip on hostile input.

   Two properties anchor the layer. First, a generous budget is a no-op:
   on random (document, query) pairs the governed run returns exactly
   the ungoverned output, on both the seed and fast evaluators — the
   amortized tick is bookkeeping, never semantics. Second, a hostile
   corpus (unbounded recursion, cartesian FLWORs, exponential
   constructor growth) always terminates in bounded time with a typed
   Resource_exhausted naming the budget that tripped — again on both
   evaluators, since the lazy paths meter their own streams. *)

module E = Xquery.Engine
module V = Xquery.Value
module C = Xquery.Context
module Err = Xquery.Errors

let check = Alcotest.check
let bool_t = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Generous budgets are invisible                                      *)
(* ------------------------------------------------------------------ *)

let generous () =
  C.make_limits ~fuel:50_000_000 ~max_depth:100_000 ~max_nodes:10_000_000
    ~deadline_ns:(Clock.now_ns () + Clock.ns_of_s 60.) ()

let run ?limits ~fast doc q =
  V.to_display_string (E.eval_query ?limits ~fast_eval:fast ~context_item:(V.Node doc) q)

let prop_generous_budget_invisible =
  QCheck.Test.make ~name:"generous budget output = unbudgeted output (seed and fast)"
    ~count:300
    (QCheck.pair Test_eval_perf.gen_doc Test_eval_perf.gen_query)
    (fun (doc, q) ->
      let free_seed = run ~fast:false doc q in
      let gov_seed = run ~limits:(generous ()) ~fast:false doc q in
      let free_fast = run ~fast:true doc q in
      let gov_fast = run ~limits:(generous ()) ~fast:true doc q in
      if free_seed <> gov_seed then
        QCheck.Test.fail_reportf "seed governed run changed %s:\n  free: %s\n  gov:  %s" q
          free_seed gov_seed
      else if free_fast <> gov_fast then
        QCheck.Test.fail_reportf "fast governed run changed %s:\n  free: %s\n  gov:  %s" q
          free_fast gov_fast
      else true)

(* ------------------------------------------------------------------ *)
(* Hostile corpus always trips a budget                                *)
(* ------------------------------------------------------------------ *)

(* Each hostile query would run (effectively) forever unbudgeted; the
   designated budget must stop it. Every case also carries a generous
   deadline backstop so a budget-accounting bug fails the test instead
   of hanging it. *)
let hostile_corpus =
  [
    ( "unbounded recursion vs fuel",
      "declare function local:f($n) { local:f($n + 1) }; local:f(0)",
      (fun () -> C.make_limits ~fuel:200_000 ()),
      Err.Fuel );
    ( "unbounded recursion vs depth",
      "declare function local:f($n) { local:f($n + 1) }; local:f(0)",
      (fun () -> C.make_limits ~max_depth:500 ()),
      Err.Depth );
    ( "cartesian FLWOR vs fuel",
      "for $a in 1 to 1000000 for $b in 1 to 1000000 return $a + $b",
      (fun () -> C.make_limits ~fuel:500_000 ()),
      Err.Fuel );
    ( "cartesian FLWOR vs deadline",
      "for $a in 1 to 1000000 for $b in 1 to 1000000 return $a + $b",
      (fun () -> C.make_limits ~deadline_ns:(Clock.now_ns () + Clock.ns_of_s 0.05) ()),
      Err.Deadline );
    ( "exponential constructor growth vs nodes",
      "declare function local:d($x, $n) { if ($n eq 0) then $x else local:d(<a>{$x}{$x}</a>, \
       $n - 1) }; local:d(<a/>, 60)",
      (fun () -> C.make_limits ~max_nodes:100_000 ()),
      Err.Nodes );
    ( "exponential string growth vs fuel",
      "declare function local:d($s, $n) { if ($n eq 0) then $s else local:d(concat($s, \
       $s), $n - 1) }; local:d(\"xy\", 60)",
      (fun () -> C.make_limits ~fuel:1_000_000 ()),
      Err.Fuel );
  ]

let backstop limits_of () =
  (* A second, looser deadline on top of the case's own budget: the test
     fails (rather than hangs) if the primary budget never trips. *)
  let l = limits_of () in
  if l.C.deadline_ns = max_int then
    { l with C.deadline_ns = Clock.now_ns () + Clock.ns_of_s 10. }
  else l

let test_hostile_corpus_trips ~fast () =
  List.iter
    (fun (name, q, limits_of, expected) ->
      match
        E.eval_query ~limits:(backstop limits_of ()) ~fast_eval:fast
          ~context_item:(V.Node (Xml_base.Parser.parse_string "<root/>"))
          q
      with
      | exception Err.Resource_exhausted { resource; _ } ->
        check bool_t
          (Printf.sprintf "%s trips %s (got %s)" name (Err.resource_name expected)
             (Err.resource_name resource))
          true
          (resource = expected)
      | _ -> Alcotest.failf "%s: hostile query completed under budget" name)
    hostile_corpus

(* An expired deadline must stop evaluation before any work happens. *)
let test_expired_deadline_preempts () =
  List.iter
    (fun fast ->
      match
        E.eval_query ~fast_eval:fast
          ~limits:(C.make_limits ~deadline_ns:(Clock.now_ns () - 1) ())
          "1 + 1"
      with
      | exception Err.Resource_exhausted { resource = Err.Deadline; _ } -> ()
      | _ -> Alcotest.fail "expired deadline did not preempt")
    [ false; true ]

(* The engine boundary maps the runtime's own exhaustion signals into
   the same taxonomy. *)
let test_stack_overflow_mapped () =
  (* A depth budget large enough to need real stack but small enough to
     finish fast would be flaky; instead check the mapping directly via
     the code round-trip. *)
  check bool_t "stack code round-trips" true
    (Err.resource_of_code (Err.resource_code Err.Stack) = Some Err.Stack);
  check bool_t "memory code round-trips" true
    (Err.resource_of_code (Err.resource_code Err.Memory) = Some Err.Memory);
  List.iter
    (fun r ->
      check bool_t
        (Printf.sprintf "%s code round-trips" (Err.resource_name r))
        true
        (Err.resource_of_code (Err.resource_code r) = Some r))
    [ Err.Fuel; Err.Depth; Err.Nodes; Err.Deadline ]

let suite =
  [
    ( "limits.property",
      List.map QCheck_alcotest.to_alcotest [ prop_generous_budget_invisible ] );
    ( "limits.hostile",
      [
        Alcotest.test_case "hostile corpus trips budgets (seed)" `Quick
          (test_hostile_corpus_trips ~fast:false);
        Alcotest.test_case "hostile corpus trips budgets (fast)" `Quick
          (test_hostile_corpus_trips ~fast:true);
        Alcotest.test_case "expired deadline preempts" `Quick test_expired_deadline_preempts;
        Alcotest.test_case "resource codes round-trip" `Quick test_stack_overflow_mapped;
      ] );
  ]
