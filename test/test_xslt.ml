(* Tests for the XSLT-lite engine: patterns, instructions, conflict
   resolution, built-in rules, and the output-stream splitter written as
   an actual XSLT program. *)

module N = Xml_base.Node
module S = Xml_base.Serialize

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let xsl body =
  Printf.sprintf
    "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">%s</xsl:stylesheet>"
    body

let transform stylesheet source =
  let sheet = Xslt.compile_string (xsl stylesheet) in
  let doc = Xml_base.Parser.parse_string source in
  String.concat "" (List.map S.to_string (Xslt.apply sheet doc))

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let test_identityish () =
  let out =
    transform
      "<xsl:template match=\"/\"><out><xsl:apply-templates/></out></xsl:template>\
       <xsl:template match=\"b\"><bee/></xsl:template>"
      "<a><b/><c>text</c><b/></a>"
  in
  (* a has no rule: built-in recurses; c has no rule: recurses to text. *)
  check string_t "dispatch" "<out><bee/>text<bee/></out>" out

let test_value_of_and_text () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:value-of select=\"string(doc/name)\"/>\
       <xsl:text>!</xsl:text></r></xsl:template>"
      "<doc><name>world</name></doc>"
  in
  check string_t "value-of" "<r>world!</r>" out

let test_for_each_and_position () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:for-each select=\"doc/item\">\
       <i n=\"{position()}\"><xsl:value-of select=\"string(.)\"/></i>\
       </xsl:for-each></r></xsl:template>"
      "<doc><item>a</item><item>b</item></doc>"
  in
  check string_t "for-each" "<r><i n=\"1\">a</i><i n=\"2\">b</i></r>" out

let test_if_choose () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:for-each select=\"doc/n\">\
       <xsl:if test=\"number(.) gt 2\"><big/></xsl:if>\
       <xsl:choose><xsl:when test=\"number(.) eq 1\"><one/></xsl:when>\
       <xsl:when test=\"number(.) eq 2\"><two/></xsl:when>\
       <xsl:otherwise><many/></xsl:otherwise></xsl:choose>\
       </xsl:for-each></r></xsl:template>"
      "<doc><n>1</n><n>2</n><n>3</n></doc>"
  in
  check string_t "if/choose" "<r><one/><two/><big/><many/></r>" out

let test_copy_of () =
  let out =
    transform
      "<xsl:template match=\"/\"><kept><xsl:copy-of select=\"doc/keep\"/></kept></xsl:template>"
      "<doc><keep a=\"1\"><deep/></keep><drop/></doc>"
  in
  check string_t "copy-of deep copies" "<kept><keep a=\"1\"><deep/></keep></kept>" out

let test_copy_shallow () =
  let out =
    transform
      "<xsl:template match=\"/\"><xsl:apply-templates/></xsl:template>\
       <xsl:template match=\"*\"><xsl:copy><xsl:apply-templates/></xsl:copy></xsl:template>"
      "<a x=\"dropped\"><b><c>t</c></b></a>"
  in
  (* Shallow copy: element names survive, attributes do not (XSLT's
     xsl:copy semantics). *)
  check string_t "recursive identity minus attrs" "<a><b><c>t</c></b></a>" out

let test_element_attribute_constructors () =
  let out =
    transform
      "<xsl:template match=\"/\"><xsl:element name=\"{concat('a','b')}\">\
       <xsl:attribute name=\"k\"><xsl:text>v1</xsl:text></xsl:attribute>\
       body</xsl:element></xsl:template>"
      "<x/>"
  in
  check string_t "computed element + attribute" "<ab k=\"v1\">body</ab>" out

let test_sort () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:for-each select=\"doc/n\">\
       <xsl:sort select=\"string(.)\" order=\"descending\"/>\
       <i><xsl:value-of select=\"string(.)\"/></i></xsl:for-each></r></xsl:template>"
      "<doc><n>b</n><n>c</n><n>a</n></doc>"
  in
  check string_t "string sort desc" "<r><i>c</i><i>b</i><i>a</i></r>" out;
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:for-each select=\"doc/n\">\
       <xsl:sort select=\"string(.)\" data-type=\"number\"/>\
       <i><xsl:value-of select=\"string(.)\"/></i></xsl:for-each></r></xsl:template>"
      "<doc><n>10</n><n>9</n><n>100</n></doc>"
  in
  check string_t "numeric sort" "<r><i>9</i><i>10</i><i>100</i></r>" out;
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:apply-templates select=\"doc/n\">\
       <xsl:sort select=\"string(.)\"/></xsl:apply-templates></r></xsl:template>\
       <xsl:template match=\"n\"><k><xsl:value-of select=\"string(.)\"/></k></xsl:template>"
      "<doc><n>b</n><n>a</n></doc>"
  in
  check string_t "sorted apply-templates" "<r><k>a</k><k>b</k></r>" out

let test_variables () =
  let out =
    transform
      "<xsl:template match=\"/\">\
       <xsl:variable name=\"total\" select=\"sum(doc/n)\"/>\
       <r t=\"{$total}\"><xsl:value-of select=\"string($total * 2)\"/></r></xsl:template>"
      "<doc><n>1</n><n>2</n><n>3</n></doc>"
  in
  check string_t "variable" "<r t=\"6\">12</r>" out

let test_avt_escapes () =
  let out =
    transform
      "<xsl:template match=\"/\"><r v=\"{{literal}} {1+1}\"/></xsl:template>"
      "<x/>"
  in
  check string_t "avt braces" "<r v=\"{literal} 2\"/>" out

(* ------------------------------------------------------------------ *)
(* Patterns and conflicts                                              *)
(* ------------------------------------------------------------------ *)

let test_pattern_specificity () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:apply-templates select=\"//leaf\"/></r></xsl:template>\
       <xsl:template match=\"*\"><any/></xsl:template>\
       <xsl:template match=\"leaf\"><named/></xsl:template>\
       <xsl:template match=\"special/leaf\"><qualified/></xsl:template>"
      "<doc><leaf/><special><leaf/></special></doc>"
  in
  (* name beats *, parent-qualified beats name. *)
  check string_t "priorities" "<r><named/><qualified/></r>" out

let test_later_template_wins_ties () =
  let out =
    transform
      "<xsl:template match=\"/\"><xsl:apply-templates/></xsl:template>\
       <xsl:template match=\"a\"><first/></xsl:template>\
       <xsl:template match=\"a\"><second/></xsl:template>"
      "<a/>"
  in
  check string_t "document order tie-break" "<second/>" out

let test_explicit_priority () =
  let out =
    transform
      "<xsl:template match=\"/\"><xsl:apply-templates/></xsl:template>\
       <xsl:template match=\"a\" priority=\"10\"><strong/></xsl:template>\
       <xsl:template match=\"a\"><weak/></xsl:template>"
      "<a/>"
  in
  check string_t "explicit priority" "<strong/>" out

let test_anchored_patterns () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:apply-templates select=\"//a\"/></r></xsl:template>\
       <xsl:template match=\"/doc/a\"><top/></xsl:template>\
       <xsl:template match=\"a\"><nested/></xsl:template>"
      "<doc><a/><inner><a/></inner></doc>"
  in
  check string_t "anchored" "<r><top/><nested/></r>" out

let test_text_pattern () =
  let out =
    transform
      "<xsl:template match=\"/\"><r><xsl:apply-templates/></r></xsl:template>\
       <xsl:template match=\"text()\"><t/></xsl:template>"
      "<doc>one<k>two</k></doc>"
  in
  check string_t "text() pattern" "<r><t/><t/></r>" out

let test_errors () =
  let fails body =
    match Xslt.compile_string (xsl body) with
    | exception Xslt.Error _ -> true
    | sheet -> (
      match Xslt.apply sheet (Xml_base.Parser.parse_string "<x/>") with
      | exception Xslt.Error _ -> true
      | _ -> false)
  in
  check bool_t "template without match" true (fails "<xsl:template><a/></xsl:template>");
  check bool_t "value-of without select" true
    (fails "<xsl:template match=\"/\"><xsl:value-of/></xsl:template>");
  check bool_t "unknown instruction" true
    (fails "<xsl:template match=\"/\"><xsl:frobnicate/></xsl:template>");
  check bool_t "bad expression" true
    (fails "<xsl:template match=\"/\"><xsl:value-of select=\"1 +\"/></xsl:template>");
  check bool_t "non-template child" true (fails "<zorp/>")

(* ------------------------------------------------------------------ *)
(* The output-stream splitter, in XSLT                                 *)
(* ------------------------------------------------------------------ *)

let test_stream_split_equivalence () =
  let model = Awb.Samples.banking_model () in
  let template =
    Xml_base.Parser.strip_whitespace
      (Xml_base.Parser.parse_string
         "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for>\
          <marker-table name=\"LOST\" rows=\"start type(Server)\" cols=\"start type(Program)\" \
          rel=\"runs\"/></document>")
  in
  let wrapped, _ = Docgen.generate_with_streams ~engine:`Functional model ~template in
  let direct = Docgen.Streams.split wrapped in
  let via_xslt = Docgen.Streams.split_via_xslt wrapped in
  check string_t "same document"
    (S.to_string direct.Docgen.Streams.document)
    (S.to_string via_xslt.Docgen.Streams.document);
  check (Alcotest.list string_t) "same problems" direct.Docgen.Streams.problems
    via_xslt.Docgen.Streams.problems;
  check bool_t "problems include the unused marker" true
    (List.exists
       (fun p -> Astring.String.is_infix ~affix:"LOST" p)
       via_xslt.Docgen.Streams.problems)

let test_stream_split_empty_problems () =
  let wrapped =
    Docgen.Spec.wrap_streams ~document:(N.element "d") ~problems:[]
  in
  let via_xslt = Docgen.Streams.split_via_xslt wrapped in
  check int_t "no problems" 0 (List.length via_xslt.Docgen.Streams.problems)

let suite =
  [
    ( "xslt.instructions",
      [
        Alcotest.test_case "dispatch and built-ins" `Quick test_identityish;
        Alcotest.test_case "value-of / text" `Quick test_value_of_and_text;
        Alcotest.test_case "for-each / position" `Quick test_for_each_and_position;
        Alcotest.test_case "if / choose" `Quick test_if_choose;
        Alcotest.test_case "copy-of" `Quick test_copy_of;
        Alcotest.test_case "copy" `Quick test_copy_shallow;
        Alcotest.test_case "element / attribute" `Quick test_element_attribute_constructors;
        Alcotest.test_case "variables" `Quick test_variables;
        Alcotest.test_case "xsl:sort" `Quick test_sort;
        Alcotest.test_case "avt escapes" `Quick test_avt_escapes;
      ] );
    ( "xslt.patterns",
      [
        Alcotest.test_case "specificity" `Quick test_pattern_specificity;
        Alcotest.test_case "later template wins" `Quick test_later_template_wins_ties;
        Alcotest.test_case "explicit priority" `Quick test_explicit_priority;
        Alcotest.test_case "anchored" `Quick test_anchored_patterns;
        Alcotest.test_case "text()" `Quick test_text_pattern;
        Alcotest.test_case "errors" `Quick test_errors;
      ] );
    ( "xslt.stream-splitter",
      [
        Alcotest.test_case "agrees with the direct splitter" `Quick
          test_stream_split_equivalence;
        Alcotest.test_case "empty problems" `Quick test_stream_split_empty_problems;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The copy-of identity stylesheet reproduces any tree exactly. *)
let identity_sheet =
  Xslt.compile_string
    (xsl "<xsl:template match=\"/\"><xsl:copy-of select=\"*\"/></xsl:template>")

(* Reuse a small random-tree generator (attribute-free text content kept
   simple so serialization comparison is exact). *)
let gen_tree =
  let open QCheck.Gen in
  let name_g = oneofl [ "a"; "b"; "cee"; "dd" ] in
  let text_g = oneofl [ "hi"; "x y"; "z" ] in
  let rec tree depth =
    if depth = 0 then map N.text text_g
    else
      frequency
        [
          (2, map N.text text_g);
          ( 3,
            let* tag = name_g in
            let* nattrs = int_bound 2 in
            let* attrs =
              flatten_l
                (List.init nattrs (fun i ->
                     let* v = text_g in
                     return (N.attribute (Printf.sprintf "k%d" i) v)))
            in
            let* nkids = int_bound 3 in
            let* kids = flatten_l (List.init nkids (fun _ -> tree (depth - 1))) in
            return (N.element tag ~attrs ~children:kids) );
        ]
  in
  let root =
    let* tag = name_g in
    let* nkids = int_bound 3 in
    let* kids = flatten_l (List.init nkids (fun _ -> tree 3)) in
    return (N.element tag ~children:kids)
  in
  QCheck.make root ~print:S.to_string

let prop_copy_of_identity =
  QCheck.Test.make ~name:"copy-of is the identity" ~count:100 gen_tree (fun t ->
      let doc = N.document [ N.copy t ] in
      match List.filter N.is_element (Xslt.apply identity_sheet doc) with
      | [ out ] -> S.to_string out = S.to_string t
      | _ -> false)

(* The recursive shallow-copy stylesheet preserves everything except
   attributes (xsl:copy semantics). *)
let shallow_sheet =
  Xslt.compile_string
    (xsl
       "<xsl:template match=\"/\"><xsl:apply-templates/></xsl:template>\
        <xsl:template match=\"*\"><xsl:copy><xsl:apply-templates/></xsl:copy></xsl:template>")

let rec strip_attrs t =
  match N.kind t with
  | N.Element -> N.element (N.name t) ~children:(List.map strip_attrs (N.children t))
  | _ -> N.copy t

let prop_shallow_copy_strips_attrs =
  QCheck.Test.make ~name:"xsl:copy identity minus attributes" ~count:100 gen_tree
    (fun t ->
      let doc = N.document [ N.copy t ] in
      match List.filter N.is_element (Xslt.apply shallow_sheet doc) with
      | [ out ] -> S.to_string out = S.to_string (strip_attrs t)
      | _ -> false)

let suite =
  suite
  @ [
      ( "xslt.properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_copy_of_identity; prop_shallow_copy_strips_attrs ] );
    ]
