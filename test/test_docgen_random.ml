(* Randomized cross-engine oracle: generate random (valid) templates and
   require the functional and host engines to produce identical documents
   and identical problem streams, across both query backends. This is the
   repository's strongest guarantee that the two architectures the paper
   contrasts really are behaviour-equivalent. *)

module N = Xml_base.Node
module S = Xml_base.Serialize
module Spec = Docgen.Spec

let banking = Awb.Samples.banking_model ()
let glass = Awb.Samples.glass_model ()

(* Query pools: all valid for the respective model. *)
let banking_queries =
  [
    "start type(User); sort-by label";
    "start type(Document)";
    "start type(Server); sort-by prop(cpuCount) desc";
    "start type(Person); filter has-prop(superuser)";
    "start type(User); follow likes; distinct";
    "start all; filter type(DataStore); sort-by label";
    "start type(System); follow has; distinct; sort-by label; limit 3";
  ]

let banking_focus_queries =
  [
    "start focus; follow uses";
    "start focus; follow likes; sort-by label";
    "start focus; follow has to(Document)";
  ]

let banking_props = [ "name"; "firstName"; "lastName"; "superuser"; "version"; "cpuCount" ]
let banking_types = [ "User"; "Document"; "Server"; "Person"; "DataStore" ]

(* Generator for template trees. [has_focus] tracks whether a <for> or
   <with-single> encloses us, so focus-requiring directives stay valid. *)
let gen_template : N.t QCheck.arbitrary =
  let open QCheck.Gen in
  (* Build nodes at sample time, never eagerly: a node value captured in a
     [return] would be shared across samples and attached to several
     parents. *)
  let fresh f = map f (return ()) in
  let text_g = oneofl [ "lorem "; "ipsum"; " dolor - sit"; "T1-GOES-HERE maybe" ] in
  let html_tag = oneofl [ "p"; "div"; "span"; "li" ] in
  let rec body ~has_focus depth =
    if depth = 0 then map N.text text_g
    else
      let sub = body ~has_focus (depth - 1) in
      let focus_only =
        if has_focus then
          [
            (2, fresh (fun () -> N.element "label"));
            ( 2,
              let* p = oneofl banking_props in
              return (N.element "property" ~attrs:[ N.attribute "name" p ]) );
            ( 1,
              let* q = oneofl banking_focus_queries in
              return (N.element "value-of" ~attrs:[ N.attribute "query" q ]) );
            ( 1,
              let* p = oneofl banking_props in
              let* then_kids = list_size (int_range 1 2) sub in
              let* else_kids = list_size (int_bound 2) sub in
              return
                (N.element "if"
                   ~children:
                     ([
                        N.element "test"
                          ~children:
                            [ N.element "has-prop" ~attrs:[ N.attribute "name" p ] ];
                        N.element "then" ~children:then_kids;
                      ]
                     @
                     if else_kids = [] then []
                     else [ N.element "else" ~children:else_kids ])) );
            ( 1,
              let* ty = oneofl banking_types in
              let* then_kids = list_size (int_range 1 2) sub in
              return
                (N.element "if"
                   ~children:
                     [
                       N.element "test"
                         ~children:
                           [ N.element "focus-is-type" ~attrs:[ N.attribute "type" ty ] ];
                       N.element "then" ~children:then_kids;
                     ]) );
          ]
        else []
      in
      frequency
        ([
           (3, map N.text text_g);
           ( 3,
             let* tag = html_tag in
             let* kids = list_size (int_bound 3) sub in
             return (N.element tag ~children:kids) );
           ( 2,
             let* q = oneofl banking_queries in
             let* kids = list_size (int_range 1 3) (body ~has_focus:true (depth - 1)) in
             return (N.element "for" ~attrs:[ N.attribute "nodes" q ] ~children:kids) );
           ( 1,
             let* heading_kids = list_size (int_range 1 2) sub in
             let* kids = list_size (int_bound 3) sub in
             return
               (N.element "section"
                  ~children:(N.element "heading" ~children:heading_kids :: kids)) );
           ( 1,
             let* q = oneofl banking_queries in
             return (N.element "count-of" ~attrs:[ N.attribute "query" q ]) );
           ( 1,
             let* q = oneofl banking_queries in
             return (N.element "value-of" ~attrs:[ N.attribute "query" q ]) );
           (1, fresh (fun () -> N.element "table-of-contents"));
           ( 1,
             let* tys = oneofl [ "User"; "Document"; "User Document"; "Server" ] in
             return (N.element "table-of-omissions" ~attrs:[ N.attribute "types" tys ]) );
           ( 1,
             let* rows = oneofl banking_queries in
             let* cols = oneofl banking_queries in
             let* rel = oneofl [ "has"; "uses"; "runs"; "likes" ] in
             return
               (N.element "grid-table"
                  ~attrs:
                    [
                      N.attribute "rows" rows;
                      N.attribute "cols" cols;
                      N.attribute "rel" rel;
                    ]) );
           ( 1,
             let* rows = oneofl banking_queries in
             let* rel = oneofl [ "has"; "uses" ] in
             return
               (N.element "marker-table"
                  ~attrs:
                    [
                      N.attribute "name" "T1";
                      N.attribute "rows" rows;
                      N.attribute "cols" "start type(Server)";
                      N.attribute "rel" rel;
                    ]) );
           ( 1,
             let* kids = list_size (int_range 1 2) (body ~has_focus:true (depth - 1)) in
             return
               (N.element "with-single"
                  ~attrs:[ N.attribute "type" "SystemBeingDesigned" ]
                  ~children:kids) );
         ]
        @ focus_only)
  in
  let root =
    let* kids = list_size (int_range 1 5) (body ~has_focus:false 3) in
    return (N.element "document" ~children:kids)
  in
  QCheck.make root ~print:S.to_string

let engines_agree backend template =
  let rf = Docgen.generate ~engine:`Functional ~backend banking ~template in
  let rh = Docgen.generate ~engine:`Host ~backend banking ~template in
  S.to_string rf.Spec.document = S.to_string rh.Spec.document
  && rf.Spec.problems = rh.Spec.problems

let prop_engines_agree_native =
  QCheck.Test.make ~name:"random templates: engines agree (native queries)" ~count:60
    gen_template (engines_agree Spec.Native_queries)

let prop_engines_agree_xquery =
  QCheck.Test.make ~name:"random templates: engines agree (xquery queries)" ~count:15
    gen_template (engines_agree Spec.Xquery_queries)

let prop_streams_roundtrip =
  QCheck.Test.make ~name:"random templates: stream split is faithful" ~count:30
    gen_template (fun template ->
      let wrapped, _ = Docgen.generate_with_streams ~engine:`Functional banking ~template in
      let direct = Docgen.Streams.split wrapped in
      let xslt = Docgen.Streams.split_via_xslt wrapped in
      S.to_string direct.Docgen.Streams.document = S.to_string xslt.Docgen.Streams.document
      && direct.Docgen.Streams.problems = xslt.Docgen.Streams.problems)

let prop_deterministic =
  QCheck.Test.make ~name:"generation is deterministic" ~count:25 gen_template
    (fun template ->
      let a = Docgen.generate ~engine:`Host banking ~template in
      let b = Docgen.generate ~engine:`Host banking ~template in
      S.to_string a.Spec.document = S.to_string b.Spec.document)

(* Glass-model smoke property with a fixed template over random models is
   covered elsewhere; here, ensure the generator's templates never crash
   the engines on a different metamodel (queries may return nothing, and
   with-single errors are reported, not raised). *)
let prop_total_on_glass =
  QCheck.Test.make ~name:"random templates: total on the glass model" ~count:25
    gen_template (fun template ->
      let rf = Docgen.generate ~engine:`Functional glass ~template in
      let rh = Docgen.generate ~engine:`Host glass ~template in
      S.to_string rf.Spec.document = S.to_string rh.Spec.document)

let suite =
  [
    ( "docgen.random-oracle",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_engines_agree_native;
          prop_engines_agree_xquery;
          prop_streams_roundtrip;
          prop_deterministic;
          prop_total_on_glass;
        ] );
  ]
