(* The compiled plan executor: the unified Exec_opts API, resource
   governance charged inside plan operators (not just between them),
   data-parallel loop fragments, and the service layer's plan cache and
   counters.

   Result identity against the seed algorithms is covered by the
   four-way randomized oracle in test_eval_perf; this file covers the
   properties the oracle can't see — budgets tripping mid-plan, parallel
   determinism, and accounting. *)

module E = Xquery.Engine
module V = Xquery.Value
module N = Xml_base.Node

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let plan_opts ?limits ?context_item ?pool () =
  E.Exec_opts.make ~mode:E.Exec_opts.Plan ?limits ?context_item ?pool ()

let run_plan ?limits ?context_item ?pool q =
  E.run ~opts:(plan_opts ?limits ?context_item ?pool ()) (E.compile q)

let display ?limits ?context_item ?pool q =
  V.to_display_string (run_plan ?limits ?context_item ?pool q)

(* ------------------------------------------------------------------ *)
(* Exec_opts                                                           *)
(* ------------------------------------------------------------------ *)

let test_exec_opts_defaults () =
  let d = E.Exec_opts.default in
  check bool_t "default mode is Fast" true (d.E.Exec_opts.mode = E.Exec_opts.Fast);
  check bool_t "no limits" true (d.E.Exec_opts.limits = None);
  check bool_t "full level" true (d.E.Exec_opts.level = E.Exec_opts.Full);
  check bool_t "no pool" true (d.E.Exec_opts.pool = None);
  check string_t "mode names round-trip" "plan"
    (E.Exec_opts.mode_name E.Exec_opts.Plan);
  (match E.Exec_opts.mode_of_string "seed" with
  | Ok E.Exec_opts.Seed -> ()
  | _ -> Alcotest.fail "mode_of_string seed");
  match E.Exec_opts.mode_of_string "turbo" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mode accepted"

let test_run_modes_agree () =
  let q = "for $x in 1 to 5 return $x * $x" in
  let c = E.compile q in
  let run mode = V.to_display_string (E.run ~opts:(E.Exec_opts.make ~mode ()) c) in
  check string_t "seed = fast" (run E.Exec_opts.Seed) (run E.Exec_opts.Fast);
  check string_t "seed = plan" (run E.Exec_opts.Seed) (run E.Exec_opts.Plan)

let test_plan_memoized () =
  let c = E.compile "1 + 1" in
  check bool_t "no plan before first use" false (E.plan_cached c);
  ignore (E.run ~opts:(plan_opts ()) c);
  check bool_t "plan memoized after a run" true (E.plan_cached c);
  ignore (E.plan_of c);
  check bool_t "still cached" true (E.plan_cached c)

let test_explain_renders_plan () =
  let c = E.compile "/doc/a/b" in
  let text = E.explain c ~mode:E.Exec_opts.Plan in
  check bool_t "mentions the pipeline" true
    (Astring.String.is_infix ~affix:"child::a" text);
  check bool_t "mentions the rewriter stats" true
    (Astring.String.is_infix ~affix:"plan rewriter" text)

(* ------------------------------------------------------------------ *)
(* Budgets charge inside plan operators                                *)
(* ------------------------------------------------------------------ *)

let expect_trip resource ?limits q =
  match run_plan ?limits q with
  | _ -> Alcotest.failf "%s: expected a %s trip" q (Xquery.Errors.resource_code resource)
  | exception Xquery.Errors.Resource_exhausted { resource = r; _ } ->
    check string_t q
      (Xquery.Errors.resource_code resource)
      (Xquery.Errors.resource_code r)

let test_fuel_trips_in_plan_loop () =
  (* The tight for-loop must tick per iteration: a million-iteration loop
     under a 10k-step budget dies mid-loop, not after materializing. *)
  expect_trip Xquery.Errors.Fuel
    ~limits:(Xquery.Context.make_limits ~fuel:10_000 ())
    "for $i in 1 to 1000000 return $i"

let test_fuel_trips_in_range () =
  expect_trip Xquery.Errors.Fuel
    ~limits:(Xquery.Context.make_limits ~fuel:10_000 ())
    "count(1 to 10000000)"

let test_fuel_trips_in_step_pipeline () =
  (* Path steps tick per candidate node inside the fused pipeline. *)
  let kids = List.init 2000 (fun _ -> N.element ~children:[ N.element "b" ] "a") in
  let doc = N.document [ N.element ~children:kids "root" ] in
  match
    E.run
      ~opts:
        (plan_opts
           ~limits:(Xquery.Context.make_limits ~fuel:500 ())
           ~context_item:(V.Node doc) ())
      (E.compile "count(//a/b)")
  with
  | _ -> Alcotest.fail "expected a fuel trip inside the step pipeline"
  | exception Xquery.Errors.Resource_exhausted { resource = Xquery.Errors.Fuel; _ } -> ()

let test_deadline_trips_in_plan () =
  expect_trip Xquery.Errors.Deadline
    ~limits:(Xquery.Context.make_limits ~deadline_ns:(Clock.now_ns () - 1) ())
    "for $i in 1 to 1000000 return $i"

let test_depth_trips_in_plan_calls () =
  expect_trip Xquery.Errors.Depth
    ~limits:(Xquery.Context.make_limits ~max_depth:64 ())
    "declare function local:f($n) { local:f($n + 1) }; local:f(1)"

let test_nodes_trip_in_plan_construction () =
  (* The node budget charges copied {e content} (an empty <x/> is free,
     in every mode); give each constructed element a child. *)
  expect_trip Xquery.Errors.Nodes
    ~limits:(Xquery.Context.make_limits ~max_nodes:100 ())
    "for $i in 1 to 100000 return <x><y/></x>"

let test_untripped_budgets_change_nothing () =
  let q = "for $i in 1 to 100 return $i * 2" in
  let generous =
    Xquery.Context.make_limits ~fuel:100_000_000 ~max_depth:100_000
      ~max_nodes:100_000_000 ()
  in
  check string_t "generous budgets are invisible" (display q) (display ~limits:generous q)

(* ------------------------------------------------------------------ *)
(* Data-parallel loop fragments                                        *)
(* ------------------------------------------------------------------ *)

(* A pool that actually crosses domains: four workers race over the task
   array. The executor must produce output identical to the sequential
   run no matter how the chunks interleave. *)
let domain_pool ?(workers = 4) () =
  fun (tasks : (unit -> unit) array) ->
    let n = Array.length tasks in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        tasks.(i) ();
        work ()
      end
    in
    let doms = List.init (workers - 1) (fun _ -> Domain.spawn work) in
    work ();
    List.iter Domain.join doms

let test_parallel_fragment_determinism () =
  (* Big enough to cross the parallel threshold; the body is pure
     arithmetic, so the loop is parallel-safe. *)
  let q = "for $i in 1 to 5000 return $i * 7 - 3" in
  let sequential = display q in
  for _ = 1 to 5 do
    check string_t "parallel run = sequential run" sequential
      (display ~pool:(domain_pool ()) q)
  done

let test_parallel_fragment_nodes () =
  (* Node results from worker domains concatenate in loop order. *)
  let kids = List.init 1000 (fun i -> N.element ~children:[ N.text (string_of_int i) ] "a") in
  let doc = N.document [ N.element ~children:kids "root" ] in
  let ctx = V.Node doc in
  let q = "for $x in //a return $x" in
  check string_t "node order preserved across domains"
    (V.to_display_string (run_plan ~context_item:ctx q))
    (V.to_display_string (run_plan ~context_item:ctx ~pool:(domain_pool ()) q))

let test_parallel_fragment_error_determinism () =
  (* Whichever chunk fails first in loop order must win: the same error
     a sequential run reports, every time. *)
  let q = "for $i in 1 to 2000 return if ($i = 1500) then 1 div 0 else $i" in
  let show f = try ignore (f ()); "no error" with e -> Printexc.to_string e in
  let sequential = show (fun () -> run_plan q) in
  for _ = 1 to 5 do
    check string_t "same error as sequential" sequential
      (show (fun () -> run_plan ~pool:(domain_pool ()) q))
  done

let test_parallel_respects_finite_budgets () =
  (* A finite fuel budget pins the loop to the sequential path (shared
     mutable budget accounting doesn't cross domains), and the budget
     still trips. *)
  match
    run_plan
      ~limits:(Xquery.Context.make_limits ~fuel:1_000 ())
      ~pool:(domain_pool ()) "for $i in 1 to 5000 return $i"
  with
  | _ -> Alcotest.fail "expected a fuel trip"
  | exception Xquery.Errors.Resource_exhausted { resource = Xquery.Errors.Fuel; _ } -> ()

(* ------------------------------------------------------------------ *)
(* The service layer: plan cache, counters, run_query, stylesheets     *)
(* ------------------------------------------------------------------ *)

let plan_svc ?(domains = 1) () =
  Service.create
    ~config:
      { Service.default_config with Service.domains; mode = E.Exec_opts.Plan }
    ()

let test_service_plan_counters () =
  let t = plan_svc () in
  (match Service.run_query t "1 + 1" with
  | Ok v -> check string_t "result" "2" (V.to_display_string v)
  | Error e -> Alcotest.failf "run_query failed: %s" (Service.error_to_string e));
  (match Service.run_query t "1 + 1" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "second run failed: %s" (Service.error_to_string e));
  let c = Service.counters t in
  check int_t "one plan compile" 1 c.Service.plan_compiles;
  check int_t "one plan-cache hit" 1 c.Service.plan_hits;
  check int_t "two plan runs" 2 c.Service.plan_execs;
  check int_t "one query-cache miss" 1 c.Service.query_misses;
  check int_t "one query-cache hit" 1 c.Service.query_hits;
  check int_t "both requests succeeded" 2 c.Service.succeeded

let test_service_run_query_budget () =
  let t =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.mode = E.Exec_opts.Plan;
          fuel = Some 1_000;
        }
      ()
  in
  match Service.run_query t "for $i in 1 to 1000000 return $i" with
  | Ok _ -> Alcotest.fail "expected a budget trip through run_query"
  | Error (Service.Resource_exhausted { resource = Xquery.Errors.Fuel; _ }) ->
    let c = Service.counters t in
    check int_t "counted as a resource failure" 1 c.Service.resource_failures
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)

let test_service_run_query_bad_query () =
  let t = plan_svc () in
  match Service.run_query t "1 +" with
  | Ok _ -> Alcotest.fail "parse error expected"
  | Error (Service.Generation_failed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)

let test_service_parallel_fragments_counter () =
  let t = plan_svc ~domains:4 () in
  (match Service.run_query t "for $i in 1 to 5000 return $i * 2" with
  | Ok v -> check int_t "all items" 5000 (List.length v)
  | Error e -> Alcotest.failf "run_query failed: %s" (Service.error_to_string e));
  let c = Service.counters t in
  check bool_t "at least one parallel fragment" true (c.Service.plan_parallel_fragments >= 1)

let test_service_stylesheet_cache () =
  let t = plan_svc () in
  let xsl =
    "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">\
     <xsl:template match=\"/\"><out><xsl:apply-templates/></out></xsl:template>\
     <xsl:template match=\"b\"><bee/></xsl:template></xsl:stylesheet>"
  in
  let doc = Xml_base.Parser.parse_string "<a><b/><b/></a>" in
  let apply () =
    match Service.apply_stylesheet t ~stylesheet_xml:xsl doc with
    | Ok nodes -> String.concat "" (List.map Xml_base.Serialize.to_string nodes)
    | Error e -> Alcotest.failf "apply failed: %s" (Service.error_to_string e)
  in
  check string_t "transform output" "<out><bee/><bee/></out>" (apply ());
  check string_t "second application" "<out><bee/><bee/></out>" (apply ());
  let c = Service.counters t in
  check int_t "one stylesheet miss" 1 c.Service.stylesheet_misses;
  check int_t "one stylesheet hit" 1 c.Service.stylesheet_hits;
  match Service.compile_stylesheet t "<not-a-stylesheet/>" with
  | Error (Service.Template_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "bad stylesheet accepted"

let suite =
  [
    ( "plan.exec-opts",
      [
        Alcotest.test_case "defaults and mode parsing" `Quick test_exec_opts_defaults;
        Alcotest.test_case "three modes, one answer" `Quick test_run_modes_agree;
        Alcotest.test_case "plan is memoized on the compiled record" `Quick
          test_plan_memoized;
        Alcotest.test_case "explain renders the plan" `Quick test_explain_renders_plan;
      ] );
    ( "plan.budgets",
      [
        Alcotest.test_case "fuel trips inside the tight loop" `Quick
          test_fuel_trips_in_plan_loop;
        Alcotest.test_case "fuel trips inside a range" `Quick test_fuel_trips_in_range;
        Alcotest.test_case "fuel trips inside a fused step pipeline" `Quick
          test_fuel_trips_in_step_pipeline;
        Alcotest.test_case "expired deadline preempts the loop" `Quick
          test_deadline_trips_in_plan;
        Alcotest.test_case "recursion depth trips in plan calls" `Quick
          test_depth_trips_in_plan_calls;
        Alcotest.test_case "node budget trips in plan construction" `Quick
          test_nodes_trip_in_plan_construction;
        Alcotest.test_case "untripped budgets change nothing" `Quick
          test_untripped_budgets_change_nothing;
      ] );
    ( "plan.parallel",
      [
        Alcotest.test_case "4-domain fragments = sequential output" `Quick
          test_parallel_fragment_determinism;
        Alcotest.test_case "node order survives the fan-out" `Quick
          test_parallel_fragment_nodes;
        Alcotest.test_case "first error in loop order wins" `Quick
          test_parallel_fragment_error_determinism;
        Alcotest.test_case "finite budgets force the sequential path" `Quick
          test_parallel_respects_finite_budgets;
      ] );
    ( "plan.service",
      [
        Alcotest.test_case "plan cache counters" `Quick test_service_plan_counters;
        Alcotest.test_case "run_query maps budget trips" `Quick
          test_service_run_query_budget;
        Alcotest.test_case "run_query maps parse errors" `Quick
          test_service_run_query_bad_query;
        Alcotest.test_case "parallel fragments counted" `Quick
          test_service_parallel_fragments_counter;
        Alcotest.test_case "stylesheet cache and errors" `Quick
          test_service_stylesheet_cache;
      ] );
  ]
