(* The HTTP front end: parser hostility, admission-control units (token
   bucket, bounded queue), the Prometheus expositions, and loopback
   end-to-end coverage of the overload and lifecycle paths — shed 503s,
   rate-limit and quarantine 429s, deadline 504s, graceful drain (flush
   queued, finish in-flight, flip /readyz), SIGTERM, and a supervisor
   restart after an injected worker crash. *)

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let users_tpl =
  "<document><ol><for nodes=\"start type(User); sort-by label\"><li><label/></li></for></ol>\
   </document>"

let failing_tpl =
  "<document><for nodes=\"start type(Document); sort-by label\">\
   <p><required-property name=\"version\"/></p></for></document>"

(* Generation would run for hours unpreempted; with a deadline it is a
   request of a controllable duration. *)
let runaway_tpl =
  let rec go n =
    if n = 0 then "<p><label/></p>"
    else "<for nodes=\"start type(User); sort-by label\">" ^ go (n - 1) ^ "</for>"
  in
  "<document>" ^ go 12 ^ "</document>"

(* ------------------------------------------------------------------ *)
(* A tiny HTTP client (blocking, one request per connection)           *)
(* ------------------------------------------------------------------ *)

type reply = { status : int; rheaders : (string * string) list; rbody : string }

(* status 0 = the server closed the connection without answering (the
   worker-crash path). *)
let parse_reply raw =
  if raw = "" then { status = 0; rheaders = []; rbody = "" }
  else
    match Astring.String.cut ~sep:"\r\n\r\n" raw with
    | None -> Alcotest.failf "unterminated response head: %S" raw
    | Some (head, body) -> (
      match String.split_on_char '\r' head |> List.map (fun l -> Astring.String.trim l) with
      | status_line :: header_lines ->
        let status =
          try int_of_string (String.sub status_line 9 3)
          with _ -> Alcotest.failf "bad status line: %S" status_line
        in
        let rheaders =
          List.filter_map
            (fun l ->
              match Astring.String.cut ~sep:":" l with
              | Some (k, v) ->
                Some (String.lowercase_ascii (String.trim k), String.trim v)
              | None -> None)
            header_lines
        in
        { status; rheaders; rbody = body }
      | [] -> Alcotest.failf "empty response: %S" raw)

let request ?(headers = []) ~port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let data =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: %d\r\n\r\n%s" meth
          path
          (String.concat ""
             (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
          (String.length body) body
      in
      let bytes = Bytes.of_string data in
      let rec send off =
        if off < Bytes.length bytes then
          send (off + Unix.write fd bytes off (Bytes.length bytes - off))
      in
      send 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        end
      in
      (try recv () with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      parse_reply (Buffer.contents buf))

let rheader reply name = List.assoc_opt (String.lowercase_ascii name) reply.rheaders

(* ------------------------------------------------------------------ *)
(* Server fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let with_server ?(config = Server.default_config) ?svc_config f =
  let svc = Service.create ?config:svc_config () in
  let srv = Server.create ~config svc in
  Server.start srv;
  Fun.protect
    ~finally:(fun () -> if not (Server.stopped srv) then Server.drain srv)
    (fun () -> f srv (Server.port srv))

let in_thread f =
  let result = ref (Error (Failure "thread did not run")) in
  let th = Thread.create (fun () -> result := try Ok (f ()) with e -> Error e) () in
  (th, result)

let join_result (th, result) =
  Thread.join th;
  match !result with Ok v -> v | Error e -> raise e

(* ------------------------------------------------------------------ *)
(* HTTP parser units                                                   *)
(* ------------------------------------------------------------------ *)

(* Feed the parser through a socketpair so the test exercises the same
   recv path the server uses. [writes] lets a request arrive in several
   chunks — the header terminator split across reads is a regression
   case for the incremental scan. *)
let parse_via_socketpair writes =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let writer =
        Thread.create
          (fun () ->
            try
              List.iter
                (fun s ->
                  ignore (Unix.write_substring a s 0 (String.length s));
                  Thread.delay 0.005)
                writes;
              Unix.shutdown a Unix.SHUTDOWN_SEND
            with Unix.Unix_error _ -> ())
          ()
      in
      (* Join the writer even when the parser raises: letting the thread
         outlive the test would have it write into a recycled fd owned
         by the next test's socketpair. *)
      let req = try Ok (Server.Http.read_request b) with e -> Error e in
      Thread.join writer;
      match req with Ok r -> r | Error e -> raise e)

let test_http_parse_basics () =
  match
    parse_via_socketpair
      [ "POST /generate?engine=xq&x=a%20b HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 250\r\n\
         Content-Length: 5\r\n\r\nhello" ]
  with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
    check string_t "method" "POST" req.Server.Http.meth;
    check string_t "path" "/generate" req.Server.Http.path;
    check (Alcotest.option string_t) "query decoded" (Some "a b")
      (Server.Http.query_param req "x");
    check (Alcotest.option string_t) "engine param" (Some "xq")
      (Server.Http.query_param req "engine");
    check (Alcotest.option string_t) "header case-folded" (Some "250")
      (Server.Http.header req "X-DEADLINE-MS");
    check string_t "body" "hello" req.Server.Http.body

let test_http_parse_split_terminator () =
  (* \r\n\r\n arrives across two reads; body rides with the second. *)
  match
    parse_via_socketpair
      [ "GET /healthz HTTP/1.1\r\nHost: t\r"; "\n\r\nleftover-must-error" ]
  with
  | exception Server.Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "body bytes without Content-Length accepted"

let test_http_parse_split_clean () =
  match parse_via_socketpair [ "GET /metrics HTTP/1.1\r\nHost: t\r"; "\n\r\n" ] with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
    check string_t "path" "/metrics" req.Server.Http.path;
    check string_t "empty body" "" req.Server.Http.body

let test_http_parse_rejections () =
  let expect_bad label writes =
    match parse_via_socketpair writes with
    | exception Server.Http.Bad_request _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_bad "chunked"
    [ "POST /g HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" ];
  expect_bad "negative length" [ "POST /g HTTP/1.1\r\nContent-Length: -4\r\n\r\n" ];
  expect_bad "malformed length" [ "POST /g HTTP/1.1\r\nContent-Length: ten\r\n\r\n" ];
  (* int_of_string_opt accepts OCaml literal syntax; the HTTP grammar is
     decimal digits only, and a length an intermediary reads differently
     is a smuggling vector. *)
  expect_bad "hex length" [ "POST /g HTTP/1.1\r\nContent-Length: 0x10\r\n\r\nbody-bytes-here!" ];
  expect_bad "octal length" [ "POST /g HTTP/1.1\r\nContent-Length: 0o17\r\n\r\nbody-bytes-here" ];
  expect_bad "underscored length" [ "POST /g HTTP/1.1\r\nContent-Length: 1_6\r\n\r\nbody-bytes-here!" ];
  expect_bad "signed length" [ "POST /g HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello" ];
  expect_bad "empty length" [ "POST /g HTTP/1.1\r\nContent-Length: \r\n\r\n" ];
  expect_bad "bad request line" [ "POST/g HTTP/1.1\r\n\r\n" ];
  expect_bad "ancient version" [ "GET /g HTTP/0.9\r\n\r\n" ];
  expect_bad "oversized head"
    [ "GET /g HTTP/1.1\r\nX-Pad: " ^ String.make 10000 'a' ^ "\r\n\r\n" ];
  (* Clean EOF before any bytes is not an error — it's a client that
     connected and left. *)
  match parse_via_socketpair [] with
  | None -> ()
  | Some _ -> Alcotest.fail "empty connection produced a request"

(* The whole-request read deadline: a drip-feed client whose every recv
   lands inside the socket timeout must still be cut off once the total
   budget is spent — that is what keeps one hostile connection from
   holding a reader thread for timeout x bytes. *)
let test_http_read_deadline_cuts_drip_feed () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let writer =
        Thread.create
          (fun () ->
            try
              (* Two chunks, neither completing the head, the pause
                 between them longer than the read deadline. *)
              ignore (Unix.write_substring a "GET /healthz HTTP/1.1\r\n" 0 23);
              Thread.delay 0.25;
              ignore (Unix.write_substring a "X-Drip: 1\r\n" 0 11)
            with Unix.Unix_error _ -> ())
          ()
      in
      let deadline_ns = Clock.now_ns () + Clock.ns_of_s 0.1 in
      (match Server.Http.read_request ~deadline_ns b with
      | exception Server.Http.Timeout -> ()
      | exception e ->
        Thread.join writer;
        raise e
      | _ -> Alcotest.fail "drip-fed request outlived its read deadline");
      Thread.join writer)

(* ------------------------------------------------------------------ *)
(* Token bucket and admission queue units                              *)
(* ------------------------------------------------------------------ *)

let test_token_bucket () =
  let tb = Server.Token_bucket.create ~rate:1. ~burst:2. in
  check bool_t "burst 1" true (Server.Token_bucket.admit tb ~key:"a" ~now:0.);
  check bool_t "burst 2" true (Server.Token_bucket.admit tb ~key:"a" ~now:0.);
  check bool_t "empty" false (Server.Token_bucket.admit tb ~key:"a" ~now:0.);
  (* Another client's bucket is untouched. *)
  check bool_t "other key" true (Server.Token_bucket.admit tb ~key:"b" ~now:0.);
  (* One second refills one token — exactly one more admission. *)
  check bool_t "refilled" true (Server.Token_bucket.admit tb ~key:"a" ~now:1.);
  check bool_t "only one token" false (Server.Token_bucket.admit tb ~key:"a" ~now:1.);
  check bool_t "retry-after positive" true (Server.Token_bucket.retry_after_s tb > 0.);
  (* rate <= 0 disables limiting entirely. *)
  let off = Server.Token_bucket.create ~rate:0. ~burst:1. in
  for _ = 1 to 100 do
    check bool_t "disabled admits" true (Server.Token_bucket.admit off ~key:"a" ~now:0.)
  done

let test_token_bucket_prunes () =
  let tb = Server.Token_bucket.create ~rate:10. ~burst:1. in
  for i = 1 to 2000 do
    ignore (Server.Token_bucket.admit tb ~key:(string_of_int i) ~now:(float_of_int i))
  done;
  (* Early keys have long since refilled; the prune pass must have
     dropped them rather than retaining one bucket per address ever
     seen. *)
  check bool_t "table bounded" true (Server.Token_bucket.size tb < 2000)

let test_admission_queue () =
  let q = Server.Admission.create ~capacity:2 in
  check bool_t "push 1" true (Server.Admission.push q 1 = `Accepted);
  check bool_t "push 2" true (Server.Admission.push q 2 = `Accepted);
  check bool_t "push 3 shed" true (Server.Admission.push q 3 = `Shed);
  check int_t "depth" 2 (Server.Admission.depth q);
  check (Alcotest.option int_t) "fifo" (Some 1) (Server.Admission.pop q);
  Server.Admission.close q;
  check bool_t "push after close shed" true (Server.Admission.push q 4 = `Shed);
  (* A closed queue still drains what it holds, then signals exit. *)
  check (Alcotest.option int_t) "drains" (Some 2) (Server.Admission.pop q);
  check (Alcotest.option int_t) "closed+empty" None (Server.Admission.pop q);
  let q2 = Server.Admission.create ~capacity:4 in
  List.iter (fun i -> ignore (Server.Admission.push q2 i)) [ 1; 2; 3 ];
  check (Alcotest.list int_t) "flush oldest first" [ 1; 2; 3 ] (Server.Admission.flush q2);
  check int_t "flushed empty" 0 (Server.Admission.depth q2)

let test_admission_pop_blocks_until_push () =
  let q = Server.Admission.create ~capacity:2 in
  let popper = in_thread (fun () -> Server.Admission.pop q) in
  Thread.delay 0.02;
  ignore (Server.Admission.push q 7);
  check (Alcotest.option int_t) "blocked pop woken" (Some 7) (join_result popper)

(* ------------------------------------------------------------------ *)
(* Prometheus expositions: scrape and re-parse every line              *)
(* ------------------------------------------------------------------ *)

(* A minimal exposition-format parser: every line must be a HELP, a
   TYPE, or a sample; every sample must have been preceded by its HELP
   and TYPE; every value must parse as a float. *)
let reparse_prometheus label text =
  let helped = Hashtbl.create 16 and typed = Hashtbl.create 16 in
  let samples = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if Astring.String.is_prefix ~affix:"# HELP " line then begin
           match String.split_on_char ' ' line with
           | "#" :: "HELP" :: name :: _ :: _ -> Hashtbl.replace helped name ()
           | _ -> Alcotest.failf "%s: malformed HELP line %S" label line
         end
         else if Astring.String.is_prefix ~affix:"# TYPE " line then begin
           match String.split_on_char ' ' line with
           | [ "#"; "TYPE"; name; ("counter" | "gauge") ] -> Hashtbl.replace typed name ()
           | _ -> Alcotest.failf "%s: malformed TYPE line %S" label line
         end
         else
           match String.split_on_char ' ' line with
           | [ name; value ] ->
             if not (Hashtbl.mem helped name) then
               Alcotest.failf "%s: sample %s has no HELP" label name;
             if not (Hashtbl.mem typed name) then
               Alcotest.failf "%s: sample %s has no TYPE" label name;
             (match float_of_string_opt value with
             | Some _ -> incr samples
             | None -> Alcotest.failf "%s: unparseable value %S for %s" label value name)
           | _ -> Alcotest.failf "%s: unparseable line %S" label line);
  !samples

let test_prometheus_reparse () =
  let svc = Service.create () in
  (* Touch a few counters so the exposition carries non-zero values. *)
  ignore
    (Service.run svc
       (Service.request ~id:"m1"
          ~template:(Service.Template_xml users_tpl)
          ~model:(Service.Model_value (Awb.Samples.banking_model ()))
          ()));
  let service_text = Service.counters_to_prometheus (Service.counters svc) in
  let n = reparse_prometheus "service" service_text in
  check bool_t "service exposition has samples" true (n >= 10);
  check bool_t "requests counter present" true
    (Astring.String.is_infix ~affix:"\nlopsided_service_requests_total 1\n"
       ("\n" ^ service_text));
  let m = Server.Metrics.create () in
  Server.Metrics.incr_accepted m;
  Server.Metrics.incr_shed m;
  Server.Metrics.incr_worker_restarts m;
  let server_text = Server.Metrics.to_prometheus m ~queue_depth:3 ~inflight:2 ~ready:true in
  let n = reparse_prometheus "server" server_text in
  check bool_t "server exposition has samples" true (n >= 10);
  check bool_t "queue depth gauge present" true
    (Astring.String.is_infix ~affix:"\nlopsided_server_queue_depth 3\n"
       ("\n" ^ server_text))

(* ------------------------------------------------------------------ *)
(* End-to-end over loopback                                            *)
(* ------------------------------------------------------------------ *)

let test_e2e_generate_and_routing () =
  with_server (fun srv port ->
      let r = request ~port "POST" "/generate" users_tpl in
      check int_t "generate ok" 200 r.status;
      check (Alcotest.option string_t) "engine echoed" (Some "host") (rheader r "x-engine");
      check bool_t "document body" true
        (Astring.String.is_infix ~affix:"<li>alice</li>" r.rbody);
      (* Engine selection via query parameter. *)
      let r =
        request ~port "POST" "/generate?engine=functional" users_tpl
      in
      check int_t "functional ok" 200 r.status;
      check (Alcotest.option string_t) "functional echoed" (Some "functional")
        (rheader r "x-engine");
      (* Health endpoints. *)
      check int_t "healthz" 200 (request ~port "GET" "/healthz" "").status;
      let rz = request ~port "GET" "/readyz" "" in
      check int_t "readyz" 200 rz.status;
      check string_t "readyz body" "ready\n" rz.rbody;
      let m = request ~port "GET" "/metrics" "" in
      check int_t "metrics" 200 m.status;
      ignore (reparse_prometheus "scrape" m.rbody);
      check bool_t "both families exposed" true
        (Astring.String.is_infix ~affix:"lopsided_service_requests_total" m.rbody
        && Astring.String.is_infix ~affix:"lopsided_server_accepted_total" m.rbody);
      (* Routing errors. *)
      check int_t "404" 404 (request ~port "GET" "/nope" "").status;
      check int_t "405 generate" 405 (request ~port "GET" "/generate" "").status;
      check int_t "405 metrics" 405 (request ~port "POST" "/metrics" "x").status;
      let bad =
        request ~headers:[ ("X-Deadline-Ms", "soon") ] ~port "POST" "/generate" users_tpl
      in
      check int_t "malformed deadline is 400" 400 bad.status;
      (* Template failures surface as structured JSON, not prose. *)
      let failed = request ~port "POST" "/generate" failing_tpl in
      check int_t "generation failure is 422" 422 failed.status;
      check bool_t "error code in body" true
        (Astring.String.is_infix ~affix:"\"request_id\"" failed.rbody);
      let parse_fail = request ~port "POST" "/generate" "<oops" in
      check int_t "template parse failure is 400" 400 parse_fail.status;
      check bool_t "bad-template code" true
        (Astring.String.is_infix ~affix:"bad-template" parse_fail.rbody);
      check int_t "accepted counted" 5
        (Server.Metrics.accepted (Server.metrics srv)))

let test_e2e_deadline_504 () =
  with_server (fun _srv port ->
      let r =
        request ~headers:[ ("X-Deadline-Ms", "50") ] ~port "POST" "/generate" runaway_tpl
      in
      check int_t "runaway under deadline is 504" 504 r.status;
      check bool_t "resource:deadline code" true
        (Astring.String.is_infix ~affix:"resource:deadline" r.rbody))

(* An impatient client that hangs up before its response is written —
   routine under overload — must cost nothing but an EPIPE. Before
   SIGPIPE was ignored, the response write to the dead socket delivered
   a fatal signal and took the whole process down (this very test
   process, here). SO_LINGER 0 makes the close an immediate RST, so the
   server's write is guaranteed to hit a dead connection. *)
let test_e2e_client_hangup_no_sigpipe () =
  with_server (fun _srv port ->
      (* Deterministic EPIPE first: Server.start ignored SIGPIPE
         process-wide, so writing a response to a peer that is already
         gone (closed AF_UNIX peer fails the very first write) must be
         a swallowed EPIPE, not a fatal signal delivered to this test
         process. *)
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.close b;
      Server.Http.write_response a ~status:200 ~body:(String.make 4096 'x') ();
      Unix.close a;
      let hangup () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let data =
          Printf.sprintf
            "POST /generate HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 80\r\n\
             Content-Length: %d\r\n\r\n%s"
            (String.length runaway_tpl) runaway_tpl
        in
        ignore (Unix.write_substring fd data 0 (String.length data));
        Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
        Unix.close fd
      in
      hangup ();
      hangup ();
      (* Let the 80 ms deadlines fire and the 504 writes hit the dead
         sockets. *)
      Thread.delay 0.5;
      check int_t "process survived the hangups" 200
        (request ~port "GET" "/healthz" "").status;
      check int_t "still serving generations" 200
        (request ~port "POST" "/generate" users_tpl).status)

let test_e2e_rate_limit () =
  with_server
    ~config:{ Server.default_config with Server.rate = 0.001; burst = 1. }
    (fun srv port ->
      let first = request ~port "POST" "/generate" users_tpl in
      check int_t "first admitted" 200 first.status;
      let second = request ~port "POST" "/generate" users_tpl in
      check int_t "second rate-limited" 429 second.status;
      check bool_t "rate-limited code" true
        (Astring.String.is_infix ~affix:"rate-limited" second.rbody);
      check bool_t "retry-after present" true (rheader second "retry-after" <> None);
      check int_t "counter" 1 (Server.Metrics.rate_limited (Server.metrics srv)))

let test_e2e_quarantine_429_at_admission () =
  with_server
    ~svc_config:
      {
        Service.default_config with
        Service.quarantine_after = 2;
        quarantine_cooldown_s = 30.;
      }
    (fun srv port ->
      (* Two consecutive failures trip the breaker... *)
      check int_t "fail 1" 422 (request ~port "POST" "/generate" failing_tpl).status;
      check int_t "fail 2" 422 (request ~port "POST" "/generate" failing_tpl).status;
      (* ...after which the template is refused at admission: 429 with a
         Retry-After, no queue slot, no worker. *)
      let r = request ~port "POST" "/generate" failing_tpl in
      check int_t "quarantined at the door" 429 r.status;
      check bool_t "quarantined code" true
        (Astring.String.is_infix ~affix:"quarantined" r.rbody);
      check bool_t "retry-after present" true (rheader r "retry-after" <> None);
      check int_t "answered by the acceptor" 1
        (Server.Metrics.quarantine_429 (Server.metrics srv));
      (* Only the two tripping failures reached the service. *)
      check int_t "no third generation" 2 (Service.counters (Server.service srv)).Service.requests;
      (* Other templates are unaffected. *)
      check int_t "healthy template fine" 200
        (request ~port "POST" "/generate" users_tpl).status)

let test_e2e_shed_when_saturated () =
  with_server
    ~config:{ Server.default_config with Server.max_inflight = 1; queue_cap = 1 }
    (fun srv port ->
      (* One worker, one queue slot: six concurrent slow requests mean
         at most two are admitted and the rest must be refused
         immediately with 503. *)
      let clients =
        List.init 6 (fun i ->
            in_thread (fun () ->
                request
                  ~headers:
                    [ ("X-Deadline-Ms", "400"); ("X-Request-Id", "slow" ^ string_of_int i) ]
                  ~port "POST" "/generate" runaway_tpl))
      in
      let replies = List.map join_result clients in
      let by s = List.length (List.filter (fun r -> r.status = s) replies) in
      check int_t "all answered" 6 (List.length replies);
      check int_t "no unanswered connections" 0 (by 0);
      check bool_t "some shed with 503" true (by 503 >= 1);
      check bool_t "admitted ones ran into their deadline (504)" true (by 504 >= 1);
      List.iter
        (fun r ->
          if r.status = 503 then begin
            check bool_t "overloaded code" true
              (Astring.String.is_infix ~affix:"overloaded" r.rbody);
            check bool_t "503 carries retry-after" true (rheader r "retry-after" <> None)
          end)
        replies;
      check bool_t "shed counter matches" true
        (Server.Metrics.shed (Server.metrics srv) >= by 503))

let test_e2e_drain_flushes_queued_and_flips_readyz () =
  with_server
    ~config:
      { Server.default_config with Server.max_inflight = 1; queue_cap = 4; drain_deadline_s = 3. }
    (fun srv port ->
      (* Occupy the single worker with a ~600 ms request, then queue two
         more behind it. *)
      let slow =
        in_thread (fun () ->
            request ~headers:[ ("X-Deadline-Ms", "600") ] ~port "POST" "/generate"
              runaway_tpl)
      in
      Thread.delay 0.15;
      let queued =
        List.init 2 (fun _ -> in_thread (fun () -> request ~port "POST" "/generate" users_tpl))
      in
      Thread.delay 0.15;
      check int_t "ready before drain" 200 (request ~port "GET" "/readyz" "").status;
      check int_t "queued behind the worker" 2 (Server.queue_depth srv);
      (* Drain on its own thread: it blocks until in-flight work is
         done, while the acceptor keeps answering health checks. *)
      let drainer = in_thread (fun () -> Server.drain srv) in
      Thread.delay 0.1;
      check bool_t "draining" true (Server.draining srv);
      let rz = request ~port "GET" "/readyz" "" in
      check int_t "readyz flips during drain" 503 rz.status;
      check string_t "readyz says draining" "draining\n" rz.rbody;
      (* Liveness stays green while draining. *)
      check int_t "healthz still 200" 200 (request ~port "GET" "/healthz" "").status;
      (* New work is refused during drain. *)
      let refused = request ~port "POST" "/generate" users_tpl in
      check int_t "new work 503" 503 refused.status;
      check bool_t "draining code" true
        (Astring.String.is_infix ~affix:"draining" refused.rbody);
      (* Queued-but-unstarted requests were flushed with 503 rather than
         silently dropped. *)
      List.iter
        (fun c ->
          let r = join_result c in
          check int_t "queued flushed with 503" 503 r.status;
          check bool_t "flush says draining" true
            (Astring.String.is_infix ~affix:"draining" r.rbody))
        queued;
      (* The in-flight request completed (its own deadline fired inside
         the drain window, answered as a structured 504 — not a dropped
         connection). *)
      let r = join_result slow in
      check int_t "in-flight answered" 504 r.status;
      join_result drainer;
      check bool_t "stopped" true (Server.stopped srv);
      check int_t "both queued counted as drained" 2
        (Server.Metrics.drained (Server.metrics srv));
      (* The listener is gone: a fresh connection must be refused. *)
      (match request ~port "GET" "/healthz" "" with
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | r -> Alcotest.failf "listener still answering after drain (status %d)" r.status);
      (* Drain is idempotent. *)
      Server.drain srv)

let test_e2e_sigterm_during_quarantine_cooldown () =
  with_server
    ~svc_config:
      {
        Service.default_config with
        Service.quarantine_after = 1;
        quarantine_cooldown_s = 30.;
      }
    (fun srv port ->
      check int_t "trip the breaker" 422
        (request ~port "POST" "/generate" failing_tpl).status;
      check int_t "cooldown active" 429
        (request ~port "POST" "/generate" failing_tpl).status;
      (* SIGTERM mid-cooldown: the handler sets a flag, the acceptor
         notices within its poll interval and starts the drain. The open
         breaker must not wedge the shutdown. *)
      Server.install_sigterm srv;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Server.await srv;
      check bool_t "stopped after SIGTERM" true (Server.stopped srv);
      check bool_t "drained (readyz semantics)" false (Server.ready srv))

let test_e2e_supervisor_restarts_crashed_worker () =
  let fault =
    { Service.Fault.none with Service.Fault.seed = 11; crash_rate = 0.5 }
  in
  (* Fault decisions are pure in (seed, kind, key): precompute a request
     id that kills its worker and one that does not. *)
  let fires key = Service.Fault.fires fault Service.Fault.Crash ~key ~attempt:0 in
  let find want =
    let rec go i =
      let key = Printf.sprintf "req-%d" i in
      if fires key = want then key else go (i + 1)
    in
    go 0
  in
  let crash_id = find true and ok_id = find false in
  with_server
    ~config:{ Server.default_config with Server.max_inflight = 1; fault = Some fault }
    (fun srv port ->
      (* The crashing request takes its worker domain down: the client
         sees a closed connection, not a response. *)
      let r = request ~headers:[ ("X-Request-Id", crash_id) ] ~port "POST" "/generate" users_tpl in
      check int_t "crashed connection unanswered" 0 r.status;
      (* The supervisor notices, joins the dead domain, and spawns a
         replacement. *)
      let rec await_restart tries =
        if Server.Metrics.worker_restarts (Server.metrics srv) >= 1 then ()
        else if tries = 0 then Alcotest.fail "supervisor never restarted the worker"
        else begin
          Thread.delay 0.02;
          await_restart (tries - 1)
        end
      in
      await_restart 100;
      (* The replacement worker serves traffic. *)
      let r = request ~headers:[ ("X-Request-Id", ok_id) ] ~port "POST" "/generate" users_tpl in
      check int_t "replacement serves" 200 r.status;
      check int_t "one restart counted" 1
        (Server.Metrics.worker_restarts (Server.metrics srv)))

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "http parse basics" `Quick test_http_parse_basics;
        Alcotest.test_case "http split terminator rejects stray body" `Quick
          test_http_parse_split_terminator;
        Alcotest.test_case "http split terminator clean" `Quick test_http_parse_split_clean;
        Alcotest.test_case "http hostile inputs rejected" `Quick test_http_parse_rejections;
        Alcotest.test_case "http read deadline cuts drip feed" `Quick
          test_http_read_deadline_cuts_drip_feed;
        Alcotest.test_case "token bucket" `Quick test_token_bucket;
        Alcotest.test_case "token bucket prunes idle keys" `Quick test_token_bucket_prunes;
        Alcotest.test_case "admission queue bounds and flush" `Quick test_admission_queue;
        Alcotest.test_case "admission pop blocks until push" `Quick
          test_admission_pop_blocks_until_push;
        Alcotest.test_case "prometheus expositions re-parse" `Quick test_prometheus_reparse;
        Alcotest.test_case "e2e generate and routing" `Quick test_e2e_generate_and_routing;
        Alcotest.test_case "e2e deadline header becomes 504" `Quick test_e2e_deadline_504;
        Alcotest.test_case "e2e client hangup survives (no SIGPIPE)" `Quick
          test_e2e_client_hangup_no_sigpipe;
        Alcotest.test_case "e2e per-client rate limit" `Quick test_e2e_rate_limit;
        Alcotest.test_case "e2e quarantine refused at admission" `Quick
          test_e2e_quarantine_429_at_admission;
        Alcotest.test_case "e2e saturated server sheds" `Quick test_e2e_shed_when_saturated;
        Alcotest.test_case "e2e drain flushes queued, flips readyz" `Quick
          test_e2e_drain_flushes_queued_and_flips_readyz;
        Alcotest.test_case "e2e sigterm during quarantine cooldown" `Quick
          test_e2e_sigterm_during_quarantine_cooldown;
        Alcotest.test_case "e2e supervisor restarts crashed worker" `Quick
          test_e2e_supervisor_restarts_crashed_worker;
      ] );
  ]
