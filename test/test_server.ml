(* The HTTP front end: parser hostility, admission-control units (token
   bucket, bounded queue), the Prometheus expositions, and loopback
   end-to-end coverage of the overload and lifecycle paths — shed 503s,
   rate-limit and quarantine 429s, deadline 504s, graceful drain (flush
   queued, finish in-flight, flip /readyz), SIGTERM, and a supervisor
   restart after an injected worker crash. *)

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let users_tpl =
  "<document><ol><for nodes=\"start type(User); sort-by label\"><li><label/></li></for></ol>\
   </document>"

let failing_tpl =
  "<document><for nodes=\"start type(Document); sort-by label\">\
   <p><required-property name=\"version\"/></p></for></document>"

(* Generation would run for hours unpreempted; with a deadline it is a
   request of a controllable duration. *)
let runaway_tpl =
  let rec go n =
    if n = 0 then "<p><label/></p>"
    else "<for nodes=\"start type(User); sort-by label\">" ^ go (n - 1) ^ "</for>"
  in
  "<document>" ^ go 12 ^ "</document>"

(* ------------------------------------------------------------------ *)
(* A tiny HTTP client (blocking, one request per connection)           *)
(* ------------------------------------------------------------------ *)

type reply = { status : int; rheaders : (string * string) list; rbody : string }

(* status 0 = the server closed the connection without answering (the
   worker-crash path). *)
let parse_reply raw =
  if raw = "" then { status = 0; rheaders = []; rbody = "" }
  else
    match Astring.String.cut ~sep:"\r\n\r\n" raw with
    | None -> Alcotest.failf "unterminated response head: %S" raw
    | Some (head, body) -> (
      match String.split_on_char '\r' head |> List.map (fun l -> Astring.String.trim l) with
      | status_line :: header_lines ->
        let status =
          try int_of_string (String.sub status_line 9 3)
          with _ -> Alcotest.failf "bad status line: %S" status_line
        in
        let rheaders =
          List.filter_map
            (fun l ->
              match Astring.String.cut ~sep:":" l with
              | Some (k, v) ->
                Some (String.lowercase_ascii (String.trim k), String.trim v)
              | None -> None)
            header_lines
        in
        { status; rheaders; rbody = body }
      | [] -> Alcotest.failf "empty response: %S" raw)

let request ?(headers = []) ~port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let data =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: %d\r\n\r\n%s" meth
          path
          (String.concat ""
             (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
          (String.length body) body
      in
      let bytes = Bytes.of_string data in
      let rec send off =
        if off < Bytes.length bytes then
          send (off + Unix.write fd bytes off (Bytes.length bytes - off))
      in
      send 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        end
      in
      (try recv () with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      parse_reply (Buffer.contents buf))

let rheader reply name = List.assoc_opt (String.lowercase_ascii name) reply.rheaders

(* ------------------------------------------------------------------ *)
(* Server fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let with_server ?(config = Server.default_config) ?svc_config f =
  let svc = Service.create ?config:svc_config () in
  let srv = Server.create ~config svc in
  Server.start srv;
  Fun.protect
    ~finally:(fun () -> if not (Server.stopped srv) then Server.drain srv)
    (fun () -> f srv (Server.port srv))

let in_thread f =
  let result = ref (Error (Failure "thread did not run")) in
  let th = Thread.create (fun () -> result := try Ok (f ()) with e -> Error e) () in
  (th, result)

let join_result (th, result) =
  Thread.join th;
  match !result with Ok v -> v | Error e -> raise e

(* ------------------------------------------------------------------ *)
(* HTTP parser units                                                   *)
(* ------------------------------------------------------------------ *)

(* Feed the parser through a socketpair so the test exercises the same
   recv path the server uses. [writes] lets a request arrive in several
   chunks — the header terminator split across reads is a regression
   case for the incremental scan. *)
let parse_via_socketpair writes =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let writer =
        Thread.create
          (fun () ->
            try
              List.iter
                (fun s ->
                  ignore (Unix.write_substring a s 0 (String.length s));
                  Thread.delay 0.005)
                writes;
              Unix.shutdown a Unix.SHUTDOWN_SEND
            with Unix.Unix_error _ -> ())
          ()
      in
      (* Join the writer even when the parser raises: letting the thread
         outlive the test would have it write into a recycled fd owned
         by the next test's socketpair. *)
      let req = try Ok (Server.Http.read_request b) with e -> Error e in
      Thread.join writer;
      match req with Ok r -> r | Error e -> raise e)

let test_http_parse_basics () =
  match
    parse_via_socketpair
      [ "POST /generate?engine=xq&x=a%20b HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 250\r\n\
         Content-Length: 5\r\n\r\nhello" ]
  with
  | None -> Alcotest.fail "no request parsed"
  | Some (req, leftover) ->
    check string_t "no overshoot" "" leftover;
    check string_t "method" "POST" req.Server.Http.meth;
    check string_t "path" "/generate" req.Server.Http.path;
    check (Alcotest.option string_t) "query decoded" (Some "a b")
      (Server.Http.query_param req "x");
    check (Alcotest.option string_t) "engine param" (Some "xq")
      (Server.Http.query_param req "engine");
    check (Alcotest.option string_t) "header case-folded" (Some "250")
      (Server.Http.header req "X-DEADLINE-MS");
    check string_t "body" "hello" req.Server.Http.body

let test_http_parse_split_terminator () =
  (* \r\n\r\n arrives across two reads; bytes past the request are a
     pipelined next request carried out as overshoot, not an error.
     (Pre-keep-alive this was rejected with 400 — and a second request
     sharing the first's TCP segment was silently dropped.) *)
  match
    parse_via_socketpair
      [ "GET /healthz HTTP/1.1\r\nHost: t\r"; "\n\r\nGET /metrics HTTP/1.1\r\n\r\n" ]
  with
  | None -> Alcotest.fail "no request parsed"
  | Some (req, leftover) ->
    check string_t "path" "/healthz" req.Server.Http.path;
    check string_t "pipelined overshoot carried" "GET /metrics HTTP/1.1\r\n\r\n" leftover

let test_http_parse_split_clean () =
  match parse_via_socketpair [ "GET /metrics HTTP/1.1\r\nHost: t\r"; "\n\r\n" ] with
  | None -> Alcotest.fail "no request parsed"
  | Some (req, leftover) ->
    check string_t "path" "/metrics" req.Server.Http.path;
    check string_t "empty body" "" req.Server.Http.body;
    check string_t "no overshoot" "" leftover

let test_http_parse_rejections () =
  let expect_bad label writes =
    match parse_via_socketpair writes with
    | exception Server.Http.Bad_request _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_bad "chunked"
    [ "POST /g HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" ];
  expect_bad "negative length" [ "POST /g HTTP/1.1\r\nContent-Length: -4\r\n\r\n" ];
  expect_bad "malformed length" [ "POST /g HTTP/1.1\r\nContent-Length: ten\r\n\r\n" ];
  (* int_of_string_opt accepts OCaml literal syntax; the HTTP grammar is
     decimal digits only, and a length an intermediary reads differently
     is a smuggling vector. *)
  expect_bad "hex length" [ "POST /g HTTP/1.1\r\nContent-Length: 0x10\r\n\r\nbody-bytes-here!" ];
  expect_bad "octal length" [ "POST /g HTTP/1.1\r\nContent-Length: 0o17\r\n\r\nbody-bytes-here" ];
  expect_bad "underscored length" [ "POST /g HTTP/1.1\r\nContent-Length: 1_6\r\n\r\nbody-bytes-here!" ];
  expect_bad "signed length" [ "POST /g HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello" ];
  expect_bad "empty length" [ "POST /g HTTP/1.1\r\nContent-Length: \r\n\r\n" ];
  expect_bad "bad request line" [ "POST/g HTTP/1.1\r\n\r\n" ];
  expect_bad "ancient version" [ "GET /g HTTP/0.9\r\n\r\n" ];
  expect_bad "oversized head"
    [ "GET /g HTTP/1.1\r\nX-Pad: " ^ String.make 10000 'a' ^ "\r\n\r\n" ];
  (* Clean EOF before any bytes is not an error — it's a client that
     connected and left. *)
  match parse_via_socketpair [] with
  | None -> ()
  | Some _ -> Alcotest.fail "empty connection produced a request"

(* The whole-request read deadline: a drip-feed client whose every recv
   lands inside the socket timeout must still be cut off once the total
   budget is spent — that is what keeps one hostile connection from
   holding a reader thread for timeout x bytes. *)
let test_http_read_deadline_cuts_drip_feed () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let writer =
        Thread.create
          (fun () ->
            try
              (* Two chunks, neither completing the head, the pause
                 between them longer than the read deadline. *)
              ignore (Unix.write_substring a "GET /healthz HTTP/1.1\r\n" 0 23);
              Thread.delay 0.25;
              ignore (Unix.write_substring a "X-Drip: 1\r\n" 0 11)
            with Unix.Unix_error _ -> ())
          ()
      in
      let deadline_ns = Clock.now_ns () + Clock.ns_of_s 0.1 in
      (match Server.Http.read_request ~deadline_ns b with
      | exception Server.Http.Timeout -> ()
      | exception e ->
        Thread.join writer;
        raise e
      | _ -> Alcotest.fail "drip-fed request outlived its read deadline");
      Thread.join writer)

(* ------------------------------------------------------------------ *)
(* Token bucket and admission queue units                              *)
(* ------------------------------------------------------------------ *)

let test_token_bucket () =
  let tb = Server.Token_bucket.create ~rate:1. ~burst:2. in
  check bool_t "burst 1" true (Server.Token_bucket.admit tb ~key:"a" ~now:0.);
  check bool_t "burst 2" true (Server.Token_bucket.admit tb ~key:"a" ~now:0.);
  check bool_t "empty" false (Server.Token_bucket.admit tb ~key:"a" ~now:0.);
  (* Another client's bucket is untouched. *)
  check bool_t "other key" true (Server.Token_bucket.admit tb ~key:"b" ~now:0.);
  (* One second refills one token — exactly one more admission. *)
  check bool_t "refilled" true (Server.Token_bucket.admit tb ~key:"a" ~now:1.);
  check bool_t "only one token" false (Server.Token_bucket.admit tb ~key:"a" ~now:1.);
  check bool_t "retry-after positive" true (Server.Token_bucket.retry_after_s tb > 0.);
  (* rate <= 0 disables limiting entirely. *)
  let off = Server.Token_bucket.create ~rate:0. ~burst:1. in
  for _ = 1 to 100 do
    check bool_t "disabled admits" true (Server.Token_bucket.admit off ~key:"a" ~now:0.)
  done

let test_token_bucket_prunes () =
  let tb = Server.Token_bucket.create ~rate:10. ~burst:1. in
  for i = 1 to 2000 do
    ignore (Server.Token_bucket.admit tb ~key:(string_of_int i) ~now:(float_of_int i))
  done;
  (* Early keys have long since refilled; the prune pass must have
     dropped them rather than retaining one bucket per address ever
     seen. *)
  check bool_t "table bounded" true (Server.Token_bucket.size tb < 2000)

let test_admission_queue () =
  let q = Server.Admission.create ~capacity:2 in
  check bool_t "push 1" true (Server.Admission.push q 1 = `Accepted);
  check bool_t "push 2" true (Server.Admission.push q 2 = `Accepted);
  check bool_t "push 3 shed" true (Server.Admission.push q 3 = `Shed);
  check int_t "depth" 2 (Server.Admission.depth q);
  check (Alcotest.option int_t) "fifo" (Some 1) (Server.Admission.pop q);
  Server.Admission.close q;
  check bool_t "push after close shed" true (Server.Admission.push q 4 = `Shed);
  (* A closed queue still drains what it holds, then signals exit. *)
  check (Alcotest.option int_t) "drains" (Some 2) (Server.Admission.pop q);
  check (Alcotest.option int_t) "closed+empty" None (Server.Admission.pop q);
  let q2 = Server.Admission.create ~capacity:4 in
  List.iter (fun i -> ignore (Server.Admission.push q2 i)) [ 1; 2; 3 ];
  check (Alcotest.list int_t) "flush oldest first" [ 1; 2; 3 ] (Server.Admission.flush q2);
  check int_t "flushed empty" 0 (Server.Admission.depth q2)

let test_admission_pop_blocks_until_push () =
  let q = Server.Admission.create ~capacity:2 in
  let popper = in_thread (fun () -> Server.Admission.pop q) in
  Thread.delay 0.02;
  ignore (Server.Admission.push q 7);
  check (Alcotest.option int_t) "blocked pop woken" (Some 7) (join_result popper)

(* ------------------------------------------------------------------ *)
(* Prometheus expositions: scrape and re-parse every line              *)
(* ------------------------------------------------------------------ *)

(* A minimal exposition-format parser: every line must be a HELP, a
   TYPE, or a sample; every sample must have been preceded by its HELP
   and TYPE; every metric name must use only legal characters; every
   value must parse as a float. Samples may carry a {label="..."} set
   between the name and the value. *)
let reparse_prometheus label text =
  let helped = Hashtbl.create 16 and typed = Hashtbl.create 16 in
  let samples = ref 0 in
  let legal_name n =
    n <> ""
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if Astring.String.is_prefix ~affix:"# HELP " line then begin
           match String.split_on_char ' ' line with
           | "#" :: "HELP" :: name :: _ :: _ ->
             if not (legal_name name) then
               Alcotest.failf "%s: illegal metric name %S" label name;
             Hashtbl.replace helped name ()
           | _ -> Alcotest.failf "%s: malformed HELP line %S" label line
         end
         else if Astring.String.is_prefix ~affix:"# TYPE " line then begin
           match String.split_on_char ' ' line with
           | [ "#"; "TYPE"; name; ("counter" | "gauge") ] -> Hashtbl.replace typed name ()
           | _ -> Alcotest.failf "%s: malformed TYPE line %S" label line
         end
         else
           (* NAME[{labels}] VALUE. A quoted label value may itself
              contain spaces, so split at the *last* space. *)
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "%s: unparseable line %S" label line
           | Some i ->
             let name_part = String.sub line 0 i in
             let value = String.sub line (i + 1) (String.length line - i - 1) in
             let name =
               match String.index_opt name_part '{' with
               | None -> name_part
               | Some j ->
                 if name_part.[String.length name_part - 1] <> '}' then
                   Alcotest.failf "%s: unterminated label set in %S" label line;
                 String.sub name_part 0 j
             in
             if not (legal_name name) then
               Alcotest.failf "%s: illegal metric name %S in %S" label name line;
             if not (Hashtbl.mem helped name) then
               Alcotest.failf "%s: sample %s has no HELP" label name;
             if not (Hashtbl.mem typed name) then
               Alcotest.failf "%s: sample %s has no TYPE" label name;
             (match float_of_string_opt value with
             | Some _ -> incr samples
             | None -> Alcotest.failf "%s: unparseable value %S for %s" label value name));
  !samples

let test_prometheus_reparse () =
  let svc = Service.create () in
  (* Touch a few counters so the exposition carries non-zero values. *)
  ignore
    (Service.run svc
       (Service.request ~id:"m1"
          ~template:(Service.Template_xml users_tpl)
          ~model:(Service.Model_value (Awb.Samples.banking_model ()))
          ()));
  let service_text = Service.counters_to_prometheus (Service.counters svc) in
  let n = reparse_prometheus "service" service_text in
  check bool_t "service exposition has samples" true (n >= 10);
  check bool_t "requests counter present" true
    (Astring.String.is_infix ~affix:"\nlopsided_service_requests_total 1\n"
       ("\n" ^ service_text));
  let m = Server.Metrics.create () in
  Server.Metrics.incr_accepted m;
  Server.Metrics.incr_shed m;
  Server.Metrics.incr_worker_restarts m;
  let server_text =
    Server.Metrics.to_prometheus m ~queue_depth:3 ~inflight:2 ~ready:true ()
  in
  let n = reparse_prometheus "server" server_text in
  check bool_t "server exposition has samples" true (n >= 10);
  check bool_t "queue depth gauge present" true
    (Astring.String.is_infix ~affix:"\nlopsided_server_queue_depth 3\n"
       ("\n" ^ server_text));
  check bool_t "mode gauge present" true
    (Astring.String.is_infix ~affix:"\nlopsided_server_mode 0\n" ("\n" ^ server_text))

(* Counter names are sanitized to the Prometheus grammar, and hostile
   tenant label values are escaped — the exposition must survive a
   strict re-parse whatever strings reach it. *)
let test_prometheus_hostile_names () =
  check string_t "sanitized" "lopsided_bad_name_0:ok_"
    (Service.sanitize_metric_name "lopsided bad-name\n0:ok!");
  check string_t "clean name untouched" "lopsided_service_requests_total"
    (Service.sanitize_metric_name "lopsided_service_requests_total");
  let m = Server.Metrics.create () in
  Server.Metrics.note_tenant m ~tenant:"evil\"quote\\back\nnewline and spaces"
    ~outcome:`Served;
  Server.Metrics.note_tenant m ~tenant:"evil\"quote\\back\nnewline and spaces"
    ~outcome:`Shed;
  let text = Server.Metrics.to_prometheus m ~queue_depth:0 ~inflight:0 ~ready:true () in
  ignore (reparse_prometheus "hostile tenant" text);
  check bool_t "label escaped" true
    (Astring.String.is_infix ~affix:"tenant=\"evil\\\"quote\\\\back\\nnewline and spaces\""
       text)

(* ------------------------------------------------------------------ *)
(* Brownout controller units (no sleeps: explicit now + override)      *)
(* ------------------------------------------------------------------ *)

let test_brownout_transitions () =
  let open Server.Brownout in
  let c =
    { default_config with up_consecutive = 2; down_consecutive = 2; eval_interval_s = 0. }
  in
  let b = create c in
  let mode_t =
    Alcotest.testable (fun ppf m -> Format.pp_print_string ppf (mode_name m)) ( = )
  in
  let step s = note b ~override:s ~queue_occupancy:0. ~shed_fraction:0. ~now:0. () in
  check mode_t "starts normal" Normal (mode b);
  (* Escalation needs consecutive qualifying observations. *)
  check mode_t "one high sample holds" Normal (step 0.8);
  check mode_t "two go degraded" Degraded (step 0.8);
  (* Hysteresis band: between exit (0.35) and enter (0.75) nothing
     moves, however long it lasts. *)
  for _ = 1 to 10 do
    check mode_t "hysteresis holds degraded" Degraded (step 0.5)
  done;
  (* A single dip below exit does not recover either. *)
  check mode_t "one low sample holds" Degraded (step 0.2);
  check mode_t "band resets the down streak" Degraded (step 0.5);
  check mode_t "streak must be consecutive" Degraded (step 0.2);
  check mode_t "two consecutive recover" Normal (step 0.2);
  (* Up the whole ladder and back down. *)
  ignore (step 0.8);
  ignore (step 0.8);
  check mode_t "degraded again" Degraded (mode b);
  check mode_t "one critical sample holds" Degraded (step 0.95);
  check mode_t "two go critical" Critical (step 0.95);
  check mode_t "above critical exit holds" Critical (step 0.7);
  ignore (step 0.5);
  check mode_t "critical recovers to degraded, not normal" Degraded (step 0.5);
  ignore (step 0.1);
  check mode_t "and on down to normal" Normal (step 0.1);
  check int_t "every transition counted" 6 (transitions b)

let test_brownout_eval_interval_and_signal () =
  let open Server.Brownout in
  (* Rate limiting: evaluations inside the interval are skipped. *)
  let b =
    create
      { default_config with up_consecutive = 1; down_consecutive = 1; eval_interval_s = 10. }
  in
  let step ~now s = note b ~override:s ~queue_occupancy:0. ~shed_fraction:0. ~now () in
  check bool_t "first eval runs" true (step ~now:0. 0.9 = Degraded);
  check bool_t "inside interval skipped" true (step ~now:5. 0.1 = Degraded);
  check bool_t "after interval runs" true (step ~now:11. 0.1 = Normal);
  (* The composite signal takes the max of its inputs; the p95 EWMA
     rises fast on a slow sample. *)
  let b2 = create { default_config with up_consecutive = 1; eval_interval_s = 0. } in
  check bool_t "occupancy alone escalates" true
    (note b2 ~queue_occupancy:0.9 ~shed_fraction:0. ~now:0. () = Degraded);
  let b3 = create { default_config with up_consecutive = 1; eval_interval_s = 0. } in
  for _ = 1 to 20 do
    observe_service_time b3 2.0
  done;
  check bool_t "p95 estimate rose" true (p95_estimate_s b3 > 1.5);
  check bool_t "slow p95 alone escalates" true
    (note b3 ~queue_occupancy:0. ~shed_fraction:0. ~now:0. () = Degraded)

(* ------------------------------------------------------------------ *)
(* Fair queue units                                                    *)
(* ------------------------------------------------------------------ *)

(* With a single tenant the fair queue must be indistinguishable from
   the PR-4 FIFO: a deterministic pseudo-random interleaving of pushes
   and pops is compared against a reference Queue. *)
let test_fair_queue_single_tenant_fifo () =
  let q = Server.Fair_queue.create ~capacity:1000 ~tenant_cap:1000 in
  let reference = Queue.create () in
  let seed = ref 42 in
  let rand bound =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod bound
  in
  let next = ref 0 in
  for _ = 1 to 500 do
    if rand 3 < 2 || Queue.is_empty reference then begin
      let v = !next in
      incr next;
      check bool_t "push accepted" true
        (Server.Fair_queue.push q ~tenant:"only" v = `Accepted);
      Queue.push v reference
    end
    else begin
      let expected = Queue.pop reference in
      check (Alcotest.option int_t) "pop order is FIFO" (Some expected)
        (Server.Fair_queue.pop q)
    end
  done;
  while not (Queue.is_empty reference) do
    check (Alcotest.option int_t) "drain order is FIFO" (Some (Queue.pop reference))
      (Server.Fair_queue.pop q)
  done;
  check int_t "drained" 0 (Server.Fair_queue.depth q)

let test_fair_queue_interleaves_tenants () =
  let q = Server.Fair_queue.create ~capacity:100 ~tenant_cap:100 in
  (* A flood from one tenant, then two requests from another. *)
  for i = 0 to 9 do
    ignore (Server.Fair_queue.push q ~tenant:"flood" (1000 + i))
  done;
  ignore (Server.Fair_queue.push q ~tenant:"quiet" 1);
  ignore (Server.Fair_queue.push q ~tenant:"quiet" 2);
  let order = List.init 12 (fun _ -> Option.get (Server.Fair_queue.pop q)) in
  let pos v =
    let rec go i = function
      | [] -> Alcotest.failf "value %d never popped" v
      | x :: _ when x = v -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  (* Fair interleaving: the quiet tenant's requests are served within
     its fair share — near the front — not behind the whole flood. *)
  check bool_t "quiet #1 served early" true (pos 1 <= 3);
  check bool_t "quiet #2 served early" true (pos 2 <= 5);
  (* The flood itself still comes out in its own arrival order. *)
  let flood_order = List.filter (fun v -> v >= 1000) order in
  check (Alcotest.list int_t) "flood stays FIFO within itself"
    (List.init 10 (fun i -> 1000 + i))
    flood_order

let test_fair_queue_bulkheads () =
  let q = Server.Fair_queue.create ~capacity:10 ~tenant_cap:3 in
  let push tenant v = Server.Fair_queue.push q ~tenant v in
  check bool_t "n1" true (push "noisy" 1 = `Accepted);
  check bool_t "n2" true (push "noisy" 2 = `Accepted);
  check bool_t "n3" true (push "noisy" 3 = `Accepted);
  (* The flooding tenant hits its own bulkhead... *)
  check bool_t "n4 tenant-shed" true (push "noisy" 4 = `Shed `Tenant_full);
  (* ...while another tenant still has queue space. *)
  check bool_t "other admitted" true (push "calm" 5 = `Accepted);
  check int_t "tenant depth" 3 (Server.Fair_queue.tenant_depth q "noisy");
  (* Global capacity still binds everyone. *)
  let q2 = Server.Fair_queue.create ~capacity:2 ~tenant_cap:2 in
  ignore (Server.Fair_queue.push q2 ~tenant:"a" 1);
  ignore (Server.Fair_queue.push q2 ~tenant:"b" 2);
  check bool_t "global full" true
    (Server.Fair_queue.push q2 ~tenant:"c" 3 = `Shed `Queue_full);
  (* Popping frees the tenant slot. *)
  ignore (Server.Fair_queue.pop q);
  ignore (Server.Fair_queue.pop q);
  ignore (Server.Fair_queue.pop q);
  check bool_t "slot freed after pops" true (push "noisy" 6 = `Accepted)

(* ------------------------------------------------------------------ *)
(* Derived Retry-After                                                 *)
(* ------------------------------------------------------------------ *)

let test_retry_after_estimate () =
  let m = Server.Metrics.create () in
  (* window_s = 2 *)
  let float_t = Alcotest.float 1e-9 in
  let base = Clock.now () in
  (* No completions yet: no basis for an estimate, fall back to 1 s. *)
  check float_t "cold start" 1.
    (Server.Metrics.retry_after_estimate_s m ~queue_depth:50 ~now:base);
  (* 20 completions inside the first window; the roll at base+2.1 makes
     the rate 10/s. *)
  for _ = 1 to 20 do
    Server.Metrics.note_completion m ~now:(base +. 0.1)
  done;
  check float_t "rate from completed window" 10.
    (Server.Metrics.completion_rate m ~now:(base +. 2.1));
  check float_t "depth/rate" 5.
    (Server.Metrics.retry_after_estimate_s m ~queue_depth:50 ~now:(base +. 2.2));
  check float_t "clamped high" 30.
    (Server.Metrics.retry_after_estimate_s m ~queue_depth:100_000 ~now:(base +. 2.2));
  check float_t "clamped low" 1.
    (Server.Metrics.retry_after_estimate_s m ~queue_depth:0 ~now:(base +. 2.2));
  (* Two silent windows decay the rate — and the estimate falls back. *)
  check float_t "decayed to cold" 1.
    (Server.Metrics.retry_after_estimate_s m ~queue_depth:50 ~now:(base +. 10.))

(* ------------------------------------------------------------------ *)
(* End-to-end over loopback                                            *)
(* ------------------------------------------------------------------ *)

let test_e2e_generate_and_routing () =
  with_server (fun srv port ->
      let r = request ~port "POST" "/generate" users_tpl in
      check int_t "generate ok" 200 r.status;
      check (Alcotest.option string_t) "engine echoed" (Some "host") (rheader r "x-engine");
      check bool_t "request id generated" true (rheader r "x-request-id" <> None);
      check (Alcotest.option string_t) "service mode header" (Some "normal")
        (rheader r "x-service-mode");
      check bool_t "document body" true
        (Astring.String.is_infix ~affix:"<li>alice</li>" r.rbody);
      (* A client-supplied X-Request-Id is echoed on every response —
         successes, errors, even the 404. *)
      let tagged =
        request ~headers:[ ("X-Request-Id", "trace-me-7") ] ~port "POST" "/generate"
          users_tpl
      in
      check (Alcotest.option string_t) "client id echoed on 200" (Some "trace-me-7")
        (rheader tagged "x-request-id");
      let nf = request ~headers:[ ("X-Request-Id", "trace-404") ] ~port "GET" "/nope" "" in
      check (Alcotest.option string_t) "client id echoed on 404" (Some "trace-404")
        (rheader nf "x-request-id");
      check bool_t "healthz carries request id" true
        (rheader (request ~port "GET" "/healthz" "") "x-request-id" <> None);
      (* Engine selection via query parameter. *)
      let r =
        request ~port "POST" "/generate?engine=functional" users_tpl
      in
      check int_t "functional ok" 200 r.status;
      check (Alcotest.option string_t) "functional echoed" (Some "functional")
        (rheader r "x-engine");
      (* Health endpoints. *)
      check int_t "healthz" 200 (request ~port "GET" "/healthz" "").status;
      let rz = request ~port "GET" "/readyz" "" in
      check int_t "readyz" 200 rz.status;
      check string_t "readyz body" "ready\n" rz.rbody;
      let m = request ~port "GET" "/metrics" "" in
      check int_t "metrics" 200 m.status;
      ignore (reparse_prometheus "scrape" m.rbody);
      check bool_t "both families exposed" true
        (Astring.String.is_infix ~affix:"lopsided_service_requests_total" m.rbody
        && Astring.String.is_infix ~affix:"lopsided_server_accepted_total" m.rbody);
      (* Routing errors. *)
      check int_t "404" 404 (request ~port "GET" "/nope" "").status;
      check int_t "405 generate" 405 (request ~port "GET" "/generate" "").status;
      check int_t "405 metrics" 405 (request ~port "POST" "/metrics" "x").status;
      let bad =
        request ~headers:[ ("X-Deadline-Ms", "soon") ] ~port "POST" "/generate" users_tpl
      in
      check int_t "malformed deadline is 400" 400 bad.status;
      (* Template failures surface as structured JSON, not prose. *)
      let failed = request ~port "POST" "/generate" failing_tpl in
      check int_t "generation failure is 422" 422 failed.status;
      check bool_t "error code in body" true
        (Astring.String.is_infix ~affix:"\"request_id\"" failed.rbody);
      let parse_fail = request ~port "POST" "/generate" "<oops" in
      check int_t "template parse failure is 400" 400 parse_fail.status;
      check bool_t "bad-template code" true
        (Astring.String.is_infix ~affix:"bad-template" parse_fail.rbody);
      check int_t "accepted counted" 6
        (Server.Metrics.accepted (Server.metrics srv)))

let test_e2e_deadline_504 () =
  with_server (fun _srv port ->
      let r =
        request ~headers:[ ("X-Deadline-Ms", "50") ] ~port "POST" "/generate" runaway_tpl
      in
      check int_t "runaway under deadline is 504" 504 r.status;
      check bool_t "resource:deadline code" true
        (Astring.String.is_infix ~affix:"resource:deadline" r.rbody))

(* An impatient client that hangs up before its response is written —
   routine under overload — must cost nothing but an EPIPE. Before
   SIGPIPE was ignored, the response write to the dead socket delivered
   a fatal signal and took the whole process down (this very test
   process, here). SO_LINGER 0 makes the close an immediate RST, so the
   server's write is guaranteed to hit a dead connection. *)
let test_e2e_client_hangup_no_sigpipe () =
  with_server (fun _srv port ->
      (* Deterministic EPIPE first: Server.start ignored SIGPIPE
         process-wide, so writing a response to a peer that is already
         gone (closed AF_UNIX peer fails the very first write) must be
         a swallowed EPIPE, not a fatal signal delivered to this test
         process. *)
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.close b;
      ignore (Server.Http.write_response a ~status:200 ~body:(String.make 4096 'x') ());
      Unix.close a;
      let hangup () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let data =
          Printf.sprintf
            "POST /generate HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 80\r\n\
             Content-Length: %d\r\n\r\n%s"
            (String.length runaway_tpl) runaway_tpl
        in
        ignore (Unix.write_substring fd data 0 (String.length data));
        Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
        Unix.close fd
      in
      hangup ();
      hangup ();
      (* Let the 80 ms deadlines fire and the 504 writes hit the dead
         sockets. *)
      Thread.delay 0.5;
      check int_t "process survived the hangups" 200
        (request ~port "GET" "/healthz" "").status;
      check int_t "still serving generations" 200
        (request ~port "POST" "/generate" users_tpl).status)

let test_e2e_rate_limit () =
  with_server
    ~config:{ Server.default_config with Server.rate = 0.001; burst = 1. }
    (fun srv port ->
      let first = request ~port "POST" "/generate" users_tpl in
      check int_t "first admitted" 200 first.status;
      let second = request ~port "POST" "/generate" users_tpl in
      check int_t "second rate-limited" 429 second.status;
      check bool_t "rate-limited code" true
        (Astring.String.is_infix ~affix:"rate-limited" second.rbody);
      check bool_t "retry-after present" true (rheader second "retry-after" <> None);
      check int_t "counter" 1 (Server.Metrics.rate_limited (Server.metrics srv)))

let test_e2e_quarantine_429_at_admission () =
  with_server
    ~svc_config:
      {
        Service.default_config with
        Service.quarantine_after = 2;
        quarantine_cooldown_s = 30.;
      }
    (fun srv port ->
      (* Two consecutive failures trip the breaker... *)
      check int_t "fail 1" 422 (request ~port "POST" "/generate" failing_tpl).status;
      check int_t "fail 2" 422 (request ~port "POST" "/generate" failing_tpl).status;
      (* ...after which the template is refused at admission: 429 with a
         Retry-After, no queue slot, no worker. *)
      let r = request ~port "POST" "/generate" failing_tpl in
      check int_t "quarantined at the door" 429 r.status;
      check bool_t "quarantined code" true
        (Astring.String.is_infix ~affix:"quarantined" r.rbody);
      check bool_t "retry-after present" true (rheader r "retry-after" <> None);
      check int_t "answered by the acceptor" 1
        (Server.Metrics.quarantine_429 (Server.metrics srv));
      (* Only the two tripping failures reached the service. *)
      check int_t "no third generation" 2 (Service.counters (Server.service srv)).Service.requests;
      (* Other templates are unaffected. *)
      check int_t "healthy template fine" 200
        (request ~port "POST" "/generate" users_tpl).status)

let test_e2e_shed_when_saturated () =
  with_server
    ~config:{ Server.default_config with Server.max_inflight = 1; queue_cap = 1 }
    (fun srv port ->
      (* One worker, one queue slot: six concurrent slow requests mean
         at most two are admitted and the rest must be refused
         immediately with 503. *)
      let clients =
        List.init 6 (fun i ->
            in_thread (fun () ->
                request
                  ~headers:
                    [ ("X-Deadline-Ms", "400"); ("X-Request-Id", "slow" ^ string_of_int i) ]
                  ~port "POST" "/generate" runaway_tpl))
      in
      let replies = List.map join_result clients in
      let by s = List.length (List.filter (fun r -> r.status = s) replies) in
      check int_t "all answered" 6 (List.length replies);
      check int_t "no unanswered connections" 0 (by 0);
      check bool_t "some shed with 503" true (by 503 >= 1);
      check bool_t "admitted ones ran into their deadline (504)" true (by 504 >= 1);
      List.iter
        (fun r ->
          if r.status = 503 then begin
            check bool_t "overloaded code" true
              (Astring.String.is_infix ~affix:"overloaded" r.rbody);
            check bool_t "503 carries retry-after" true (rheader r "retry-after" <> None)
          end)
        replies;
      check bool_t "shed counter matches" true
        (Server.Metrics.shed (Server.metrics srv) >= by 503))

let test_e2e_drain_flushes_queued_and_flips_readyz () =
  with_server
    ~config:
      { Server.default_config with Server.max_inflight = 1; queue_cap = 4; drain_deadline_s = 3. }
    (fun srv port ->
      (* Occupy the single worker with a ~600 ms request, then queue two
         more behind it. *)
      let slow =
        in_thread (fun () ->
            request ~headers:[ ("X-Deadline-Ms", "600") ] ~port "POST" "/generate"
              runaway_tpl)
      in
      Thread.delay 0.15;
      let queued =
        List.init 2 (fun _ -> in_thread (fun () -> request ~port "POST" "/generate" users_tpl))
      in
      Thread.delay 0.15;
      check int_t "ready before drain" 200 (request ~port "GET" "/readyz" "").status;
      check int_t "queued behind the worker" 2 (Server.queue_depth srv);
      (* Drain on its own thread: it blocks until in-flight work is
         done, while the acceptor keeps answering health checks. *)
      let drainer = in_thread (fun () -> Server.drain srv) in
      Thread.delay 0.1;
      check bool_t "draining" true (Server.draining srv);
      let rz = request ~port "GET" "/readyz" "" in
      check int_t "readyz flips during drain" 503 rz.status;
      check string_t "readyz says draining" "draining\n" rz.rbody;
      (* Liveness stays green while draining. *)
      check int_t "healthz still 200" 200 (request ~port "GET" "/healthz" "").status;
      (* New work is refused during drain. *)
      let refused = request ~port "POST" "/generate" users_tpl in
      check int_t "new work 503" 503 refused.status;
      check bool_t "draining code" true
        (Astring.String.is_infix ~affix:"draining" refused.rbody);
      (* Queued-but-unstarted requests were flushed with 503 rather than
         silently dropped. *)
      List.iter
        (fun c ->
          let r = join_result c in
          check int_t "queued flushed with 503" 503 r.status;
          check bool_t "flush says draining" true
            (Astring.String.is_infix ~affix:"draining" r.rbody))
        queued;
      (* The in-flight request completed (its own deadline fired inside
         the drain window, answered as a structured 504 — not a dropped
         connection). *)
      let r = join_result slow in
      check int_t "in-flight answered" 504 r.status;
      join_result drainer;
      check bool_t "stopped" true (Server.stopped srv);
      check int_t "both queued counted as drained" 2
        (Server.Metrics.drained (Server.metrics srv));
      (* The listener is gone: a fresh connection must be refused. *)
      (match request ~port "GET" "/healthz" "" with
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | r -> Alcotest.failf "listener still answering after drain (status %d)" r.status);
      (* Drain is idempotent. *)
      Server.drain srv)

let test_e2e_sigterm_during_quarantine_cooldown () =
  with_server
    ~svc_config:
      {
        Service.default_config with
        Service.quarantine_after = 1;
        quarantine_cooldown_s = 30.;
      }
    (fun srv port ->
      check int_t "trip the breaker" 422
        (request ~port "POST" "/generate" failing_tpl).status;
      check int_t "cooldown active" 429
        (request ~port "POST" "/generate" failing_tpl).status;
      (* SIGTERM mid-cooldown: the handler sets a flag, the acceptor
         notices within its poll interval and starts the drain. The open
         breaker must not wedge the shutdown. *)
      Server.install_sigterm srv;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Server.await srv;
      check bool_t "stopped after SIGTERM" true (Server.stopped srv);
      check bool_t "drained (readyz semantics)" false (Server.ready srv))

let test_e2e_supervisor_restarts_crashed_worker () =
  let fault =
    { Service.Fault.none with Service.Fault.seed = 11; crash_rate = 0.5 }
  in
  (* Fault decisions are pure in (seed, kind, key): precompute a request
     id that kills its worker and one that does not. *)
  let fires key = Service.Fault.fires fault Service.Fault.Crash ~key ~attempt:0 in
  let find want =
    let rec go i =
      let key = Printf.sprintf "req-%d" i in
      if fires key = want then key else go (i + 1)
    in
    go 0
  in
  let crash_id = find true and ok_id = find false in
  with_server
    ~config:{ Server.default_config with Server.max_inflight = 1; fault = Some fault }
    (fun srv port ->
      (* The crashing request takes its worker domain down: the client
         sees a closed connection, not a response. *)
      let r = request ~headers:[ ("X-Request-Id", crash_id) ] ~port "POST" "/generate" users_tpl in
      check int_t "crashed connection unanswered" 0 r.status;
      (* The supervisor notices, joins the dead domain, and spawns a
         replacement. *)
      let rec await_restart tries =
        if Server.Metrics.worker_restarts (Server.metrics srv) >= 1 then ()
        else if tries = 0 then Alcotest.fail "supervisor never restarted the worker"
        else begin
          Thread.delay 0.02;
          await_restart (tries - 1)
        end
      in
      await_restart 100;
      (* The replacement worker serves traffic. *)
      let r = request ~headers:[ ("X-Request-Id", ok_id) ] ~port "POST" "/generate" users_tpl in
      check int_t "replacement serves" 200 r.status;
      check int_t "one restart counted" 1
        (Server.Metrics.worker_restarts (Server.metrics srv)))

(* ------------------------------------------------------------------ *)
(* Brownout end-to-end: walk the whole mode ladder deterministically   *)
(* ------------------------------------------------------------------ *)

(* A template whose Skeleton rendering is visibly different: the TOC
   comes back as the degraded stub div instead of a computed list. *)
let toc_tpl =
  "<document><table-of-contents/><section><heading>Users</heading>\
   <ol><for nodes=\"start type(User); sort-by label\"><li><label/></li></for></ol>\
   </section></document>"

let toc_tpl2 =
  "<document><table-of-contents/><section><heading>Accounts</heading>\
   <p>static</p></section></document>"

(* The Fault load_signal override replaces the brownout controller's
   composite signal wholesale; with up/down_consecutive = 1 and no
   evaluation spacing, every request steps the controller exactly once.
   No sleeps, no generated load — the walk is fully deterministic. *)
let test_e2e_brownout_mode_walk () =
  let fault = { Service.Fault.none with Service.Fault.seed = 3 } in
  let bconfig =
    {
      Server.Brownout.default_config with
      Server.Brownout.up_consecutive = 1;
      down_consecutive = 1;
      eval_interval_s = 0.;
    }
  in
  with_server
    ~config:
      {
        Server.default_config with
        Server.fault = Some fault;
        brownout = Some bconfig;
      }
    ~svc_config:{ Service.default_config with Service.result_cache_cap = 16 }
    (fun srv port ->
      (* Normal: a full generation, which also populates the result
         cache. *)
      let full = request ~port "POST" "/generate" toc_tpl in
      check int_t "normal 200" 200 full.status;
      check (Alcotest.option string_t) "normal mode header" (Some "normal")
        (rheader full "x-service-mode");
      check bool_t "full toc computed" true
        (Astring.String.is_infix ~affix:"toc-depth-0" full.rbody);
      check (Alcotest.option string_t) "not degraded" None (rheader full "x-degraded");
      (* Force the signal high: the next request steps the controller to
         Degraded and is answered stale from the result cache. *)
      fault.Service.Fault.load_signal <- Some 0.8;
      let stale = request ~port "POST" "/generate" toc_tpl in
      check int_t "stale 200" 200 stale.status;
      check (Alcotest.option string_t) "stale marked" (Some "stale")
        (rheader stale "x-degraded");
      check (Alcotest.option string_t) "warning 110" (Some "110 - \"Response is Stale\"")
        (rheader stale "warning");
      check (Alcotest.option string_t) "degraded mode header" (Some "degraded")
        (rheader stale "x-service-mode");
      check string_t "stale body is the cached full document" full.rbody stale.rbody;
      (* Degraded + cache miss: generated as a skeleton, not shed. *)
      let skel = request ~port "POST" "/generate" toc_tpl2 in
      check int_t "skeleton 200" 200 skel.status;
      check (Alcotest.option string_t) "skeleton marked" (Some "skeleton")
        (rheader skel "x-degraded");
      check bool_t "toc stubbed, not computed" true
        (Astring.String.is_infix ~affix:"table-of-contents degraded" skel.rbody);
      check bool_t "no toc entries" false
        (Astring.String.is_infix ~affix:"toc-depth-0" skel.rbody);
      (* Critical: cache hits still serve, misses are refused. *)
      fault.Service.Fault.load_signal <- Some 0.99;
      let crit_hit = request ~port "POST" "/generate" toc_tpl in
      check int_t "critical still serves cached" 200 crit_hit.status;
      check (Alcotest.option string_t) "critical mode header" (Some "critical")
        (rheader crit_hit "x-service-mode");
      let crit_miss =
        request ~port "POST" "/generate"
          "<document><p>never seen before</p></document>"
      in
      check int_t "critical miss refused" 503 crit_miss.status;
      check bool_t "critical miss carries retry-after" true
        (rheader crit_miss "retry-after" <> None);
      (* Recovery: a low signal walks Critical -> Degraded -> Normal,
         one step per request. *)
      fault.Service.Fault.load_signal <- Some 0.0;
      ignore (request ~port "POST" "/generate" users_tpl);
      check bool_t "one step down from critical" true
        (Server.current_mode srv = Server.Brownout.Degraded);
      let recovered = request ~port "POST" "/generate" users_tpl in
      check bool_t "second step reaches normal" true
        (Server.current_mode srv = Server.Brownout.Normal);
      check int_t "recovered 200" 200 recovered.status;
      (* The brownout counters saw it all. *)
      check bool_t "stale serves counted" true
        (Server.Metrics.stale_served (Server.metrics srv) >= 2);
      check bool_t "skeletons counted" true
        (Server.Metrics.skeletons (Server.metrics srv) >= 1);
      check bool_t "refresh enqueued for the stale hit" true
        (Server.Metrics.refreshes (Server.metrics srv) >= 1);
      (* /metrics exports the mode gauge (0 again after recovery). *)
      let m = request ~port "GET" "/metrics" "" in
      ignore (reparse_prometheus "brownout scrape" m.rbody);
      check bool_t "mode gauge normal again" true
        (Astring.String.is_infix ~affix:"\nlopsided_server_mode 0\n" ("\n" ^ m.rbody)))

(* With brownout off (the default), the load-signal override must be
   inert: the server sheds exactly as PR 4 did. *)
let test_e2e_brownout_off_is_inert () =
  let fault = { Service.Fault.none with Service.Fault.seed = 3 } in
  fault.Service.Fault.load_signal <- Some 0.99;
  with_server
    ~config:{ Server.default_config with Server.fault = Some fault }
    (fun srv port ->
      let r = request ~port "POST" "/generate" users_tpl in
      check int_t "served normally" 200 r.status;
      check (Alcotest.option string_t) "mode stays normal" (Some "normal")
        (rheader r "x-service-mode");
      check bool_t "controller never engaged" true
        (Server.current_mode srv = Server.Brownout.Normal))

(* ------------------------------------------------------------------ *)
(* Per-tenant bulkheads end-to-end                                     *)
(* ------------------------------------------------------------------ *)

let test_e2e_tenant_bulkhead () =
  with_server
    ~config:
      {
        Server.default_config with
        Server.max_inflight = 1;
        queue_cap = 8;
        tenant_cap = 2;
      }
    (fun srv port ->
      (* Occupy the single worker so the queue actually holds. *)
      let slow =
        in_thread (fun () ->
            request
              ~headers:[ ("X-Deadline-Ms", "500"); ("X-Tenant", "noisy") ]
              ~port "POST" "/generate" runaway_tpl)
      in
      Thread.delay 0.15;
      (* The noisy tenant floods: only tenant_cap of these can queue;
         the rest get 429 — their own bulkhead, not a global 503. *)
      let noisy =
        List.init 5 (fun _ ->
            in_thread (fun () ->
                request
                  ~headers:[ ("X-Deadline-Ms", "500"); ("X-Tenant", "noisy") ]
                  ~port "POST" "/generate" runaway_tpl))
      in
      Thread.delay 0.25;
      (* A quiet tenant still has queue space while the flood rages. *)
      let quiet =
        request ~headers:[ ("X-Tenant", "quiet") ] ~port "POST" "/generate" users_tpl
      in
      check int_t "quiet tenant served" 200 quiet.status;
      let replies = List.map join_result noisy in
      let tenant_429 =
        List.filter
          (fun r ->
            r.status = 429 && Astring.String.is_infix ~affix:"tenant-overloaded" r.rbody)
          replies
      in
      check bool_t "flooding tenant got its own 429s" true (List.length tenant_429 >= 3);
      List.iter
        (fun r -> check bool_t "429 carries retry-after" true (rheader r "retry-after" <> None))
        tenant_429;
      ignore (join_result slow);
      check bool_t "tenant rejections counted" true
        (Server.Metrics.tenant_rejected (Server.metrics srv) >= 3);
      (* The per-tenant counters reach /metrics as labeled samples. *)
      let m = request ~port "GET" "/metrics" "" in
      ignore (reparse_prometheus "tenant scrape" m.rbody);
      check bool_t "noisy tenant labeled" true
        (Astring.String.is_infix ~affix:"lopsided_server_tenant_shed_total{tenant=\"noisy\"}"
           m.rbody);
      check bool_t "quiet tenant labeled" true
        (Astring.String.is_infix
           ~affix:"lopsided_server_tenant_served_total{tenant=\"quiet\"}" m.rbody))

(* ------------------------------------------------------------------ *)
(* Keep-alive end-to-end                                               *)
(* ------------------------------------------------------------------ *)

(* A persistent-connection client: each exchange reads exactly one
   response (head to the blank line, then Content-Length bytes) so the
   socket survives for the next request — reading to EOF, as [request]
   does, only works when the server closes per request. *)
let pc_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let pc_send fd data =
  let bytes = Bytes.of_string data in
  let rec send off =
    if off < Bytes.length bytes then
      send (off + Unix.write fd bytes off (Bytes.length bytes - off))
  in
  send 0

let pc_request ?(headers = []) meth path body =
  Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: %d\r\n\r\n%s" meth path
    (String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
    (String.length body) body

(* Reads one full response off [fd]; [pending] carries overshoot from a
   previous read on the same socket. Returns (reply, pending'). *)
let pc_read_response fd pending =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf !pending;
  let chunk = Bytes.create 4096 in
  let find_terminator () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec go i =
      if i + 3 >= n then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some i
      else go (i + 1)
    in
    go 0
  in
  let rec read_head () =
    match find_terminator () with
    | Some i -> i
    | None ->
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Alcotest.fail "connection closed mid-response";
      Buffer.add_subbytes buf chunk 0 n;
      read_head ()
  in
  let head_end = read_head () in
  let s = Buffer.contents buf in
  let head = String.sub s 0 head_end in
  let clen =
    String.split_on_char '\n' head
    |> List.fold_left
         (fun acc line ->
           let line = String.trim line in
           match String.index_opt line ':' with
           | Some i
             when String.lowercase_ascii (String.sub line 0 i) = "content-length" ->
             int_of_string (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
           | _ -> acc)
         0
  in
  let body_start = head_end + 4 in
  let rec read_body () =
    if Buffer.length buf < body_start + clen then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Alcotest.fail "connection closed mid-body";
      Buffer.add_subbytes buf chunk 0 n;
      read_body ()
    end
  in
  read_body ();
  let s = Buffer.contents buf in
  pending := String.sub s (body_start + clen) (String.length s - body_start - clen);
  parse_reply (String.sub s 0 (body_start + clen))

let ka_config =
  { Server.default_config with Server.keepalive = true; idle_timeout_s = 5. }

let test_e2e_keepalive_reuse () =
  with_server ~config:ka_config (fun srv port ->
      let fd = pc_connect port in
      let pending = ref "" in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          pc_send fd (pc_request "POST" "/generate" users_tpl);
          let r1 = pc_read_response fd pending in
          check int_t "first 200" 200 r1.status;
          check (Alcotest.option Alcotest.string) "keep-alive advertised"
            (Some "keep-alive") (rheader r1 "connection");
          pc_send fd (pc_request "GET" "/healthz" "");
          let r2 = pc_read_response fd pending in
          check int_t "second 200 on same socket" 200 r2.status;
          check bool_t "reuse counted" true
            (Server.Metrics.keepalive_reused (Server.metrics srv) >= 1)))

let test_e2e_pipelined_same_segment () =
  (* Both requests land in one TCP segment; the server must parse the
     second out of the read-ahead instead of dropping it. *)
  with_server ~config:ka_config (fun _srv port ->
      let fd = pc_connect port in
      let pending = ref "" in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          pc_send fd
            (pc_request "POST" "/generate" users_tpl ^ pc_request "GET" "/healthz" "");
          let r1 = pc_read_response fd pending in
          let r2 = pc_read_response fd pending in
          check int_t "pipelined first" 200 r1.status;
          check int_t "pipelined second" 200 r2.status))

let test_e2e_connection_close_honored () =
  with_server ~config:ka_config (fun _srv port ->
      let fd = pc_connect port in
      let pending = ref "" in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          pc_send fd (pc_request ~headers:[ ("Connection", "close") ] "GET" "/healthz" "");
          let r = pc_read_response fd pending in
          check int_t "close request served" 200 r.status;
          check (Alcotest.option Alcotest.string) "close echoed" (Some "close")
            (rheader r "connection");
          let b = Bytes.create 1 in
          check int_t "server closed the socket" 0 (Unix.read fd b 0 1)))

let test_e2e_idle_timeout_closes () =
  with_server
    ~config:{ ka_config with Server.idle_timeout_s = 0.15 }
    (fun _srv port ->
      let fd = pc_connect port in
      let pending = ref "" in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          pc_send fd (pc_request "GET" "/healthz" "");
          let r = pc_read_response fd pending in
          check int_t "served before idling" 200 r.status;
          (* Linger past the idle budget: the watcher must close us. *)
          let b = Bytes.create 1 in
          let deadline = Clock.now () +. 3. in
          let rec wait_eof () =
            match Unix.read fd b 0 1 with
            | 0 -> ()
            | _ -> if Clock.now () < deadline then wait_eof () else Alcotest.fail "no EOF"
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
          in
          wait_eof ()))

let test_e2e_max_conn_requests_cap () =
  with_server
    ~config:{ ka_config with Server.max_conn_requests = 2 }
    (fun _srv port ->
      let fd = pc_connect port in
      let pending = ref "" in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          pc_send fd (pc_request "GET" "/healthz" "");
          let r1 = pc_read_response fd pending in
          check (Alcotest.option Alcotest.string) "first keeps alive" (Some "keep-alive")
            (rheader r1 "connection");
          pc_send fd (pc_request "GET" "/healthz" "");
          let r2 = pc_read_response fd pending in
          check (Alcotest.option Alcotest.string) "cap closes politely" (Some "close")
            (rheader r2 "connection");
          let b = Bytes.create 1 in
          check int_t "socket closed at cap" 0 (Unix.read fd b 0 1)))

let test_e2e_rate_limit_retry_after_derived () =
  (* The 429's Retry-After must come from the drain-rate estimate —
     bounded to its [1, 30] clamp — rather than any fixed constant. *)
  with_server
    ~config:{ Server.default_config with Server.rate = 1.; burst = 1. }
    (fun _srv port ->
      ignore (request ~port "POST" "/generate" users_tpl);
      let r = request ~port "POST" "/generate" users_tpl in
      check int_t "rate limited" 429 r.status;
      match rheader r "retry-after" with
      | None -> Alcotest.fail "429 without Retry-After"
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | None -> Alcotest.failf "non-numeric Retry-After %S" v
        | Some s ->
          check bool_t "estimate within clamp" true (s >= 1 && s <= 30)))

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "http parse basics" `Quick test_http_parse_basics;
        Alcotest.test_case "http split terminator rejects stray body" `Quick
          test_http_parse_split_terminator;
        Alcotest.test_case "http split terminator clean" `Quick test_http_parse_split_clean;
        Alcotest.test_case "http hostile inputs rejected" `Quick test_http_parse_rejections;
        Alcotest.test_case "http read deadline cuts drip feed" `Quick
          test_http_read_deadline_cuts_drip_feed;
        Alcotest.test_case "token bucket" `Quick test_token_bucket;
        Alcotest.test_case "token bucket prunes idle keys" `Quick test_token_bucket_prunes;
        Alcotest.test_case "admission queue bounds and flush" `Quick test_admission_queue;
        Alcotest.test_case "admission pop blocks until push" `Quick
          test_admission_pop_blocks_until_push;
        Alcotest.test_case "prometheus expositions re-parse" `Quick test_prometheus_reparse;
        Alcotest.test_case "prometheus hostile names sanitized" `Quick
          test_prometheus_hostile_names;
        Alcotest.test_case "brownout transitions and hysteresis" `Quick
          test_brownout_transitions;
        Alcotest.test_case "brownout eval interval and signals" `Quick
          test_brownout_eval_interval_and_signal;
        Alcotest.test_case "fair queue single tenant is FIFO" `Quick
          test_fair_queue_single_tenant_fifo;
        Alcotest.test_case "fair queue interleaves tenants" `Quick
          test_fair_queue_interleaves_tenants;
        Alcotest.test_case "fair queue bulkheads" `Quick test_fair_queue_bulkheads;
        Alcotest.test_case "retry-after from drain estimate" `Quick
          test_retry_after_estimate;
        Alcotest.test_case "e2e generate and routing" `Quick test_e2e_generate_and_routing;
        Alcotest.test_case "e2e deadline header becomes 504" `Quick test_e2e_deadline_504;
        Alcotest.test_case "e2e client hangup survives (no SIGPIPE)" `Quick
          test_e2e_client_hangup_no_sigpipe;
        Alcotest.test_case "e2e per-client rate limit" `Quick test_e2e_rate_limit;
        Alcotest.test_case "e2e quarantine refused at admission" `Quick
          test_e2e_quarantine_429_at_admission;
        Alcotest.test_case "e2e saturated server sheds" `Quick test_e2e_shed_when_saturated;
        Alcotest.test_case "e2e drain flushes queued, flips readyz" `Quick
          test_e2e_drain_flushes_queued_and_flips_readyz;
        Alcotest.test_case "e2e sigterm during quarantine cooldown" `Quick
          test_e2e_sigterm_during_quarantine_cooldown;
        Alcotest.test_case "e2e supervisor restarts crashed worker" `Quick
          test_e2e_supervisor_restarts_crashed_worker;
        Alcotest.test_case "e2e brownout mode walk (stale, skeleton, critical)" `Quick
          test_e2e_brownout_mode_walk;
        Alcotest.test_case "e2e brownout off is inert" `Quick
          test_e2e_brownout_off_is_inert;
        Alcotest.test_case "e2e per-tenant bulkhead" `Quick test_e2e_tenant_bulkhead;
        Alcotest.test_case "e2e keep-alive reuses the connection" `Quick
          test_e2e_keepalive_reuse;
        Alcotest.test_case "e2e pipelined requests in one segment" `Quick
          test_e2e_pipelined_same_segment;
        Alcotest.test_case "e2e Connection: close honored" `Quick
          test_e2e_connection_close_honored;
        Alcotest.test_case "e2e idle keep-alive connection reaped" `Quick
          test_e2e_idle_timeout_closes;
        Alcotest.test_case "e2e max requests per connection cap" `Quick
          test_e2e_max_conn_requests_cap;
        Alcotest.test_case "e2e 429 Retry-After from drain estimate" `Quick
          test_e2e_rate_limit_retry_after_derived;
      ] );
  ]
