(* Consistent-hash sharded serving: ring behavior as pure unit tests,
   then live clusters — spawned by re-exec'ing this very test binary
   (test_main calls [Server.Shard.maybe_run_backend] first thing) — for
   failover and rolling-restart coverage. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

module Router = Server.Router
module Shard = Server.Shard

(* ------------------------------------------------------------------ *)
(* Ring units                                                          *)
(* ------------------------------------------------------------------ *)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d-%d" i (i * 7919))

let test_ring_deterministic () =
  let r1 = Router.create [ 0; 1; 2; 3 ] in
  let r2 = Router.create [ 3; 2; 1; 0 ] in
  List.iter
    (fun k -> check int_t "order-independent placement" (Router.route r1 k) (Router.route r2 k))
    (keys 500)

let test_ring_balance () =
  let r = Router.create [ 0; 1; 2; 3 ] in
  let counts = Array.make 4 0 in
  List.iter (fun k -> counts.(Router.route r k) <- counts.(Router.route r k) + 1) (keys 2000);
  Array.iteri
    (fun i c ->
      (* 2000 keys over 4 shards with 64 vnodes each: no shard should be
         starved or hoarding. The bound is loose — it catches a broken
         ring, not statistical wobble. *)
      check bool_t (Printf.sprintf "shard %d within balance bounds (%d)" i c) true
        (c > 200 && c < 1000))
    counts

let test_ring_stability_on_add () =
  (* Adding a fifth shard to four must remap roughly 1/5 of keys — the
     consistent-hash contract. Modulo hashing would remap ~4/5. *)
  let before = Router.create [ 0; 1; 2; 3 ] in
  let after = Router.add before 4 in
  let ks = keys 2000 in
  let moved =
    List.fold_left
      (fun acc k -> if Router.route before k <> Router.route after k then acc + 1 else acc)
      0 ks
  in
  let frac = float_of_int moved /. float_of_int (List.length ks) in
  check bool_t (Printf.sprintf "moved fraction %.3f ≤ 0.30" frac) true (frac <= 0.30);
  check bool_t (Printf.sprintf "moved fraction %.3f > 0" frac) true (moved > 0)

let test_ring_remove_only_moves_victims () =
  (* Dropping a shard must not disturb keys homed elsewhere. *)
  let before = Router.create [ 0; 1; 2; 3 ] in
  let after = Router.remove before 2 in
  List.iter
    (fun k ->
      let b = Router.route before k in
      if b <> 2 then check int_t "non-victim key stays put" b (Router.route after k))
    (keys 1000)

let test_ring_route_excluding () =
  let r = Router.create [ 0; 1; 2 ] in
  List.iter
    (fun k ->
      let home = Router.route r k in
      (match Router.route_excluding r ~exclude:(fun id -> id = home) k with
      | None -> Alcotest.fail "two healthy shards left, got none"
      | Some id -> check bool_t "failover avoids the dead shard" true (id <> home));
      match Router.route_excluding r ~exclude:(fun _ -> true) k with
      | None -> ()
      | Some _ -> Alcotest.fail "all excluded must yield none")
    (keys 100)

(* ------------------------------------------------------------------ *)
(* Live clusters                                                       *)
(* ------------------------------------------------------------------ *)

let users_tpl =
  "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"

let with_cluster ?(shards = 2) f =
  let cluster =
    Shard.start
      ~config:{ Shard.default_cluster_config with Shard.shards; drain_timeout_s = 5. }
      ()
  in
  Fun.protect ~finally:(fun () -> Shard.shutdown cluster) (fun () -> f cluster)

let gen cluster body =
  let status, _, _ =
    Shard.generate cluster ~id:"t" ~engine:"host" ~level:Docgen.Spec.Full ~deadline_ms:0
      ~body
  in
  status

(* Distinct bodies so the ring spreads them over both shards. *)
let bodies = List.init 8 (fun i -> Printf.sprintf "%s<!-- v%d -->" users_tpl i)

let test_cluster_serves () =
  with_cluster (fun cluster ->
      check int_t "all shards healthy" 2 (Shard.healthy_count cluster);
      List.iter (fun b -> check int_t "forwarded generate" 200 (gen cluster b)) bodies;
      (* The aggregated exposition carries per-shard labels and health. *)
      let m = Shard.metrics cluster in
      check bool_t "shard-labeled samples" true
        (Astring.String.is_infix ~affix:"shard=\"0\"" m
        && Astring.String.is_infix ~affix:"shard=\"1\"" m);
      check bool_t "health gauge present" true
        (Astring.String.is_infix ~affix:"lopsided_shard_healthy" m))

let test_cluster_failover_on_kill () =
  with_cluster (fun cluster ->
      List.iter (fun b -> check int_t "warm" 200 (gen cluster b)) bodies;
      (* Kill one backend outright: requests homed there must fail over
         to the survivor without any client-visible failure. *)
      let victim = (Shard.pids cluster).(0) in
      Unix.kill victim Sys.sigkill;
      List.iter (fun b -> check int_t "served across the kill" 200 (gen cluster b)) bodies;
      check bool_t "failovers counted" true (Shard.failovers cluster >= 1);
      (* The probe loop reaps the corpse and respawns; give it a moment. *)
      let deadline = Clock.now () +. 10. in
      while Shard.restarts cluster < 1 && Clock.now () < deadline do
        Thread.delay 0.05
      done;
      check bool_t "dead shard respawned" true (Shard.restarts cluster >= 1);
      let deadline = Clock.now () +. 10. in
      while Shard.healthy_count cluster < 2 && Clock.now () < deadline do
        Thread.delay 0.05
      done;
      check int_t "back to full strength" 2 (Shard.healthy_count cluster);
      check bool_t "respawn got a fresh pid" true ((Shard.pids cluster).(0) <> victim);
      List.iter (fun b -> check int_t "served after respawn" 200 (gen cluster b)) bodies)

let test_cluster_rolling_restart () =
  with_cluster (fun cluster ->
      List.iter (fun b -> check int_t "warm" 200 (gen cluster b)) bodies;
      let before = Array.copy (Shard.pids cluster) in
      (* Serve continuously while the roll replaces every backend. *)
      let stop = Atomic.make false in
      let failures = Atomic.make 0 in
      let hammer =
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              List.iter
                (fun b -> if gen cluster b <> 200 then Atomic.incr failures)
                bodies
            done)
          ()
      in
      Shard.rolling_restart cluster;
      Atomic.set stop true;
      Thread.join hammer;
      check int_t "zero failed requests during the roll" 0 (Atomic.get failures);
      check int_t "every shard reloaded" 2 (Shard.reloads cluster);
      let after = Shard.pids cluster in
      Array.iteri
        (fun i pid ->
          check bool_t (Printf.sprintf "shard %d replaced" i) true (pid <> before.(i)))
        after;
      List.iter (fun b -> check int_t "served after the roll" 200 (gen cluster b)) bodies)

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "ring placement is order-independent" `Quick
          test_ring_deterministic;
        Alcotest.test_case "ring balances keys across shards" `Quick test_ring_balance;
        Alcotest.test_case "adding a shard remaps ~1/N of keys" `Quick
          test_ring_stability_on_add;
        Alcotest.test_case "removing a shard moves only its keys" `Quick
          test_ring_remove_only_moves_victims;
        Alcotest.test_case "route_excluding skips dead shards" `Quick
          test_ring_route_excluding;
        Alcotest.test_case "live cluster forwards and labels metrics" `Quick
          test_cluster_serves;
        Alcotest.test_case "live failover on SIGKILL, then respawn" `Quick
          test_cluster_failover_on_kill;
        Alcotest.test_case "rolling restart is zero-downtime" `Quick
          test_cluster_rolling_restart;
      ] );
  ]
