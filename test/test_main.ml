let () =
  (* The shard tests spawn backend processes by re-exec'ing this binary;
     when this IS such a backend, serve frames and exit instead of
     running the suite. Must come before anything else in main. *)
  Server.Shard.maybe_run_backend ();
  (* Likewise the store tests spawn crash-oracle child ingesters and
     replica store backends. *)
  Store.Oracle.maybe_run_child ();
  Store.Replica.maybe_run_backend ();
  Alcotest.run "lopsided"
    (Test_xml_base.suite @ Test_xquery.suite @ Test_xquery_extra.suite @ Test_awb.suite @ Test_awb_edit.suite @ Test_awb_store.suite @ Test_awb_query.suite
   @ Test_docgen.suite @ Test_eval_perf.suite @ Test_plan.suite @ Test_docgen_random.suite @ Test_xqlib.suite @ Test_xslt.suite @ Test_use_cases.suite @ Test_golden.suite @ Test_cli.suite @ Test_paper_tables.suite @ Test_service.suite @ Test_limits.suite @ Test_server.suite @ Test_shard.suite @ Test_chaos.suite @ Test_store.suite)
