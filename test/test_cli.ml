(* End-to-end tests of the command-line tools, driving the built binaries
   the way a user would. The dune stanza declares the executables as test
   dependencies, so they sit at ../bin/ relative to the test's cwd
   (_build/default/test). *)

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

type outcome = { code : int; out : string }

let run_cli cmd =
  let tmp = Filename.temp_file "lopsided-cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote tmp)) in
  let ic = open_in_bin tmp in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  { code; out = String.trim out }

let available = Sys.file_exists "../bin/xq.exe"

let skip_unless_available () =
  if not available then Alcotest.skip ()

let test_xq_basic () =
  skip_unless_available ();
  let r = run_cli "../bin/xq.exe -e 'for $i in 1 to 3 return $i * $i'" in
  check int_t "exit" 0 r.code;
  check string_t "squares" "1\n4\n9" r.out

let test_xq_error_codes () =
  skip_unless_available ();
  let r = run_cli "../bin/xq.exe -e '1 +'" in
  check int_t "syntax error exits 2" 2 r.code;
  check bool_t "mentions code" true (Astring.String.is_infix ~affix:"XPST0003" r.out);
  let r = run_cli "../bin/xq.exe" in
  check int_t "no query is a usage error" 1 r.code

let test_xq_input_and_galax () =
  skip_unless_available ();
  let xml = Filename.temp_file "lopsided-cli" ".xml" in
  let oc = open_out xml in
  output_string oc "<lib><b>1</b><b>2</b></lib>";
  close_out oc;
  let r = run_cli (Printf.sprintf "../bin/xq.exe -e 'sum(lib/b)' -i %s" (Filename.quote xml)) in
  Sys.remove xml;
  check string_t "sum over doc" "3" r.out;
  let r = run_cli "../bin/xq.exe -e 'x' --galax" in
  check bool_t "galax message" true
    (Astring.String.is_infix ~affix:"$glx:dot" r.out)

let test_xq_explain () =
  skip_unless_available ();
  let r =
    run_cli
      "../bin/xq.exe --galax --explain -e 'let $d := trace(1, \"p\") let $k := 1 + 1 return $k'"
  in
  check int_t "exit" 0 r.code;
  check bool_t "shows optimized program" true
    (Astring.String.is_infix ~affix:"let $k := 2 return $k" r.out);
  check bool_t "reports eliminated trace" true
    (Astring.String.is_infix ~affix:"1 traces eliminated" r.out)

let test_awbq () =
  skip_unless_available ();
  let r =
    run_cli
      "../bin/awbq.exe -q 'start type(User); sort-by label' --sample banking"
  in
  check int_t "exit" 0 r.code;
  check bool_t "finds alice" true (Astring.String.is_infix ~affix:"alice" r.out);
  check bool_t "count line" true (Astring.String.is_infix ~affix:"3 result(s)" r.out);
  (* The two backends give the same rows. *)
  let r2 =
    run_cli
      "../bin/awbq.exe -q 'start type(User); sort-by label' --sample banking --backend xquery"
  in
  check string_t "backends agree on stdout" r.out r2.out;
  (* --compile prints XQuery. *)
  let r3 = run_cli "../bin/awbq.exe -q 'start type(User)' --sample banking --compile" in
  check bool_t "compiled form" true (Astring.String.is_infix ~affix:"$model/node" r3.out);
  (* Parse errors exit nonzero. *)
  let r4 = run_cli "../bin/awbq.exe -q 'zigzag' --sample banking" in
  check int_t "bad query" 1 r4.code

let test_awbdoc () =
  skip_unless_available ();
  let tpl = Filename.temp_file "lopsided-cli" ".xml" in
  let oc = open_out tpl in
  output_string oc
    "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>";
  close_out oc;
  let r =
    run_cli (Printf.sprintf "../bin/awbdoc.exe -t %s --sample banking" (Filename.quote tpl))
  in
  check int_t "exit" 0 r.code;
  check bool_t "document" true (Astring.String.is_infix ~affix:"<p>alice</p>" r.out);
  (* Both engines from the CLI too. *)
  let rf =
    run_cli
      (Printf.sprintf "../bin/awbdoc.exe -t %s --sample banking --engine functional"
         (Filename.quote tpl))
  in
  Sys.remove tpl;
  (* stderr (problems) rides along in both captures; compare whole
     outputs. *)
  check string_t "engines agree via CLI" r.out rf.out

let test_awbserve () =
  skip_unless_available ();
  let dir = Filename.temp_file "lopsided-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name body =
    let oc = open_out (Filename.concat dir name) in
    output_string oc body;
    close_out oc
  in
  write "users.xml"
    "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>";
  write "broken.xml" "<document><for nodes=\"start type(User)\"><p><label/>";
  let r =
    run_cli
      (Printf.sprintf
         "../bin/awbserve.exe -T %s --sample banking --repeat 2 --domains 2 --stats \
          --metrics"
         (Filename.quote dir))
  in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  (* broken.xml fails, so the batch exits nonzero — but the good
     template still generates on every round and the counters print. *)
  check int_t "exit" 1 r.code;
  check bool_t "good template ok" true (Astring.String.is_infix ~affix:"ok   users.1" r.out);
  check bool_t "bad template isolated" true (Astring.String.is_infix ~affix:"FAIL broken.2" r.out);
  check bool_t "cache counters shown" true (Astring.String.is_infix ~affix:"template cache" r.out);
  check bool_t "prometheus metrics shown" true
    (Astring.String.is_infix ~affix:"lopsided_service_requests_total" r.out)

let test_xqsh_scripted () =
  skip_unless_available ();
  let script = Filename.temp_file "lopsided-cli" ".xqs" in
  let oc = open_out script in
  output_string oc ":let xs (1 to 4)\nsum($xs)\n:vars\n:quit\n";
  close_out oc;
  let r = run_cli (Printf.sprintf "../bin/xqsh.exe < %s" (Filename.quote script)) in
  Sys.remove script;
  check int_t "exit" 0 r.code;
  check bool_t "sum printed" true (Astring.String.is_infix ~affix:"10" r.out);
  check bool_t "vars listed" true (Astring.String.is_infix ~affix:"$xs" r.out)

let suite =
  [
    ( "cli",
      [
        Alcotest.test_case "xq basics" `Quick test_xq_basic;
        Alcotest.test_case "xq error codes" `Quick test_xq_error_codes;
        Alcotest.test_case "xq input + galax" `Quick test_xq_input_and_galax;
        Alcotest.test_case "xq explain" `Quick test_xq_explain;
        Alcotest.test_case "awbq" `Quick test_awbq;
        Alcotest.test_case "awbdoc" `Quick test_awbdoc;
        Alcotest.test_case "awbserve" `Quick test_awbserve;
        Alcotest.test_case "xqsh scripted" `Quick test_xqsh_scripted;
      ] );
  ]
