(* Tests for the AWB substrate: metamodel, model, XML round-trip, advisory
   validation, synthetic generation. *)

module MM = Awb.Metamodel
module M = Awb.Model
module IO = Awb.Xml_io
module V = Awb.Validate

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Metamodel                                                           *)
(* ------------------------------------------------------------------ *)

let mm = Awb.Samples.it_architecture

let test_type_hierarchy () =
  check bool_t "User <= Person" true (MM.is_subtype mm "User" "Person");
  check bool_t "User <= Element" true (MM.is_subtype mm "User" "Element");
  check bool_t "reflexive" true (MM.is_subtype mm "Server" "Server");
  check bool_t "not supertype" false (MM.is_subtype mm "Person" "User");
  check bool_t "unrelated" false (MM.is_subtype mm "Server" "Person");
  check bool_t "unknown only itself" true (MM.is_subtype mm "Alien" "Alien");
  check bool_t "unknown not Element" false (MM.is_subtype mm "Alien" "Element")

let test_relation_hierarchy () =
  check bool_t "favors <= likes" true (MM.is_subrelation mm "favors" "likes");
  check bool_t "likes not <= favors" false (MM.is_subrelation mm "likes" "favors")

let test_inherited_properties () =
  let props = MM.properties_of mm "User" in
  check bool_t "own property" true (List.mem_assoc "superuser" props);
  check bool_t "parent property" true (List.mem_assoc "firstName" props);
  check bool_t "grandparent property" true (List.mem_assoc "name" props)

let test_duplicate_type_rejected () =
  let m2 = MM.create "x" in
  let m2 = MM.add_node_type m2 "A" in
  (match MM.add_node_type m2 "A" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate node type accepted");
  match MM.add_node_type m2 "B" ~parent:"Nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown parent accepted"

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_basics () =
  let m = Awb.Samples.banking_model () in
  check bool_t "has nodes" true (M.node_count m > 10);
  check bool_t "has relations" true (M.relation_count m > 10);
  let users = M.nodes_of_type m "User" in
  check int_t "three users" 3 (List.length users);
  (* nodes_of_type includes subtypes. *)
  check int_t "users are persons" 3 (List.length (M.nodes_of_type m "Person"));
  let alice = List.find (fun n -> M.prop_string n "name" = "alice") users in
  check string_t "label" "alice" (M.label m alice);
  check string_t "prop" "Alice" (M.prop_string alice "firstName");
  check string_t "missing prop" "" (M.prop_string alice "nope")

let test_follow () =
  let m = Awb.Samples.banking_model () in
  let alice =
    List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes_of_type m "User")
  in
  let bob =
    List.find (fun n -> M.prop_string n "name" = "bob") (M.nodes_of_type m "User")
  in
  check int_t "alice likes one" 1 (List.length (M.follow m alice ~rtype:"likes" `Forward));
  (* favors is a subrelation of likes. *)
  check int_t "bob likes via favors" 1 (List.length (M.follow m bob ~rtype:"likes" `Forward));
  check int_t "bob liked by alice" 1 (List.length (M.follow m bob ~rtype:"likes" `Backward));
  check int_t "alice follows all" 2 (List.length (M.follow m alice `Forward))

let test_user_overrides () =
  let m = Awb.Samples.banking_model () in
  let carol =
    List.find (fun n -> M.prop_string n "name" = "carol") (M.nodes_of_type m "User")
  in
  check string_t "user-added property" "Ming" (M.prop_string carol "middleName");
  (* carol uses TellerApp directly, off-metamodel. *)
  let used = M.follow m carol ~rtype:"uses" `Forward in
  check bool_t "off-metamodel edge stored" true
    (List.exists (fun n -> M.prop_string n "name" = "TellerApp") used)

let test_remove () =
  let m = Awb.Samples.banking_model () in
  let before_rels = M.relation_count m in
  let alice =
    List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes_of_type m "User")
  in
  M.remove_node m alice;
  check bool_t "node gone" true (M.find_node m alice.M.id = None);
  check bool_t "incident relations gone" true (M.relation_count m < before_rels);
  check bool_t "no dangling relations" true
    (List.for_all
       (fun (r : M.relation) ->
         M.find_node m r.M.source <> None && M.find_node m r.M.target <> None)
       (M.relations m))

(* ------------------------------------------------------------------ *)
(* XML round-trip                                                      *)
(* ------------------------------------------------------------------ *)

let test_export_shape () =
  let m = Awb.Samples.banking_model () in
  let doc = IO.export m in
  let root = List.hd (Xml_base.Node.children doc) in
  check string_t "root" "awb-model" (Xml_base.Node.name root);
  check (Alcotest.option string_t) "metamodel attr" (Some "it-architecture")
    (Xml_base.Node.attr root "metamodel");
  let nodes = Xml_base.Node.child_elements_named root "node" in
  check int_t "node elements" (M.node_count m) (List.length nodes);
  let rels = Xml_base.Node.child_elements_named root "relation" in
  check int_t "relation elements" (M.relation_count m) (List.length rels)

let test_roundtrip () =
  let m = Awb.Samples.banking_model () in
  let m' = IO.import_string mm (IO.export_string m) in
  check string_t "same export after roundtrip" (IO.export_string m) (IO.export_string m');
  check int_t "node count" (M.node_count m) (M.node_count m');
  check int_t "relation count" (M.relation_count m) (M.relation_count m')

let test_import_rejects_dangling () =
  let bad =
    "<awb-model metamodel=\"x\"><relation id=\"R1\" type=\"has\" source=\"N1\" \
     target=\"N2\"/></awb-model>"
  in
  match IO.import_string mm bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "dangling endpoints accepted"

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let codes ws = List.sort_uniq compare (List.map (fun w -> w.V.w_code) ws)

let test_validate_banking () =
  let ws = V.check (Awb.Samples.banking_model ()) in
  let cs = codes ws in
  (* The model deliberately contains: one version-less document, carol's
     middleName, and two off-metamodel relations (uses Program, has User
     is declared... has System->User is declared). *)
  check bool_t "missing version flagged" true (List.mem "missing-property" cs);
  check bool_t "undeclared property flagged" true (List.mem "undeclared-property" cs);
  check bool_t "off-metamodel relation flagged" true (List.mem "off-metamodel-relation" cs);
  (* exactly-one is satisfied: no warning. *)
  check bool_t "sbd ok" false (List.mem "exactly-one" cs)

let test_validate_exactly_one () =
  let m = M.create mm in
  let ws = V.check m in
  check bool_t "zero sbd flagged" true (List.mem "exactly-one" (codes ws));
  ignore (M.add_node m "SystemBeingDesigned" ~props:[ ("name", M.V_string "a") ]);
  ignore (M.add_node m "SystemBeingDesigned" ~props:[ ("name", M.V_string "b") ]);
  let ws = V.check m in
  check bool_t "two sbd flagged" true
    (List.exists
       (fun w -> w.V.w_code = "exactly-one" && w.V.w_message =
          "there should be exactly one SystemBeingDesigned node, but there were 2")
       ws)

let test_validate_glass_has_no_sbd_warning () =
  (* "the glass catalog doesn't have a SystemBeingDesigned node at all,
     nor a warning about it." *)
  let ws = V.check (Awb.Samples.glass_model ()) in
  check bool_t "no exactly-one warning" false (List.mem "exactly-one" (codes ws));
  check int_t "glass model is clean" 0 (List.length ws)

let test_validate_unknown_types () =
  let m = M.create mm in
  ignore (M.add_node m "SystemBeingDesigned");
  let alien = M.add_node m "Weasel" in
  let sbd = List.hd (M.nodes_of_type m "SystemBeingDesigned") in
  ignore (M.relate m "zaps" ~source:alien ~target:sbd);
  let cs = codes (V.check m) in
  check bool_t "unknown node type" true (List.mem "unknown-node-type" cs);
  check bool_t "unknown relation type" true (List.mem "unknown-relation-type" cs)

(* ------------------------------------------------------------------ *)
(* Synthetic models                                                    *)
(* ------------------------------------------------------------------ *)

let test_synth_deterministic () =
  let a = IO.export_string (Awb.Synth.generate_of_size ~seed:7 100) in
  let b = IO.export_string (Awb.Synth.generate_of_size ~seed:7 100) in
  check bool_t "same seed, same model" true (a = b);
  let c = IO.export_string (Awb.Synth.generate_of_size ~seed:8 100) in
  check bool_t "different seed, different model" true (a <> c)

let test_synth_shape () =
  let m = Awb.Synth.generate_of_size 200 in
  check bool_t "roughly sized" true (abs (M.node_count m - 200) < 60);
  check int_t "exactly one sbd" 1 (List.length (M.nodes_of_type m "SystemBeingDesigned"));
  check bool_t "has users" true (M.nodes_of_type m "User" <> []);
  check bool_t "has versionless documents" true
    (List.exists
       (fun (n : M.node) -> M.prop n "version" = None)
       (M.nodes_of_type m "Document"));
  (* Export of a synthetic model round-trips too. *)
  let m' = IO.import_string mm (IO.export_string m) in
  check int_t "roundtrip nodes" (M.node_count m) (M.node_count m')

(* Property: export/import round-trip over random synthetic models. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"synthetic models round-trip through XML" ~count:20
    QCheck.(pair (int_range 10 150) (int_range 1 1000))
    (fun (size, seed) ->
      let m = Awb.Synth.generate_of_size ~seed size in
      let s = IO.export_string m in
      IO.export_string (IO.import_string mm s) = s)

let suite =
  [
    ( "awb.metamodel",
      [
        Alcotest.test_case "type hierarchy" `Quick test_type_hierarchy;
        Alcotest.test_case "relation hierarchy" `Quick test_relation_hierarchy;
        Alcotest.test_case "inherited properties" `Quick test_inherited_properties;
        Alcotest.test_case "duplicate/unknown rejected" `Quick test_duplicate_type_rejected;
      ] );
    ( "awb.model",
      [
        Alcotest.test_case "basics" `Quick test_model_basics;
        Alcotest.test_case "follow relations" `Quick test_follow;
        Alcotest.test_case "user overrides" `Quick test_user_overrides;
        Alcotest.test_case "removal" `Quick test_remove;
      ] );
    ( "awb.xml",
      [
        Alcotest.test_case "export shape" `Quick test_export_shape;
        Alcotest.test_case "round-trip" `Quick test_roundtrip;
        Alcotest.test_case "dangling endpoints rejected" `Quick test_import_rejects_dangling;
      ] );
    ( "awb.validate",
      [
        Alcotest.test_case "banking warnings" `Quick test_validate_banking;
        Alcotest.test_case "exactly-one advisory" `Quick test_validate_exactly_one;
        Alcotest.test_case "glass catalog is quiet" `Quick test_validate_glass_has_no_sbd_warning;
        Alcotest.test_case "unknown types" `Quick test_validate_unknown_types;
      ] );
    ( "awb.synth",
      [
        Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
        Alcotest.test_case "shape" `Quick test_synth_shape;
      ] );
    ("awb.properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
  ]

(* ------------------------------------------------------------------ *)
(* Reflection: AWB retargeted to itself                                *)
(* ------------------------------------------------------------------ *)

let mm_fingerprint m2 =
  (* A canonical description of a metamodel for equality checks. *)
  let nt name =
    let t = Option.get (MM.find_node_type m2 name) in
    ( name,
      t.MM.nt_parent,
      List.sort compare t.MM.nt_properties,
      t.MM.nt_label_property )
  in
  let rt name =
    let t = Option.get (MM.find_relation_type m2 name) in
    (name, t.MM.rt_parent, List.sort compare t.MM.rt_pairs)
  in
  ( List.map nt (List.sort compare (MM.node_type_names m2)),
    List.map rt (List.sort compare (MM.relation_type_names m2)),
    List.sort compare (MM.advisories m2) )

let test_reflect_roundtrip () =
  List.iter
    (fun source ->
      let reflected = Awb.Reflect.metamodel_as_model source in
      (* The reflection is a clean model of the meta-metamodel. *)
      check int_t
        ("reflection of " ^ MM.name source ^ " is advisory-clean")
        0
        (List.length (V.check reflected));
      let back = Awb.Reflect.model_to_metamodel reflected in
      check bool_t ("roundtrip " ^ MM.name source) true
        (mm_fingerprint source = mm_fingerprint back))
    [ Awb.Samples.it_architecture; Awb.Samples.glass_catalog; Awb.Reflect.meta_metamodel ]

let test_reflect_queryable () =
  (* The whole point: the workbench machinery works on metamodels. *)
  let m = Awb.Reflect.metamodel_as_model Awb.Samples.it_architecture in
  let subtypes_of_person =
    Awb_query.Native.eval_string m "start node(nt-Person); follow extends backward"
  in
  check (Alcotest.list string_t) "who extends Person" [ "User" ]
    (List.map (fun n -> M.prop_string n "name") subtypes_of_person);
  let person_props =
    Awb_query.Native.eval_string m
      "start node(nt-Person); follow declares; sort-by label"
  in
  check (Alcotest.list string_t) "Person declares"
    [ "biography"; "birthYear"; "firstName"; "lastName" ]
    (List.map (fun n -> M.prop_string n "name") person_props)

let test_reflect_docgen () =
  (* Generate metamodel documentation with the ordinary docgen. *)
  let m = Awb.Reflect.metamodel_as_model Awb.Samples.glass_catalog in
  let template =
    Xml_base.Parser.strip_whitespace
      (Xml_base.Parser.parse_string
         "<document><for nodes=\"start type(NodeType); sort-by label\">\
          <p><label/>: <count-of query=\"start focus; follow declares\"/> properties</p>\
          </for></document>")
  in
  let r = Docgen.generate ~engine:`Host m ~template in
  check bool_t "documents GlassPiece" true
    (Astring.String.is_infix ~affix:"GlassPiece: 3 properties"
       (Xml_base.Serialize.to_string r.Docgen.Spec.document))

let suite =
  suite
  @ [
      ( "awb.reflect",
        [
          Alcotest.test_case "metamodel <-> model round-trip" `Quick test_reflect_roundtrip;
          Alcotest.test_case "metamodels are queryable" `Quick test_reflect_queryable;
          Alcotest.test_case "metamodel documentation" `Quick test_reflect_docgen;
        ] );
    ]
