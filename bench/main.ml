(* The benchmark harness: regenerates every table/figure-grade claim in
   the paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
   paper-vs-measured). Two kinds of output per experiment:

   - printed sweeps/tables: the series a figure would plot;
   - a Bechamel micro-benchmark group: one Test.make per compared
     configuration, OLS-estimated time per run.

   Run with: dune exec bench/main.exe                      (everything)
             dune exec bench/main.exe -- --quick           (smaller sweeps)
             dune exec bench/main.exe -- --only e9 --json  (one experiment,
                                                   JSON to BENCH_eval.json) *)

open Bechamel
open Toolkit
module N = Xml_base.Node
module M = Awb.Model
module Spec = Docgen.Spec

let argv = Array.to_list Sys.argv
let quick = List.exists (fun a -> a = "quick" || a = "--quick") argv
let json = List.mem "--json" argv

let only =
  let rec go = function
    | "--only" :: name :: _ -> Some (String.lowercase_ascii name)
    | _ :: rest -> go rest
    | [] -> None
  in
  go argv

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---------------------------------------------------------------- *)
(* Helpers                                                           *)
(* ---------------------------------------------------------------- *)

(* Monotonic wall time: NTP slews must not show up as speedups. *)
let time_ms f =
  let t0 = Clock.now () in
  let r = f () in
  (r, (Clock.now () -. t0) *. 1000.)

(* Best-of-k wall time in ms. *)
let best_ms ?(k = 3) f =
  let rec go best i =
    if i = 0 then best
    else
      let _, t = time_ms f in
      go (Float.min best t) (i - 1)
  in
  go Float.infinity k

let run_bechamel_group ~name tests =
  let grouped = Test.make_grouped ~name tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if quick then 0.15 else 0.4))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n  bechamel (%s):\n" name;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (k, v) ->
         let est =
           match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> Float.nan
         in
         let unit, value =
           if est > 1e9 then ("s ", est /. 1e9)
           else if est > 1e6 then ("ms", est /. 1e6)
           else if est > 1e3 then ("us", est /. 1e3)
           else ("ns", est)
         in
         Printf.printf "    %-58s %10.2f %s/run\n" k value unit)

let template src =
  Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string src)

(* ---------------------------------------------------------------- *)
(* T1 / T2: the paper's literal tables                               *)
(* ---------------------------------------------------------------- *)

let t1_t2 () =
  section "T1/T2 - the paper's literal tables, regenerated";
  print_string (Lopsided.Paper_tables.t1_report ());
  print_newline ();
  print_string (Lopsided.Paper_tables.t2_report ())

(* ---------------------------------------------------------------- *)
(* E1: query calculus, native vs compiled-to-XQuery                  *)
(* ---------------------------------------------------------------- *)

let e1_queries =
  [
    ( "paper chain",
      "start type(User); follow likes; follow uses to(Program); distinct; sort-by label" );
    ("omissions", "start type(Document); filter not-has-prop(version); sort-by label");
    ("type scan", "start type(Person); sort-by label");
  ]

let e1 () =
  section
    "E1 - AWB query calculus: native vs via-XQuery (\"preposterously inefficient\")";
  Printf.printf "  %-8s %-14s %12s %12s %14s %8s\n" "nodes" "query" "native ms"
    "compiled ms" "interpreted ms" "ratio";
  let sizes = if quick then [ 30; 100 ] else [ 30; 100; 300; 1000 ] in
  List.iter
    (fun size ->
      let model = Awb.Synth.generate_of_size ~seed:5 size in
      let export = List.hd (N.children (Awb.Xml_io.export model)) in
      List.iter
        (fun (label, q) ->
          let parsed = Awb_query.Parser.parse q in
          let t_nat = best_ms (fun () -> ignore (Awb_query.Native.eval model parsed)) in
          let k = if size > 300 then 1 else 3 in
          let t_xq =
            best_ms ~k (fun () ->
                ignore (Awb_query.To_xquery.eval_on_export model ~export_root:export parsed))
          in
          (* The interpreter-in-XQuery tier is quadratic-ish; past ~300
             nodes a single run takes tens of seconds, so the sweep skips
             it (the trend is established well before that). *)
          let t_interp =
            if size > 300 then None
            else
              Some
                (best_ms ~k (fun () ->
                     ignore
                       (Awb_query.Xq_interp.eval_on_export model ~export_root:export parsed)))
          in
          Printf.printf "  %-8d %-14s %12.3f %12.3f %14s %7.0fx\n" (M.node_count model)
            label t_nat t_xq
            (match t_interp with Some t -> Printf.sprintf "%.3f" t | None -> "(skipped)")
            (t_xq /. Float.max 1e-9 t_nat))
        e1_queries)
    sizes;
  let model = Awb.Synth.generate_of_size ~seed:5 100 in
  let export = List.hd (N.children (Awb.Xml_io.export model)) in
  let parsed = Awb_query.Parser.parse (snd (List.hd e1_queries)) in
  run_bechamel_group ~name:"e1_calculus_native_vs_xquery"
    [
      Test.make ~name:"native"
        (Staged.stage (fun () -> ignore (Awb_query.Native.eval model parsed)));
      Test.make ~name:"via_xquery"
        (Staged.stage (fun () ->
             ignore (Awb_query.To_xquery.eval_on_export model ~export_root:export parsed)));
      Test.make ~name:"via_xquery_incl_export"
        (Staged.stage (fun () -> ignore (Awb_query.To_xquery.eval model parsed)));
      Test.make ~name:"interpreter_in_xquery"
        (Staged.stage (fun () ->
             ignore (Awb_query.Xq_interp.eval_on_export model ~export_root:export parsed)));
    ]

(* ---------------------------------------------------------------- *)
(* E2: error values vs exceptions                                    *)
(* ---------------------------------------------------------------- *)

(* A template dominated by lookups that can fail: one required-property
   read per document node; the failing variant hits the documents
   (one in three) that lack version info. *)
let e2_template_ok =
  "<document><for nodes=\"start type(Document); filter has-prop(version)\">\
   <p><label/>: v<required-property name=\"version\"/></p></for></document>"

let e2_template_failing =
  "<document><for nodes=\"start type(Document); sort-by label\">\
   <p><label/>: v<required-property name=\"version\"/></p></for></document>"

let e2 () =
  section "E2 - error handling: error values (functional) vs exceptions (host)";
  Printf.printf "  %-8s %-10s %12s %12s %14s %12s\n" "docs" "outcome" "func ms" "host ms"
    "error checks" "exceptions";
  let sizes = if quick then [ 100; 400 ] else [ 100; 400; 1600 ] in
  List.iter
    (fun size ->
      let model =
        Awb.Synth.generate ~seed:3
          { (Awb.Synth.shape_of_size size) with Awb.Synth.documents = size / 2 }
      in
      let docs = List.length (M.nodes_of_type model "Document") in
      let tpl_ok = template e2_template_ok in
      let tpl_fail = template e2_template_failing in
      let backend = Spec.Native_queries in
      let rf = ref None and rh = ref None in
      let t_f =
        best_ms (fun () ->
            rf := Some (Docgen.generate ~engine:`Functional ~backend model ~template:tpl_ok))
      in
      let t_h =
        best_ms (fun () ->
            rh := Some (Docgen.generate ~engine:`Host ~backend model ~template:tpl_ok))
      in
      let sf = (Option.get !rf).Spec.stats and sh = (Option.get !rh).Spec.stats in
      Printf.printf "  %-8d %-10s %12.3f %12.3f %14d %12d\n" docs "success" t_f t_h
        sf.Spec.error_checks sh.Spec.exceptions_raised;
      let t_ff =
        best_ms (fun () ->
            rf := Some (Docgen.generate ~engine:`Functional ~backend model ~template:tpl_fail))
      in
      let t_hf =
        best_ms (fun () ->
            rh := Some (Docgen.generate ~engine:`Host ~backend model ~template:tpl_fail))
      in
      let sff = (Option.get !rf).Spec.stats and shf = (Option.get !rh).Spec.stats in
      Printf.printf "  %-8d %-10s %12.3f %12.3f %14d %12d\n" docs "failure" t_ff t_hf
        sff.Spec.error_checks shf.Spec.exceptions_raised)
    sizes;
  let model = Awb.Synth.generate_of_size ~seed:3 300 in
  let tpl_ok = template e2_template_ok in
  run_bechamel_group ~name:"e2_error_values_vs_exceptions"
    [
      Test.make ~name:"functional_error_values"
        (Staged.stage (fun () ->
             ignore
               (Docgen.generate ~engine:`Functional ~backend:Spec.Native_queries model
                  ~template:tpl_ok)));
      Test.make ~name:"host_exceptions"
        (Staged.stage (fun () ->
             ignore
               (Docgen.generate ~engine:`Host ~backend:Spec.Native_queries model
                  ~template:tpl_ok)));
    ]

(* ---------------------------------------------------------------- *)
(* E3: multi-phase copying vs single pass + patch                    *)
(* ---------------------------------------------------------------- *)

(* Query-light body: the cost measured is the generation architecture
   (phases and copies), not the calculus evaluator, which E1 covers. *)
let e3_template =
  "<document><table-of-contents/>\
   <marker-table name=\"T1\" rows=\"start type(System); sort-by label; limit 10\" \
   cols=\"start type(Program); sort-by label; limit 10\" rel=\"runs\"/>\
   <for nodes=\"start type(User); sort-by label\"><section><heading><label/></heading>\
   <p><property name=\"firstName\"/> <property name=\"lastName\"/> \
   (<property name=\"superuser\"/>)</p>\
   <p>blob with T1-GOES-HERE inside</p></section></for>\
   <table-of-omissions types=\"User Document\"/></document>"

let e3 () =
  section "E3 - mutability vs functionality: 5 copy phases vs 1 pass + patch";
  Printf.printf "  %-8s %12s %12s %8s %14s %14s\n" "users" "func ms" "host ms" "ratio"
    "func copies" "host copies";
  let sizes = if quick then [ 50; 150 ] else [ 50; 150; 400; 800 ] in
  let tpl = template e3_template in
  List.iter
    (fun size ->
      let model = Awb.Synth.generate_of_size ~seed:9 size in
      let users = List.length (M.nodes_of_type model "User") in
      let backend = Spec.Native_queries in
      let rf = ref None and rh = ref None in
      let t_f =
        best_ms (fun () ->
            rf := Some (Docgen.generate ~engine:`Functional ~backend model ~template:tpl))
      in
      let t_h =
        best_ms (fun () ->
            rh := Some (Docgen.generate ~engine:`Host ~backend model ~template:tpl))
      in
      let sf = (Option.get !rf).Spec.stats and sh = (Option.get !rh).Spec.stats in
      Printf.printf "  %-8d %12.3f %12.3f %7.1fx %14d %14d\n" users t_f t_h
        (t_f /. Float.max 1e-9 t_h)
        sf.Spec.nodes_copied sh.Spec.nodes_copied)
    sizes;
  let model = Awb.Synth.generate_of_size ~seed:9 200 in
  run_bechamel_group ~name:"e3_multiphase_vs_mutation"
    [
      Test.make ~name:"functional_five_phases"
        (Staged.stage (fun () ->
             ignore
               (Docgen.generate ~engine:`Functional ~backend:Spec.Native_queries model
                  ~template:tpl)));
      Test.make ~name:"host_single_pass_plus_patch"
        (Staged.stage (fun () ->
             ignore
               (Docgen.generate ~engine:`Host ~backend:Spec.Native_queries model ~template:tpl)));
    ]

(* ---------------------------------------------------------------- *)
(* E4: grid tables, all-at-once vs skeleton+fill                     *)
(* ---------------------------------------------------------------- *)

let e4 () =
  section "E4 - grid tables: all-at-once (functional) vs skeleton + fill (host)";
  let model = Awb.Synth.generate_of_size ~seed:4 600 in
  let users = M.nodes_of_type model "User" in
  let systems = M.nodes_of_type model "System" in
  let take n l = List.filteri (fun i _ -> i < n) l in
  Printf.printf "  %-10s %14s %18s %8s\n" "rows x cols" "all-at-once ms" "skeleton+fill ms"
    "ratio";
  let dims = if quick then [ 5; 20 ] else [ 5; 20; 50; 100 ] in
  List.iter
    (fun d ->
      let rows = take d users and cols = take d systems in
      let t_fun =
        best_ms (fun () ->
            ignore (Docgen.Functional_engine.build_grid_all_at_once model "uses" rows cols))
      in
      let t_host =
        best_ms (fun () ->
            ignore (Docgen.Host_engine.build_grid_skeleton_and_fill model "uses" rows cols))
      in
      Printf.printf "  %-10s %14.3f %18.3f %7.2fx\n"
        (Printf.sprintf "%dx%d" (List.length rows) (List.length cols))
        t_fun t_host
        (t_fun /. Float.max 1e-9 t_host))
    dims;
  let rows = take 20 users and cols = take 10 systems in
  (* Both must produce identical XML, so the comparison is purely about
     construction style. *)
  assert (
    Xml_base.Serialize.to_string
      (Docgen.Functional_engine.build_grid_all_at_once model "uses" rows cols)
    = Xml_base.Serialize.to_string
        (Docgen.Host_engine.build_grid_skeleton_and_fill model "uses" rows cols));
  run_bechamel_group ~name:"e4_table_allatonce_vs_skeleton"
    [
      Test.make ~name:"all_at_once"
        (Staged.stage (fun () ->
             ignore (Docgen.Functional_engine.build_grid_all_at_once model "uses" rows cols)));
      Test.make ~name:"skeleton_and_fill"
        (Staged.stage (fun () ->
             ignore (Docgen.Host_engine.build_grid_skeleton_and_fill model "uses" rows cols)));
    ]

(* ---------------------------------------------------------------- *)
(* E5: sequence-encoded string sets vs host data structures          *)
(* ---------------------------------------------------------------- *)

let e5_build_xq_set words =
  (* Build the set by repeated util:set-add — each add is a linear
     membership scan over a flat sequence, in XQuery. *)
  let lit = "(" ^ String.concat "," (List.map (Printf.sprintf "'%s'") words) ^ ")" in
  Printf.sprintf
    "declare function local:build($ws) { \
     if (empty($ws)) then util:set-empty() \
     else util:set-add(local:build(subsequence($ws, 2)), $ws[1]) }; \
     util:set-size(local:build(%s))"
    lit

let e5 () =
  section "E5 - sets: sequence-of-strings (XQuery) vs list vs Hashtbl (host)";
  let mk_words n = List.init n (fun i -> Printf.sprintf "w%d" (i mod ((n / 2) + 1))) in
  Printf.printf "  %-8s %14s %12s %12s\n" "inserts" "xquery ms" "list ms" "hashtbl ms";
  let sizes = if quick then [ 20; 80 ] else [ 20; 80; 200; 400 ] in
  List.iter
    (fun n ->
      let words = mk_words n in
      let q = e5_build_xq_set words in
      let t_xq = best_ms ~k:1 (fun () -> ignore (Xqlib.Xq_utils.eval q)) in
      let t_list =
        best_ms (fun () ->
            ignore
              (List.fold_left
                 (fun acc w -> if List.mem w acc then acc else w :: acc)
                 [] words))
      in
      let t_tbl =
        best_ms (fun () ->
            let tbl = Hashtbl.create 64 in
            List.iter (fun w -> Hashtbl.replace tbl w ()) words)
      in
      Printf.printf "  %-8d %14.3f %12.4f %12.4f\n" n t_xq t_list t_tbl)
    sizes;
  let words = mk_words 60 in
  let q = e5_build_xq_set words in
  run_bechamel_group ~name:"e5_sequence_sets_vs_hashtbl"
    [
      Test.make ~name:"xquery_sequence_set"
        (Staged.stage (fun () -> ignore (Xqlib.Xq_utils.eval q)));
      Test.make ~name:"ocaml_list_set"
        (Staged.stage (fun () ->
             ignore
               (List.fold_left
                  (fun acc w -> if List.mem w acc then acc else w :: acc)
                  [] words)));
      Test.make ~name:"ocaml_hashtbl"
        (Staged.stage (fun () ->
             let tbl = Hashtbl.create 64 in
             List.iter (fun w -> Hashtbl.replace tbl w ()) words));
    ]

(* ---------------------------------------------------------------- *)
(* E6: trace() and the dead-code optimizer                           *)
(* ---------------------------------------------------------------- *)

let e6_query n_traces ~dead =
  (* A loop with [n_traces] trace calls per iteration: dead (bound to
     throwaway lets) or insinuated into the live result. *)
  let dead_lets =
    String.concat " "
      (List.init n_traces (fun i -> Printf.sprintf "let $dummy%d := trace($x, 'probe%d')" i i))
  in
  let live_lets =
    String.concat " "
      (List.init n_traces (fun i -> Printf.sprintf "let $x%d := trace($x, 'probe%d')" i i))
  in
  let live_sum = String.concat " + " (List.init n_traces (fun i -> Printf.sprintf "$x%d" i)) in
  if dead then
    Printf.sprintf "sum(for $i in 1 to 50 return let $x := $i * $i %s return $x)" dead_lets
  else
    Printf.sprintf "sum(for $i in 1 to 50 return let $x := $i * $i %s return $x + %s)"
      live_lets live_sum

let e6 () =
  section "E6 - debugging: trace() vs dead-code elimination";
  let measure compat q =
    let n = ref 0 in
    let compiled = Xquery.Engine.compile ~compat q in
    let t =
      best_ms (fun () ->
          n := 0;
          ignore (Xquery.Engine.execute ~trace_out:(fun _ -> incr n) compiled))
    in
    let eliminated =
      match compiled.Xquery.Engine.opt_stats with
      | Some s -> s.Xquery.Optimizer.traces_eliminated
      | None -> 0
    in
    (t, !n, eliminated)
  in
  Printf.printf "  %-46s %10s %14s %12s\n" "configuration" "ms" "trace lines" "eliminated";
  let dead_q = e6_query 4 ~dead:true in
  let live_q = e6_query 4 ~dead:false in
  let t, n, e = measure Xquery.Context.default_compat dead_q in
  Printf.printf "  %-46s %10.3f %14d %12d\n" "dead lets, fixed optimizer (traces kept)" t n e;
  let t, n, e = measure Xquery.Context.galax_compat dead_q in
  Printf.printf "  %-46s %10.3f %14d %12d\n" "dead lets, 2004 optimizer (traces deleted!)" t
    n e;
  let t, n, e = measure Xquery.Context.galax_compat live_q in
  Printf.printf "  %-46s %10.3f %14d %12d\n" "insinuated into live code (the workaround)" t n
    e;
  run_bechamel_group ~name:"e6_trace_dead_code"
    [
      Test.make ~name:"traces_preserved"
        (Staged.stage
           (let c = Xquery.Engine.compile ~compat:Xquery.Context.default_compat dead_q in
            fun () -> ignore (Xquery.Engine.execute ~trace_out:ignore c)));
      Test.make ~name:"traces_eliminated"
        (Staged.stage
           (let c = Xquery.Engine.compile ~compat:Xquery.Context.galax_compat dead_q in
            fun () -> ignore (Xquery.Engine.execute ~trace_out:ignore c)));
      Test.make ~name:"traces_insinuated"
        (Staged.stage
           (let c = Xquery.Engine.compile ~compat:Xquery.Context.galax_compat live_q in
            fun () -> ignore (Xquery.Engine.execute ~trace_out:ignore c)));
    ]

(* ---------------------------------------------------------------- *)
(* E7: the reimplementation inventory                                *)
(* ---------------------------------------------------------------- *)

let e7 () =
  section "E7 - reimplementation inventory (the paper's scope comparison)";
  let model = Awb.Samples.banking_model () in
  let tpl =
    template
      "<document><table-of-contents/><with-single type=\"SystemBeingDesigned\">\
       <section><heading><label/></heading>\
       <grid-table rows=\"start type(Server); sort-by label\" cols=\"start type(Program); \
       sort-by label\" rel=\"runs\"/></section></with-single>\
       <table-of-omissions types=\"Document\"/></document>"
  in
  let rf = Docgen.generate ~engine:`Functional ~backend:Spec.Xquery_queries model ~template:tpl in
  let rh = Docgen.generate ~engine:`Host ~backend:Spec.Native_queries model ~template:tpl in
  Printf.printf "  %-44s %-24s %-24s\n" "" "functional (XQuery era)" "host (the rewrite)";
  let row label a b = Printf.printf "  %-44s %-24s %-24s\n" label a b in
  row "error handling" "error values" "one exception type";
  row "whole-document passes"
    (string_of_int rf.Spec.stats.Spec.phases)
    (string_of_int rh.Spec.stats.Spec.phases);
  row "nodes copied between phases"
    (string_of_int rf.Spec.stats.Spec.nodes_copied)
    (string_of_int rh.Spec.stats.Spec.nodes_copied);
  row "error checks on this run"
    (string_of_int rf.Spec.stats.Spec.error_checks)
    (string_of_int rh.Spec.stats.Spec.error_checks);
  row "query backend" "compiled to XQuery" "native graph walk";
  row "queries run"
    (string_of_int rf.Spec.stats.Spec.queries_run)
    (string_of_int rh.Spec.stats.Spec.queries_run);
  row "identical output"
    (string_of_bool
       (Xml_base.Serialize.to_string rf.Spec.document
       = Xml_base.Serialize.to_string rh.Spec.document))
    "-";
  Printf.printf "\n  engine inventory: %d built-in XQuery function entries, %d template directives\n"
    (List.length Xquery.Functions.registry)
    (List.length Spec.directive_names)

(* ---------------------------------------------------------------- *)
(* E8: the service layer — compiled-artifact cache + domain batches  *)
(* ---------------------------------------------------------------- *)

let e8_template =
  "<document><table-of-contents/><for nodes=\"start type(User); sort-by label\">\
   <section><heading><label/></heading>\
   <p><value-of query=\"start focus; follow uses; distinct; sort-by label\"/></p>\
   <p><count-of query=\"start focus; follow uses to(Program); distinct\"/></p>\
   </section></for><table-of-omissions types=\"User\"/></document>"

let e8 () =
  section "E8 - service layer: compiled-artifact cache + multi-domain batches";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  cores available to the runtime: %d\n" cores;
  let model = Awb.Synth.generate_of_size ~seed:7 (if quick then 120 else 400) in
  let model_xml = Awb.Xml_io.export_string model in
  Printf.printf "  model export is %d KiB; batch = %d requests\n\n"
    (String.length model_xml / 1024)
    (if quick then 8 else 24);
  let n = if quick then 8 else 24 in
  let mk_batch tpl =
    List.init n (fun i ->
        Service.request
          ~id:(Printf.sprintf "req%d" i)
          ~template:(Service.Template_xml tpl)
          ~model:
            (Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml = model_xml })
          ())
  in
  let run_ok svc ~domains batch =
    let rs = Service.run_batch ~domains svc batch in
    List.map
      (fun (r : Service.response) ->
        match r.Service.result with
        | Ok out -> out.Service.document
        | Error e -> failwith (Service.error_to_string e))
      rs
  in
  (* Cold vs warm: capacity 0 re-parses the template and re-imports the
     model on every request; a warmed cache pays those costs once. The
     roster template keeps generation cheap, so the batch is bound by
     exactly the work the cache elides. *)
  let roster =
    "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for>\
     </document>"
  in
  let cache_batch = mk_batch roster in
  let cold_svc =
    Service.create ~config:{ Service.default_config with Service.cache_capacity = 0 } ()
  in
  let warm_svc = Service.create () in
  ignore (run_ok warm_svc ~domains:1 cache_batch) (* warm the caches *);
  let t_cold = best_ms ~k:2 (fun () -> ignore (run_ok cold_svc ~domains:1 cache_batch)) in
  let t_warm = best_ms ~k:2 (fun () -> ignore (run_ok warm_svc ~domains:1 cache_batch)) in
  Printf.printf "  %-34s %10.3f ms\n" "cold cache (reparse + reimport)" t_cold;
  Printf.printf "  %-34s %10.3f ms\n" "warm cache" t_warm;
  Printf.printf "  %-34s %9.2fx\n" "warm speedup" (t_cold /. Float.max 1e-9 t_warm);
  let c = Service.counters warm_svc in
  Printf.printf "  warm-cache hit rates: templates %d/%d, models %d/%d\n\n"
    c.Service.template_hits
    (c.Service.template_hits + c.Service.template_misses)
    c.Service.model_hits
    (c.Service.model_hits + c.Service.model_misses);
  (* Domain scaling on a generation-bound batch, with the serial run as
     the byte-identity oracle. On a single-core box the parallel numbers
     only measure overhead — the point of printing `cores` above. *)
  let scaling_batch = mk_batch e8_template in
  let reference = run_ok warm_svc ~domains:1 scaling_batch in
  let t1 = ref 0. in
  List.iter
    (fun domains ->
      let docs = ref [] in
      let t = best_ms ~k:2 (fun () -> docs := run_ok warm_svc ~domains scaling_batch) in
      if domains = 1 then t1 := t;
      Printf.printf "  %d domain%s %28s %10.3f ms  %6.2fx vs 1 domain  identical: %b\n"
        domains
        (if domains = 1 then " " else "s")
        "" t
        (!t1 /. Float.max 1e-9 t)
        (!docs = reference))
    [ 1; 2; 4 ]

(* ---------------------------------------------------------------- *)
(* Ablations: design choices DESIGN.md calls out                     *)
(* ---------------------------------------------------------------- *)

(* A1: what the optimizer actually buys on a small query corpus. *)
let a1 () =
  section "A1 (ablation) - optimizer on/off";
  let corpus =
    [
      ("constant folding", "sum(for $i in 1 to 200 return 2 * 3 + $i - 1 + 4 * 5)");
      ("dead lets", "for $i in 1 to 200 let $a := ($i, $i) let $b := reverse($a) return $i");
      ( "plain flwor",
        "count(for $i in 1 to 100 for $j in 1 to 10 where $i mod 7 eq $j return $i)" );
    ]
  in
  Printf.printf "  %-20s %14s %14s %8s\n" "query" "optimized ms" "unoptimized ms" "ratio";
  List.iter
    (fun (label, q) ->
      let copt = Xquery.Engine.compile ~optimize:true q in
      let craw = Xquery.Engine.compile ~optimize:false q in
      let t_on = best_ms (fun () -> ignore (Xquery.Engine.execute copt)) in
      let t_off = best_ms (fun () -> ignore (Xquery.Engine.execute craw)) in
      Printf.printf "  %-20s %14.3f %14.3f %7.2fx\n" label t_on t_off
        (t_off /. Float.max 1e-9 t_on))
    corpus

(* A2: the document generator's cost matrix: engine x query backend.
   The paper's original configuration is functional+XQuery; the rewrite
   is host+native. *)
let a2 () =
  section "A2 (ablation) - docgen engine x query backend";
  let model = Awb.Synth.generate_of_size ~seed:12 150 in
  let tpl =
    template
      "<document><table-of-contents/><for nodes=\"start type(User); sort-by label\">\
       <section><heading><label/></heading>\
       <p><value-of query=\"start focus; follow uses; distinct; sort-by label\"/></p>\
       </section></for><table-of-omissions types=\"User\"/></document>"
  in
  Printf.printf "  %-34s %12s\n" "configuration" "ms";
  let cell label f = Printf.printf "  %-34s %12.3f\n" label (best_ms ~k:2 f) in
  cell "functional + xquery (the paper's)" (fun () ->
      ignore (Docgen.generate ~engine:`Functional ~backend:Spec.Xquery_queries model ~template:tpl));
  cell "functional + native" (fun () ->
      ignore (Docgen.generate ~engine:`Functional ~backend:Spec.Native_queries model ~template:tpl));
  cell "host + xquery" (fun () ->
      ignore (Docgen.generate ~engine:`Host ~backend:Spec.Xquery_queries model ~template:tpl));
  cell "host + native (the rewrite)" (fun () ->
      ignore (Docgen.generate ~engine:`Host ~backend:Spec.Native_queries model ~template:tpl))

(* A3: substrate throughput — XML parse/serialize and model export. *)
let a3 () =
  section "A3 (ablation) - substrate throughput";
  let model = Awb.Synth.generate_of_size ~seed:2 (if quick then 300 else 1000) in
  let xml = Awb.Xml_io.export_string model in
  Printf.printf "  model export is %d KiB\n" (String.length xml / 1024);
  let doc = Xml_base.Parser.parse_string xml in
  Printf.printf "  %-24s %10.3f ms\n" "export (build + print)"
    (best_ms (fun () -> ignore (Awb.Xml_io.export_string model)));
  Printf.printf "  %-24s %10.3f ms\n" "parse"
    (best_ms (fun () -> ignore (Xml_base.Parser.parse_string xml)));
  Printf.printf "  %-24s %10.3f ms\n" "serialize"
    (best_ms (fun () -> ignore (Xml_base.Serialize.to_string doc)));
  Printf.printf "  %-24s %10.3f ms\n" "import (rebuild model)"
    (best_ms (fun () -> ignore (Awb.Xml_io.import Awb.Samples.it_architecture doc)))

(* A4: the stream splitter, direct vs via the XSLT engine. *)
let a4 () =
  section "A4 (ablation) - output-stream splitter: direct vs XSLT";
  let model = Awb.Synth.generate_of_size ~seed:8 200 in
  let tpl =
    template
      "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"
  in
  let wrapped, _ = Docgen.generate_with_streams ~engine:`Functional model ~template:tpl in
  Printf.printf "  %-24s %10.3f ms\n" "direct split"
    (best_ms (fun () -> ignore (Docgen.Streams.split wrapped)));
  Printf.printf "  %-24s %10.3f ms\n" "via the XSLT engine"
    (best_ms (fun () -> ignore (Docgen.Streams.split_via_xslt wrapped)))

(* ---------------------------------------------------------------- *)
(* E9: the evaluator fast path                                       *)
(* ---------------------------------------------------------------- *)

(* Three arms on the same compiled query — seed algorithms, the fast
   interpreter, and the compiled plan executor — with the display string
   as the identity oracle. Results feed the --json emitter so the perf
   trajectory is recorded per PR. *)
let e9_results : (string * float * float * float) list ref = ref []

let e9_record name slow fast plan =
  e9_results := (name, slow, fast, plan) :: !e9_results;
  Printf.printf "  %-24s %12.3f %12.3f %12.3f %9.1fx %9.1fx\n" name slow fast plan
    (slow /. Float.max 1e-9 fast)
    (slow /. Float.max 1e-9 plan)

let e9_write_json path =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"bench\": \"e9_eval_fast_path\",\n  \"quick\": %b,\n  \"results\": [\n" quick;
  output_string oc
    (String.concat ",\n"
       (List.rev_map
          (fun (name, slow, fast, plan) ->
            Printf.sprintf
              "    {\"name\": \"%s\", \"slow_ms\": %.3f, \"fast_ms\": %.3f, \
               \"speedup\": %.2f, \"plan_ms\": %.3f, \"plan_speedup\": %.2f}"
              name slow fast
              (slow /. Float.max 1e-9 fast)
              plan
              (slow /. Float.max 1e-9 plan))
          !e9_results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "\n  wrote %s\n" path

(* A spine [depth] levels deep, one leaf per level, a needle near the
   top: descendant queries see many nodes whose root paths are long
   (worst case for the path-walking comparator), and existence queries
   have an early exit the lazy walk can take. *)
let e9_deep_doc depth =
  let rec build i =
    let kids =
      if i = 0 then [ N.element "leaf" ] else [ N.element "leaf"; build (i - 1) ]
    in
    let kids = if i = depth - 3 then N.element "needle" :: kids else kids in
    N.element ~children:kids "level"
  in
  N.document [ N.element ~children:[ build (depth - 1) ] "root" ]

(* Many sections of interleaved <a>/<b>: union/except node sets in the
   thousands, with moderate fan-out so the seed comparator's per-level
   sibling scans stay feasible to measure. *)
let e9_wide_doc sections per_section =
  let section i =
    let kids =
      List.concat
        (List.init per_section (fun j ->
             [
               N.element ~children:[ N.text (Printf.sprintf "a%d-%d" i j) ] "a";
               N.element ~children:[ N.text (Printf.sprintf "b%d-%d" i j) ] "b";
             ]))
    in
    N.element ~children:kids "section"
  in
  N.document [ N.element ~children:(List.init sections section) "root" ]

(* Grouped items with @v values; the one needle sits in the first group,
   so the existential comparison's lazy scan stops almost immediately
   while the eager path atomizes (and document-orders) everything. *)
let e9_values_doc groups per_group =
  let group g =
    N.element
      ~children:
        (List.init per_group (fun j ->
             let v = if g = 0 && j = 10 then "needle" else Printf.sprintf "w%d-%d" g j in
             N.element ~attrs:[ N.attribute "v" v ] "item"))
      "group"
  in
  N.document [ N.element ~children:(List.init groups group) "root" ]

(* The docgen-core workload shared by E9's toc row and the governance-
   overhead smoke below. *)
let e9_docgen_tpl =
  "<document><toc><for nodes=\"type:User\"><entry><label/></entry></for></toc>\
   <for nodes=\"type:User\"><section><heading><label/></heading>\
   <if><test><has-prop name=\"superuser\"/></test><then><p>superuser</p></then>\
   <else><p><property name=\"firstName\"/></p></else></if>\
   </section></for></document>"

let e9 () =
  section "E9 - evaluator fast path: doc-order keys, hash set ops, compiled plans";
  Printf.printf "  %-24s %12s %12s %12s %10s %10s\n" "query" "seed ms" "fast ms" "plan ms"
    "fast x" "plan x";
  let bench ?(k = 2) name q doc =
    let compiled = Xquery.Engine.compile q in
    let opts mode =
      Xquery.Engine.Exec_opts.make ~mode ~context_item:(Xquery.Value.Node doc) ()
    in
    let r_slow = ref [] and r_fast = ref [] and r_plan = ref [] in
    let slow =
      best_ms ~k (fun () ->
          r_slow := Xquery.Engine.run ~opts:(opts Xquery.Engine.Exec_opts.Seed) compiled)
    in
    let fast =
      best_ms ~k (fun () ->
          r_fast := Xquery.Engine.run ~opts:(opts Xquery.Engine.Exec_opts.Fast) compiled)
    in
    let plan =
      best_ms ~k (fun () ->
          r_plan := Xquery.Engine.run ~opts:(opts Xquery.Engine.Exec_opts.Plan) compiled)
    in
    assert (
      Xquery.Value.to_display_string !r_slow = Xquery.Value.to_display_string !r_fast);
    assert (
      Xquery.Value.to_display_string !r_slow = Xquery.Value.to_display_string !r_plan);
    e9_record name slow fast plan
  in
  let deep = e9_deep_doc (if quick then 300 else 1500) in
  let wide = e9_wide_doc (if quick then 60 else 150) (if quick then 8 else 10) in
  let values = e9_values_doc (if quick then 30 else 60) (if quick then 40 else 60) in
  bench "deep_descendant" "count(//leaf)" deep;
  bench "exists_deep" "exists(//needle)" deep;
  bench "count_gt_rewrite" "count(//needle) > 0" deep;
  bench "union_heavy" "count((//a | //b) except //b)" wide;
  bench "existential_eq" "//item/@v = 'needle'" values;
  bench "distinct_values" "count(distinct-values(//item/@v))" values;
  bench "some_satisfies" "some $v in //item/@v satisfies $v = 'needle'" values;
  (* TOC generation through the pure-XQuery docgen engine on a large
     exported model; the execution mode rides the options record into
     every environment the engine creates. *)
  let model = Awb.Synth.generate_of_size ~seed:21 (if quick then 120 else 1850) in
  let export_nodes =
    let n = ref 0 in
    N.iter (fun _ -> incr n) (Awb.Xml_io.export model);
    !n
  in
  let tpl = template e9_docgen_tpl in
  let compiled_core = Docgen.Xq_engine.compile () in
  let toc mode =
    Xml_base.Serialize.to_string
      (Docgen.Xq_engine.generate_spec ~compiled:compiled_core
         ~opts:(Xquery.Engine.Exec_opts.make ~mode ())
         model ~template:tpl)
        .Spec.document
  in
  let r_slow = ref "" and r_fast = ref "" and r_plan = ref "" in
  let t_slow = best_ms ~k:1 (fun () -> r_slow := toc Xquery.Engine.Exec_opts.Seed) in
  let t_fast = best_ms ~k:1 (fun () -> r_fast := toc Xquery.Engine.Exec_opts.Fast) in
  let t_plan = best_ms ~k:1 (fun () -> r_plan := toc Xquery.Engine.Exec_opts.Plan) in
  assert (!r_slow = !r_fast);
  assert (!r_slow = !r_plan);
  e9_record "toc_generation" t_slow t_fast t_plan;
  Printf.printf "  (toc model: %d model nodes, %d exported XML nodes)\n"
    (M.node_count model) export_nodes;
  run_bechamel_group ~name:"e9_eval_fast_path"
    [
      Test.make ~name:"union_seed"
        (Staged.stage
           (let c = Xquery.Engine.compile "count((//a | //b) except //b)" in
            let ctx = Xquery.Value.Node wide in
            fun () ->
              ignore (Xquery.Engine.execute ~fast_eval:false ~context_item:ctx c)));
      Test.make ~name:"union_fast"
        (Staged.stage
           (let c = Xquery.Engine.compile "count((//a | //b) except //b)" in
            let ctx = Xquery.Value.Node wide in
            fun () -> ignore (Xquery.Engine.execute ~fast_eval:true ~context_item:ctx c)));
      Test.make ~name:"exists_seed"
        (Staged.stage
           (let c = Xquery.Engine.compile "exists(//needle)" in
            let ctx = Xquery.Value.Node deep in
            fun () ->
              ignore (Xquery.Engine.execute ~fast_eval:false ~context_item:ctx c)));
      Test.make ~name:"exists_fast"
        (Staged.stage
           (let c = Xquery.Engine.compile "exists(//needle)" in
            let ctx = Xquery.Value.Node deep in
            fun () -> ignore (Xquery.Engine.execute ~fast_eval:true ~context_item:ctx c)));
    ]

(* ---------------------------------------------------------------- *)
(* GOV: resource-governance overhead smoke                           *)
(* ---------------------------------------------------------------- *)

(* Budgets must cost nothing until they trip. This runs the E9 docgen
   core under generous limits — every budget finite, so the amortized
   checks (and the node-allocation accounting they gate) all execute,
   but nothing trips — against the ungoverned run. The statistic is the
   median of paired governed/ungoverned ratios: each pair runs back to
   back (with a minor GC in front of each side), so scheduler jitter
   and heap drift hit both sides alike and cancel in the ratio. Exits
   nonzero past the 5% overhead budget so CI catches a regression in
   the tick path. *)
let gov () =
  section "GOV - resource-governance overhead (E9 docgen core, generous budgets)";
  let model = Awb.Synth.generate_of_size ~seed:21 (if quick then 600 else 1200) in
  let tpl = template e9_docgen_tpl in
  let compiled_core = Docgen.Xq_engine.compile () in
  let gen ?limits () =
    Xml_base.Serialize.to_string
      (Docgen.Xq_engine.generate_spec ~compiled:compiled_core
         ~opts:(Xquery.Engine.Exec_opts.make ?limits ())
         model ~template:tpl)
        .Spec.document
  in
  let generous () =
    Xquery.Context.make_limits ~fuel:1_000_000_000 ~max_depth:1_000_000
      ~max_nodes:100_000_000
      ~deadline_ns:(Clock.now_ns () + Clock.ns_of_s 600.) ()
  in
  (* Budgets that don't trip must not change the output either. (Also
     serves as warm-up: first runs pay page faults and heap growth that
     would otherwise land on whichever side runs first.) *)
  assert (gen () = gen ~limits:(generous ()) ());
  assert (gen ~limits:(generous ()) () = gen ());
  let timed f =
    Gc.minor ();
    snd (time_ms (fun () -> ignore (f ())))
  in
  let pairs = 15 in
  let ratios =
    List.init pairs (fun _ ->
        let tf = timed (fun () -> gen ()) in
        let tg = timed (fun () -> gen ~limits:(generous ()) ()) in
        (tg /. tf, tf, tg))
  in
  let sorted = List.sort compare ratios in
  let median, tf, tg = List.nth sorted (pairs / 2) in
  let overhead = (median -. 1.) *. 100. in
  Printf.printf
    "  median of %d paired runs: ungoverned %.3f ms, governed %.3f ms, overhead %+.2f%%\n"
    pairs tf tg overhead;
  if overhead > 5. then begin
    Printf.eprintf "bench: governed docgen-core overhead %.2f%% exceeds the 5%% budget\n"
      overhead;
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* OVERLOAD: the HTTP front end at 0.5x / 1x / 4x capacity           *)
(* ---------------------------------------------------------------- *)

(* The claim under test: explicit load shedding keeps goodput flat when
   offered load is a multiple of capacity. An in-process server is
   calibrated closed-loop (benign requests, saturated workers) to find
   its capacity, then driven open-loop at 0.5x, 1x, and 4x with a seeded
   90/10 benign/hostile template mix — hostile requests are runaway
   generations that burn their 50 ms deadline before dying. Without the
   bounded queue, 4x load would show up as unbounded queueing delay and
   collapsing goodput; with it, the excess is refused at the door with
   503s and the admitted requests keep finishing. Results land in
   BENCH_server.json; past a tolerance, the 4x-vs-1x goodput ratio is a
   CI failure. *)

(* Benign work is deliberately non-trivial (a report with per-node
   follow/distinct queries): server capacity must sit well below what
   the bench's client threads can offer, or 4x load would be
   unreachable. *)
let overload_benign_tpl =
  "<document><table-of-contents/><for nodes=\"start type(User); sort-by label\">\
   <section><heading><label/></heading>\
   <p><value-of query=\"start focus; follow uses; distinct; sort-by label\"/></p>\
   </section></for></document>"

let overload_hostile_tpl =
  let rec go n =
    if n = 0 then "<p><label/></p>"
    else "<for nodes=\"start type(User); sort-by label\">" ^ go (n - 1) ^ "</for>"
  in
  "<document>" ^ go 12 ^ "</document>"

let find_sub ?(start = 0) sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i =
    if i + lsub > ls then None
    else if String.sub s i lsub = sub then Some i
    else go (i + 1)
  in
  go start

(* A lowercased header value out of a lowercased head block. *)
let header_value head name =
  let marker = "\r\n" ^ name ^ ": " in
  match find_sub marker head with
  | None -> None
  | Some i ->
    let start = i + String.length marker in
    let stop =
      match find_sub ~start "\r" head with Some j -> j | None -> String.length head
    in
    Some (String.sub head start (stop - start))

let http_degraded head = header_value head "x-degraded"

let send_all fd data =
  let bytes = Bytes.of_string data in
  let rec go off =
    if off < Bytes.length bytes then go (off + Unix.write fd bytes off (Bytes.length bytes - off))
  in
  go 0

let post_data ~headers body =
  Printf.sprintf "POST /generate HTTP/1.1\r\nHost: bench\r\n%sContent-Length: %d\r\n\r\n%s"
    (String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
    (String.length body) body

(* A one-shot HTTP exchange; returns (status, x_degraded, latency_ms).
   Status 0 means the connection died unanswered; x_degraded is the
   [X-Degraded] response header ("stale" / "skeleton") when present.
   Sends [Connection: close] so the exchange stays one-per-connection
   even against a keep-alive server. *)
let overload_request ~port ~headers body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let t0 = Clock.now () in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      send_all fd (post_data ~headers:(("Connection", "close") :: headers) body);
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        end
      in
      (try recv () with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      let raw = Buffer.contents buf in
      let status =
        if String.length raw >= 12 then
          Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
        else 0
      in
      let degraded =
        match find_sub "\r\n\r\n" raw with
        | Some i -> http_degraded (String.lowercase_ascii (String.sub raw 0 i))
        | None -> None
      in
      (status, degraded, (Clock.now () -. t0) *. 1000.))

(* ---- persistent-connection client ---------------------------------- *)

(* Responses are read by Content-Length instead of to-EOF, so one socket
   carries many requests (the keep-alive path the server grew in PR 7). *)
type ka_conn = { kfd : Unix.file_descr; mutable kpending : string }

exception Ka_dead

let ka_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { kfd = fd; kpending = "" }

let ka_close c = try Unix.close c.kfd with Unix.Unix_error _ -> ()

(* One request/response on a persistent connection; returns
   (status, x_degraded, latency_ms, server_closed). Raises [Ka_dead] on
   EOF or reset mid-exchange (a reconnect is the caller's call). *)
let ka_exchange c ~headers body =
  let t0 = Clock.now () in
  send_all c.kfd (post_data ~headers body);
  let buf = Buffer.create 512 in
  Buffer.add_string buf c.kpending;
  c.kpending <- "";
  let chunk = Bytes.create 8192 in
  let fill () =
    let n =
      try Unix.read c.kfd chunk 0 (Bytes.length chunk)
      with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    in
    if n = 0 then raise Ka_dead;
    Buffer.add_subbytes buf chunk 0 n
  in
  let rec head_end () =
    match find_sub "\r\n\r\n" (Buffer.contents buf) with
    | Some i -> i
    | None ->
      fill ();
      head_end ()
  in
  let he = head_end () in
  let head = String.lowercase_ascii (String.sub (Buffer.contents buf) 0 he) in
  let clen =
    match header_value head "content-length" with
    | None -> 0
    | Some v -> Option.value ~default:0 (int_of_string_opt (String.trim v))
  in
  let total = he + 4 + clen in
  while Buffer.length buf < total do
    fill ()
  done;
  let raw = Buffer.contents buf in
  c.kpending <- String.sub raw total (String.length raw - total);
  let status =
    if String.length raw >= 12 then
      Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
    else 0
  in
  let closed = header_value head "connection" = Some "close" in
  (status, http_degraded head, (Clock.now () -. t0) *. 1000., closed)

let overload_percentile sorted p =
  match sorted with
  | [] -> 0.
  | l -> List.nth l (min (List.length l - 1) (int_of_float (p *. float_of_int (List.length l))))

type overload_level = {
  ol_label : string;
  ol_rate : float;
  ol_sent : int;
  ol_ok : int;
  ol_stale : int;
  ol_skeleton : int;
  ol_shed : int;
  ol_hostile_died : int;
  ol_shed_frac : float;
  ol_goodput : float;
  ol_p50 : float;
  ol_p99 : float;
}

let overload () =
  section "OVERLOAD - HTTP front end: goodput under 0.5x / 1x / 4x offered load";
  let svc = Service.create () in
  let model = Awb.Synth.generate_of_size ~seed:33 (if quick then 400 else 700) in
  let config =
    {
      Server.default_config with
      Server.max_inflight = 2;
      queue_cap = 16;
      drain_deadline_s = 2.;
      model = Some (Service.Model_value model);
      (* Keep-alive on: the fresh-connection arms opt out per request
         with [Connection: close], the 1x+ka arm reuses connections. *)
      keepalive = true;
    }
  in
  let srv = Server.create ~config svc in
  Server.start srv;
  let port = Server.port srv in
  Fun.protect ~finally:(fun () -> if not (Server.stopped srv) then Server.drain srv)
  @@ fun () ->
  (* Calibration: saturate the workers closed-loop with benign traffic
     from as many client threads as there are workers, so capacity
     reflects real parallel service rate (caches warm after the first
     round). *)
  let calibrate () =
    ignore (overload_request ~port ~headers:[] overload_benign_tpl);
    let per_thread = if quick then 15 else 40 in
    let t0 = Clock.now () in
    let threads =
      List.init config.Server.max_inflight (fun _ ->
          Thread.create
            (fun () ->
              for _ = 1 to per_thread do
                ignore (overload_request ~port ~headers:[] overload_benign_tpl)
              done)
            ())
    in
    List.iter Thread.join threads;
    float_of_int (config.Server.max_inflight * per_thread) /. (Clock.now () -. t0)
  in
  let capacity = calibrate () in
  Printf.printf "  calibrated capacity: %.1f req/s (%d workers, queue %d)\n" capacity
    config.Server.max_inflight config.Server.queue_cap;
  (* One open-loop level: [nthreads] senders each fire on a fixed
     schedule derived from the target rate; a sender that falls behind
     (blocked on an admitted slow request) skips ahead rather than
     bunching, so offered load stays honest. 10% of requests, chosen by
     a seeded PRNG, are hostile runaways under a 50 ms deadline. *)
  let drive ?(keepalive = false) ~srv ~port ~label ~rate () =
    let duration_s = if quick then 1.5 else 4. in
    (* Enough senders that even with every queue slot occupied (admitted
       requests block their sender for queue-wait + service time) the
       remainder can keep offering load — sheds return in microseconds,
       so spare threads recycle fast. *)
    let nthreads = 32 in
    let interval = float_of_int nthreads /. rate in
    let accepted_before = Server.Metrics.accepted (Server.metrics srv) in
    let shed_before = Server.Metrics.shed (Server.metrics srv) in
    let t_start = Clock.now () in
    let t_end = t_start +. duration_s in
    let results = Array.make nthreads [] in
    let threads =
      List.init nthreads (fun i ->
          Thread.create
            (fun () ->
              let rng = Random.State.make [| 97; i |] in
              let conn = ref None in
              let drop_conn () =
                (match !conn with Some c -> ka_close c | None -> ());
                conn := None
              in
              (* Persistent mode: one connection per sender, reconnected
                 when the server closes it (max-requests cap, drain) or
                 it dies; one retry over a fresh connection before the
                 exchange counts as unanswered. *)
              let exchange ~headers body =
                if not keepalive then overload_request ~port ~headers body
                else begin
                  let attempt () =
                    let c =
                      match !conn with
                      | Some c -> c
                      | None ->
                        let c = ka_connect port in
                        conn := Some c;
                        c
                    in
                    let status, tag, lat_ms, closed = ka_exchange c ~headers body in
                    if closed then drop_conn ();
                    (status, tag, lat_ms)
                  in
                  try attempt ()
                  with Ka_dead | Unix.Unix_error _ -> (
                    drop_conn ();
                    try attempt ()
                    with Ka_dead | Unix.Unix_error _ ->
                      drop_conn ();
                      (0, None, 0.))
                end
              in
              let next = ref (t_start +. (float_of_int i *. interval /. float_of_int nthreads)) in
              while !next < t_end do
                let d = !next -. Clock.now () in
                if d > 0. then Thread.delay d;
                let hostile = Random.State.float rng 1.0 < 0.10 in
                let status, tag, lat_ms =
                  if hostile then
                    exchange ~headers:[ ("X-Deadline-Ms", "50") ] overload_hostile_tpl
                  else exchange ~headers:[] overload_benign_tpl
                in
                results.(i) <- (hostile, status, tag, lat_ms) :: results.(i);
                let now = Clock.now () in
                (* Skip missed slots instead of bunching them. *)
                next := !next +. (Float.max 1. (Float.ceil ((now -. !next) /. interval)) *. interval)
              done;
              drop_conn ())
            ())
    in
    List.iter Thread.join threads;
    let elapsed = Clock.now () -. t_start in
    let all = Array.to_list results |> List.concat in
    let sent = List.length all in
    let count f = List.length (List.filter f all) in
    let ok = count (fun (_, s, _, _) -> s = 200) in
    let ok_stale = count (fun (_, s, t, _) -> s = 200 && t = Some "stale") in
    let ok_skeleton = count (fun (_, s, t, _) -> s = 200 && t = Some "skeleton") in
    let shed = count (fun (_, s, _, _) -> s = 503) in
    let hostile_died = count (fun (h, s, _, _) -> h && s = 504) in
    let unanswered = count (fun (_, s, _, _) -> s = 0) in
    let ok_lat =
      List.filter_map (fun (_, s, _, l) -> if s = 200 then Some l else None) all
      |> List.sort compare
    in
    let p50 = overload_percentile ok_lat 0.50 and p99 = overload_percentile ok_lat 0.99 in
    let goodput = float_of_int ok /. elapsed in
    let shed_frac = if sent = 0 then 0. else float_of_int shed /. float_of_int sent in
    Printf.printf
      "  %-5s offered %7.1f rps  sent %5d  ok %5d (stale %d, skel %d)  shed %5d (%4.1f%%)  \
       hostile-504 %4d  goodput %7.1f rps  p50 %6.1f ms  p99 %7.1f ms\n"
      label rate sent ok ok_stale ok_skeleton shed (shed_frac *. 100.) hostile_died goodput p50
      p99;
    (* Client-observed statuses and server counters must agree on the
       overload story. *)
    assert (unanswered = 0);
    assert (Server.Metrics.shed (Server.metrics srv) - shed_before >= shed);
    ignore accepted_before;
    {
      ol_label = label;
      ol_rate = rate;
      ol_sent = sent;
      ol_ok = ok;
      ol_stale = ok_stale;
      ol_skeleton = ok_skeleton;
      ol_shed = shed;
      ol_hostile_died = hostile_died;
      ol_shed_frac = shed_frac;
      ol_goodput = goodput;
      ol_p50 = p50;
      ol_p99 = p99;
    }
  in
  let r_half = drive ~srv ~port ~label:"0.5x" ~rate:(0.5 *. capacity) () in
  let r_one = drive ~srv ~port ~label:"1x" ~rate:capacity () in
  let r_four = drive ~srv ~port ~label:"4x" ~rate:(4. *. capacity) () in
  (* Same server, same 1x load, but every sender holds one persistent
     connection: the keep-alive serving path under the same storm mix. *)
  let r_ka = drive ~keepalive:true ~srv ~port ~label:"1x+ka" ~rate:capacity () in
  let ka_reused = Server.Metrics.keepalive_reused (Server.metrics srv) in
  Server.drain srv;
  let ratio = r_four.ol_goodput /. Float.max 1e-9 r_one.ol_goodput in
  Printf.printf "  4x/1x goodput ratio: %.2f (shed total %d, drained clean)\n" ratio
    (Server.Metrics.shed (Server.metrics srv));
  Printf.printf "  1x keep-alive: goodput %7.1f rps  p50 %6.1f ms (fresh-conn 1x p50 %6.1f ms), %d requests on reused connections\n"
    r_ka.ol_goodput r_ka.ol_p50 r_one.ol_p50 ka_reused;
  (* Brownout arm: same capacity knobs, but with the brownout controller
     on and a result cache big enough to hold the benign template. Under
     the same 4x storm the server should keep answering usefully — fresh,
     stale, or skeleton 2xx — instead of shedding the excess. The long
     [down_consecutive] keeps it from flapping back to Normal mid-storm. *)
  let svc_b =
    Service.create
      ~config:{ Service.default_config with Service.result_cache_cap = 512 }
      ()
  in
  let config_b =
    {
      config with
      Server.brownout =
        Some
          {
            Server.Brownout.default_config with
            Server.Brownout.eval_interval_s = 0.05;
            down_consecutive = 60;
          };
    }
  in
  let srv_b = Server.create ~config:config_b svc_b in
  Server.start srv_b;
  let port_b = Server.port srv_b in
  let r_brown =
    Fun.protect
      ~finally:(fun () -> if not (Server.stopped srv_b) then Server.drain srv_b)
      (fun () ->
        (* Warm the result cache while the controller is still Normal so
           the storm has something stale to serve. *)
        ignore (overload_request ~port:port_b ~headers:[] overload_benign_tpl);
        let r = drive ~srv:srv_b ~port:port_b ~label:"4x+b" ~rate:(4. *. capacity) () in
        Server.drain srv_b;
        r)
  in
  let useful_ratio = r_brown.ol_goodput /. Float.max 1e-9 r_four.ol_goodput in
  Printf.printf
    "  brownout 4x: useful %7.1f rps (full %d, stale %d, skeleton %d) — %.2fx the shed-only \
     4x goodput\n"
    r_brown.ol_goodput
    (r_brown.ol_ok - r_brown.ol_stale - r_brown.ol_skeleton)
    r_brown.ol_stale r_brown.ol_skeleton useful_ratio;
  if json then begin
    let level_json r =
      Printf.sprintf
        "    {\"level\": \"%s\", \"offered_rps\": %.1f, \"sent\": %d, \"ok\": %d, \
         \"ok_stale\": %d, \"ok_skeleton\": %d, \"shed\": %d, \"hostile_504\": %d, \
         \"shed_fraction\": %.3f, \"goodput_rps\": %.1f, \"p50_ms\": %.2f, \"p99_ms\": %.2f}"
        r.ol_label r.ol_rate r.ol_sent r.ol_ok r.ol_stale r.ol_skeleton r.ol_shed
        r.ol_hostile_died r.ol_shed_frac r.ol_goodput r.ol_p50 r.ol_p99
    in
    let oc = open_out "BENCH_server.json" in
    Printf.fprintf oc
      "{\n  \"bench\": \"overload\",\n  \"quick\": %b,\n  \"capacity_rps\": %.1f,\n\
      \  \"goodput_ratio_4x_1x\": %.3f,\n  \"useful_ratio_brownout_vs_shed_only\": %.3f,\n\
      \  \"levels\": [\n" quick capacity ratio useful_ratio;
    output_string oc (String.concat ",\n" (List.map level_json [ r_half; r_one; r_four ]));
    Printf.fprintf oc "\n  ],\n  \"brownout\": [\n%s\n  ],\n  \"keepalive\": [\n%s\n  ]\n}\n"
      (level_json r_brown) (level_json r_ka);
    close_out oc;
    Printf.printf "  wrote BENCH_server.json\n"
  end;
  (* The resilience gate. Quick mode (CI smoke on shared runners) gets a
     loose bound — the property being guarded is "no collapse", not the
     exact ratio. *)
  let floor = if quick then 0.5 else 0.9 in
  if ratio < floor then begin
    Printf.eprintf
      "bench: goodput at 4x offered load is %.2fx the 1x goodput (floor %.2f) — \
       shedding failed to protect capacity\n"
      ratio floor;
    exit 1
  end;
  (* The brownout gate: graceful degradation must at least double the
     useful-response rate over shed-only admission at the same load. *)
  let bfloor = if quick then 1.5 else 2.0 in
  if useful_ratio < bfloor then begin
    Printf.eprintf
      "bench: brownout useful-response rate at 4x is %.2fx the shed-only baseline (floor \
       %.2f) — degradation failed to convert sheds into useful answers\n"
      useful_ratio bfloor;
    exit 1
  end;
  (* The keep-alive arm must sustain the same 1x load over persistent
     connections (a loose floor: the property is "the keep-alive path
     carries production load", not a latency claim — that gate lives in
     the serving experiment where connection setup is measurable). *)
  let kfloor = 0.7 in
  if r_ka.ol_goodput < kfloor *. r_one.ol_goodput then begin
    Printf.eprintf
      "bench: keep-alive goodput at 1x is %.1f rps against %.1f rps fresh-connection \
       (floor %.2fx) — persistent connections lost throughput\n"
      r_ka.ol_goodput r_one.ol_goodput kfloor;
    exit 1
  end;
  if ka_reused = 0 then begin
    Printf.eprintf "bench: keep-alive arm reused no connections — keep-alive is not engaging\n";
    exit 1
  end

(* ---------------------------------------------------------------- *)

(* SERVING: the two PR-7 serving-path claims.

   Keep-alive arm: on light requests (warm caches, sub-millisecond
   generation) per-request connection setup is a measurable share of
   latency, so a persistent connection must cut p50 against
   fresh-connection-per-request on the same server.

   Shard arm: capacity scaling from cache locality, not cores. Requests
   carry their model inline (composite bodies), the working set of
   distinct models exceeds one backend's artifact cache, and requests
   cycle through it — LRU's worst case, every request an import. Four
   shards partition the same working set so each backend's slice fits
   its cache and nearly every request is a hit. The 4-shard/1-shard
   capacity ratio is gated at 3x — on a single-core runner only cache
   locality, never parallelism, can deliver that. *)

let serving_tpl =
  "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"

(* The shard arm's template targets the one SystemBeingDesigned node:
   generation is a cheap scan, so per-request cost is dominated by the
   model import — exactly the work the shard-local caches absorb. A
   generation-heavy template would flatten the hit/miss difference the
   capacity gate depends on. *)
let shard_tpl =
  "<document><for nodes=\"start type(SystemBeingDesigned)\"><p><label/></p></for></document>"

let serving_percentile sorted_arr p =
  if Array.length sorted_arr = 0 then 0.
  else
    sorted_arr.(min (Array.length sorted_arr - 1)
                  (int_of_float (p *. float_of_int (Array.length sorted_arr))))

let serving () =
  section "SERVING - keep-alive connection reuse and consistent-hash sharding";
  (* --- keep-alive arm ------------------------------------------------ *)
  let svc = Service.create () in
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.max_inflight = 2; keepalive = true }
      svc
  in
  Server.start srv;
  let port = Server.port srv in
  let n = if quick then 400 else 2000 in
  let fresh_p50, fresh_rps, ka_p50, ka_rps =
    Fun.protect
      ~finally:(fun () -> if not (Server.stopped srv) then Server.drain srv)
      (fun () ->
        (* Warm every cache so both arms measure the wire, not the first
           compile/import. *)
        for _ = 1 to 5 do
          ignore (overload_request ~port ~headers:[] serving_tpl)
        done;
        let run exchange =
          let lats = Array.make n 0. in
          let t0 = Clock.now () in
          for i = 0 to n - 1 do
            let status, lat_ms = exchange () in
            if status <> 200 then failwith (Printf.sprintf "serving: status %d" status);
            lats.(i) <- lat_ms
          done;
          let elapsed = Clock.now () -. t0 in
          Array.sort compare lats;
          (serving_percentile lats 0.50, float_of_int n /. elapsed)
        in
        let fresh_p50, fresh_rps =
          run (fun () ->
              let c = ka_connect port in
              Fun.protect
                ~finally:(fun () -> ka_close c)
                (fun () ->
                  let status, _, lat_ms, _ =
                    ka_exchange c ~headers:[ ("Connection", "close") ] serving_tpl
                  in
                  (status, lat_ms)))
        in
        let conn = ref (ka_connect port) in
        let ka_p50, ka_rps =
          run (fun () ->
              let status, _, lat_ms, closed = ka_exchange !conn ~headers:[] serving_tpl in
              (* The max-requests-per-connection cap closes the
                 connection politely mid-run; reconnect and keep going. *)
              if closed then begin
                ka_close !conn;
                conn := ka_connect port
              end;
              (status, lat_ms))
        in
        ka_close !conn;
        (fresh_p50, fresh_rps, ka_p50, ka_rps))
  in
  Printf.printf
    "  keep-alive (light requests, n=%d): fresh-conn p50 %.3f ms (%.0f rps)  persistent \
     p50 %.3f ms (%.0f rps)\n"
    n fresh_p50 fresh_rps ka_p50 ka_rps;
  (* --- shard arm ----------------------------------------------------- *)
  let wset = if quick then 24 else 48 in
  (* Per-shard artifact cache: must hold a 4-way slice of the working
     set (~wset/4 models, plus the template's compiled artifacts, plus
     consistent-hash imbalance) but not the whole set — the single shard
     has to cycle and miss while each of the four fits its slice. *)
  let ccap = if quick then 16 else 32 in
  (* Edge-heavy models: relations dominate the XML, so the import a
     cache miss pays is large while the node scan generation performs on
     every request stays small. That asymmetry — import ≫ serve — is
     what makes shard-local cache locality measurable as capacity. *)
  let shard_shape =
    {
      Awb.Synth.users = (if quick then 40 else 60);
      systems = 8;
      programs = 12;
      documents = 6;
      likes_per_user = (if quick then 60 else 80);
      uses_per_user = 20;
    }
  in
  let bodies =
    Array.init wset (fun i ->
        let m = Awb.Synth.generate ~seed:(1000 + i) shard_shape in
        Server.Composite.build ~template:shard_tpl ~model:(Awb.Xml_io.export_string m))
  in
  let run_cluster nshards =
    let cluster =
      Server.Shard.start
        ~config:
          {
            Server.Shard.default_cluster_config with
            Server.Shard.shards = nshards;
            cache_capacity = ccap;
            result_cache_cap = 0;
          }
        ()
    in
    let svc = Service.create () in
    let srv =
      Server.create
        ~config:
          {
            Server.default_config with
            Server.max_inflight = 1;
            queue_cap = 64;
            keepalive = true;
          }
        ~cluster svc
    in
    Server.start srv;
    let port = Server.port srv in
    Fun.protect
      ~finally:(fun () -> if not (Server.stopped srv) then Server.drain srv)
      (fun () ->
        let nclients = 4 in
        let duration_s = if quick then 2.5 else 4. in
        let counts = Array.make nclients 0 in
        (* Closed-loop: each client cycles its slice of the working set
           over one persistent connection. One warm pass, then a timed
           window. The clock is checked after every request, not every
           pass — at tens of milliseconds per miss a pass-granular check
           would overshoot the window by a whole slice. *)
        let client j timed =
          let conn = ref (ka_connect port) in
          let fire i =
            let status, _, _, closed = ka_exchange !conn ~headers:[] bodies.(i) in
            if status <> 200 then failwith (Printf.sprintf "serving/shard: status %d" status);
            if closed then begin
              ka_close !conn;
              conn := ka_connect port
            end
          in
          let slice = ref [] in
          for i = wset - 1 downto 0 do
            if i mod nclients = j then slice := i :: !slice
          done;
          Fun.protect
            ~finally:(fun () -> ka_close !conn)
            (fun () ->
              List.iter fire !slice;
              match timed with
              | None -> ()
              | Some t_end ->
                let stop = ref false in
                while not !stop do
                  List.iter
                    (fun i ->
                      if not !stop then begin
                        fire i;
                        counts.(j) <- counts.(j) + 1;
                        if Clock.now () >= t_end then stop := true
                      end)
                    !slice
                done)
        in
        let warm = List.init nclients (fun j -> Thread.create (fun () -> client j None) ()) in
        List.iter Thread.join warm;
        let t0 = Clock.now () in
        let t_end = t0 +. duration_s in
        let threads =
          List.init nclients (fun j -> Thread.create (fun () -> client j (Some t_end)) ())
        in
        List.iter Thread.join threads;
        let elapsed = Clock.now () -. t0 in
        let total = Array.fold_left ( + ) 0 counts in
        (* Aggregate the shards' model-cache counters out of the
           exposition — the mechanism under test is hit-rate locality,
           so show it. *)
        let sum_counter name =
          String.split_on_char '\n' (Server.metrics_body srv)
          |> List.fold_left
               (fun acc line ->
                 if String.length line > String.length name
                    && String.sub line 0 (String.length name) = name
                 then
                   match String.rindex_opt line ' ' with
                   | None -> acc
                   | Some i ->
                     acc
                     + (int_of_float
                          (Option.value ~default:0.
                             (float_of_string_opt
                                (String.sub line (i + 1) (String.length line - i - 1)))))
                 else acc)
               0
        in
        let hits = sum_counter "lopsided_service_model_cache_hits_total" in
        let misses = sum_counter "lopsided_service_model_cache_misses_total" in
        Server.drain srv;
        (float_of_int total /. elapsed, hits, misses))
  in
  let rps1, h1, m1 = run_cluster 1 in
  Printf.printf
    "  1 shard:  %7.1f rps (working set %d models, per-shard cache %d; model cache %d \
     hits / %d misses)\n"
    rps1 wset ccap h1 m1;
  let rps4, h4, m4 = run_cluster 4 in
  let ratio = rps4 /. Float.max 1e-9 rps1 in
  Printf.printf "  4 shards: %7.1f rps — %.2fx the single shard (model cache %d hits / %d misses)\n"
    rps4 ratio h4 m4;
  if json then begin
    (* Merge a "shard" block into BENCH_server.json without disturbing
       what the overload experiment wrote (no JSON library here: the
       file is cut before a previous shard block / the closing brace and
       re-terminated). *)
    let path = "BENCH_server.json" in
    let base =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      end
      else "{\n  \"bench\": \"overload\"\n}\n"
    in
    let head =
      match find_sub ",\n  \"shard\":" base with
      | Some i -> String.sub base 0 i
      | None -> (
        match String.rindex_opt base '}' with
        | None -> "{\n  \"bench\": \"overload\""
        | Some j ->
          let rec back k =
            if k > 0 && (match base.[k - 1] with '\n' | ' ' | '\t' | '\r' -> true | _ -> false)
            then back (k - 1)
            else k
          in
          String.sub base 0 (back j))
    in
    let block =
      Printf.sprintf
        "{\n\
        \    \"keepalive_light\": {\"n\": %d, \"fresh_p50_ms\": %.3f, \"fresh_rps\": %.1f, \
         \"persistent_p50_ms\": %.3f, \"persistent_rps\": %.1f},\n\
        \    \"working_set_models\": %d,\n\
        \    \"model_xml_bytes\": %d,\n\
        \    \"per_shard_cache\": %d,\n\
        \    \"shards1_rps\": %.1f,\n\
        \    \"shards4_rps\": %.1f,\n\
        \    \"capacity_ratio_4s_1s\": %.3f\n\
        \  }"
        n fresh_p50 fresh_rps ka_p50 ka_rps wset (String.length bodies.(0)) ccap rps1
        rps4 ratio
    in
    let oc = open_out path in
    output_string oc (head ^ ",\n  \"shard\": " ^ block ^ "\n}\n");
    close_out oc;
    Printf.printf "  merged shard block into BENCH_server.json\n"
  end;
  (* Gates. Keep-alive must reduce p50 on light requests; sharding must
     at least triple single-shard capacity. *)
  if ka_p50 > fresh_p50 then begin
    Printf.eprintf
      "bench: persistent-connection p50 %.3f ms did not beat fresh-connection p50 %.3f ms\n"
      ka_p50 fresh_p50;
    exit 1
  end;
  let sfloor = 3.0 in
  if ratio < sfloor then begin
    Printf.eprintf
      "bench: 4-shard capacity is %.2fx the single shard (floor %.2fx) — shard-local \
       caches are not partitioning the working set\n"
      ratio sfloor;
    exit 1
  end

(* ---------------------------------------------------------------- *)

(* CHAOS: the resilience claim behind the fault-injection plane. A
   seeded synthetic workload (diverse model sizes, mixed template and
   search traffic — bench/workload.ml) is driven fault-free through a
   4-shard cluster with the request recorder attached; the capture is
   saved, reloaded, and replayed at 2x against a fresh cluster under a
   seeded chaos schedule (delays, drops, truncations, CRC corruption,
   duplicates, stalls) plus one SIGKILL'd backend mid-run, with
   breakers and hedging active. Gates: the fault schedule is
   byte-identical run-to-run, both phases pass the conservation
   invariants, the chaos phase keeps >= 70% of the fault-free useful
   rate, and every breaker returns to Closed once the supervisor
   restores the killed shard. *)

type chaos_ledger = {
  ch_sent : int;
  ch_ok : int;
  ch_conn_errors : int;
  ch_responses : int;
  ch_statuses : (int * int) list;
}

(* Open-loop driver over Recorder entries: each fires at its recorded
   offset (scaled by [speed]) on its own thread, so server pushback
   shows up as refusals, never as a slowed-down workload. [on_mid]
   runs once, as the midpoint entry is scheduled — the SIGKILL hook. *)
let chaos_drive ~port ~speed ?(on_mid = fun () -> ()) entries =
  let mu = Mutex.create () in
  let responses = ref 0 and conn_errors = ref 0 in
  let statuses = Hashtbl.create 8 in
  let note st =
    Mutex.lock mu;
    if st = 0 then incr conn_errors
    else begin
      incr responses;
      Hashtbl.replace statuses st (1 + Option.value ~default:0 (Hashtbl.find_opt statuses st))
    end;
    Mutex.unlock mu
  in
  let n = List.length entries in
  let t0 = Clock.now () in
  let threads =
    List.mapi
      (fun i (e : Server.Recorder.entry) ->
        if i = n / 2 then on_mid ();
        let due = t0 +. (e.e_ts /. speed) in
        let d = due -. Clock.now () in
        if d > 0. then Thread.delay d;
        Thread.create
          (fun () ->
            let headers =
              ("x-tenant", e.e_tenant)
              ::
              (if e.e_deadline_ms > 0 then
                 [ ("x-deadline-ms", string_of_int e.e_deadline_ms) ]
               else [])
            in
            let status, _, _ =
              try overload_request ~port ~headers e.e_body
              with Unix.Unix_error _ | Sys_error _ -> (0, None, 0.)
            in
            note status)
          ())
      entries
  in
  List.iter Thread.join threads;
  {
    ch_sent = n;
    ch_ok = Option.value ~default:0 (Hashtbl.find_opt statuses 200);
    ch_conn_errors = !conn_errors;
    ch_responses = !responses;
    ch_statuses = Hashtbl.fold (fun st c acc -> (st, c) :: acc) statuses [];
  }

(* One phase: a fresh 4-shard cluster + front, the workload driven
   through it, invariants checked against the final exposition, and —
   when the phase injected faults — a wait for every breaker to settle
   back to Closed. *)
let chaos_phase ~chaos ~hedge ~recorder ~kill ~speed ~warm entries =
  let cluster =
    Server.Shard.start
      ~config:
        {
          Server.Shard.default_cluster_config with
          Server.Shard.shards = 4;
          cache_capacity = 32;
          call_timeout_s = 3.;
          chaos;
          hedge;
        }
      ()
  in
  let svc = Service.create () in
  let srv =
    Server.create
      ~config:
        { Server.default_config with Server.max_inflight = 4; queue_cap = 128; recorder }
      ~cluster svc
  in
  Server.start srv;
  let port = Server.port srv in
  Fun.protect
    ~finally:(fun () -> if not (Server.stopped srv) then Server.drain srv)
    (fun () ->
      (* Cold imports are not the phenomenon under test: one request
         per model warms its home shard (routing is by model digest, so
         one suffices) before the clock starts. Under chaos a warm
         request may itself be faulted — failover usually lands it, and
         a miss just means one cold import inside the run. *)
      List.iter
        (fun body ->
          ignore (try overload_request ~port ~headers:[] body with _ -> (0, None, 0.)))
        warm;
      let on_mid =
        if kill then (fun () ->
          try Unix.kill (Server.Shard.pids cluster).(0) Sys.sigkill
          with Unix.Unix_error _ -> ())
        else fun () -> ()
      in
      let led = chaos_drive ~port ~speed ~on_mid entries in
      (* Give server-side connection teardown a beat so pooled buffers
         are back before the books are audited. *)
      Thread.delay 0.3;
      let metrics_text = Server.metrics_body srv in
      let ledger =
        {
          Server.Recorder.sent = led.ch_sent;
          responses = led.ch_responses;
          conn_errors = led.ch_conn_errors;
          status_counts = led.ch_statuses;
        }
      in
      let violations = Server.Recorder.check_invariants ~ledger ~metrics_text in
      (* After the storm every breaker must find its way home: the
         supervisor respawns the killed backend, the work probe passes,
         record_success closes the circuit. *)
      let settle_deadline = Clock.now () +. 15. in
      let rec settle () =
        if Array.for_all (fun c -> c = 0) (Server.Shard.breaker_states cluster) then true
        else if Clock.now () > settle_deadline then false
        else begin
          Thread.delay 0.2;
          settle ()
        end
      in
      let breakers_closed = settle () in
      let stats =
        ( Server.Shard.failovers cluster,
          Server.Shard.restarts cluster,
          Server.Shard.hedges cluster,
          Server.Shard.hedge_wins cluster )
      in
      Server.drain srv;
      (led, violations, breakers_closed, stats))

let chaos_exp () =
  section "CHAOS - deterministic fault injection: record, replay, conserve";
  let seed = 42 in
  (* Determinism first: the reproducibility contract is that one seed
     yields one byte-identical fault schedule, run after run. *)
  let cfg = Server.Chaos.of_seed seed in
  let plan = Server.Chaos.schedule cfg ~shard:2 500 in
  if plan <> Server.Chaos.schedule cfg ~shard:2 500 then begin
    Printf.eprintf "bench: chaos schedule is not deterministic for a fixed seed\n";
    exit 1
  end;
  let faults =
    List.filter (fun a -> a <> Server.Chaos.Pass) plan |> List.length
  in
  Printf.printf "  schedule(seed=%d, shard=2, n=500): %d faulted frames, reproducible\n"
    seed faults;
  let n = if quick then 80 else 240 in
  (* Full mode mixes models up to 10^4 nodes; the offered rate is set so
     the fault-free baseline is comfortably inside capacity (the point
     of this experiment is fault tolerance, not overload — OVERLOAD and
     BROWNOUT own that axis), leaving the 2x chaos replay a real but
     survivable load. *)
  let rate = if quick then 40. else 10. in
  let entries = Workload.entries ~seed:11 ~quick ~n ~rate () in
  let warm =
    Workload.models ~seed:11 (Workload.default_sizes ~quick)
    |> Array.to_list
    |> List.map (fun m -> Server.Composite.build ~template:Workload.scan_tpl ~model:m)
  in
  (* Phase A: fault-free, recorder attached. *)
  let recorder = Server.Recorder.create () in
  let base, base_violations, _, _ =
    chaos_phase ~chaos:None ~hedge:false ~recorder:(Some recorder) ~kill:false ~speed:1.
      ~warm entries
  in
  let capture = "CHAOS_workload.rec" in
  let recorded = Server.Recorder.save recorder capture in
  Printf.printf "  fault-free: %d/%d ok, %d recorded to %s\n" base.ch_ok base.ch_sent
    recorded capture;
  let replayed = Server.Recorder.load capture in
  if List.length replayed <> recorded then begin
    Printf.eprintf "bench: capture round-trip lost entries (%d saved, %d loaded)\n"
      recorded (List.length replayed);
    exit 1
  end;
  (* Phase B: the same workload out of the capture file, at 2x, under
     the seeded fault schedule, breakers and hedging on, one backend
     SIGKILL'd mid-run. *)
  let chaos, chaos_violations, breakers_closed, (failovers, restarts, hedges, hedge_wins)
      =
    chaos_phase ~chaos:(Some cfg) ~hedge:true ~recorder:None ~kill:true ~speed:2. ~warm
      replayed
  in
  let rate_of l = float_of_int l.ch_ok /. float_of_int (max 1 l.ch_sent) in
  let useful_ratio = rate_of chaos /. Float.max 1e-9 (rate_of base) in
  Printf.printf
    "  chaos (seed %d, 2x, 1 SIGKILL): %d/%d ok (%.2fx fault-free), %d conn errors, %d \
     failovers, %d restarts, %d hedges (%d won), breakers %s\n"
    seed chaos.ch_ok chaos.ch_sent useful_ratio chaos.ch_conn_errors failovers restarts
    hedges hedge_wins
    (if breakers_closed then "closed" else "STUCK OPEN");
  if json then begin
    let path = "BENCH_server.json" in
    let base_json =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      end
      else "{\n  \"bench\": \"overload\"\n}\n"
    in
    let head =
      match find_sub ",\n  \"chaos\":" base_json with
      | Some i -> String.sub base_json 0 i
      | None -> (
        match String.rindex_opt base_json '}' with
        | None -> "{\n  \"bench\": \"overload\""
        | Some j ->
          let rec back k =
            if k > 0 && (match base_json.[k - 1] with '\n' | ' ' | '\t' | '\r' -> true | _ -> false)
            then back (k - 1)
            else k
          in
          String.sub base_json 0 (back j))
    in
    let block =
      Printf.sprintf
        "{\n\
        \    \"seed\": %d,\n\
        \    \"requests\": %d,\n\
        \    \"recorded\": %d,\n\
        \    \"ok_base\": %d,\n\
        \    \"ok_chaos\": %d,\n\
        \    \"useful_ratio\": %.3f,\n\
        \    \"conn_errors_chaos\": %d,\n\
        \    \"failovers\": %d,\n\
        \    \"restarts\": %d,\n\
        \    \"hedges\": %d,\n\
        \    \"hedge_wins\": %d,\n\
        \    \"invariant_violations\": %d,\n\
        \    \"breakers_closed\": %b\n\
        \  }"
        seed n recorded base.ch_ok chaos.ch_ok useful_ratio chaos.ch_conn_errors
        failovers restarts hedges hedge_wins
        (List.length base_violations + List.length chaos_violations)
        breakers_closed
    in
    let oc = open_out path in
    output_string oc (head ^ ",\n  \"chaos\": " ^ block ^ "\n}\n");
    close_out oc;
    Printf.printf "  merged chaos block into BENCH_server.json\n"
  end;
  (* Gates. Conservation must hold in both phases; the chaos run must
     keep >= 70% of the fault-free useful rate; breakers must close. *)
  List.iter
    (fun v -> Printf.eprintf "bench: fault-free invariant violation: %s\n" v)
    base_violations;
  List.iter
    (fun v -> Printf.eprintf "bench: chaos invariant violation: %s\n" v)
    chaos_violations;
  if base_violations <> [] || chaos_violations <> [] then exit 1;
  let floor = 0.7 in
  if useful_ratio < floor then begin
    Printf.eprintf
      "bench: chaos useful-response rate is %.2fx the fault-free rate (floor %.2f) — \
       failover/breakers/hedging failed to absorb the fault schedule\n"
      useful_ratio floor;
    exit 1
  end;
  if not breakers_closed then begin
    Printf.eprintf "bench: a circuit breaker never returned to Closed after recovery\n";
    exit 1
  end

(* ---------------------------------------------------------------- *)

(* STORE: the crash-safety claims behind the persistent collection
   tier. Five arms:

   1. The I/O fault plane is deterministic — one seed, one
      byte-identical fault schedule (the same contract Chaos makes for
      the shard transport).
   2. The kill-point crash oracle, exact mode: seeded trials re-exec
      this binary as a child ingester under crash/short-write/fsync-fail
      faults, kill it mid-operation, recover, and require the recovered
      store to equal exactly the acknowledged prefix — no lost acked
      write, no resurrected unacked write, zero checksum escapes, no
      quarantine.
   3. The lying-disk arm: fsync-ignore schedules where exact equality is
      unachievable by construction; the invariants that must still hold
      are zero checksum escapes and zero unquarantined damage.
   4. Deliberate mid-log corruption (bit rot, not a torn tail) is
      quarantined at recovery behind store:corrupt, with the rest of the
      store still serving, and the offline scrub agrees.
   5. A recorded mixed generate+ingest workload driven over HTTP, then
      replayed at speed through a small-capacity brownout server backed
      by a fresh store — the open replay-through-overload/brownout
      item — gated on the replay conservation invariants plus the store
      conservation check after drain + reopen. *)

let rec store_rm_rf p =
  match Unix.lstat p with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun e -> store_rm_rf (Filename.concat p e))
      (try Sys.readdir p with Sys_error _ -> [||]);
    (try Unix.rmdir p with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())

(* One-shot HTTP exchange honoring method and path (the store routes
   are not POST /generate); returns (status, response body). *)
let store_request ~port ~meth ~path ~headers body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      send_all fd
        (Printf.sprintf "%s %s HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n%sContent-Length: %d\r\n\r\n%s"
           meth path
           (String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
           (String.length body) body);
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        end
      in
      (try recv () with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      let raw = Buffer.contents buf in
      let status =
        if String.length raw >= 12 then
          Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
        else 0
      in
      let body =
        match find_sub "\r\n\r\n" raw with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> ""
      in
      (status, body))

let store_doc_of_path path =
  match String.split_on_char '/' path with
  | [ ""; "collections"; _; "docs"; d ] -> Some d
  | _ -> None

let store_headers (e : Server.Recorder.entry) =
  ("x-tenant", e.e_tenant)
  ::
  (if e.e_deadline_ms > 0 then [ ("x-deadline-ms", string_of_int e.e_deadline_ms) ]
   else [])

(* Open-loop driver over Recorder entries that honors each entry's
   method and path, tracking the client-side ledger plus the set of
   acknowledged durable writes (200 PUTs and the hash they acked). *)
let store_drive ~port ~speed entries =
  let mu = Mutex.create () in
  let responses = ref 0 and conn_errors = ref 0 in
  let statuses = Hashtbl.create 8 in
  let acked : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let note e st body =
    Mutex.lock mu;
    (if st = 0 then incr conn_errors
     else begin
       incr responses;
       Hashtbl.replace statuses st (1 + Option.value ~default:0 (Hashtbl.find_opt statuses st))
     end);
    (if st = 200 && e.Server.Recorder.e_meth = "PUT" then
       match store_doc_of_path e.Server.Recorder.e_path with
       | Some doc -> Hashtbl.replace acked doc (String.trim body)
       | None -> ());
    Mutex.unlock mu
  in
  let t0 = Clock.now () in
  let threads =
    List.map
      (fun (e : Server.Recorder.entry) ->
        let due = t0 +. (e.e_ts /. speed) in
        let d = due -. Clock.now () in
        if d > 0. then Thread.delay d;
        Thread.create
          (fun () ->
            let status, body =
              try
                store_request ~port ~meth:e.e_meth ~path:e.e_path
                  ~headers:(store_headers e) e.e_body
              with Unix.Unix_error _ | Sys_error _ -> (0, "")
            in
            note e status body)
          ())
      entries
  in
  List.iter Thread.join threads;
  let ledger =
    {
      Server.Recorder.sent = List.length entries;
      responses = !responses;
      conn_errors = !conn_errors;
      status_counts = Hashtbl.fold (fun st n acc -> (st, n) :: acc) statuses [];
    }
  in
  (ledger, Hashtbl.fold (fun d h acc -> (d, h) :: acc) acked [])

let store_exp () =
  section "STORE - crash-safe collection store: kill-point oracle, quarantine, conservation";
  let module St = Server.Store in
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) "lopsided-store-bench" in
  store_rm_rf tmp;
  Unix.mkdir tmp 0o755;
  (* --- 1. fault-plane determinism ---------------------------------- *)
  let plane =
    St.Io_fault.of_seed ~short_write_rate:0.1 ~fsync_fail_rate:0.1 ~fsync_ignore_rate:0.05
      ~crash_rate:0.05 7
  in
  let sched op = St.Io_fault.schedule plane ~op 500 in
  if sched St.Io_fault.Write <> sched St.Io_fault.Write
     || sched St.Io_fault.Fsync <> sched St.Io_fault.Fsync
  then begin
    Printf.eprintf "bench: Io_fault schedule is not deterministic for a fixed seed\n";
    exit 1
  end;
  let faults =
    List.length (List.filter Option.is_some (sched St.Io_fault.Write))
    + List.length (List.filter Option.is_some (sched St.Io_fault.Fsync))
  in
  Printf.printf "  io_fault schedule(seed=7, n=500x2): %d faulted ops, reproducible\n" faults;
  (* --- 2. crash oracle, exact mode --------------------------------- *)
  let exe = Sys.executable_name in
  let trials = if quick then 200 else 300 in
  let exact_rates =
    { St.Oracle.r_crash = 0.02; r_short = 0.015; r_ffail = 0.015; r_fignore = 0. }
  in
  let ex =
    St.Oracle.run_trials ~exe ~tmp:(Filename.concat tmp "exact") ~trials ~seed0:5000
      ~n:40 exact_rates
  in
  Printf.printf
    "  oracle exact: %d trials (%d killed at seeded points, %d completed), %d acked / %d \
     recovered, %d torn tails truncated\n"
    ex.St.Oracle.s_trials ex.St.Oracle.s_killed ex.St.Oracle.s_completed
    ex.St.Oracle.s_acked ex.St.Oracle.s_recovered ex.St.Oracle.s_truncated_tails;
  let exact_ok =
    ex.St.Oracle.s_lost = 0 && ex.St.Oracle.s_resurrected = 0 && ex.St.Oracle.s_escapes = 0
    && ex.St.Oracle.s_quarantined = 0
    && ex.St.Oracle.s_unquarantined_damage = 0
  in
  if not exact_ok then
    Printf.eprintf
      "bench: oracle exact mode violated recovery: %d lost, %d resurrected, %d escapes, \
       %d quarantined, %d unquarantined damage\n"
      ex.St.Oracle.s_lost ex.St.Oracle.s_resurrected ex.St.Oracle.s_escapes
      ex.St.Oracle.s_quarantined ex.St.Oracle.s_unquarantined_damage;
  (* A kill-point oracle that never kills proves nothing. *)
  if ex.St.Oracle.s_killed * 4 < trials then begin
    Printf.eprintf "bench: only %d/%d oracle trials hit a kill point — rates too low\n"
      ex.St.Oracle.s_killed trials;
    exit 1
  end;
  (* --- 3. lying-disk arm (fsync-ignore) ----------------------------- *)
  let liar_trials = if quick then 24 else 48 in
  let liar_rates =
    { St.Oracle.r_crash = 0.03; r_short = 0.01; r_ffail = 0.01; r_fignore = 0.08 }
  in
  let li =
    St.Oracle.run_trials ~exe ~tmp:(Filename.concat tmp "liar") ~trials:liar_trials
      ~seed0:9000 ~n:40 liar_rates
  in
  Printf.printf
    "  oracle fsync-ignore: %d trials, %d acked / %d recovered (%d lost to the lying \
     disk — undetectable by construction), %d escapes, %d unquarantined damage\n"
    li.St.Oracle.s_trials li.St.Oracle.s_acked li.St.Oracle.s_recovered
    li.St.Oracle.s_lost li.St.Oracle.s_escapes li.St.Oracle.s_unquarantined_damage;
  let liar_ok = li.St.Oracle.s_escapes = 0 && li.St.Oracle.s_unquarantined_damage = 0 in
  if not liar_ok then
    Printf.eprintf
      "bench: fsync-ignore arm served corruption: %d escapes, %d unquarantined damage\n"
      li.St.Oracle.s_escapes li.St.Oracle.s_unquarantined_damage;
  (* --- 4. mid-log corruption is quarantined, store keeps serving ---- *)
  let qdir = Filename.concat tmp "quarantine" in
  let s = St.open_store ~max_segment_bytes:512 qdir in
  let n_docs = 20 in
  for i = 0 to n_docs - 1 do
    match
      St.put s ~collection:"q" ~doc:(Printf.sprintf "d%d" i)
        (Printf.sprintf "<doc n=\"%d\"><p>%s</p></doc>" i (String.make 80 'z'))
    with
    | Ok _ -> ()
    | Error e -> failwith (St.error_message e)
  done;
  St.close s;
  (* Flip one byte inside the first record of a multi-record segment:
     mid-log damage, not a torn tail. *)
  let segs =
    Sys.readdir qdir |> Array.to_list
    |> List.filter_map St.Segment.seg_id
    |> List.sort compare
  in
  let victim =
    List.find
      (fun id ->
        (Unix.stat (Filename.concat qdir (St.Segment.seg_name id))).Unix.st_size
        >= St.Segment.header_len + 200)
      segs
  in
  let vpath = Filename.concat qdir (St.Segment.seg_name victim) in
  let fd = Unix.openfile vpath [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (St.Segment.header_len + 6) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let s2 = St.open_store qdir in
  (* Quarantine is lazy: damage the checkpoint already covers is caught
     at read time, not at open. Read every doc — the victim segment's
     docs must answer store:corrupt, the rest must still serve. *)
  let served, corrupt =
    List.fold_left
      (fun (ok, bad) (d, _) ->
        match St.get s2 ~collection:"q" ~doc:d with
        | Ok _ -> (ok + 1, bad)
        | Error (`Corrupt _) -> (ok, bad + 1)
        | Error _ -> (ok, bad))
      (0, 0)
      (St.list_docs s2 ~collection:"q")
  in
  let quarantined = St.quarantined s2 in
  (* Close checkpoints, persisting the quarantine into the manifest —
     after which the offline scrub must agree nothing damaged is left
     unquarantined. *)
  St.close s2;
  let report = St.Scrub.run qdir in
  Printf.printf
    "  quarantine: corrupted segment %d mid-log -> %d segment(s) quarantined, %d/%d docs \
     still served (%d corrupt), scrub: %d damaged / %d unquarantined\n"
    victim (List.length quarantined) served n_docs corrupt
    (List.length report.St.Scrub.damaged)
    (List.length (St.Scrub.unquarantined_damage report));
  let quarantine_ok =
    quarantined <> [] && served > 0 && corrupt > 0
    && served + corrupt = n_docs
    && St.Scrub.unquarantined_damage report = []
  in
  if not quarantine_ok then
    Printf.eprintf "bench: mid-log corruption was not quarantined cleanly\n";
  (* --- 5. HTTP ingest conservation + replay through brownout -------- *)
  (* Phase A: sequential mixed workload against a store-backed server
     with the recorder attached; sequential so the client-side acked
     (doc, hash) map has the same last-write-wins order the store
     serialized. *)
  let dir_a = Filename.concat tmp "http" in
  let store_a = St.open_store dir_a in
  let recorder = Server.Recorder.create () in
  let svc_a = Service.create ~config:{ Service.default_config with Service.result_cache_cap = 64 } () in
  let srv_a =
    Server.create
      ~config:
        {
          Server.default_config with
          Server.max_inflight = 2;
          queue_cap = 64;
          store = Some store_a;
          recorder = Some recorder;
        }
      svc_a
  in
  Server.start srv_a;
  let port_a = Server.port srv_a in
  let n_mix = if quick then 60 else 160 in
  let mixed = Workload.entries ~seed:19 ~ingest:0.6 ~quick ~n:n_mix ~rate:1000. () in
  let acked_a : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let ok_a = ref 0 and put_a = ref 0 in
  List.iter
    (fun (e : Server.Recorder.entry) ->
      let status, body =
        store_request ~port:port_a ~meth:e.e_meth ~path:e.e_path ~headers:(store_headers e)
          e.e_body
      in
      if status = 200 then incr ok_a;
      if e.e_meth = "PUT" then begin
        incr put_a;
        if status = 200 then
          match store_doc_of_path e.e_path with
          | Some doc -> Hashtbl.replace acked_a doc (String.trim body)
          | None -> ()
      end)
    mixed;
  let recorded = Server.Recorder.length recorder in
  Server.drain srv_a;
  St.close store_a;
  (* Reopen from disk: recovery must reproduce exactly the acked map. *)
  let re_a = St.open_store dir_a in
  let recovered_a = St.list_docs re_a ~collection:Workload.ingest_collection in
  List.iter (fun (d, _) -> ignore (St.get re_a ~collection:Workload.ingest_collection ~doc:d)) recovered_a;
  let escapes_a = (St.counts re_a).St.n_read_crc_failures in
  let store_violations =
    Server.Recorder.check_store_invariants
      ~acked:(Hashtbl.fold (fun d h acc -> (d, h) :: acc) acked_a [])
      ~recovered:recovered_a ~escapes:escapes_a
  in
  St.close re_a;
  Printf.printf
    "  http ingest: %d mixed requests (%d ok, %d puts, %d acked docs), %d recorded; \
     drain+reopen recovered %d docs, %d store violations\n"
    n_mix !ok_a !put_a (Hashtbl.length acked_a) recorded (List.length recovered_a)
    (List.length store_violations);
  List.iter
    (fun v -> Printf.eprintf "bench: store conservation violation: %s\n" v)
    store_violations;
  (* Phase B: the capture replayed at 2x through a small, brownout-
     enabled server on a fresh store — overload + degradation + ingest
     in one run, gated on the replay conservation invariants and on
     no-lost-acked-write after drain + reopen. *)
  let capture = "STORE_mixed.rec" in
  let saved = Server.Recorder.save recorder capture in
  let replayed = Server.Recorder.load capture in
  if List.length replayed <> saved then begin
    Printf.eprintf "bench: store capture round-trip lost entries (%d saved, %d loaded)\n"
      saved (List.length replayed);
    exit 1
  end;
  let dir_b = Filename.concat tmp "replay" in
  let store_b = St.open_store dir_b in
  let svc_b = Service.create ~config:{ Service.default_config with Service.result_cache_cap = 64 } () in
  let srv_b =
    Server.create
      ~config:
        {
          Server.default_config with
          Server.max_inflight = 2;
          queue_cap = 8;
          store = Some store_b;
          brownout = Some Server.Brownout.default_config;
        }
      svc_b
  in
  Server.start srv_b;
  let port_b = Server.port srv_b in
  let ledger_b, acked_b = store_drive ~port:port_b ~speed:2. replayed in
  Thread.delay 0.3;
  let metrics_b = Server.metrics_body srv_b in
  let replay_violations = Server.Recorder.check_invariants ~ledger:ledger_b ~metrics_text:metrics_b in
  Server.drain srv_b;
  St.close store_b;
  let re_b = St.open_store dir_b in
  let recovered_b = St.list_docs re_b ~collection:Workload.ingest_collection in
  St.close re_b;
  (* Parallel replay overwrites the same doc ids in racy order, so hash
     equality is not well-defined — the invariant that is: every doc
     with an acknowledged durable write exists after reopen. *)
  let lost_b =
    List.filter (fun (d, _) -> not (List.mem_assoc d recovered_b)) acked_b
  in
  let scrub_b = St.Scrub.run dir_b in
  let ok_b =
    List.fold_left
      (fun acc (st, n) -> if st = 200 then acc + n else acc)
      0 ledger_b.Server.Recorder.status_counts
  in
  Printf.printf
    "  brownout replay (2x, queue 8): %d sent, %d responses (%d ok), %d acked puts, %d \
     recovered after reopen, %d lost, %d replay violations, scrub %s\n"
    ledger_b.Server.Recorder.sent ledger_b.Server.Recorder.responses ok_b
    (List.length acked_b) (List.length recovered_b) (List.length lost_b)
    (List.length replay_violations)
    (if St.Scrub.clean scrub_b then "clean" else "DAMAGED");
  List.iter
    (fun v -> Printf.eprintf "bench: store replay invariant violation: %s\n" v)
    replay_violations;
  List.iter (fun (d, _) -> Printf.eprintf "bench: replay lost acked write: %s\n" d) lost_b;
  if json then begin
    let path = "BENCH_server.json" in
    let base_json =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      end
      else "{\n  \"bench\": \"overload\"\n}\n"
    in
    let head =
      match find_sub ",\n  \"store\":" base_json with
      | Some i -> String.sub base_json 0 i
      | None -> (
        match String.rindex_opt base_json '}' with
        | None -> "{\n  \"bench\": \"overload\""
        | Some j ->
          let rec back k =
            if k > 0 && (match base_json.[k - 1] with '\n' | ' ' | '\t' | '\r' -> true | _ -> false)
            then back (k - 1)
            else k
          in
          String.sub base_json 0 (back j))
    in
    let block =
      Printf.sprintf
        "{\n\
        \    \"oracle_trials\": %d,\n\
        \    \"oracle_killed\": %d,\n\
        \    \"oracle_lost\": %d,\n\
        \    \"oracle_resurrected\": %d,\n\
        \    \"oracle_escapes\": %d,\n\
        \    \"oracle_truncated_tails\": %d,\n\
        \    \"liar_trials\": %d,\n\
        \    \"liar_lost\": %d,\n\
        \    \"liar_escapes\": %d,\n\
        \    \"quarantined_segments\": %d,\n\
        \    \"http_acked_docs\": %d,\n\
        \    \"http_store_violations\": %d,\n\
        \    \"replay_sent\": %d,\n\
        \    \"replay_ok\": %d,\n\
        \    \"replay_acked_puts\": %d,\n\
        \    \"replay_lost\": %d,\n\
        \    \"replay_violations\": %d,\n\
        \    \"replay_scrub_clean\": %b\n\
        \  }"
        ex.St.Oracle.s_trials ex.St.Oracle.s_killed ex.St.Oracle.s_lost
        ex.St.Oracle.s_resurrected ex.St.Oracle.s_escapes ex.St.Oracle.s_truncated_tails
        li.St.Oracle.s_trials li.St.Oracle.s_lost li.St.Oracle.s_escapes
        (List.length quarantined) (Hashtbl.length acked_a)
        (List.length store_violations) ledger_b.Server.Recorder.sent ok_b
        (List.length acked_b) (List.length lost_b) (List.length replay_violations)
        (St.Scrub.clean scrub_b)
    in
    let oc = open_out path in
    output_string oc (head ^ ",\n  \"store\": " ^ block ^ "\n}\n");
    close_out oc;
    Printf.printf "  merged store block into BENCH_server.json\n"
  end;
  store_rm_rf tmp;
  (* Gates. *)
  if not exact_ok then exit 1;
  if not liar_ok then exit 1;
  if not quarantine_ok then exit 1;
  if store_violations <> [] then exit 1;
  if replay_violations <> [] || lost_b <> [] || not (St.Scrub.clean scrub_b) then exit 1

(* ---------------------------------------------------------------- *)

(* REPL: the replicated-store claims. Seeded trials re-exec this binary
   as 3 replica store backends, each running a live Io_fault disk plane,
   with the Chaos network plane on the data frames — one seed drives
   both — then kill and partition nodes (preferentially the then-
   primary) at seeded points mid-ingest. After repair, three invariants
   gate: every quorum-acked write survives byte-exact on every replica,
   no unacked write resurrects anywhere, and all replica directories
   converge segment-for-segment byte-identically. A disruption floor
   (>= 25% of trials hitting the primary) keeps the oracle honest —
   a failover oracle that never deposes a primary proves nothing. *)
let repl_exp () =
  section "REPL - replicated store: quorum log shipping, failover, partition oracle";
  let module St = Server.Store in
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) "lopsided-repl-bench" in
  store_rm_rf tmp;
  Unix.mkdir tmp 0o755;
  (* Env knobs for bisecting a failing seed without recompiling. *)
  let env_int name default =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> default
  in
  let trials = env_int "REPL_TRIALS" (if quick then 30 else 200) in
  let seed0 = env_int "REPL_SEED0" 6100 in
  let rates =
    { St.Oracle.r_crash = 0.02; r_short = 0.02; r_ffail = 0.02; r_fignore = 0. }
  in
  let s = St.Oracle.run_repl_trials ~tmp ~trials ~seed0 ~n:18 rates in
  Printf.printf
    "  repl oracle: %d trials (%d ops), %d kills + %d partitions (%d trials disrupted \
     the primary), %d promotions, %d tails truncated, %d repair rounds\n"
    s.St.Oracle.rs_trials s.St.Oracle.rs_ops s.St.Oracle.rs_kills
    s.St.Oracle.rs_partitions s.St.Oracle.rs_primary_disrupted s.St.Oracle.rs_promotions
    s.St.Oracle.rs_truncated_tails s.St.Oracle.rs_repairs;
  Printf.printf
    "  ledger: %d acked / %d refused-clean / %d ambiguous-rollback; %d lost, %d \
     resurrected, %d diverged\n"
    s.St.Oracle.rs_acked s.St.Oracle.rs_refused s.St.Oracle.rs_ambiguous
    s.St.Oracle.rs_lost s.St.Oracle.rs_resurrected s.St.Oracle.rs_diverged;
  let invariants_ok =
    s.St.Oracle.rs_lost = 0 && s.St.Oracle.rs_resurrected = 0
    && s.St.Oracle.rs_diverged = 0
  in
  if not invariants_ok then
    Printf.eprintf
      "bench: replication oracle violated: %d acked writes lost, %d unacked \
       resurrected, %d trials diverged\n"
      s.St.Oracle.rs_lost s.St.Oracle.rs_resurrected s.St.Oracle.rs_diverged;
  let disruption_ok = s.St.Oracle.rs_primary_disrupted * 4 >= trials in
  if not disruption_ok then
    Printf.eprintf
      "bench: only %d/%d repl trials disrupted the primary — the failover arm never \
       fired\n"
      s.St.Oracle.rs_primary_disrupted trials;
  if json then begin
    let path = "BENCH_server.json" in
    let base_json =
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      end
      else "{\n  \"bench\": \"overload\"\n}\n"
    in
    let head =
      match find_sub ",\n  \"repl\":" base_json with
      | Some i -> String.sub base_json 0 i
      | None -> (
        match String.rindex_opt base_json '}' with
        | None -> "{\n  \"bench\": \"overload\""
        | Some j ->
          let rec back k =
            if k > 0 && (match base_json.[k - 1] with '\n' | ' ' | '\t' | '\r' -> true | _ -> false)
            then back (k - 1)
            else k
          in
          String.sub base_json 0 (back j))
    in
    let block =
      Printf.sprintf
        "{\n\
        \    \"trials\": %d,\n\
        \    \"ops\": %d,\n\
        \    \"kills\": %d,\n\
        \    \"partitions\": %d,\n\
        \    \"primary_disrupted_trials\": %d,\n\
        \    \"promotions\": %d,\n\
        \    \"truncated_tails\": %d,\n\
        \    \"repairs\": %d,\n\
        \    \"acked\": %d,\n\
        \    \"refused_clean\": %d,\n\
        \    \"ambiguous\": %d,\n\
        \    \"lost\": %d,\n\
        \    \"resurrected\": %d,\n\
        \    \"diverged\": %d\n\
        \  }"
        s.St.Oracle.rs_trials s.St.Oracle.rs_ops s.St.Oracle.rs_kills
        s.St.Oracle.rs_partitions s.St.Oracle.rs_primary_disrupted
        s.St.Oracle.rs_promotions s.St.Oracle.rs_truncated_tails s.St.Oracle.rs_repairs
        s.St.Oracle.rs_acked s.St.Oracle.rs_refused s.St.Oracle.rs_ambiguous
        s.St.Oracle.rs_lost s.St.Oracle.rs_resurrected s.St.Oracle.rs_diverged
    in
    let oc = open_out path in
    output_string oc (head ^ ",\n  \"repl\": " ^ block ^ "\n}\n");
    close_out oc;
    Printf.printf "  merged repl block into BENCH_server.json\n"
  end;
  store_rm_rf tmp;
  if not invariants_ok then exit 1;
  if not disruption_ok then exit 1

(* ---------------------------------------------------------------- *)

let experiments =
  [
    ("t1t2", t1_t2);
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("gov", gov);
    ("overload", overload);
    ("serving", serving);
    ("chaos", chaos_exp);
    ("store", store_exp);
    ("repl", repl_exp);
    ("a1", a1);
    ("a2", a2);
    ("a3", a3);
    ("a4", a4);
  ]

let () =
  (* The serving experiment spawns shard backends by re-exec'ing this
     binary; when this IS such a backend, serve frames and exit. *)
  Server.Shard.maybe_run_backend ();
  (* The store experiment likewise re-execs this binary as a crash-
     oracle child ingester, and the replication experiment as replica
     store backends. *)
  Server.Store.Oracle.maybe_run_child ();
  Server.Store.Replica.maybe_run_backend ();
  Printf.printf "Lopsided Little Languages - benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  let selected =
    match only with
    | None -> experiments
    | Some name -> List.filter (fun (n, _) -> n = name) experiments
  in
  if selected = [] then begin
    Printf.eprintf "bench: unknown experiment %s (known: %s)\n"
      (Option.value only ~default:"")
      (String.concat " " (List.map fst experiments));
    exit 2
  end;
  List.iter (fun (_, f) -> f ()) selected;
  if json && !e9_results <> [] then e9_write_json "BENCH_eval.json";
  print_newline ()
