(* Seeded workload generator for the chaos/replay harness.

   Produces Recorder entries — the same shape [awbserve serve --record]
   captures — without needing a live capture first: diverse AWB models
   spanning decades of size (10^2 .. 10^5 nodes) and a mixed
   template/search traffic schedule, all a pure function of the seed so
   two runs offer byte-identical workloads.

   The generated bodies are composite (template + inline model): every
   request carries its model, so backend model caches, consistent-hash
   locality, and body-size handling all get exercised, not just the
   evaluator. *)

(* A deterministic LCG, independent of Random's global state — the
   bench must not perturb (or be perturbed by) other experiments. *)
type rng = { mutable state : int }

let rng seed = { state = (seed lxor 0x9e3779b9) land 0x3fffffff }

let next r =
  r.state <- ((r.state * 1103515245) + 12345) land 0x3fffffff;
  r.state

let pick r arr = arr.(next r mod Array.length arr)
let uniform r = float_of_int (next r) /. float_of_int 0x40000000

(* Template traffic (document generation over the model) and search
   traffic (query-only lookups rendered through value-of) — the mix the
   paper's workload describes, in one schedule. *)

let scan_tpl =
  "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"

let report_tpl =
  "<document><table-of-contents/><for nodes=\"start type(User); sort-by label\">\
   <section><heading><label/></heading>\
   <p><value-of query=\"start focus; follow uses; distinct; sort-by label\"/></p>\
   </section></for></document>"

let search_tpl =
  "<document><p><value-of query=\"start type(User); follow likes; distinct; sort-by \
   label\"/></p></document>"

let tenants = [| "acme"; "globex"; "initech"; "umbrella" |]

(* Ingest traffic: durable PUTs into a collection plus queries that
   resolve doc() against it — the store's write and read paths under
   the same admission machinery as generation. Docs cycle over a small
   id space so a schedule mixes fresh inserts with overwrites. *)
let ingest_collection = "bench"

let ingest_doc_body r i =
  Printf.sprintf
    "<doc n=\"%d\"><field a=\"%d\"/><payload>%s</payload></doc>" i (next r mod 1000)
    (String.make (32 + (next r mod 256)) 'y')

let ingest_put_path i =
  Printf.sprintf "/collections/%s/docs/doc-%d" ingest_collection (i mod 64)

let ingest_query_body i =
  Printf.sprintf "doc(\"doc-%d\")//field/@a" (i mod 64)

let ingest_query_path = Printf.sprintf "/collections/%s/query" ingest_collection

(* Model working set: one synthetic model per requested size, exported
   once and shared by every entry that targets it. Sizes are node
   counts for Synth.generate_of_size; 10^5-node exports run to
   megabytes, so callers bound the top size to their server's body
   cap. *)
let models ~seed sizes =
  Array.mapi
    (fun i n -> Awb.Xml_io.export_string (Awb.Synth.generate_of_size ~seed:(seed + i) n))
    sizes

(* Default size ladders: two decades in quick mode, three in full —
   large enough that per-model cost varies by orders of magnitude,
   small enough that a composite body stays under the server's 4 MiB
   default cap. *)
let default_sizes ~quick =
  if quick then [| 100; 300; 1000 |] else [| 100; 1000; 3000; 10000 |]

(* The schedule: [n] entries at [rate] requests/second with jittered
   spacing, 50% scans / 25% reports / 25% searches, models drawn
   uniformly from the working set, tenants round-robin-ish, deadlines
   mostly explicit (4 s — generous enough that only injected faults
   burn them) with a no-deadline minority.

   Template choice is size-aware: a heavy export (>= 3000 nodes) only
   gets the linear scan — a 10^4-node follow/distinct report is a batch
   job, not interactive traffic, and a workload that mixes multi-second
   generations into a seconds-long schedule measures overload, not
   fault tolerance (OVERLOAD and BROWNOUT own that axis).

   [ingest] (default 0, keeping earlier schedules byte-identical) is
   the fraction of entries that are store traffic instead of
   generation: two thirds durable PUTs into the [bench] collection, one
   third doc()-resolving queries against it. *)
let entries ~seed ?sizes ?(ingest = 0.) ~quick ~n ~rate () =
  let sizes = match sizes with Some s -> s | None -> default_sizes ~quick in
  let xmls = models ~seed sizes in
  let r = rng seed in
  let ts = ref 0. in
  List.init n (fun i ->
      let gap = (0.5 +. uniform r) /. rate in
      if i > 0 then ts := !ts +. gap;
      if ingest > 0. && uniform r < ingest then
        if next r mod 3 < 2 then
          Server.Recorder.entry ~ts:!ts ~meth:"PUT" ~path:(ingest_put_path i)
            ~tenant:(pick r tenants) ~deadline_ms:4000 ~body:(ingest_doc_body r i) ()
        else
          Server.Recorder.entry ~ts:!ts ~meth:"POST" ~path:ingest_query_path
            ~tenant:(pick r tenants) ~deadline_ms:4000 ~body:(ingest_query_body i) ()
      else begin
        let mi = next r mod Array.length xmls in
        let template =
          if sizes.(mi) >= 3000 then scan_tpl
          else
            match next r mod 4 with 0 | 1 -> scan_tpl | 2 -> report_tpl | _ -> search_tpl
        in
        let body = Server.Composite.build ~template ~model:xmls.(mi) in
        let deadline_ms = if uniform r < 0.8 then 4000 else 0 in
        Server.Recorder.entry ~ts:!ts ~meth:"POST" ~path:"/generate"
          ~tenant:(pick r tenants) ~deadline_ms ~body ()
      end)
