(* AWB retargeted to itself: reflect the IT-architecture metamodel into a
   model of the meta-metamodel, then run the ordinary document generator
   over it to produce metamodel documentation.

   Run with: dune exec examples/metamodel_doc.exe *)

module S = Lopsided.Xml.Serialize
module Spec = Lopsided.Docgen.Spec

let template_src =
  {|<document title="Metamodel Reference">
  <table-of-contents/>
  <section>
    <heading>Node types</heading>
    <for nodes="start type(NodeType); sort-by label">
      <section>
        <heading><label/></heading>
        <p>extends: <value-of query="start focus; follow extends"/></p>
        <p>properties: <value-of query="start focus; follow declares; sort-by label"/>
           (<count-of query="start focus; follow declares"/>)</p>
        <p>may be the target of:
           <value-of query="start focus; follow suggests-target backward; distinct; sort-by label"/></p>
      </section>
    </for>
  </section>
  <section>
    <heading>Relations</heading>
    <for nodes="start type(RelationType); sort-by label">
      <p><b><label/></b>:
         <value-of query="start focus; follow suggests-source; distinct; sort-by label"/>
         to
         <value-of query="start focus; follow suggests-target; distinct; sort-by label"/></p>
    </for>
  </section>
  <section>
    <heading>Advisories</heading>
    <for nodes="start type(Advisory); sort-by label">
      <p><property name="kind"/> <property name="subject"/> <property name="detail"/></p>
    </for>
  </section>
</document>|}

let () =
  let mm = Lopsided.Awb.Samples.it_architecture in
  Printf.printf "Reflecting metamodel %S into a model of the meta-metamodel...\n"
    (Lopsided.Awb.Metamodel.name mm);
  let model = Lopsided.Awb.Reflect.metamodel_as_model mm in
  Printf.printf "  %d nodes, %d relations\n\n"
    (Lopsided.Awb.Model.node_count model)
    (Lopsided.Awb.Model.relation_count model);

  let template =
    Lopsided.Xml.Parser.strip_whitespace (Lopsided.Xml.Parser.parse_string template_src)
  in
  let result = Lopsided.Docgen.generate ~engine:`Host model ~template in
  print_endline (S.to_pretty_string result.Spec.document);

  (* And back again: the reflection round-trips. *)
  let back = Lopsided.Awb.Reflect.model_to_metamodel model in
  Printf.printf "\nround-trip: %d node types in, %d out\n"
    (List.length (Lopsided.Awb.Metamodel.node_type_names mm))
    (List.length (Lopsided.Awb.Metamodel.node_type_names back))
