(* The System Context document: the paper's flagship work product,
   generated from the banking model by BOTH document-generation engines,
   then compared byte for byte.

   Run with: dune exec examples/system_context.exe *)

module N = Lopsided.Xml.Node
module S = Lopsided.Xml.Serialize
module Spec = Lopsided.Docgen.Spec

let template_src =
  {|<document title="System Context">
  <table-of-contents/>
  <with-single type="SystemBeingDesigned">
    <section>
      <heading>System Context: <label/></heading>
      <p>This document describes <label/>.</p>
      <p>Documents on file: <value-of query="start focus; follow has to(Document); sort-by label"/>.</p>
    </section>
  </with-single>
  <section>
    <heading>Users</heading>
    <ol>
      <for nodes="start type(User); sort-by label">
        <li>
          <if>
            <test><has-prop name="superuser"/></test>
            <then><b><label/></b> (<property name="firstName"/> <property name="lastName"/>)</then>
            <else><label/> (<property name="firstName"/> <property name="lastName"/>)</else>
          </if>
        </li>
      </for>
    </ol>
  </section>
  <section>
    <heading>Deployment</heading>
    <grid-table rows="start type(Server); sort-by label"
                cols="start type(Program); sort-by label" rel="runs"/>
    <marker-table name="TABLE-1" rows="start type(Server); sort-by label"
                  cols="start type(DataStore); sort-by label" rel="connects-to"/>
    <blob>The connectivity matrix (TABLE-1-GOES-HERE) was pasted from the ops wiki.</blob>
  </section>
  <section>
    <heading>Omissions</heading>
    <table-of-omissions types="Document Server DataStore"/>
  </section>
</document>|}

let () =
  let model = Lopsided.Awb.Samples.banking_model () in
  let template =
    Lopsided.Xml.Parser.strip_whitespace (Lopsided.Xml.Parser.parse_string template_src)
  in

  print_endline "== Generating the System Context document twice ==\n";

  let functional = Lopsided.Docgen.generate ~engine:`Functional model ~template in
  let host = Lopsided.Docgen.generate ~engine:`Host model ~template in

  let fs = S.to_string functional.Spec.document in
  let hs = S.to_string host.Spec.document in
  Printf.printf "functional engine (XQuery style): %d bytes, %d phases, %d nodes copied, %d error checks\n"
    (String.length fs) functional.Spec.stats.Spec.phases
    functional.Spec.stats.Spec.nodes_copied functional.Spec.stats.Spec.error_checks;
  Printf.printf "host engine (the rewrite):        %d bytes, %d phases, %d nodes copied, %d exceptions\n"
    (String.length hs) host.Spec.stats.Spec.phases host.Spec.stats.Spec.nodes_copied
    host.Spec.stats.Spec.exceptions_raised;
  Printf.printf "outputs identical: %b\n\n" (fs = hs);

  print_endline "== Problems stream (advisory validation + generation notes) ==";
  List.iter (fun p -> print_endline ("  - " ^ p)) host.Spec.problems;

  print_endline "\n== The document ==";
  print_endline (S.to_pretty_string host.Spec.document);

  (* The paper's failure case: add a second SystemBeingDesigned and watch
     both error-handling styles produce the same diagnosis. *)
  print_endline "== With a second SystemBeingDesigned node ==";
  ignore
    (Lopsided.Awb.Model.add_node model "SystemBeingDesigned"
       ~props:[ ("name", Lopsided.Awb.Model.V_string "impostor") ]);
  let broken = Lopsided.Docgen.generate ~engine:`Host model ~template in
  print_endline (S.to_pretty_string broken.Spec.document)
