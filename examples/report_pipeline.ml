(* The full pipeline, end to end, the way the paper's system ran:

     model --export--> XML --[XQuery-style generator]--> one output stream
           --[little XSLT program]--> document + problem report
           --[more XSLT]--> an executive summary

   "The XQuery component could produce a big XML file with all the output
   streams as children of the root element, and a little XSLT program
   could split them apart."

   Run with: dune exec examples/report_pipeline.exe *)

module N = Lopsided.Xml.Node
module S = Lopsided.Xml.Serialize

let template_src =
  {|<document title="Weekly Architecture Report">
  <with-single type="SystemBeingDesigned">
    <section><heading>Report: <label/></heading>
      <p>Users: <count-of query="start type(User)"/>;
         systems: <count-of query="start type(System)"/>;
         documents on file: <count-of query="start type(Document)"/>.</p>
    </section>
  </with-single>
  <section><heading>Staff</heading>
    <ul><for nodes="start type(User); sort-by label"><li><label/></li></for></ul>
  </section>
  <table-of-omissions types="Document"/>
</document>|}

(* An XSLT stylesheet that boils the generated document down to a plain
   summary: headings and list items only. *)
let summary_xsl =
  {|<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <summary><xsl:apply-templates/></summary>
  </xsl:template>
  <xsl:template match="h2">
    <topic><xsl:value-of select="string(.)"/></topic>
  </xsl:template>
  <xsl:template match="li">
    <entry><xsl:value-of select="string(.)"/></entry>
  </xsl:template>
  <xsl:template match="text()"/>
</xsl:stylesheet>|}

let () =
  let model = Lopsided.Awb.Samples.banking_model () in
  let template =
    Lopsided.Xml.Parser.strip_whitespace (Lopsided.Xml.Parser.parse_string template_src)
  in

  (* Stage 1: the functional (XQuery-style) generator produces a single
     wrapped output stream. *)
  let wrapped, stats =
    Lopsided.Docgen.generate_with_streams ~engine:`Functional model ~template
  in
  Printf.printf "stage 1: generated one output stream (%d phases, %d nodes copied)\n"
    stats.Lopsided.Docgen.Spec.phases stats.Lopsided.Docgen.Spec.nodes_copied;

  (* Stage 2: the little XSLT program splits the streams apart. *)
  let split = Lopsided.Docgen.Streams.split_via_xslt wrapped in
  Printf.printf "stage 2: split into document (%d bytes) + %d problem line(s)\n"
    (String.length (S.to_string split.Lopsided.Docgen.Streams.document))
    (List.length split.Lopsided.Docgen.Streams.problems);

  (* Stage 3: a second stylesheet summarizes the document. *)
  let sheet = Xslt.compile_string summary_xsl in
  let summary =
    Xslt.apply_to_element sheet (N.document [ N.copy split.Lopsided.Docgen.Streams.document ])
  in
  print_endline "stage 3: executive summary:";
  print_endline (S.to_pretty_string summary);

  print_endline "problem report:";
  List.iter (fun p -> print_endline ("  - " ^ p)) split.Lopsided.Docgen.Streams.problems
