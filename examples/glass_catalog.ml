(* Retargeting AWB: "AWB has retargeted to be a workbench for (1) an
   antique glass dealer" — nothing in the document generator is
   IT-specific, so the same machinery produces a sales catalog from the
   glass metamodel.

   Run with: dune exec examples/glass_catalog.exe *)

module Spec = Lopsided.Docgen.Spec

let template_src =
  {|<document title="Antique Glass Catalog">
  <table-of-contents/>
  <section>
    <heading>Catalog</heading>
    <for nodes="start type(GlassPiece); sort-by prop(year)">
      <section>
        <heading><label/> (<property name="year"/>)</heading>
        <p><property name="color"/>; made by
           <value-of query="start focus; follow made-by"/>
           in the <value-of query="start focus; follow in-style"/> style.</p>
        <if>
          <test><nonempty query="start focus; follow purchased-by"/></test>
          <then><p><i>Sold to <value-of query="start focus; follow purchased-by"/>.</i></p></then>
          <else><p>Available; inquire within.</p></else>
        </if>
      </section>
    </for>
  </section>
  <section>
    <heading>Makers at a glance</heading>
    <grid-table rows="start type(Maker); sort-by label"
                cols="start type(Style); sort-by label" rel="made-by"/>
  </section>
  <section>
    <heading>Never shown</heading>
    <table-of-omissions types="Maker Customer"/>
  </section>
</document>|}

let () =
  let model = Lopsided.Awb.Samples.glass_model () in
  let template =
    Lopsided.Xml.Parser.strip_whitespace (Lopsided.Xml.Parser.parse_string template_src)
  in
  let result = Lopsided.Docgen.generate ~engine:`Host model ~template in
  print_endline "== Antique glass catalog (host engine) ==\n";
  print_endline (Lopsided.Xml.Serialize.to_pretty_string result.Spec.document);
  if result.Spec.problems <> [] then begin
    print_endline "\n== Problems ==";
    List.iter (fun p -> print_endline ("  - " ^ p)) result.Spec.problems
  end;

  (* The same template through the functional engine gives the same
     bytes — the glass catalog has no idea which architecture made it. *)
  let functional = Lopsided.Docgen.generate ~engine:`Functional model ~template in
  Printf.printf "\nfunctional engine output identical: %b\n"
    (Lopsided.Xml.Serialize.to_string functional.Spec.document
    = Lopsided.Xml.Serialize.to_string result.Spec.document)
