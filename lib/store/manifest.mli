(** The store manifest: a CRC-guarded binary checkpoint of live
    segments (with durable lengths), quarantined segments, and the
    doc location table, swapped atomically (write temp + fsync +
    rename + directory fsync). *)

val file_name : string
val tmp_name : string

type loc = {
  l_collection : string;
  l_doc : string;
  l_hash : string;  (** MD5 hex of the snapshot at ingest *)
  l_seg : int;
  l_off : int;
  l_len : int;  (** framed record length *)
}

type t = {
  next_seg : int;
  active : int;  (** -1 = none *)
  epoch : int;
      (** replication term at checkpoint time; replay only sees records
          above the checkpointed lengths, so the checkpoint must carry
          the term itself or a reopen after checkpoint lands at term 0 *)
  segs : (int * int) list;  (** id, checkpointed durable length *)
  quarantined : (int * string) list;
  docs : loc list;
}

val empty : t
val encode : t -> string

val decode : string -> t
(** Raises [Segment.Corrupt]. *)

val save : ?plane:Io_fault.t -> dir:string -> t -> unit
(** Atomic durable swap. On an injected or genuine I/O failure the old
    manifest is still installed (and the temp removed). *)

val load : dir:string -> [ `Manifest of t | `Missing | `Damaged of string ]
(** A damaged manifest is reported, not fatal: the caller rebuilds by
    scanning every segment from its header. *)
