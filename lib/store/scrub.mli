(** Offline integrity scrub: verify every checksum in every segment of
    a store directory, read-only. *)

type report = {
  segments : int;
  records : int;
  bytes : int;
  live_docs : int;
  torn_tails : (int * string) list;
  damaged : (int * string) list;  (** mid-log damage per segment *)
  quarantined : int list;  (** already quarantined per the manifest *)
  manifest : [ `Ok | `Missing | `Damaged of string ];
}

val run : string -> report

val unquarantined_damage : report -> (int * string) list
(** Damage the manifest does not already quarantine — the set that must
    be empty for the store to count as clean. *)

val clean : report -> bool

val render : report -> string
(** Human-readable summary (one line per finding). *)
