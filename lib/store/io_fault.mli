(** Deterministic I/O fault injection — the Chaos plane's discipline
    (every decision a pure function of seed x op x sequence) pushed down
    into the filesystem layer — plus the faultable append-only file the
    segment log writes through.

    With a plane attached, appended bytes buffer in memory and reach the
    file descriptor only at the {!fsync} barrier, so an injected crash
    ([Unix._exit] mid-operation) genuinely loses un-fsynced data instead
    of leaving it to survive in the OS page cache. *)

type fault =
  | Short_write of float
      (** fraction of the buffer that lands before the error *)
  | Fsync_fail  (** bytes reach the fd, durability does not, call errors *)
  | Fsync_ignore  (** reports success with nothing made durable *)
  | Crash_after of float
      (** flush this fraction of pending bytes, then [_exit] — always a
          strict prefix, so an operation never both completes and
          crashes *)

type op = Write | Fsync

type t = {
  seed : int;
  short_write_rate : float;
  fsync_fail_rate : float;
  fsync_ignore_rate : float;
  crash_rate : float;
}

val none : t

val of_seed :
  ?short_write_rate:float ->
  ?fsync_fail_rate:float ->
  ?fsync_ignore_rate:float ->
  ?crash_rate:float ->
  int ->
  t
(** All rates default to 0. *)

val enabled : t -> bool

val decide : t -> op:op -> seq:int -> fault option
(** Pure: same plane, op and sequence number always produce the same
    decision. At most one fault per operation, drawn in a fixed
    priority order (crash first). *)

val schedule : t -> op:op -> int -> fault option list
(** The first [n] decisions for [op] — byte-identical across runs. *)

val fault_name : fault -> string

(** {1 The faultable append-only file} *)

exception Fault of string
(** An injected write/fsync failure (or a genuine short write). *)

type file

val openf : ?plane:t -> string -> file
(** Open (creating if absent) for append at the current size. A plane
    with all rates zero is treated as absent: writes go straight
    through. *)

val path : file -> string

val committed : file -> int
(** Bytes known durable: on the fd and covered by a real fsync. *)

val length : file -> int
(** Logical length: committed + flushed-but-unsynced + buffered. The
    offset the next {!append} lands at. *)

val append : file -> string -> unit
(** Buffer bytes for the next barrier. Raises {!Fault} on an injected
    short write (after buffering a torn prefix — call {!repair}). *)

val fsync : file -> unit
(** The durability barrier: flush buffered bytes and fsync. Raises
    {!Fault} on an injected failure (call {!repair}); an injected
    ignore returns success with nothing durable. *)

val repair : file -> unit
(** After a failed append/fsync: discard pending bytes and truncate the
    fd back to the last barrier, so nothing unacknowledged can be
    resurrected by a later successful fsync. *)

val close : file -> unit
(** Close the fd. Buffered-unflushed bytes are lost — callers fsync
    first. *)
