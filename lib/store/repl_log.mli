(** Payload codecs for the replication frame family — log shipping,
    undo, anti-entropy catch-up, and promotion — riding the [Frame]
    wire discipline over the shard UDS channels. One op byte, then
    op-specific fields; replies reuse the same framing, and a replica
    that must refuse (stale epoch, diverged position, store error)
    answers a structured [Frame.nack] so the stream never desyncs. *)

(** {1 Write (log shipping)} *)

type write = {
  w_epoch : int;  (** the coordinator's current term *)
  w_expect : (int * int) option;
      (** required pre-append [(seg, off)] — the log-matching check; [None]
          on the primary, which defines the position *)
  w_kind : [ `Put | `Delete ];
  w_collection : string;
  w_doc : string;
  w_body : string;  (** empty for [`Delete] *)
}

val encode_write : write -> string
val decode_write : string -> int ref -> write

type write_reply = {
  a_applied : bool;  (** false: a delete of an absent doc — nothing appended *)
  a_hash : string;
  a_pre : int * int;  (** position the record went in at *)
  a_post : int * int;
}

val encode_write_reply : write_reply -> string
val decode_write_reply : string -> write_reply

(** {1 Undo} *)

val encode_undo : epoch:int -> seg:int -> off:int -> string
(** Roll the log back to [(seg, off)] — the rollback of a write that
    missed its quorum, so nothing unacknowledged can be resurrected. *)

val decode_undo : string -> int ref -> int * int * int

(** {1 Status} *)

type seg_info = { g_id : int; g_len : int; g_digest : string  (** "" unless requested *) }

type status = {
  st_epoch : int;
  st_pos : int * int;  (** next-append position *)
  st_total : int;  (** durable log bytes *)
  st_segs : seg_info list;
  st_quarantined : int;
}

val encode_status_req : digests:bool -> string
val encode_status : status -> string
val decode_status : string -> status

(** {1 Promotion} *)

val encode_promote : epoch:int -> string
(** Adopt [epoch] and append the durable epoch marker — failover made
    a log record the deposed primary's tail can never match. There is
    deliberately no content-free "learn the term" frame: a replica
    only ever takes an epoch together with the bytes that back it (a
    log-matched write, the marker append, or a repair commit), so the
    (epoch, bytes) election rank cannot be inflated by gossip. *)

(** {1 Anti-entropy catch-up} *)

val encode_fetch : seg:int -> from:int -> upto:int -> string
(** Segment bytes [[from, upto)]; [upto = 0] means the durable end. *)

val decode_fetch : string -> int ref -> int * int * int
val encode_prefix_digest : seg:int -> upto:int -> string
val decode_prefix_digest : string -> int ref -> int * int
val encode_bytes : string -> string
val decode_bytes : string -> string

val encode_install : seg:int -> from:int -> string -> string
(** Stage a splice: replace segment [seg] from offset [from] with the
    carried bytes ([from = 0] replaces the whole file). Nothing is
    applied until commit. *)

val decode_install : string -> int ref -> int * int * string

val encode_commit : epoch:int -> int list -> string
(** Apply every staged splice, drop segments not in the list (and the
    manifest checkpoint), reopen, adopt [epoch]. *)

val decode_commit : string -> int ref -> int * int list

(** {1 Reads} *)

val encode_get : collection:string -> doc:string -> string
val decode_get : string -> int ref -> string * string
val encode_get_reply : (string * string) option -> string
val decode_get_reply : string -> (string * string) option
