(** Segment files: magic header + length-prefixed, CRC32-checksummed
    records in the Frame wire discipline. The scanner classifies every
    failure by position — damage reaching EOF is a torn tail (truncate),
    damage with live data after it is mid-log (quarantine). *)

exception Corrupt of string

(** {1 Codec primitives} (shared with the manifest) *)

val add_u8 : Buffer.t -> int -> unit
val add_u16 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit
val add_lp : Buffer.t -> string -> unit
val get_u8 : string -> int ref -> int
val get_u16 : string -> int ref -> int
val get_u32 : string -> int ref -> int
val get_lp : string -> int ref -> string

val crc32 : string -> int
(** IEEE 802.3, table-driven — [crc32 "123456789" = 0xcbf43926]. *)

(** {1 Records} *)

val magic : string
val header_len : int
val version : int
val min_version : int
val max_record_bytes : int

type record = {
  kind : [ `Put | `Delete | `Epoch ];
  epoch : int;  (** replication term stamped at append; 0 in v1 records *)
  collection : string;
  doc : string;
  hash : string;  (** MD5 hex of [snapshot] at ingest *)
  snapshot : string;  (** serialized document; empty for [`Delete] *)
}

val epoch_marker : int -> record
(** The durable promotion record: kind [`Epoch], no document fields. *)

val encode : record -> string
(** The full framed record: u32 length, u8 version, payload,
    u32 crc32(payload). *)

val decode_payload : ver:int -> string -> record
(** Raises {!Corrupt}. Version 1 payloads decode with epoch 0. *)

(** {1 Scanning} *)

type verdict =
  | Rec of record * int  (** record, end offset *)
  | End
  | Torn of string
  | Damaged of string

val scan_one : string -> int -> verdict

type outcome =
  | Clean
  | Torn_tail of int * string  (** keep length, reason *)
  | Mid_log_damage of int * string  (** damage offset, reason *)

val scan_tail : string -> from:int -> (record * int * int) list * outcome
(** Valid records (with their offset and framed length) from [from] to
    wherever the walk ends, and how it ended. *)

val check_header : string -> [ `Ok | `Torn_header | `Bad_header ]

val seg_name : int -> string
(** [seg-%06d.log] *)

val seg_id : string -> int option
