(* The crash-safe collection store: named collections of documents on a
   segmented append-only log.

   Write path: serialize the record, append it to the active segment,
   fsync (the durability barrier), and only then update the in-memory
   index and acknowledge. Any failure on the way repairs the segment
   back to the last barrier — pending bytes are discarded and the fd
   truncated — so a failed-but-flushed record can never be resurrected
   by a later successful fsync.

   Read path: every get re-reads the record's framed bytes from its
   segment and verifies the CRC — a checksum escape (serving bytes that
   fail verification) is structurally impossible; a read-time mismatch
   quarantines the segment and answers [`Corrupt].

   Recovery (open): load the manifest (a checkpoint, not an authority —
   a damaged or missing manifest just means replaying every segment
   from its header), seed the index from its doc table, then replay
   each live segment from its checkpointed durable length. A torn tail
   (damage reaching EOF — the signature of a crash mid-append) is
   truncated and counted; mid-log damage (bit rot) quarantines the
   segment behind [`Corrupt] with the rest of the store still serving.

   Concurrency: one mutex over the write path and index; reads take the
   mutex only for the index lookup and read file bytes outside it
   (segments are append-only, and an indexed record is durable). *)

type error = [ `Corrupt of string | `Io of string | `Not_found ]

let error_message = function
  | `Corrupt m -> Printf.sprintf "store:corrupt: %s" m
  | `Io m -> Printf.sprintf "store:io: %s" m
  | `Not_found -> "store:not-found"

type counters = {
  ingests : int Atomic.t;
  deletes : int Atomic.t;
  reads : int Atomic.t;
  fsyncs : int Atomic.t;
  recovered_records : int Atomic.t;
  truncated_tails : int Atomic.t;
  quarantined_segments : int Atomic.t;
  read_crc_failures : int Atomic.t;
  io_errors : int Atomic.t;
  appended_bytes : int Atomic.t;
  scrub_runs : int Atomic.t;
  scrub_damaged : int Atomic.t;
}

type counts = {
  n_ingests : int;
  n_deletes : int;
  n_reads : int;
  n_fsyncs : int;
  n_recovered_records : int;
  n_truncated_tails : int;
  n_quarantined_segments : int;
  n_read_crc_failures : int;
  n_io_errors : int;
  n_appended_bytes : int;
  n_scrub_runs : int;
  n_scrub_damaged : int;
}

type t = {
  dir : string;
  max_segment_bytes : int;
  plane : Io_fault.t option;
  mutex : Mutex.t;
  index : (string * string, Manifest.loc) Hashtbl.t;  (* (collection, doc) -> loc *)
  mutable segs : (int * int) list;  (* id, durable length at last checkpoint *)
  mutable quarantined : (int * string) list;
  mutable active_id : int;
  mutable active : Io_fault.file;
  mutable next_seg : int;
  mutable epoch : int;  (* replication term stamped into appended records *)
  mutable closed : bool;
  c : counters;
}

let make_counters () =
  {
    ingests = Atomic.make 0;
    deletes = Atomic.make 0;
    reads = Atomic.make 0;
    fsyncs = Atomic.make 0;
    recovered_records = Atomic.make 0;
    truncated_tails = Atomic.make 0;
    quarantined_segments = Atomic.make 0;
    read_crc_failures = Atomic.make 0;
    io_errors = Atomic.make 0;
    appended_bytes = Atomic.make 0;
    scrub_runs = Atomic.make 0;
    scrub_damaged = Atomic.make 0;
  }

let counts t =
  {
    n_ingests = Atomic.get t.c.ingests;
    n_deletes = Atomic.get t.c.deletes;
    n_reads = Atomic.get t.c.reads;
    n_fsyncs = Atomic.get t.c.fsyncs;
    n_recovered_records = Atomic.get t.c.recovered_records;
    n_truncated_tails = Atomic.get t.c.truncated_tails;
    n_quarantined_segments = Atomic.get t.c.quarantined_segments;
    n_read_crc_failures = Atomic.get t.c.read_crc_failures;
    n_io_errors = Atomic.get t.c.io_errors;
    n_appended_bytes = Atomic.get t.c.appended_bytes;
    n_scrub_runs = Atomic.get t.c.scrub_runs;
    n_scrub_damaged = Atomic.get t.c.scrub_damaged;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let seg_path dir id = Filename.concat dir (Segment.seg_name id)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

(* The manifest image of the current state. Doc entries that point past
   their segment's durable length are dropped: under a lying fsync the
   in-memory index can run ahead of the disk, and checkpointing such an
   entry would promise a record the segment cannot deliver. *)
let manifest_of t ~segs =
  let durable = Hashtbl.create 16 in
  List.iter (fun (id, len) -> Hashtbl.replace durable id len) segs;
  let docs =
    Hashtbl.fold
      (fun _ loc acc ->
        match Hashtbl.find_opt durable loc.Manifest.l_seg with
        | Some len when loc.Manifest.l_off + loc.Manifest.l_len <= len -> loc :: acc
        | _ -> acc)
      t.index []
  in
  {
    Manifest.next_seg = t.next_seg;
    active = t.active_id;
    epoch = t.epoch;
    segs;
    quarantined = t.quarantined;
    docs;
  }

(* Current durable lengths: the checkpointed value for closed segments,
   the live committed count for the active one. *)
let current_segs t =
  List.map
    (fun (id, len) -> if id = t.active_id then (id, Io_fault.committed t.active) else (id, len))
    t.segs

let save_manifest t =
  let segs = current_segs t in
  Manifest.save ?plane:t.plane ~dir:t.dir (manifest_of t ~segs);
  t.segs <- segs

let save_manifest_quiet t =
  try save_manifest t with Io_fault.Fault _ | Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let quarantine_now t id reason =
  if not (List.mem_assoc id t.quarantined) then begin
    t.quarantined <- t.quarantined @ [ (id, reason) ];
    Atomic.incr t.c.quarantined_segments
  end

let apply_record t id (r, off, len) =
  Atomic.incr t.c.recovered_records;
  if r.Segment.epoch > t.epoch then t.epoch <- r.Segment.epoch;
  let key = (r.Segment.collection, r.Segment.doc) in
  match r.Segment.kind with
  | `Epoch -> ()
  | `Put ->
    Hashtbl.replace t.index key
      {
        Manifest.l_collection = r.Segment.collection;
        l_doc = r.Segment.doc;
        l_hash = r.Segment.hash;
        l_seg = id;
        l_off = off;
        l_len = len;
      }
  | `Delete -> Hashtbl.remove t.index key

(* Replay one segment from [from]; returns its recovered durable
   length, or None if the segment was quarantined. Truncates a torn
   tail in place so the recovered length is also the physical one. *)
let recover_segment t id ~from =
  let path = seg_path t.dir id in
  let data = read_file path in
  let size = String.length data in
  match Segment.check_header data with
  | `Torn_header ->
    (* The segment died at birth: its header never became durable, so
       nothing can be in it. Truncate to a clean torn tail of zero. *)
    Atomic.incr t.c.truncated_tails;
    (try Unix.truncate path 0 with Unix.Unix_error _ -> ());
    Some 0
  | `Bad_header ->
    quarantine_now t id "bad segment header";
    None
  | `Ok ->
    let from = max from Segment.header_len in
    if from > size then begin
      (* The checkpoint claims durable bytes the file no longer has:
         external truncation — nothing trustworthy here. *)
      quarantine_now t id
        (Printf.sprintf "segment shorter than checkpoint (%d < %d)" size from);
      None
    end
    else begin
      let records, outcome = Segment.scan_tail data ~from in
      List.iter (apply_record t id) records;
      match outcome with
      | Segment.Clean -> Some size
      | Segment.Torn_tail (keep, _reason) ->
        Atomic.incr t.c.truncated_tails;
        (try Unix.truncate path keep with Unix.Unix_error _ -> ());
        Some keep
      | Segment.Mid_log_damage (_off, reason) ->
        quarantine_now t id reason;
        None
    end

(* A fresh segment: header appended and fsynced before the id becomes
   the active segment. *)
let create_segment t id =
  let f = Io_fault.openf ?plane:t.plane (seg_path t.dir id) in
  (try
     Io_fault.append f Segment.magic;
     Io_fault.fsync f;
     Atomic.incr t.c.fsyncs
   with e ->
     Io_fault.repair f;
     Io_fault.close f;
     (try Unix.unlink (seg_path t.dir id) with Unix.Unix_error _ -> ());
     raise e);
  f

let open_store ?plane ?(max_segment_bytes = 8 * 1024 * 1024) dir =
  mkdirs dir;
  let plane = match plane with Some p when Io_fault.enabled p -> Some p | _ -> None in
  let manifest =
    match Manifest.load ~dir with
    | `Manifest m -> m
    | `Missing -> Manifest.empty
    | `Damaged _ -> Manifest.empty (* rebuild below by scanning everything *)
  in
  (try Unix.unlink (Filename.concat dir Manifest.tmp_name) with Unix.Unix_error _ -> ());
  (* A throwaway handle to occupy [active] until recovery picks the
     real one: opened on an unlinked scratch path, closed before the
     store is returned. *)
  let bootstrap =
    let path = Filename.concat dir ".bootstrap" in
    let f = Io_fault.openf path in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    f
  in
  (* Every segment on disk, whether the manifest knows it or not — a
     crash between segment creation and the next checkpoint leaves an
     orphan the doc table has never heard of. *)
  let on_disk =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map Segment.seg_id
    |> List.sort compare
  in
  let checkpointed = manifest.Manifest.segs in
  let t =
    {
      dir;
      max_segment_bytes;
      plane;
      mutex = Mutex.create ();
      index = Hashtbl.create 1024;
      segs = [];
      quarantined = manifest.Manifest.quarantined;
      active_id = -1;
      active = bootstrap;  (* replaced below, before any write *)
      next_seg = max manifest.Manifest.next_seg
                   (match on_disk with [] -> 0 | l -> List.fold_left max 0 l + 1);
      (* Seed from the checkpoint; replayed records can only raise it.
         Markers below the checkpointed lengths are never replayed, so
         this is the sole carrier of the term across a post-checkpoint
         crash. *)
      epoch = manifest.Manifest.epoch;
      closed = false;
      c = make_counters ();
    }
  in
  (* Seed the index from the checkpointed doc table, then replay each
     segment's suffix — replayed records override the checkpoint. *)
  List.iter
    (fun loc -> Hashtbl.replace t.index (loc.Manifest.l_collection, loc.Manifest.l_doc) loc)
    manifest.Manifest.docs;
  let recovered =
    List.filter_map
      (fun id ->
        if List.mem_assoc id t.quarantined then None
        else begin
          let from =
            match List.assoc_opt id checkpointed with
            | Some len -> len
            | None -> Segment.header_len
          in
          match recover_segment t id ~from with
          | Some len -> Some (id, len)
          | None -> None
          | exception Sys_error reason ->
            quarantine_now t id ("unreadable segment: " ^ reason);
            None
        end)
      on_disk
  in
  (* Segments the manifest lists but the directory no longer has: their
     docs are unservable — quarantine the id so gets answer corrupt. *)
  List.iter
    (fun (id, _) ->
      if not (List.mem id on_disk) && not (List.mem_assoc id t.quarantined) then
        quarantine_now t id "segment file missing")
    checkpointed;
  (* Drop index entries for quarantined segments' docs? No: keep them
     so a get answers `Corrupt (the doc existed; its bytes are suspect)
     rather than a silent not-found. *)
  let reopen_as_active id len =
    (* An empty recovered segment lost its header with its tail; give
       it the header back before appending records. *)
    let f = Io_fault.openf ?plane (seg_path dir id) in
    if len = 0 then begin
      Io_fault.append f Segment.magic;
      Io_fault.fsync f;
      Atomic.incr t.c.fsyncs
    end;
    f
  in
  let segs, active_id, active =
    let usable_active =
      match List.assoc_opt manifest.Manifest.active recovered with
      | Some len when len < max_segment_bytes -> Some (manifest.Manifest.active, len)
      | _ -> (
        (* Fall back to the highest recovered segment with room — an
           orphan created just before the crash is exactly that. *)
        match List.rev recovered with
        | (id, len) :: _ when len < max_segment_bytes -> Some (id, len)
        | _ -> None)
    in
    match usable_active with
    | Some (id, len) -> (recovered, id, reopen_as_active id len)
    | None ->
      let id = t.next_seg in
      t.next_seg <- id + 1;
      let f = create_segment t id in
      (recovered @ [ (id, Segment.header_len) ], id, f)
  in
  Io_fault.close bootstrap;
  t.segs <- segs;
  t.active_id <- active_id;
  t.active <- active;
  (* Checkpoint what recovery just established. Best-effort: a failure
     here only means the next open replays more. *)
  save_manifest_quiet t;
  t

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

let io_error t e =
  Atomic.incr t.c.io_errors;
  let m =
    match e with
    | Io_fault.Fault m -> m
    | Unix.Unix_error (err, fn, _) -> Printf.sprintf "%s: %s" fn (Unix.error_message err)
    | e -> Printexc.to_string e
  in
  Error (`Io m)

(* Seal the active segment and start a fresh one. On failure the old
   active is repaired and stays active (the segment runs oversize —
   harmless), and the caller's append fails cleanly. *)
let rotate t =
  Io_fault.fsync t.active;
  Atomic.incr t.c.fsyncs;
  let id = t.next_seg in
  let f = create_segment t id in
  Io_fault.close t.active;
  t.next_seg <- id + 1;
  t.segs <-
    List.map (fun (i, l) -> if i = t.active_id then (i, Io_fault.committed t.active) else (i, l)) t.segs
    @ [ (id, Segment.header_len) ];
  t.active_id <- id;
  t.active <- f;
  save_manifest_quiet t

let append_record t record =
  if t.closed then Error (`Io "store is closed")
  else begin
    let bytes = Segment.encode record in
    match
      if
        Io_fault.length t.active + String.length bytes > t.max_segment_bytes
        && Io_fault.length t.active > Segment.header_len
      then rotate t
    with
    | () -> (
      let off = Io_fault.length t.active in
      match
        Io_fault.append t.active bytes;
        Io_fault.fsync t.active
      with
      | () ->
        Atomic.incr t.c.fsyncs;
        Atomic.fetch_and_add t.c.appended_bytes (String.length bytes) |> ignore;
        Ok (off, String.length bytes)
      | exception e ->
        Io_fault.repair t.active;
        io_error t e)
    | exception e ->
      Io_fault.repair t.active;
      io_error t e
  end

let put t ~collection ~doc snapshot =
  let hash = Digest.to_hex (Digest.string snapshot) in
  with_lock t (fun () ->
      let record =
        { Segment.kind = `Put; epoch = t.epoch; collection; doc; hash; snapshot }
      in
      match append_record t record with
      | Ok (off, len) ->
        Hashtbl.replace t.index (collection, doc)
          {
            Manifest.l_collection = collection;
            l_doc = doc;
            l_hash = hash;
            l_seg = t.active_id;
            l_off = off;
            l_len = len;
          };
        Atomic.incr t.c.ingests;
        Ok hash
      | Error _ as e -> e)

let delete t ~collection ~doc =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.index (collection, doc)) then Ok false
      else
        let record =
          { Segment.kind = `Delete; epoch = t.epoch; collection; doc; hash = "";
            snapshot = "" }
        in
        match append_record t record with
        | Ok _ ->
          Hashtbl.remove t.index (collection, doc);
          Atomic.incr t.c.deletes;
          Ok true
        | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let read_exact path ~off ~len =
  let fd = Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create len in
      let rec go o =
        if o < len then
          match Unix.read fd b o (len - o) with 0 -> o | n -> go (o + n)
        else o
      in
      let got = go 0 in
      if got < len then None else Some (Bytes.unsafe_to_string b))

let get t ~collection ~doc =
  Atomic.incr t.c.reads;
  let looked =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.index (collection, doc) with
        | None -> Error `Not_found
        | Some loc ->
          if List.mem_assoc loc.Manifest.l_seg t.quarantined then
            Error (`Corrupt (Printf.sprintf "segment %d is quarantined" loc.Manifest.l_seg))
          else Ok loc)
  in
  match looked with
  | Error _ as e -> e
  | Ok loc -> (
    let path = seg_path t.dir loc.Manifest.l_seg in
    (* Every read re-verifies the record CRC: a mismatch here is bit
       rot caught in the act — quarantine the segment, answer corrupt,
       and never let an unverified byte out. *)
    let fail reason =
      Atomic.incr t.c.read_crc_failures;
      with_lock t (fun () -> quarantine_now t loc.Manifest.l_seg reason);
      Error (`Corrupt reason)
    in
    match read_exact path ~off:loc.Manifest.l_off ~len:loc.Manifest.l_len with
    | None -> fail (Printf.sprintf "segment %d short read" loc.Manifest.l_seg)
    | exception Unix.Unix_error (err, _, _) ->
      Atomic.incr t.c.io_errors;
      Error (`Io (Unix.error_message err))
    | Some data -> (
      match Segment.scan_one data 0 with
      | Segment.Rec (r, _)
        when r.Segment.kind = `Put && r.Segment.collection = collection
             && r.Segment.doc = doc ->
        Ok (r.Segment.snapshot, r.Segment.hash)
      | Segment.Rec _ ->
        fail (Printf.sprintf "segment %d record mismatch at %d" loc.Manifest.l_seg loc.Manifest.l_off)
      | Segment.End | Segment.Torn _ | Segment.Damaged _ ->
        fail
          (Printf.sprintf "segment %d record at %d failed verification" loc.Manifest.l_seg
             loc.Manifest.l_off)))

(* ------------------------------------------------------------------ *)
(* Replication hooks                                                   *)
(* ------------------------------------------------------------------ *)

let epoch t = with_lock t (fun () -> t.epoch)

(* Monotonic: a replica only ever learns of newer terms. *)
let set_epoch t e = with_lock t (fun () -> if e > t.epoch then t.epoch <- e)

(* The log position the next append lands at: (active segment id,
   logical offset within it). Replicas in sync with the primary agree
   on this pair before every replicated append — the log-matching
   check. *)
let position t = with_lock t (fun () -> (t.active_id, Io_fault.length t.active))

(* Total durable log bytes across live segments — the replication lag
   unit ([primary.total_bytes - replica.total_bytes]). *)
let total_bytes t =
  with_lock t (fun () -> List.fold_left (fun acc (_, len) -> acc + len) 0 (current_segs t))

(* Durable segment extents (id, committed length), for anti-entropy
   digest comparison. *)
let live_segments t = with_lock t (fun () -> current_segs t)

(* Append the durable promotion record. The marker advances the new
   primary's log past any position the deposed primary could have
   reached in the old term, so divergence is always detectable by
   digest comparison. *)
let append_epoch_marker t ~epoch:e =
  with_lock t (fun () ->
      if e > t.epoch then t.epoch <- e;
      match append_record t (Segment.epoch_marker t.epoch) with
      | Ok _ -> Ok ()
      | Error _ as err -> err)

let mem t ~collection ~doc = with_lock t (fun () -> Hashtbl.mem t.index (collection, doc))

let list_docs t ~collection =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun (c, d) loc acc -> if c = collection then (d, loc.Manifest.l_hash) :: acc else acc)
        t.index [])
  |> List.sort compare

let collections t =
  with_lock t (fun () ->
      Hashtbl.fold (fun (c, _) _ acc -> if List.mem c acc then acc else c :: acc) t.index [])
  |> List.sort compare

let doc_count t = with_lock t (fun () -> Hashtbl.length t.index)
let quarantined t = with_lock t (fun () -> t.quarantined)
let segment_count t = with_lock t (fun () -> List.length t.segs)
let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Online scrub                                                        *)
(* ------------------------------------------------------------------ *)

(* One incremental scrub pass against the live store: re-verify every
   record checksum in the durable prefix of each live segment,
   quarantining damage the moment it is found instead of waiting for an
   unlucky read to trip over it. Segment bytes are read outside the
   store lock — committed prefixes of append-only segments are
   immutable — and only the extent snapshot and quarantine verdicts
   take it. Returns the number of segments newly quarantined. *)
let scrub_pass t =
  Atomic.incr t.c.scrub_runs;
  let extents, quarantined =
    with_lock t (fun () -> (current_segs t, List.map fst t.quarantined))
  in
  let newly = ref 0 in
  List.iter
    (fun (id, len) ->
      if (not (List.mem id quarantined)) && len > Segment.header_len then begin
        let damage =
          match read_file (seg_path t.dir id) with
          | exception Sys_error reason -> Some ("unreadable segment: " ^ reason)
          | data ->
            if String.length data < len then
              Some
                (Printf.sprintf "segment shorter than durable length (%d < %d)"
                   (String.length data) len)
            else begin
              (* Scan only the durable prefix: bytes past [len] may be a
                 concurrent append or an unflushed tail, not damage. *)
              let data = String.sub data 0 len in
              match Segment.check_header data with
              | `Torn_header | `Bad_header -> Some "bad segment header"
              | `Ok -> (
                match Segment.scan_tail data ~from:Segment.header_len with
                | _, Segment.Clean -> None
                | _, Segment.Torn_tail (off, reason)
                | _, Segment.Mid_log_damage (off, reason) ->
                  (* Every byte of the durable prefix once passed the
                     fsync barrier: any verification failure here is bit
                     rot, wherever it sits. *)
                  Some (Printf.sprintf "%s at offset %d" reason off))
            end
        in
        match damage with
        | None -> ()
        | Some reason ->
          incr newly;
          Atomic.incr t.c.scrub_damaged;
          with_lock t (fun () ->
              quarantine_now t id reason;
              (* A damaged active segment must stop taking appends: seal
                 it and let writes land in a fresh one. *)
              if id = t.active_id then (try rotate t with _ -> ()))
      end)
    extents;
  !newly

(* ------------------------------------------------------------------ *)
(* Checkpoint / close                                                  *)
(* ------------------------------------------------------------------ *)

let checkpoint t =
  with_lock t (fun () ->
      if t.closed then Error (`Io "store is closed")
      else
        match
          Io_fault.fsync t.active;
          Atomic.incr t.c.fsyncs;
          save_manifest t
        with
        | () -> Ok ()
        | exception e ->
          Io_fault.repair t.active;
          io_error t e)

let close t =
  (match checkpoint t with Ok () | Error _ -> ());
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Io_fault.close t.active
      end)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let to_prometheus t =
  let c = counts t in
  let b = Buffer.create 1024 in
  let counter name help v =
    Buffer.add_string b
      (Printf.sprintf
         "# HELP lopsided_store_%s %s\n# TYPE lopsided_store_%s counter\nlopsided_store_%s %d\n"
         name help name name v)
  in
  let gauge name help v =
    Buffer.add_string b
      (Printf.sprintf
         "# HELP lopsided_store_%s %s\n# TYPE lopsided_store_%s gauge\nlopsided_store_%s %d\n"
         name help name name v)
  in
  counter "ingests_total" "Documents durably ingested (acknowledged puts)." c.n_ingests;
  counter "deletes_total" "Documents durably tombstoned." c.n_deletes;
  counter "reads_total" "Document reads served (each CRC-verified)." c.n_reads;
  counter "fsyncs_total" "Durability barriers issued." c.n_fsyncs;
  counter "recovered_records_total" "Records replayed from segments at open."
    c.n_recovered_records;
  counter "truncated_tails_total" "Torn segment tails truncated at recovery."
    c.n_truncated_tails;
  counter "quarantined_segments_total" "Segments quarantined for mid-log damage."
    c.n_quarantined_segments;
  counter "read_crc_failures_total" "Read-time checksum failures (never served)."
    c.n_read_crc_failures;
  counter "io_errors_total" "Failed writes/fsyncs repaired back to the last barrier."
    c.n_io_errors;
  counter "appended_bytes_total" "Record bytes appended to segments." c.n_appended_bytes;
  counter "scrub_runs_total" "Online scrub passes over the live store." c.n_scrub_runs;
  counter "scrub_damaged_total" "Segments quarantined by the online scrub."
    c.n_scrub_damaged;
  gauge "epoch" "Replication epoch stamped into appended records." (epoch t);
  gauge "docs" "Live documents across all collections." (doc_count t);
  gauge "segments" "Live log segments." (segment_count t);
  gauge "quarantined" "Segments currently quarantined." (List.length (quarantined t));
  Buffer.contents b
