(* The crash oracle: prove recovery, don't assert it.

   A trial re-execs the current binary as a child ingester (the
   [AWBSTORE_ORACLE] environment variable carries the spec, the same
   re-exec discipline as the shard backends), which opens a store with
   a seeded I/O fault plane and ingests a deterministic document
   sequence, printing one flushed ack line per durable operation:

     A <doc> <hash>   put acknowledged (fsync barrier passed)
     D <doc>          delete acknowledged
     E <doc>          operation failed and was repaired; not durable

   At a seeded kill point the child [_exit]s mid-operation. The parent
   replays the ack stream into the expected live set, reopens the store
   fault-free, and checks recovery against it *exactly*: every
   acknowledged write present with its acknowledged content hash (no
   lost acks), nothing present that was never acknowledged (no
   resurrection), zero read-time checksum failures (no escapes), and a
   post-recovery scrub with no unquarantined damage.

   Under fsync-ignore schedules (a lying disk) exact equality is
   unachievable by construction — the caller gates those trials on the
   weaker invariants: recovered is a subset of acknowledged, nothing
   resurrected, nothing corrupt served. *)

let env_var = "AWBSTORE_ORACLE"

type rates = {
  r_crash : float;
  r_short : float;
  r_ffail : float;
  r_fignore : float;
}

let no_rates = { r_crash = 0.; r_short = 0.; r_ffail = 0.; r_fignore = 0. }

let spec_to_string ~dir ~seed ~n ~segbytes rates =
  Printf.sprintf "dir=%s;seed=%d;n=%d;segbytes=%d;crash=%f;short=%f;ffail=%f;fignore=%f"
    dir seed n segbytes rates.r_crash rates.r_short rates.r_ffail rates.r_fignore

let spec_of_string s =
  let kv =
    String.split_on_char ';' s
    |> List.filter_map (fun part ->
           match String.index_opt part '=' with
           | None -> None
           | Some i ->
             Some
               ( String.sub part 0 i,
                 String.sub part (i + 1) (String.length part - i - 1) ))
  in
  let str k = try List.assoc k kv with Not_found -> failwith ("oracle spec missing " ^ k) in
  let int k = int_of_string (str k) in
  let flt k = float_of_string (str k) in
  ( str "dir",
    int "seed",
    int "n",
    int "segbytes",
    { r_crash = flt "crash"; r_short = flt "short"; r_ffail = flt "ffail"; r_fignore = flt "fignore" } )

let collection = "oracle"
let doc_name i = Printf.sprintf "d%d" i

(* Deterministic per-doc content; size varies so records straddle
   rotation boundaries at the child's small segment cap. *)
let doc_body ~seed i =
  Printf.sprintf "<doc id=\"d%d\" seed=\"%d\"><payload>%s</payload></doc>" i seed
    (String.make (16 + ((i * 37) + seed) mod 240) 'x')

(* ------------------------------------------------------------------ *)
(* Child                                                               *)
(* ------------------------------------------------------------------ *)

let run_child spec =
  let dir, seed, n, segbytes, rates = spec_of_string spec in
  let plane =
    Io_fault.of_seed ~short_write_rate:rates.r_short ~fsync_fail_rate:rates.r_ffail
      ~fsync_ignore_rate:rates.r_fignore ~crash_rate:rates.r_crash seed
  in
  (* Opening the store sits on the fault plane too (the first segment's
     header append + fsync): a fault there is a death before any ack —
     exit quietly with a distinct code, the parent's comparison against
     the (empty) acknowledged prefix still runs. *)
  let store =
    try Log.open_store ~plane ~max_segment_bytes:segbytes dir
    with Io_fault.Fault _ -> exit 3
  in
  for i = 0 to n - 1 do
    (* Mix tombstones into the stream: every seventh step deletes an
       earlier doc, so recovery is checked against deletes too. *)
    (if i mod 7 = 3 && i >= 2 then
       let target = doc_name (i - 2) in
       match Log.delete store ~collection ~doc:target with
       | Ok true -> Printf.printf "D %s\n%!" target
       | Ok false -> ()
       | Error _ -> Printf.printf "E %s\n%!" target);
    let doc = doc_name i in
    match Log.put store ~collection ~doc (doc_body ~seed i) with
    | Ok hash -> Printf.printf "A %s %s\n%!" doc hash
    | Error _ -> Printf.printf "E %s\n%!" doc
  done;
  (* The final checkpoint (and its manifest swap) sits on the fault
     plane too — a kill here must still recover. *)
  (match Log.checkpoint store with Ok () | Error _ -> ());
  Log.close store;
  print_string "DONE\n";
  exit 0

let maybe_run_child () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some spec -> run_child spec

(* ------------------------------------------------------------------ *)
(* Parent                                                              *)
(* ------------------------------------------------------------------ *)

type trial = {
  tr_exit : int;  (* child exit code; 137 = injected kill point *)
  tr_killed : bool;
  tr_completed : bool;  (* child printed DONE *)
  tr_acked : int;  (* expected live docs after replaying the ack stream *)
  tr_recovered : int;
  tr_lost : int;  (* acked but missing or wrong content after recovery *)
  tr_resurrected : int;  (* recovered but never acknowledged *)
  tr_escapes : int;  (* read-time checksum failures *)
  tr_truncated_tails : int;
  tr_quarantined : int;
  tr_unquarantined_damage : int;
}

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let child_env spec =
  let keep =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv -> not (String.length kv > String.length env_var
                                   && String.sub kv 0 (String.length env_var + 1) = env_var ^ "="))
  in
  Array.of_list (keep @ [ env_var ^ "=" ^ spec ])

let read_all fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents b

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let run_trial ~exe ~dir ~seed ~n ?(segbytes = 4096) rates =
  rm_rf dir;
  let spec = spec_to_string ~dir ~seed ~n ~segbytes rates in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pr, pw = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process_env exe [| exe |] (child_env spec) dev_null pw Unix.stderr
  in
  Unix.close pw;
  Unix.close dev_null;
  let out = read_all pr in
  Unix.close pr;
  let status = waitpid_retry pid in
  let exit_code =
    match status with Unix.WEXITED c -> c | Unix.WSIGNALED s -> 128 + s | Unix.WSTOPPED s -> 128 + s
  in
  (* Replay the ack stream into the expected live set. *)
  let expected = Hashtbl.create 64 in
  let completed = ref false in
  String.split_on_char '\n' out
  |> List.iter (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ "A"; doc; hash ] -> Hashtbl.replace expected doc hash
         | [ "D"; doc ] -> Hashtbl.remove expected doc
         | [ "E"; _ ] -> ()
         | [ "DONE" ] -> completed := true
         | _ -> ());
  (* Recover fault-free and compare, then scrub what recovery left. *)
  let store = Log.open_store dir in
  let recovered = Log.list_docs store ~collection in
  let lost = ref 0 and resurrected = ref 0 in
  Hashtbl.iter
    (fun doc hash ->
      match Log.get store ~collection ~doc with
      | Ok (snapshot, h) when h = hash && Digest.to_hex (Digest.string snapshot) = hash -> ()
      | Ok _ | Error _ -> incr lost)
    expected;
  List.iter (fun (doc, _) -> if not (Hashtbl.mem expected doc) then incr resurrected) recovered;
  let c = Log.counts store in
  let quarantined = List.length (Log.quarantined store) in
  Log.close store;
  let scrub = Scrub.run dir in
  let trial =
    {
      tr_exit = exit_code;
      tr_killed = exit_code = 137;
      tr_completed = !completed;
      tr_acked = Hashtbl.length expected;
      tr_recovered = List.length recovered;
      tr_lost = !lost;
      tr_resurrected = !resurrected;
      tr_escapes = c.Log.n_read_crc_failures;
      tr_truncated_tails = c.Log.n_truncated_tails;
      tr_quarantined = quarantined;
      tr_unquarantined_damage = List.length (Scrub.unquarantined_damage scrub);
    }
  in
  rm_rf dir;
  trial

type summary = {
  s_trials : int;
  s_killed : int;
  s_completed : int;
  s_acked : int;
  s_recovered : int;
  s_lost : int;
  s_resurrected : int;
  s_escapes : int;
  s_truncated_tails : int;
  s_quarantined : int;
  s_unquarantined_damage : int;
}

let run_trials ~exe ~tmp ~trials ~seed0 ~n rates =
  let z =
    {
      s_trials = 0;
      s_killed = 0;
      s_completed = 0;
      s_acked = 0;
      s_recovered = 0;
      s_lost = 0;
      s_resurrected = 0;
      s_escapes = 0;
      s_truncated_tails = 0;
      s_quarantined = 0;
      s_unquarantined_damage = 0;
    }
  in
  let acc = ref z in
  for i = 0 to trials - 1 do
    let dir = Filename.concat tmp (Printf.sprintf "trial-%d" (seed0 + i)) in
    let tr = run_trial ~exe ~dir ~seed:(seed0 + i) ~n rates in
    let s = !acc in
    acc :=
      {
        s_trials = s.s_trials + 1;
        s_killed = s.s_killed + (if tr.tr_killed then 1 else 0);
        s_completed = s.s_completed + (if tr.tr_completed then 1 else 0);
        s_acked = s.s_acked + tr.tr_acked;
        s_recovered = s.s_recovered + tr.tr_recovered;
        s_lost = s.s_lost + tr.tr_lost;
        s_resurrected = s.s_resurrected + tr.tr_resurrected;
        s_escapes = s.s_escapes + tr.tr_escapes;
        s_truncated_tails = s.s_truncated_tails + tr.tr_truncated_tails;
        s_quarantined = s.s_quarantined + tr.tr_quarantined;
        s_unquarantined_damage = s.s_unquarantined_damage + tr.tr_unquarantined_damage;
      }
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* The partition-aware replication oracle                              *)
(* ------------------------------------------------------------------ *)

(* A replication trial drives a live 3-replica cluster (the backends
   re-exec'd children with per-node disk fault planes, the coordinator
   in-process with the seeded chaos plane on its frames) through a
   deterministic ingest while a seeded disruption schedule SIGKILLs
   nodes, partitions them away, and heals/respawns them a few steps
   later. The ledger classifies every write by what the coordinator
   promised:

     acked       quorum met        -> must survive, byte-exact, on
                                      every replica after repair
     refused     rolled back and   -> must be absent everywhere (an
                 confirmed            unacked write never resurrects)
     ambiguous   rollback not      -> gated on convergence only: all
                 confirmed            replicas must agree on it

   After the storm every partition heals, every corpse respawns, and
   anti-entropy must converge the cluster; the audit then reopens each
   node's directory fault-free and checks the ledger against all of
   them, plus byte-identity of the segment files across nodes. Lying
   fsync (fsync-ignore) is deliberately excluded from replication
   trials: a disk that acks durability it never provided voids the
   quorum contract itself, and PR 8's single-store oracle already owns
   those weaker invariants. *)

type repl_trial = {
  rt_ops : int;
  rt_acked : int;  (* live docs per the acked ledger *)
  rt_refused : int;  (* quorum-refused writes, rollback confirmed *)
  rt_ambiguous : int;  (* rollback unconfirmed (node tainted) *)
  rt_kills : int;
  rt_partitions : int;
  rt_primary_disrupted : bool;  (* a kill/partition hit the then-primary *)
  rt_promotions : int;
  rt_truncated_tails : int;
  rt_repairs : int;
  rt_converged : bool;  (* repair converged and segment files byte-match *)
  rt_lost : int;  (* acked but missing/wrong on some replica *)
  rt_resurrected : int;  (* present on some replica but never acked *)
}

let repl_doc_body ~seed i =
  Printf.sprintf "<doc id=\"r%d\" seed=\"%d\"><payload>%s</payload></doc>" i seed
    (String.make (16 + ((i * 53) + seed) mod 200) 'y')

let seg_digests dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Segment.seg_id n <> None)
  |> List.sort compare
  |> List.map (fun n ->
         let ic = open_in_bin (Filename.concat dir n) in
         let data =
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         (n, Digest.to_hex (Digest.string data)))

let run_repl_trial ~dir ~seed ~n ?(replicas = 3) ?(write_quorum = 2) ?(segbytes = 4096)
    ?(chaos = true) rates =
  rm_rf dir;
  let cl =
    Replica.create
      ~config:
        {
          Replica.default_config with
          Replica.replicas;
          write_quorum;
          max_segment_bytes = segbytes;
          probe_interval_s = 0.;  (* the schedule owns respawn and repair *)
          call_timeout_s = 0.25;
          chaos = (if chaos then Some (Chaos.of_seed seed) else None);
          io_faults = Some (seed, rates.r_short, rates.r_ffail, 0., rates.r_crash);
        }
      ~dir ()
  in
  let u tag i = Chaos.uniform ~seed ~tag ~shard:0 ~seq:i in
  let acked = Hashtbl.create 64 in
  let ambiguous = Hashtbl.create 8 in
  let refused = ref 0 in
  let kills = ref 0 and partitions = ref 0 in
  let primary_disrupted = ref false in
  let dead = Array.make replicas None in
  let cut = Array.make replicas None in
  let record ~is_delete doc outcome =
    match (outcome : Replica.write_outcome) with
    | Replica.Acked _ when is_delete -> Hashtbl.remove acked doc
    | Replica.Acked { hash; _ } -> Hashtbl.replace acked doc hash
    | Replica.Refused { clean = true; _ } -> incr refused
    | Replica.Refused { clean = false; _ } -> Hashtbl.replace ambiguous doc ()
  in
  for i = 0 to n - 1 do
    (* A backend felled by its own injected disk crash is a kill the
       schedule didn't order: book it so it respawns like one. *)
    for j = 0 to replicas - 1 do
      if dead.(j) = None && not (Replica.alive cl j) then dead.(j) <- Some i
    done;
    (* Scheduled recoveries first: corpses respawn ~4 steps after the
       kill, partitions heal ~5 steps after the cut. *)
    for j = 0 to replicas - 1 do
      (match dead.(j) with
      | Some k when i - k >= 4 -> if Replica.respawn_node cl j then dead.(j) <- None
      | _ -> ());
      match cut.(j) with
      | Some k when i - k >= 5 ->
        Replica.set_partition cl j false;
        cut.(j) <- None
      | _ -> ()
    done;
    (* One seeded disruption draw per step; the victim draw leans on
       the current primary, so failover — not mere follower churn — is
       what most trials exercise. *)
    let d = u "disrupt" i in
    (if d < 0.14 then begin
       let v = u "victim" i in
       let p = Replica.primary cl in
       let tgt =
         if v < 0.45 then p
         else (p + 1 + (int_of_float (v *. 997.) mod max 1 (replicas - 1))) mod replicas
       in
       if dead.(tgt) = None && cut.(tgt) = None then
         if d < 0.07 then begin
           Replica.kill_node cl tgt;
           dead.(tgt) <- Some i;
           incr kills;
           if tgt = p then primary_disrupted := true
         end
         else begin
           Replica.set_partition cl tgt true;
           cut.(tgt) <- Some i;
           incr partitions;
           if tgt = p then primary_disrupted := true
         end
     end);
    (* Background anti-entropy on a cadence, as the probe thread would. *)
    if i mod 5 = 4 then ignore (Replica.repair cl);
    (if i mod 7 = 3 && i >= 2 then
       let target = doc_name (i - 2) in
       record ~is_delete:true target
         (Replica.write_outcome cl ~kind:`Delete ~collection ~doc:target ~body:""));
    let doc = doc_name i in
    record ~is_delete:false doc
      (Replica.write_outcome cl ~kind:`Put ~collection ~doc ~body:(repl_doc_body ~seed i))
  done;
  (* The storm is over: heal everything, bring every corpse back, and
     demand convergence. Repair itself runs against the still-live disk
     fault planes, so a round can crash a backend — respawn and retry
     until the cluster settles. *)
  Array.iteri (fun j _ -> Replica.set_partition cl j false) cut;
  let rec settle tries =
    for j = 0 to replicas - 1 do
      if not (Replica.alive cl j) then ignore (Replica.respawn_node cl j)
    done;
    if Replica.repair_until_converged cl ~max_rounds:2 then true
    else if tries <= 1 then false
    else settle (tries - 1)
  in
  let converged = settle 8 in
  let promotions = Replica.promotions cl in
  let truncated_tails = Replica.truncated_tails cl in
  let repairs = Replica.repairs cl in
  let dirs = List.init replicas (Replica.node_dir cl) in
  Replica.shutdown cl;
  (* Fault-free audit of every node directory against the ledger. *)
  let lost = ref 0 and resurrected = ref 0 in
  List.iter
    (fun d ->
      let store = Log.open_store d in
      Hashtbl.iter
        (fun doc hash ->
          if not (Hashtbl.mem ambiguous doc) then
            match Log.get store ~collection ~doc with
            | Ok (snapshot, h)
              when h = hash && Digest.to_hex (Digest.string snapshot) = hash ->
              ()
            | Ok _ | Error _ -> incr lost)
        acked;
      List.iter
        (fun (doc, _) ->
          if (not (Hashtbl.mem acked doc)) && not (Hashtbl.mem ambiguous doc) then
            incr resurrected)
        (Log.list_docs store ~collection);
      Log.close store)
    dirs;
  let images = List.map seg_digests dirs in
  let identical =
    match images with [] -> true | first :: rest -> List.for_all (( = ) first) rest
  in
  let trial =
    {
      rt_ops = n;
      rt_acked = Hashtbl.length acked;
      rt_refused = !refused;
      rt_ambiguous = Hashtbl.length ambiguous;
      rt_kills = !kills;
      rt_partitions = !partitions;
      rt_primary_disrupted = !primary_disrupted;
      rt_promotions = promotions;
      rt_truncated_tails = truncated_tails;
      rt_repairs = repairs;
      rt_converged = converged && identical;
      rt_lost = !lost;
      rt_resurrected = !resurrected;
    }
  in
  rm_rf dir;
  trial

type repl_summary = {
  rs_trials : int;
  rs_ops : int;
  rs_acked : int;
  rs_refused : int;
  rs_ambiguous : int;
  rs_kills : int;
  rs_partitions : int;
  rs_primary_disrupted : int;  (* trials whose primary was killed/partitioned *)
  rs_promotions : int;
  rs_truncated_tails : int;
  rs_repairs : int;
  rs_diverged : int;  (* trials that failed to converge byte-identically *)
  rs_lost : int;
  rs_resurrected : int;
}

let run_repl_trials ~tmp ~trials ~seed0 ~n ?(chaos = true) rates =
  let z =
    {
      rs_trials = 0;
      rs_ops = 0;
      rs_acked = 0;
      rs_refused = 0;
      rs_ambiguous = 0;
      rs_kills = 0;
      rs_partitions = 0;
      rs_primary_disrupted = 0;
      rs_promotions = 0;
      rs_truncated_tails = 0;
      rs_repairs = 0;
      rs_diverged = 0;
      rs_lost = 0;
      rs_resurrected = 0;
    }
  in
  let acc = ref z in
  for i = 0 to trials - 1 do
    let dir = Filename.concat tmp (Printf.sprintf "repl-%d" (seed0 + i)) in
    let tr = run_repl_trial ~dir ~seed:(seed0 + i) ~n ~chaos rates in
    let s = !acc in
    acc :=
      {
        rs_trials = s.rs_trials + 1;
        rs_ops = s.rs_ops + tr.rt_ops;
        rs_acked = s.rs_acked + tr.rt_acked;
        rs_refused = s.rs_refused + tr.rt_refused;
        rs_ambiguous = s.rs_ambiguous + tr.rt_ambiguous;
        rs_kills = s.rs_kills + tr.rt_kills;
        rs_partitions = s.rs_partitions + tr.rt_partitions;
        rs_primary_disrupted =
          s.rs_primary_disrupted + (if tr.rt_primary_disrupted then 1 else 0);
        rs_promotions = s.rs_promotions + tr.rt_promotions;
        rs_truncated_tails = s.rs_truncated_tails + tr.rt_truncated_tails;
        rs_repairs = s.rs_repairs + tr.rt_repairs;
        rs_diverged = s.rs_diverged + (if tr.rt_converged then 0 else 1);
        rs_lost = s.rs_lost + tr.rt_lost;
        rs_resurrected = s.rs_resurrected + tr.rt_resurrected;
      }
  done;
  !acc
