(* The crash oracle: prove recovery, don't assert it.

   A trial re-execs the current binary as a child ingester (the
   [AWBSTORE_ORACLE] environment variable carries the spec, the same
   re-exec discipline as the shard backends), which opens a store with
   a seeded I/O fault plane and ingests a deterministic document
   sequence, printing one flushed ack line per durable operation:

     A <doc> <hash>   put acknowledged (fsync barrier passed)
     D <doc>          delete acknowledged
     E <doc>          operation failed and was repaired; not durable

   At a seeded kill point the child [_exit]s mid-operation. The parent
   replays the ack stream into the expected live set, reopens the store
   fault-free, and checks recovery against it *exactly*: every
   acknowledged write present with its acknowledged content hash (no
   lost acks), nothing present that was never acknowledged (no
   resurrection), zero read-time checksum failures (no escapes), and a
   post-recovery scrub with no unquarantined damage.

   Under fsync-ignore schedules (a lying disk) exact equality is
   unachievable by construction — the caller gates those trials on the
   weaker invariants: recovered is a subset of acknowledged, nothing
   resurrected, nothing corrupt served. *)

let env_var = "AWBSTORE_ORACLE"

type rates = {
  r_crash : float;
  r_short : float;
  r_ffail : float;
  r_fignore : float;
}

let no_rates = { r_crash = 0.; r_short = 0.; r_ffail = 0.; r_fignore = 0. }

let spec_to_string ~dir ~seed ~n ~segbytes rates =
  Printf.sprintf "dir=%s;seed=%d;n=%d;segbytes=%d;crash=%f;short=%f;ffail=%f;fignore=%f"
    dir seed n segbytes rates.r_crash rates.r_short rates.r_ffail rates.r_fignore

let spec_of_string s =
  let kv =
    String.split_on_char ';' s
    |> List.filter_map (fun part ->
           match String.index_opt part '=' with
           | None -> None
           | Some i ->
             Some
               ( String.sub part 0 i,
                 String.sub part (i + 1) (String.length part - i - 1) ))
  in
  let str k = try List.assoc k kv with Not_found -> failwith ("oracle spec missing " ^ k) in
  let int k = int_of_string (str k) in
  let flt k = float_of_string (str k) in
  ( str "dir",
    int "seed",
    int "n",
    int "segbytes",
    { r_crash = flt "crash"; r_short = flt "short"; r_ffail = flt "ffail"; r_fignore = flt "fignore" } )

let collection = "oracle"
let doc_name i = Printf.sprintf "d%d" i

(* Deterministic per-doc content; size varies so records straddle
   rotation boundaries at the child's small segment cap. *)
let doc_body ~seed i =
  Printf.sprintf "<doc id=\"d%d\" seed=\"%d\"><payload>%s</payload></doc>" i seed
    (String.make (16 + ((i * 37) + seed) mod 240) 'x')

(* ------------------------------------------------------------------ *)
(* Child                                                               *)
(* ------------------------------------------------------------------ *)

let run_child spec =
  let dir, seed, n, segbytes, rates = spec_of_string spec in
  let plane =
    Io_fault.of_seed ~short_write_rate:rates.r_short ~fsync_fail_rate:rates.r_ffail
      ~fsync_ignore_rate:rates.r_fignore ~crash_rate:rates.r_crash seed
  in
  (* Opening the store sits on the fault plane too (the first segment's
     header append + fsync): a fault there is a death before any ack —
     exit quietly with a distinct code, the parent's comparison against
     the (empty) acknowledged prefix still runs. *)
  let store =
    try Log.open_store ~plane ~max_segment_bytes:segbytes dir
    with Io_fault.Fault _ -> exit 3
  in
  for i = 0 to n - 1 do
    (* Mix tombstones into the stream: every seventh step deletes an
       earlier doc, so recovery is checked against deletes too. *)
    (if i mod 7 = 3 && i >= 2 then
       let target = doc_name (i - 2) in
       match Log.delete store ~collection ~doc:target with
       | Ok true -> Printf.printf "D %s\n%!" target
       | Ok false -> ()
       | Error _ -> Printf.printf "E %s\n%!" target);
    let doc = doc_name i in
    match Log.put store ~collection ~doc (doc_body ~seed i) with
    | Ok hash -> Printf.printf "A %s %s\n%!" doc hash
    | Error _ -> Printf.printf "E %s\n%!" doc
  done;
  (* The final checkpoint (and its manifest swap) sits on the fault
     plane too — a kill here must still recover. *)
  (match Log.checkpoint store with Ok () | Error _ -> ());
  Log.close store;
  print_string "DONE\n";
  exit 0

let maybe_run_child () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some spec -> run_child spec

(* ------------------------------------------------------------------ *)
(* Parent                                                              *)
(* ------------------------------------------------------------------ *)

type trial = {
  tr_exit : int;  (* child exit code; 137 = injected kill point *)
  tr_killed : bool;
  tr_completed : bool;  (* child printed DONE *)
  tr_acked : int;  (* expected live docs after replaying the ack stream *)
  tr_recovered : int;
  tr_lost : int;  (* acked but missing or wrong content after recovery *)
  tr_resurrected : int;  (* recovered but never acknowledged *)
  tr_escapes : int;  (* read-time checksum failures *)
  tr_truncated_tails : int;
  tr_quarantined : int;
  tr_unquarantined_damage : int;
}

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let child_env spec =
  let keep =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv -> not (String.length kv > String.length env_var
                                   && String.sub kv 0 (String.length env_var + 1) = env_var ^ "="))
  in
  Array.of_list (keep @ [ env_var ^ "=" ^ spec ])

let read_all fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents b

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let run_trial ~exe ~dir ~seed ~n ?(segbytes = 4096) rates =
  rm_rf dir;
  let spec = spec_to_string ~dir ~seed ~n ~segbytes rates in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pr, pw = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process_env exe [| exe |] (child_env spec) dev_null pw Unix.stderr
  in
  Unix.close pw;
  Unix.close dev_null;
  let out = read_all pr in
  Unix.close pr;
  let status = waitpid_retry pid in
  let exit_code =
    match status with Unix.WEXITED c -> c | Unix.WSIGNALED s -> 128 + s | Unix.WSTOPPED s -> 128 + s
  in
  (* Replay the ack stream into the expected live set. *)
  let expected = Hashtbl.create 64 in
  let completed = ref false in
  String.split_on_char '\n' out
  |> List.iter (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ "A"; doc; hash ] -> Hashtbl.replace expected doc hash
         | [ "D"; doc ] -> Hashtbl.remove expected doc
         | [ "E"; _ ] -> ()
         | [ "DONE" ] -> completed := true
         | _ -> ());
  (* Recover fault-free and compare, then scrub what recovery left. *)
  let store = Log.open_store dir in
  let recovered = Log.list_docs store ~collection in
  let lost = ref 0 and resurrected = ref 0 in
  Hashtbl.iter
    (fun doc hash ->
      match Log.get store ~collection ~doc with
      | Ok (snapshot, h) when h = hash && Digest.to_hex (Digest.string snapshot) = hash -> ()
      | Ok _ | Error _ -> incr lost)
    expected;
  List.iter (fun (doc, _) -> if not (Hashtbl.mem expected doc) then incr resurrected) recovered;
  let c = Log.counts store in
  let quarantined = List.length (Log.quarantined store) in
  Log.close store;
  let scrub = Scrub.run dir in
  let trial =
    {
      tr_exit = exit_code;
      tr_killed = exit_code = 137;
      tr_completed = !completed;
      tr_acked = Hashtbl.length expected;
      tr_recovered = List.length recovered;
      tr_lost = !lost;
      tr_resurrected = !resurrected;
      tr_escapes = c.Log.n_read_crc_failures;
      tr_truncated_tails = c.Log.n_truncated_tails;
      tr_quarantined = quarantined;
      tr_unquarantined_damage = List.length (Scrub.unquarantined_damage scrub);
    }
  in
  rm_rf dir;
  trial

type summary = {
  s_trials : int;
  s_killed : int;
  s_completed : int;
  s_acked : int;
  s_recovered : int;
  s_lost : int;
  s_resurrected : int;
  s_escapes : int;
  s_truncated_tails : int;
  s_quarantined : int;
  s_unquarantined_damage : int;
}

let run_trials ~exe ~tmp ~trials ~seed0 ~n rates =
  let z =
    {
      s_trials = 0;
      s_killed = 0;
      s_completed = 0;
      s_acked = 0;
      s_recovered = 0;
      s_lost = 0;
      s_resurrected = 0;
      s_escapes = 0;
      s_truncated_tails = 0;
      s_quarantined = 0;
      s_unquarantined_damage = 0;
    }
  in
  let acc = ref z in
  for i = 0 to trials - 1 do
    let dir = Filename.concat tmp (Printf.sprintf "trial-%d" (seed0 + i)) in
    let tr = run_trial ~exe ~dir ~seed:(seed0 + i) ~n rates in
    let s = !acc in
    acc :=
      {
        s_trials = s.s_trials + 1;
        s_killed = s.s_killed + (if tr.tr_killed then 1 else 0);
        s_completed = s.s_completed + (if tr.tr_completed then 1 else 0);
        s_acked = s.s_acked + tr.tr_acked;
        s_recovered = s.s_recovered + tr.tr_recovered;
        s_lost = s.s_lost + tr.tr_lost;
        s_resurrected = s.s_resurrected + tr.tr_resurrected;
        s_escapes = s.s_escapes + tr.tr_escapes;
        s_truncated_tails = s.s_truncated_tails + tr.tr_truncated_tails;
        s_quarantined = s.s_quarantined + tr.tr_quarantined;
        s_unquarantined_damage = s.s_unquarantined_damage + tr.tr_unquarantined_damage;
      }
  done;
  !acc
