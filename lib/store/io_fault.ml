(* Deterministic I/O fault injection, the Chaos discipline pushed down
   into the filesystem layer: every decision is a pure function of
   seed x op x sequence number, so one seed names one byte-identical
   fault schedule — a crash trial that found a recovery bug replays
   exactly, forever.

   The plane wraps an append-only file. Writes buffer in memory and
   reach the file descriptor only at the fsync barrier: that is what
   makes a kill point *observable* — when the injected crash calls
   [Unix._exit] mid-operation, bytes that were never flushed are really
   gone, instead of surviving in the OS page cache the way they would
   for a plain [kill -9] of a process that already called [write].

   Injected faults:
   - short write: a strict prefix of the buffer lands, then the write
     errors — the caller must repair (discard the torn prefix);
   - failed fsync: pending bytes reach the fd but are NOT durable, and
     the call errors — a caller that does not truncate back to the last
     barrier can resurrect an unacknowledged write;
   - ignored fsync: the call lies — reports success with nothing made
     durable. Undetectable by construction (so is lying hardware);
     exact-prefix recovery is unachievable and the oracle only asserts
     the weaker no-resurrection/no-corruption invariants;
   - crash-after-N-bytes: a strict prefix of the pending bytes is
     flushed, then the process exits. Strictness (never the full
     buffer) is what makes "recovered = acknowledged, exactly"
     achievable: an operation never both completes and crashes. *)

type fault =
  | Short_write of float  (* fraction of the buffer that lands before the error *)
  | Fsync_fail
  | Fsync_ignore
  | Crash_after of float  (* flush this fraction of pending bytes, then _exit *)

type op = Write | Fsync

type t = {
  seed : int;
  short_write_rate : float;
  fsync_fail_rate : float;
  fsync_ignore_rate : float;
  crash_rate : float;
}

let none =
  {
    seed = 0;
    short_write_rate = 0.;
    fsync_fail_rate = 0.;
    fsync_ignore_rate = 0.;
    crash_rate = 0.;
  }

let of_seed ?(short_write_rate = 0.) ?(fsync_fail_rate = 0.) ?(fsync_ignore_rate = 0.)
    ?(crash_rate = 0.) seed =
  { seed; short_write_rate; fsync_fail_rate; fsync_ignore_rate; crash_rate }

let enabled t =
  t.short_write_rate > 0. || t.fsync_fail_rate > 0. || t.fsync_ignore_rate > 0.
  || t.crash_rate > 0.

let op_name = function Write -> "write" | Fsync -> "fsync"

(* One uniform draw in [0,1) per (seed, fault-kind, op, seq) — MD5 as a
   keyed PRF, exactly the Chaos plane's construction. *)
let uniform ~seed ~tag ~op ~seq =
  let h =
    Digest.to_hex (Digest.string (Printf.sprintf "%d|%s|%s|%d" seed tag (op_name op) seq))
  in
  float_of_int (int_of_string ("0x" ^ String.sub h 0 7)) /. float_of_int 0x10000000

let fires t rate ~tag ~op ~seq = rate > 0. && uniform ~seed:t.seed ~tag ~op ~seq < rate
let frac t ~tag ~op ~seq = uniform ~seed:t.seed ~tag:(tag ^ ".frac") ~op ~seq

(* Fixed evaluation order (crash, then the op-specific faults) so one
   operation draws at most one fault and the schedule is stable under
   rate changes to later kinds. *)
let decide t ~op ~seq =
  if fires t t.crash_rate ~tag:"crash" ~op ~seq then
    Some (Crash_after (frac t ~tag:"crash" ~op ~seq))
  else
    match op with
    | Write ->
      if fires t t.short_write_rate ~tag:"short" ~op ~seq then
        Some (Short_write (frac t ~tag:"short" ~op ~seq))
      else None
    | Fsync ->
      if fires t t.fsync_fail_rate ~tag:"ffail" ~op ~seq then Some Fsync_fail
      else if fires t t.fsync_ignore_rate ~tag:"fignore" ~op ~seq then Some Fsync_ignore
      else None

let schedule t ~op n = List.init n (fun seq -> decide t ~op ~seq)

let fault_name = function
  | Short_write _ -> "short_write"
  | Fsync_fail -> "fsync_fail"
  | Fsync_ignore -> "fsync_ignore"
  | Crash_after _ -> "crash"

(* ------------------------------------------------------------------ *)
(* The faultable append-only file                                      *)
(* ------------------------------------------------------------------ *)

exception Fault of string

type file = {
  fd : Unix.file_descr;
  f_path : string;
  plane : t option;
  pending : Buffer.t;  (* appended, not yet flushed to the fd *)
  mutable committed : int;  (* bytes on the fd AND covered by a real fsync *)
  mutable flushed : int;  (* bytes on the fd; > committed only after a failed fsync *)
  mutable seq : int;  (* fault-schedule position: one tick per write/fsync *)
}

let openf ?plane path =
  let plane = match plane with Some p when enabled p -> Some p | _ -> None in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  { fd; f_path = path; plane; pending = Buffer.create 4096; committed = size;
    flushed = size; seq = 0 }

let path f = f.f_path
let committed f = f.committed
let length f = f.flushed + Buffer.length f.pending

(* Raw positional write at the flush frontier. *)
let flush_raw f s =
  if String.length s > 0 then begin
    ignore (Unix.lseek f.fd f.flushed Unix.SEEK_SET);
    let b = Bytes.unsafe_of_string s in
    let rec go off =
      if off < Bytes.length b then begin
        let n = Unix.write f.fd b off (Bytes.length b - off) in
        if n <= 0 then raise (Fault "short write to segment fd");
        go (off + n)
      end
    in
    go 0;
    f.flushed <- f.flushed + String.length s
  end

(* The injected crash: flush a STRICT prefix of the un-durable bytes,
   then die without unwinding — the re-exec'd trial parent observes a
   process that vanished mid-operation, exactly like a kill -9 at a
   seeded point. *)
let crash_now f ~fraction =
  let pend = Buffer.contents f.pending in
  let n =
    min
      (int_of_float (fraction *. float_of_int (String.length pend)))
      (String.length pend - 1)
    |> max 0
  in
  (try flush_raw f (String.sub pend 0 n) with Fault _ | Unix.Unix_error _ -> ());
  Unix._exit 137

let next_fault f ~op =
  match f.plane with
  | None -> None
  | Some p ->
    let seq = f.seq in
    f.seq <- seq + 1;
    decide p ~op ~seq

let append f data =
  (match next_fault f ~op:Write with
  | Some (Crash_after fraction) ->
    Buffer.add_string f.pending data;
    crash_now f ~fraction
  | Some (Short_write fraction) ->
    (* A torn in-memory prefix: the caller's repair discards it. *)
    let n =
      min
        (int_of_float (fraction *. float_of_int (String.length data)))
        (String.length data - 1)
      |> max 0
    in
    Buffer.add_substring f.pending data 0 n;
    raise (Fault "injected short write")
  | Some (Fsync_fail | Fsync_ignore) | None -> Buffer.add_string f.pending data)

let fsync f =
  match next_fault f ~op:Fsync with
  | Some (Crash_after fraction) -> crash_now f ~fraction
  | Some Fsync_fail ->
    (* The dangerous shape: bytes reach the fd, durability does not.
       Without the caller truncating back to [committed], a later
       successful fsync would resurrect this unacknowledged write. *)
    let pend = Buffer.contents f.pending in
    Buffer.clear f.pending;
    (try flush_raw f pend with Unix.Unix_error _ -> ());
    raise (Fault "injected fsync failure")
  | Some Fsync_ignore -> () (* the lie: nothing flushed, success reported *)
  | Some (Short_write _) | None ->
    let pend = Buffer.contents f.pending in
    Buffer.clear f.pending;
    flush_raw f pend;
    Unix.fsync f.fd;
    f.committed <- f.flushed

(* Repair after a failed append/fsync: drop every byte that is not
   known durable. Pending is discarded and the fd is truncated back to
   the last barrier, so a failed-but-flushed record can never be
   resurrected by a later successful fsync. *)
let repair f =
  Buffer.clear f.pending;
  (try Unix.ftruncate f.fd f.committed with Unix.Unix_error _ -> ());
  (try Unix.fsync f.fd with Unix.Unix_error _ -> ());
  f.flushed <- f.committed

let close f = try Unix.close f.fd with Unix.Unix_error _ -> ()
