(** Replicated collection store: quorum-acked log shipping of the
    segmented store across N backend processes, breaker-informed
    primary failover onto epoch-stamped terms, and digest-driven
    anti-entropy repair. A write is acknowledged only once W of N
    stores have fsync'd it; short of quorum it is rolled back
    everywhere it landed, so nothing unacknowledged can resurrect. *)

val backend_flag : string
(** The argv marker ([--replica-backend]) that turns the host binary
    into a replica backend process. *)

val maybe_run_backend : unit -> unit
(** Call first thing in main: if the process was exec'd as a replica
    backend, runs it and never returns. *)

type config = {
  replicas : int;  (** N *)
  write_quorum : int;  (** W: fsync'd copies before a write is acked *)
  max_segment_bytes : int;
  socket_dir : string option;
  probe_interval_s : float;  (** supervisor cadence; <= 0 disables the thread *)
  call_timeout_s : float;
  scrub_interval_s : float;  (** per-backend online scrub cadence; 0 = off *)
  chaos : Chaos.config option;  (** network fault plane on data-plane frames *)
  breaker : Breaker.config;
  io_faults : (int * float * float * float * float) option;
      (** base seed, short-write / fsync-fail / fsync-ignore / crash
          rates: a per-node disk fault plane — the oracle's composition
          axis. Never set it in production. *)
}

val default_config : config
(** 3 replicas, write quorum 2, no fault planes. *)

type t

val create : ?config:config -> dir:string -> unit -> t
(** Spawn the backends (node [i] stores under [dir]/replica-[i]), run
    the first election — rejoining divergent directories is repaired
    before traffic — and start the supervisor thread. *)

type error = [ Log.error | `Unavailable of string ]

val error_message : error -> string

val put : t -> collection:string -> doc:string -> string -> (string, error) result
(** Quorum-acked append: [Ok hash] means W stores hold it fsync'd.
    [`Unavailable] means the write was refused and rolled back. *)

val delete : t -> collection:string -> doc:string -> (bool, error) result

val get : t -> collection:string -> doc:string -> (string * string, error) result
(** [(snapshot, hash)] from the primary; falls back to any reachable
    replica (possibly slightly stale, never torn) during failover. *)

(** {1 Write outcomes (the oracle's ledger classes)} *)

type write_outcome =
  | Acked of { hash : string; applied : bool }
  | Refused of { clean : bool; reason : string }
      (** no quorum; [clean] = the append was confirmed rolled back
          everywhere it landed *)

val write_outcome :
  t ->
  kind:[ `Put | `Delete ] ->
  collection:string ->
  doc:string ->
  body:string ->
  write_outcome

(** {1 Repair} *)

val repair : t -> int
(** One anti-entropy round: bring every follower byte-identical to the
    primary (suffix streaming when the shared prefix still matches,
    wholesale segment replacement otherwise). Returns followers
    repaired or verified in sync. *)

val repair_until_converged : t -> max_rounds:int -> bool
val converged : t -> bool
(** Every node byte-identical to the primary (epoch + per-segment
    extents and digests). *)

(** {1 Introspection} *)

val primary : t -> int
val epoch : t -> int
val replica_count : t -> int
val promotions : t -> int
val truncated_tails : t -> int
val quorum_failures : t -> int
val undo_failures : t -> int
val repairs : t -> int
val node_pid : t -> int -> int
val node_dir : t -> int -> string

val node_socket : t -> int -> string
(** The backend's UDS path — the oracle's side door for injecting
    frames behind the coordinator's back. *)

val tainted : t -> int -> bool
val statuses : t -> Repl_log.status option array

val metrics : t -> string
(** Per-replica store expositions relabeled with [{replica="i"}], plus
    role / lag / breaker gauges and the promotion, truncated-tail,
    quorum-failure and repair counters. *)

(** {1 The oracle's disruption hooks} *)

val kill_node : t -> int -> unit
(** SIGKILL the backend and reap it. *)

val respawn_node : t -> int -> bool

val alive : t -> int -> bool
(** Is the backend process still running? Reaps (and books) a corpse
    the supervisor thread would otherwise have noticed — the oracle
    runs with that thread disabled. *)

val set_partition : t -> int -> bool -> unit
(** Sever (or heal) every frame to the node — the coordinator-side
    network partition. *)

val shutdown : t -> unit
(** Drain every backend (checkpoint + clean exit), escalating to
    SIGKILL on a deadline. *)
