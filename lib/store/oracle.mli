(** Kill-point crash oracle: re-exec the current binary as a child
    ingester running under a seeded I/O fault plane, kill it at seeded
    points, then check that recovery yields exactly the acknowledged
    prefix — no lost acked write, no resurrected unacked write, zero
    checksum escapes. *)

val env_var : string
(** [AWBSTORE_ORACLE] — presence in the environment turns the process
    into an oracle child. *)

val maybe_run_child : unit -> unit
(** Call first in [main]. If [env_var] is set, runs the child ingester
    and never returns; otherwise a no-op. *)

type rates = {
  r_crash : float;  (** crash-after-N-bytes kill points *)
  r_short : float;  (** short writes *)
  r_ffail : float;  (** fsync reports failure *)
  r_fignore : float;  (** fsync lies (reports success, does nothing) *)
}

val no_rates : rates

type trial = {
  tr_exit : int;
  tr_killed : bool;  (** child died at an injected kill point *)
  tr_completed : bool;  (** child ran to completion *)
  tr_acked : int;  (** live docs per the acknowledged prefix *)
  tr_recovered : int;
  tr_lost : int;  (** acked but missing/wrong after recovery *)
  tr_resurrected : int;  (** recovered but never acked *)
  tr_escapes : int;  (** read-time checksum failures *)
  tr_truncated_tails : int;
  tr_quarantined : int;
  tr_unquarantined_damage : int;
}

val run_trial :
  exe:string -> dir:string -> seed:int -> n:int -> ?segbytes:int -> rates -> trial
(** One seeded trial: spawn [exe] as child on a fresh [dir], collect
    ack lines, wait, recover fault-free, compare, scrub, clean up. *)

type summary = {
  s_trials : int;
  s_killed : int;
  s_completed : int;
  s_acked : int;
  s_recovered : int;
  s_lost : int;
  s_resurrected : int;
  s_escapes : int;
  s_truncated_tails : int;
  s_quarantined : int;
  s_unquarantined_damage : int;
}

val run_trials :
  exe:string -> tmp:string -> trials:int -> seed0:int -> n:int -> rates -> summary

(** {1 The partition-aware replication oracle}

    A replication trial drives a live [Replica] cluster (backends
    re-exec'd with per-node disk fault planes, the coordinator's frames
    under the seeded chaos plane) through a deterministic ingest while
    a seeded schedule SIGKILLs and partitions nodes — biased toward the
    current primary — then heals everything and demands convergence.
    The ledger gates: every quorum-acked write survives byte-exact on
    every replica, no confirmed-rolled-back write resurrects anywhere,
    ambiguous rollbacks (tainted nodes) at least converge, and the
    segment files of all replicas end byte-identical. *)

type repl_trial = {
  rt_ops : int;
  rt_acked : int;  (** live docs per the acked ledger *)
  rt_refused : int;  (** quorum-refused writes, rollback confirmed *)
  rt_ambiguous : int;  (** rollback unconfirmed (node tainted) *)
  rt_kills : int;
  rt_partitions : int;
  rt_primary_disrupted : bool;  (** a kill/partition hit the then-primary *)
  rt_promotions : int;
  rt_truncated_tails : int;
  rt_repairs : int;
  rt_converged : bool;  (** repair converged and segment files byte-match *)
  rt_lost : int;  (** acked but missing/wrong on some replica *)
  rt_resurrected : int;  (** present on some replica but never acked *)
}

val run_repl_trial :
  dir:string ->
  seed:int ->
  n:int ->
  ?replicas:int ->
  ?write_quorum:int ->
  ?segbytes:int ->
  ?chaos:bool ->
  rates ->
  repl_trial
(** One seeded replication trial on a fresh [dir]. [rates.r_fignore] is
    ignored: lying fsync voids the quorum contract itself and belongs
    to the single-store oracle's weaker invariants. *)

type repl_summary = {
  rs_trials : int;
  rs_ops : int;
  rs_acked : int;
  rs_refused : int;
  rs_ambiguous : int;
  rs_kills : int;
  rs_partitions : int;
  rs_primary_disrupted : int;
      (** trials whose then-primary was killed or partitioned *)
  rs_promotions : int;
  rs_truncated_tails : int;
  rs_repairs : int;
  rs_diverged : int;  (** trials that failed to converge byte-identically *)
  rs_lost : int;
  rs_resurrected : int;
}

val run_repl_trials :
  tmp:string -> trials:int -> seed0:int -> n:int -> ?chaos:bool -> rates -> repl_summary
