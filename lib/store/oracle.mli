(** Kill-point crash oracle: re-exec the current binary as a child
    ingester running under a seeded I/O fault plane, kill it at seeded
    points, then check that recovery yields exactly the acknowledged
    prefix — no lost acked write, no resurrected unacked write, zero
    checksum escapes. *)

val env_var : string
(** [AWBSTORE_ORACLE] — presence in the environment turns the process
    into an oracle child. *)

val maybe_run_child : unit -> unit
(** Call first in [main]. If [env_var] is set, runs the child ingester
    and never returns; otherwise a no-op. *)

type rates = {
  r_crash : float;  (** crash-after-N-bytes kill points *)
  r_short : float;  (** short writes *)
  r_ffail : float;  (** fsync reports failure *)
  r_fignore : float;  (** fsync lies (reports success, does nothing) *)
}

val no_rates : rates

type trial = {
  tr_exit : int;
  tr_killed : bool;  (** child died at an injected kill point *)
  tr_completed : bool;  (** child ran to completion *)
  tr_acked : int;  (** live docs per the acknowledged prefix *)
  tr_recovered : int;
  tr_lost : int;  (** acked but missing/wrong after recovery *)
  tr_resurrected : int;  (** recovered but never acked *)
  tr_escapes : int;  (** read-time checksum failures *)
  tr_truncated_tails : int;
  tr_quarantined : int;
  tr_unquarantined_damage : int;
}

val run_trial :
  exe:string -> dir:string -> seed:int -> n:int -> ?segbytes:int -> rates -> trial
(** One seeded trial: spawn [exe] as child on a fresh [dir], collect
    ack lines, wait, recover fault-free, compare, scrub, clean up. *)

type summary = {
  s_trials : int;
  s_killed : int;
  s_completed : int;
  s_acked : int;
  s_recovered : int;
  s_lost : int;
  s_resurrected : int;
  s_escapes : int;
  s_truncated_tails : int;
  s_quarantined : int;
  s_unquarantined_damage : int;
}

val run_trials :
  exe:string -> tmp:string -> trials:int -> seed0:int -> n:int -> rates -> summary
