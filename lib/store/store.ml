(* Entry point of the crash-safe collection store. [include Log] makes
   [Store.t]/[Store.put]/… the store itself; the submodules expose the
   fault plane, on-disk formats, offline scrub, and the crash oracle. *)

module Io_fault = Io_fault
module Segment = Segment
module Manifest = Manifest
module Scrub = Scrub
module Oracle = Oracle
module Repl_log = Repl_log
module Replica = Replica
include Log
