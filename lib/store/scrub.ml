(* Offline scrub: verify every checksum in every segment of a store
   directory without opening (or modifying) the store. The report
   separates the two damage classes recovery distinguishes — torn tails
   (a crash's partial append; open would truncate them) and mid-log
   damage (bit rot; open would quarantine) — and cross-references the
   manifest so already-quarantined segments don't count as escapes. *)

type report = {
  segments : int;
  records : int;
  bytes : int;
  live_docs : int;  (* per the manifest doc table, if readable *)
  torn_tails : (int * string) list;  (* segment id, reason *)
  damaged : (int * string) list;  (* segment id, reason — mid-log *)
  quarantined : int list;  (* ids the manifest already quarantines *)
  manifest : [ `Ok | `Missing | `Damaged of string ];
}

(* Damage in segments the manifest does not already quarantine: the
   number that must be zero for a store to count as clean. *)
let unquarantined_damage r =
  List.filter (fun (id, _) -> not (List.mem id r.quarantined)) r.damaged

let clean r = unquarantined_damage r = []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run dir =
  let manifest_state, quarantined, live_docs =
    match Manifest.load ~dir with
    | `Manifest m -> (`Ok, List.map fst m.Manifest.quarantined, List.length m.Manifest.docs)
    | `Missing -> (`Missing, [], 0)
    | `Damaged reason -> (`Damaged reason, [], 0)
  in
  let ids =
    (try Sys.readdir dir |> Array.to_list with Sys_error _ -> [])
    |> List.filter_map Segment.seg_id
    |> List.sort compare
  in
  let records = ref 0 and bytes = ref 0 in
  let torn = ref [] and damaged = ref [] in
  List.iter
    (fun id ->
      match read_file (Filename.concat dir (Segment.seg_name id)) with
      | exception Sys_error reason -> damaged := (id, "unreadable: " ^ reason) :: !damaged
      | data -> (
        bytes := !bytes + String.length data;
        match Segment.check_header data with
        | `Torn_header -> torn := (id, "torn segment header") :: !torn
        | `Bad_header -> damaged := (id, "bad segment header") :: !damaged
        | `Ok -> (
          let recs, outcome = Segment.scan_tail data ~from:Segment.header_len in
          records := !records + List.length recs;
          match outcome with
          | Segment.Clean -> ()
          | Segment.Torn_tail (_, reason) -> torn := (id, reason) :: !torn
          | Segment.Mid_log_damage (off, reason) ->
            damaged := (id, Printf.sprintf "%s at offset %d" reason off) :: !damaged)))
    ids;
  {
    segments = List.length ids;
    records = !records;
    bytes = !bytes;
    live_docs;
    torn_tails = List.rev !torn;
    damaged = List.rev !damaged;
    quarantined;
    manifest = manifest_state;
  }

let render r =
  let b = Buffer.create 256 in
  Printf.bprintf b "segments %d, records %d, bytes %d, live docs %d\n" r.segments r.records
    r.bytes r.live_docs;
  Printf.bprintf b "manifest %s\n"
    (match r.manifest with
    | `Ok -> "ok"
    | `Missing -> "missing"
    | `Damaged reason -> "damaged: " ^ reason);
  List.iter (fun (id, reason) -> Printf.bprintf b "torn tail: segment %d: %s\n" id reason)
    r.torn_tails;
  List.iter
    (fun (id, reason) ->
      Printf.bprintf b "damaged: segment %d: %s%s\n" id reason
        (if List.mem id r.quarantined then " (quarantined)" else " (NOT QUARANTINED)"))
    r.damaged;
  Printf.bprintf b "%d damaged unquarantined\n" (List.length (unquarantined_damage r));
  Buffer.contents b
