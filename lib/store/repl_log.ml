(* The replication frame family: payload codecs for log shipping,
   catch-up, and promotion over the shard UDS channels.

   Every payload rides inside the [Frame] wire discipline (u32 length,
   u8 version, payload, u32 crc32, structured 'N' nack) exactly like
   the shard generate op; this module defines only the payload formats.
   Op byte first, then op-specific fields:

     'P'                  ping                     reply "P"
     'W' write            replicate one operation  reply 'A' write_reply
     'U' undo             roll the log back to a position     reply "K"
     'S' status           position / epoch / segment digests  reply 'T'
     'E' promote          adopt a new term, append the marker reply 'T'
     'F' fetch            segment byte range (catch-up)       reply 'B'
     'H' prefix digest    MD5 of a segment prefix             reply 'B'
     'I' install          stage a segment splice              reply "K"
     'Z' commit           apply staged splices, reopen        reply 'T'
     'G' get              read one document                   reply 'V'
     'M' metrics          store Prometheus block              reply 'M'+text
     'C' checkpoint       fsync + manifest swap               reply "K"
     'D' drain            checkpoint, close, exit             reply "D"

   A write carries the primary's pre-append position; a replica whose
   log is not exactly there answers a structured nack instead of
   appending — the log-matching property that keeps replica logs
   byte-identical to the primary's prefix. *)

let add_u8 = Frame.add_u8
let add_u32 = Frame.add_u32
let add_lp = Frame.add_lp
let get_u8 = Frame.get_u8
let get_u32 = Frame.get_u32
let get_lp = Frame.get_lp

(* ------------------------------------------------------------------ *)
(* Write                                                               *)
(* ------------------------------------------------------------------ *)

type write = {
  w_epoch : int;
  w_expect : (int * int) option;  (* required pre-append (seg, off); None on the primary *)
  w_kind : [ `Put | `Delete ];
  w_collection : string;
  w_doc : string;
  w_body : string;  (* empty for [`Delete] *)
}

let encode_write w =
  let b = Buffer.create (String.length w.w_body + 64) in
  add_u8 b (Char.code 'W');
  add_u32 b w.w_epoch;
  (match w.w_expect with
  | None -> add_u8 b 0
  | Some (seg, off) ->
    add_u8 b 1;
    add_u32 b seg;
    add_u32 b off);
  add_u8 b (Char.code (match w.w_kind with `Put -> 'P' | `Delete -> 'D'));
  add_lp b w.w_collection;
  add_lp b w.w_doc;
  add_lp b w.w_body;
  Buffer.contents b

let decode_write payload pos =
  let w_epoch = get_u32 payload pos in
  let w_expect =
    match get_u8 payload pos with
    | 0 -> None
    | _ ->
      let seg = get_u32 payload pos in
      let off = get_u32 payload pos in
      Some (seg, off)
  in
  let w_kind =
    match Char.chr (get_u8 payload pos) with
    | 'P' -> `Put
    | 'D' -> `Delete
    | c -> Frame.perr "unknown write kind %C" c
  in
  let w_collection = get_lp payload pos in
  let w_doc = get_lp payload pos in
  let w_body = get_lp payload pos in
  { w_epoch; w_expect; w_kind; w_collection; w_doc; w_body }

type write_reply = {
  a_applied : bool;  (* false: a delete of an absent doc — nothing appended *)
  a_hash : string;
  a_pre : int * int;  (* position the record went in at (seg, off) *)
  a_post : int * int;
}

let encode_write_reply a =
  let b = Buffer.create 64 in
  add_u8 b (Char.code 'A');
  add_u8 b (if a.a_applied then 1 else 0);
  add_lp b a.a_hash;
  add_u32 b (fst a.a_pre);
  add_u32 b (snd a.a_pre);
  add_u32 b (fst a.a_post);
  add_u32 b (snd a.a_post);
  Buffer.contents b

let decode_write_reply payload =
  let pos = ref 0 in
  (match Char.chr (get_u8 payload pos) with
  | 'A' -> ()
  | c -> Frame.perr "expected write reply, got %C" c);
  let a_applied = get_u8 payload pos = 1 in
  let a_hash = get_lp payload pos in
  let ps = get_u32 payload pos in
  let po = get_u32 payload pos in
  let qs = get_u32 payload pos in
  let qo = get_u32 payload pos in
  { a_applied; a_hash; a_pre = (ps, po); a_post = (qs, qo) }

(* ------------------------------------------------------------------ *)
(* Undo                                                                *)
(* ------------------------------------------------------------------ *)

let encode_undo ~epoch ~seg ~off =
  let b = Buffer.create 16 in
  add_u8 b (Char.code 'U');
  add_u32 b epoch;
  add_u32 b seg;
  add_u32 b off;
  Buffer.contents b

let decode_undo payload pos =
  let epoch = get_u32 payload pos in
  let seg = get_u32 payload pos in
  let off = get_u32 payload pos in
  (epoch, seg, off)

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

type seg_info = { g_id : int; g_len : int; g_digest : string (* "" if not requested *) }

type status = {
  st_epoch : int;
  st_pos : int * int;  (* next-append position *)
  st_total : int;  (* durable log bytes *)
  st_segs : seg_info list;
  st_quarantined : int;
}

let encode_status_req ~digests =
  let b = Buffer.create 4 in
  add_u8 b (Char.code 'S');
  add_u8 b (if digests then 1 else 0);
  Buffer.contents b

let encode_status st =
  let b = Buffer.create 128 in
  add_u8 b (Char.code 'T');
  add_u32 b st.st_epoch;
  add_u32 b (fst st.st_pos);
  add_u32 b (snd st.st_pos);
  add_u32 b st.st_total;
  add_u32 b st.st_quarantined;
  add_u32 b (List.length st.st_segs);
  List.iter
    (fun g ->
      add_u32 b g.g_id;
      add_u32 b g.g_len;
      add_lp b g.g_digest)
    st.st_segs;
  Buffer.contents b

let decode_status payload =
  let pos = ref 0 in
  (match Char.chr (get_u8 payload pos) with
  | 'T' -> ()
  | c -> Frame.perr "expected status reply, got %C" c);
  let st_epoch = get_u32 payload pos in
  let ps = get_u32 payload pos in
  let po = get_u32 payload pos in
  let st_total = get_u32 payload pos in
  let st_quarantined = get_u32 payload pos in
  let nsegs = get_u32 payload pos in
  let st_segs =
    List.init nsegs (fun _ ->
        let g_id = get_u32 payload pos in
        let g_len = get_u32 payload pos in
        let g_digest = get_lp payload pos in
        { g_id; g_len; g_digest })
  in
  { st_epoch; st_pos = (ps, po); st_total; st_segs; st_quarantined }

(* ------------------------------------------------------------------ *)
(* Promote                                                             *)
(* ------------------------------------------------------------------ *)

let encode_promote ~epoch =
  let b = Buffer.create 8 in
  add_u8 b (Char.code 'E');
  add_u32 b epoch;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Catch-up: fetch / install / commit                                  *)
(* ------------------------------------------------------------------ *)

let encode_fetch ~seg ~from ~upto =
  let b = Buffer.create 16 in
  add_u8 b (Char.code 'F');
  add_u32 b seg;
  add_u32 b from;
  add_u32 b upto;
  Buffer.contents b

let decode_fetch payload pos =
  let seg = get_u32 payload pos in
  let from = get_u32 payload pos in
  let upto = get_u32 payload pos in
  (seg, from, upto)

(* MD5 hex of segment [seg]'s first [upto] bytes — the anti-entropy
   prefix check that decides between streaming a suffix and replacing a
   whole segment, without moving the prefix itself. *)
let encode_prefix_digest ~seg ~upto =
  let b = Buffer.create 16 in
  add_u8 b (Char.code 'H');
  add_u32 b seg;
  add_u32 b upto;
  Buffer.contents b

let decode_prefix_digest payload pos =
  let seg = get_u32 payload pos in
  let upto = get_u32 payload pos in
  (seg, upto)

let encode_bytes data =
  let b = Buffer.create (String.length data + 8) in
  add_u8 b (Char.code 'B');
  add_lp b data;
  Buffer.contents b

let decode_bytes payload =
  let pos = ref 0 in
  (match Char.chr (get_u8 payload pos) with
  | 'B' -> ()
  | c -> Frame.perr "expected bytes reply, got %C" c);
  get_lp payload pos

(* Stage a splice: replace segment [seg]'s bytes from offset [from]
   with [data] (from = 0 replaces the whole file, header included). *)
let encode_install ~seg ~from data =
  let b = Buffer.create (String.length data + 16) in
  add_u8 b (Char.code 'I');
  add_u32 b seg;
  add_u32 b from;
  add_lp b data;
  Buffer.contents b

let decode_install payload pos =
  let seg = get_u32 payload pos in
  let from = get_u32 payload pos in
  let data = get_lp payload pos in
  (seg, from, data)

(* Apply every staged splice, delete segments not in [segs] (and the
   manifest checkpoint, so reopen replays the spliced files from their
   headers), reopen, adopt [epoch]. *)
let encode_commit ~epoch segs =
  let b = Buffer.create 32 in
  add_u8 b (Char.code 'Z');
  add_u32 b epoch;
  add_u32 b (List.length segs);
  List.iter (fun id -> add_u32 b id) segs;
  Buffer.contents b

let decode_commit payload pos =
  let epoch = get_u32 payload pos in
  let n = get_u32 payload pos in
  let segs = List.init n (fun _ -> get_u32 payload pos) in
  (epoch, segs)

(* ------------------------------------------------------------------ *)
(* Get                                                                 *)
(* ------------------------------------------------------------------ *)

let encode_get ~collection ~doc =
  let b = Buffer.create 64 in
  add_u8 b (Char.code 'G');
  add_lp b collection;
  add_lp b doc;
  Buffer.contents b

let decode_get payload pos =
  let collection = get_lp payload pos in
  let doc = get_lp payload pos in
  (collection, doc)

let encode_get_reply = function
  | None ->
    let b = Buffer.create 8 in
    add_u8 b (Char.code 'V');
    add_u8 b 0;
    add_lp b "";
    add_lp b "";
    Buffer.contents b
  | Some (snapshot, hash) ->
    let b = Buffer.create (String.length snapshot + 64) in
    add_u8 b (Char.code 'V');
    add_u8 b 1;
    add_lp b snapshot;
    add_lp b hash;
    Buffer.contents b

let decode_get_reply payload =
  let pos = ref 0 in
  (match Char.chr (get_u8 payload pos) with
  | 'V' -> ()
  | c -> Frame.perr "expected get reply, got %C" c);
  let found = get_u8 payload pos = 1 in
  let snapshot = get_lp payload pos in
  let hash = get_lp payload pos in
  if found then Some (snapshot, hash) else None
