(** Crash-safe persistent collection store.

    Documents live in named collections on a segmented append-only log
    of CRC-checksummed records; an atomically swapped manifest
    checkpoints segment lengths and doc locations; recovery truncates
    torn tails and quarantines mid-log damage. [Store.t] itself is
    [Log.t] ([include Log]); the submodules expose the seeded I/O fault
    plane ([Io_fault]), on-disk formats ([Segment], [Manifest]), the
    offline checksum scrub ([Scrub]), the kill-point crash oracle
    ([Oracle]), and quorum-acked replication ([Replica] over the
    [Repl_log] frame family). *)

module Io_fault = Io_fault
module Segment = Segment
module Manifest = Manifest
module Scrub = Scrub
module Oracle = Oracle
module Repl_log = Repl_log
module Replica = Replica

include module type of Log with type t = Log.t
