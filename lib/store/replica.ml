(* Replicated collection store: quorum-acked log shipping across N
   backend processes, breaker-informed primary failover, and digest-
   driven anti-entropy repair.

   One front coordinator, N replica backends. Each backend owns a full
   segmented store (log.ml) in its own directory and serves the
   replication frame family (repl_log.ml) over a Unix-domain socket,
   with the same accept/drain discipline as the generation shards.
   Backends are spawned by fork+exec of the host binary itself —
   [Sys.executable_name] with a [--replica-backend] argv marker and the
   spec in an environment variable — so any binary that calls
   {!maybe_run_backend} first thing in main can host one.

   The write path: the coordinator appends on the primary first (the
   primary defines the log position), then fans the record out to every
   reachable replica carrying the primary's pre-append position as the
   log-matching check — a replica that is not exactly there refuses
   with a structured nack instead of appending, so replica logs are
   always byte prefixes of the primary's. A write is acknowledged to
   the caller only once W of N stores have fsync'd it; short of quorum,
   the append is undone (the log rolled back to its pre-append
   position) everywhere it landed, so an unacknowledged write cannot
   resurrect. A node whose undo cannot be confirmed is tainted:
   excluded from promotion until anti-entropy repair proves it
   byte-identical again.

   Failover: when the primary's breaker opens (or its process is
   reaped), the coordinator promotes the most-caught-up reachable
   replica — max (epoch, durable bytes) — onto a bumped epoch. The new
   primary appends a durable epoch marker, so a deposed primary that
   rejoins with unreplicated tail records diverges from the new
   history at a digest-visible point and repair truncates that tail
   rather than resurrecting it.

   Anti-entropy: repair compares per-segment extents and MD5 digests
   between the primary and a replica, streams only missing suffixes
   when the shared prefix still matches (prefix-digest checked),
   replaces segments wholesale otherwise, and commits the splices
   atomically on the replica (close, splice files, drop the stale
   manifest, reopen through recovery). Control and repair frames are
   exempt from the chaos plane — supervision stays truthful and repair
   provably converges; only data-plane frames (write / undo / get)
   ride through it. *)

let spec_env = "AWBSTORE_REPLICA_SPEC"
let backend_flag = "--replica-backend"

let send_frame = Frame.send_frame
let recv_frame = Frame.recv_frame

(* ------------------------------------------------------------------ *)
(* Backend spec (crosses the exec boundary via the environment)        *)
(* ------------------------------------------------------------------ *)

type spec = {
  rp_socket : string;
  rp_id : int;
  rp_dir : string;
  rp_segbytes : int;
  rp_scrub_s : float;  (* online scrub cadence; 0 = off *)
  rp_seed : int;  (* I/O fault plane seed; < 0 = no plane *)
  rp_short : float;
  rp_ffail : float;
  rp_fignore : float;
  rp_crash : float;
}

let spec_to_string sp =
  String.concat "\n"
    [
      "sock=" ^ sp.rp_socket;
      "id=" ^ string_of_int sp.rp_id;
      "dir=" ^ sp.rp_dir;
      "segbytes=" ^ string_of_int sp.rp_segbytes;
      "scrub=" ^ string_of_float sp.rp_scrub_s;
      "seed=" ^ string_of_int sp.rp_seed;
      "short=" ^ string_of_float sp.rp_short;
      "ffail=" ^ string_of_float sp.rp_ffail;
      "fignore=" ^ string_of_float sp.rp_fignore;
      "crash=" ^ string_of_float sp.rp_crash;
    ]

let spec_of_string s =
  let kv =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line '=' with
           | None -> None
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))
  in
  let get k = try List.assoc k kv with Not_found -> failwith ("replica spec missing " ^ k) in
  {
    rp_socket = get "sock";
    rp_id = int_of_string (get "id");
    rp_dir = get "dir";
    rp_segbytes = int_of_string (get "segbytes");
    rp_scrub_s = float_of_string (get "scrub");
    rp_seed = int_of_string (get "seed");
    rp_short = float_of_string (get "short");
    rp_ffail = float_of_string (get "ffail");
    rp_fignore = float_of_string (get "fignore");
    rp_crash = float_of_string (get "crash");
  }

(* ------------------------------------------------------------------ *)
(* Backend process                                                     *)
(* ------------------------------------------------------------------ *)

let seg_path dir id = Filename.concat dir (Segment.seg_name id)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all_fd fd data =
  let len = String.length data in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd data off (len - off))
  in
  go 0

(* The physical durable extent of a segment: the store's committed
   length clipped to what the file actually holds. Digests and fetches
   are computed over these bytes — what a rejoining replica could
   really replay — never over lengths a lying fsync merely reported. *)
let physical_extent dir (id, len) =
  match read_file (seg_path dir id) with
  | data -> (id, min len (String.length data), data)
  | exception Sys_error _ -> (id, 0, "")

let backend_status store ~digests =
  let dir = Log.dir store in
  let segs =
    List.map
      (fun ext ->
        let id, len, data = physical_extent dir ext in
        let digest =
          if digests && len > 0 then Digest.to_hex (Digest.string (String.sub data 0 len))
          else ""
        in
        { Repl_log.g_id = id; g_len = len; g_digest = digest })
      (Log.live_segments store)
  in
  {
    Repl_log.st_epoch = Log.epoch store;
    st_pos = Log.position store;
    st_total = Log.total_bytes store;
    st_segs = segs;
    st_quarantined = List.length (Log.quarantined store);
  }

(* Close the store, mutate its files, drop the (now stale) manifest
   checkpoint so recovery replays the mutated segments from their
   headers, and reopen. Undo and splice-commit both reuse recovery
   wholesale instead of editing live store state. *)
let surgery sp plane store mutate =
  Log.close !store;
  let ok = try mutate (); true with Unix.Unix_error _ | Sys_error _ -> false in
  List.iter
    (fun name ->
      try Unix.unlink (Filename.concat sp.rp_dir name) with Unix.Unix_error _ -> ())
    [ Manifest.file_name; Manifest.tmp_name ];
  store := Log.open_store ?plane ~max_segment_bytes:sp.rp_segbytes sp.rp_dir;
  ok

(* Drop every on-disk segment past the undo point and cut the target
   back to [off]. Never extends: a file shorter than [off] (a lying
   fsync's unkept promise) stays short and recovery truncates the torn
   tail. *)
let undo_files sp ~seg ~off =
  Array.iter
    (fun name ->
      match Segment.seg_id name with
      | Some id when id > seg -> (
        try Unix.unlink (Filename.concat sp.rp_dir name) with Unix.Unix_error _ -> ())
      | _ -> ())
    (try Sys.readdir sp.rp_dir with Sys_error _ -> [||]);
  let path = seg_path sp.rp_dir seg in
  match (Unix.stat path).Unix.st_size with
  | size -> if size > off then Unix.truncate path off
  | exception Unix.Unix_error _ -> ()

let apply_splice sp (seg, from, data) =
  let path = seg_path sp.rp_dir seg in
  if from = 0 then begin
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data)
  end
  else begin
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.ftruncate fd from;
        ignore (Unix.lseek fd from Unix.SEEK_SET);
        write_all_fd fd data)
  end

let backend_handle sp plane store staged payload pos =
  match Char.chr (Frame.get_u8 payload pos) with
  | 'P' -> "P"
  | 'W' -> (
    let w = Repl_log.decode_write payload pos in
    if w.Repl_log.w_epoch < Log.epoch !store then
      Frame.nack (Printf.sprintf "stale-epoch %d" (Log.epoch !store))
    else begin
      let cur = Log.position !store in
      match w.Repl_log.w_expect with
      | Some exp when exp <> cur ->
        (* A diverged node must NOT adopt the write's term. Epoch is
           only ever taken together with the content that backs it —
           a log-matched apply, a durable epoch marker, or a repair
           commit — so that the (epoch, bytes) election rank always
           prefers a node that actually holds the acked prefix over a
           laggard that merely heard the term number. *)
        Frame.nack (Printf.sprintf "diverged %d %d" (fst cur) (snd cur))
      | _ -> (
        Log.set_epoch !store w.Repl_log.w_epoch;
        let result =
          match w.Repl_log.w_kind with
          | `Put ->
            Result.map
              (fun hash -> (true, hash))
              (Log.put !store ~collection:w.Repl_log.w_collection ~doc:w.Repl_log.w_doc
                 w.Repl_log.w_body)
          | `Delete ->
            Result.map
              (fun applied -> (applied, ""))
              (Log.delete !store ~collection:w.Repl_log.w_collection
                 ~doc:w.Repl_log.w_doc)
        in
        match result with
        | Ok (applied, hash) ->
          Repl_log.encode_write_reply
            {
              Repl_log.a_applied = applied;
              a_hash = hash;
              a_pre = cur;
              a_post = Log.position !store;
            }
        | Error e -> Frame.nack (Log.error_message e))
    end)
  | 'U' ->
    let epoch, seg, off = Repl_log.decode_undo payload pos in
    let cur_seg, cur_off = Log.position !store in
    if (cur_seg, cur_off) = (seg, off) then "K"
    else if cur_seg < seg || (cur_seg = seg && cur_off < off) then
      (* Behind the undo point: nothing of the append ever landed
         here. No term adoption either — a position match is not a
         content match, and an epoch without its backing bytes
         poisons the election rank. *)
      Frame.nack (Printf.sprintf "undo-ahead %d %d" cur_seg cur_off)
    else begin
      let ok = surgery sp plane store (fun () -> undo_files sp ~seg ~off) in
      let cur_seg, cur_off = Log.position !store in
      if ok && (cur_seg < seg || (cur_seg = seg && cur_off <= off)) then begin
        (* The node had applied this term's write (it log-matched at
           the append point), so after truncating back it holds the
           canonical prefix — safe to carry the term. *)
        Log.set_epoch !store epoch;
        "K"
      end
      else
        (* Truncation incomplete: the append may still be durable
           here. Never claim a rollback we cannot prove. *)
        Frame.nack (Printf.sprintf "undo-failed %d %d" cur_seg cur_off)
    end
  | 'S' ->
    let digests = Frame.get_u8 payload pos = 1 in
    Repl_log.encode_status (backend_status !store ~digests)
  | 'E' -> (
    let epoch = Frame.get_u32 payload pos in
    match Log.append_epoch_marker !store ~epoch with
    | Ok () -> Repl_log.encode_status (backend_status !store ~digests:false)
    | Error e -> Frame.nack (Log.error_message e))
  | 'F' ->
    let seg, from, upto = Repl_log.decode_fetch payload pos in
    let _, len, data =
      match List.assoc_opt seg (Log.live_segments !store) with
      | Some durable -> physical_extent sp.rp_dir (seg, durable)
      | None -> (seg, 0, "")
    in
    let upto = if upto = 0 then len else min upto len in
    let from = min from upto in
    Repl_log.encode_bytes (String.sub data from (upto - from))
  | 'H' ->
    let seg, upto = Repl_log.decode_prefix_digest payload pos in
    let _, len, data =
      match List.assoc_opt seg (Log.live_segments !store) with
      | Some durable -> physical_extent sp.rp_dir (seg, durable)
      | None -> (seg, 0, "")
    in
    if upto > len then Frame.nack (Printf.sprintf "prefix-short %d" len)
    else Repl_log.encode_bytes (Digest.to_hex (Digest.string (String.sub data 0 upto)))
  | 'I' ->
    let seg, from, data = Repl_log.decode_install payload pos in
    Hashtbl.replace staged seg (from, data);
    "K"
  | 'Z' ->
    let epoch, keep = Repl_log.decode_commit payload pos in
    let ok =
      surgery sp plane store (fun () ->
          Hashtbl.iter (fun seg (from, data) -> apply_splice sp (seg, from, data)) staged;
          (* Segments the primary no longer has — a deposed tail that
             rotated into its own file, or quarantined junk — are dropped,
             never resurrected. *)
          Array.iter
            (fun name ->
              match Segment.seg_id name with
              | Some id when not (List.mem id keep) && not (Hashtbl.mem staged id) -> (
                try Unix.unlink (Filename.concat sp.rp_dir name) with Unix.Unix_error _ -> ())
              | _ -> ())
            (try Sys.readdir sp.rp_dir with Sys_error _ -> [||]))
    in
    Hashtbl.reset staged;
    if ok then begin
      (* Only a fully applied image may carry the primary's term: an
         epoch adopted over partial content would let this node outrank
         replicas that actually hold the acked prefix. *)
      Log.set_epoch !store epoch;
      Repl_log.encode_status (backend_status !store ~digests:false)
    end
    else Frame.nack "commit-failed"
  | 'G' -> (
    let collection, doc = Repl_log.decode_get payload pos in
    match Log.get !store ~collection ~doc with
    | Ok (snapshot, hash) -> Repl_log.encode_get_reply (Some (snapshot, hash))
    | Error `Not_found -> Repl_log.encode_get_reply None
    | Error e -> Frame.nack (Log.error_message e))
  | 'M' -> "M" ^ Log.to_prometheus !store
  | 'C' -> (
    match Log.checkpoint !store with
    | Ok () -> "K"
    | Error e -> Frame.nack (Log.error_message e))
  | c -> Frame.perr "unknown replica op %c" c

let backend_main sp =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let drain = Atomic.make false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set drain true));
  let plane =
    if sp.rp_seed < 0 then None
    else
      Some
        (Io_fault.of_seed ~short_write_rate:sp.rp_short ~fsync_fail_rate:sp.rp_ffail
           ~fsync_ignore_rate:sp.rp_fignore ~crash_rate:sp.rp_crash sp.rp_seed)
  in
  let store =
    match Log.open_store ?plane ~max_segment_bytes:sp.rp_segbytes sp.rp_dir with
    | s -> ref s
    | exception (Io_fault.Fault _ | Unix.Unix_error _ | Sys_error _) -> exit 3
  in
  (* One mutex serializes every op (and the scrub thread): undo and
     splice-commit swap the store out from under concurrent handlers,
     and replication throughput is bounded by fsync, not lock width. *)
  let op_mutex = Mutex.create () in
  let staged : (int, int * string) Hashtbl.t = Hashtbl.create 8 in
  if sp.rp_scrub_s > 0. then
    ignore
      (Thread.create
         (fun () ->
           while not (Atomic.get drain) do
             let deadline = Unix.gettimeofday () +. sp.rp_scrub_s in
             while (not (Atomic.get drain)) && Unix.gettimeofday () < deadline do
               Thread.delay 0.02
             done;
             if not (Atomic.get drain) then begin
               Mutex.lock op_mutex;
               Fun.protect
                 ~finally:(fun () -> Mutex.unlock op_mutex)
                 (fun () -> try ignore (Log.scrub_pass !store) with _ -> ())
             end
           done)
         ());
  (try Unix.unlink sp.rp_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sp.rp_socket);
  Unix.listen listen_fd 64;
  (try Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.05 with Unix.Unix_error _ -> ());
  let threads_mutex = Mutex.create () in
  let threads = ref [] in
  let handle_conn fd =
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05 with Unix.Unix_error _ -> ());
    let closing = ref false in
    (try
       while not !closing do
         match recv_frame ~retry_again:(fun () -> not (Atomic.get drain)) fd with
         | exception (End_of_file | Unix.Unix_error _ | Frame.Protocol_error _) ->
           closing := true
         | exception Frame.Crc_mismatch ->
           (* Damaged frame, aligned stream: answer a structured nack so
              the coordinator counts a lost payload, not a dead node. *)
           (try send_frame fd (Frame.nack "bad frame crc")
            with Frame.Protocol_error _ | Unix.Unix_error _ -> closing := true)
         | payload ->
           let reply =
             if payload = "D" then begin
               Atomic.set drain true;
               closing := true;
               "D"
             end
             else begin
               Mutex.lock op_mutex;
               Fun.protect
                 ~finally:(fun () -> Mutex.unlock op_mutex)
                 (fun () ->
                   try backend_handle sp plane store staged payload (ref 0)
                   with
                   | Frame.Protocol_error m -> Frame.nack ("protocol: " ^ m)
                   | Segment.Corrupt m -> Frame.nack ("store:corrupt: " ^ m))
             end
           in
           (try send_frame fd reply
            with Frame.Protocol_error _ | Unix.Unix_error _ -> closing := true)
       done
     with _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  while not (Atomic.get drain) do
    match Unix.accept ~cloexec:true listen_fd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> if not (Atomic.get drain) then Thread.delay 0.01
    | fd, _ ->
      let th = Thread.create handle_conn fd in
      Mutex.lock threads_mutex;
      threads := th :: !threads;
      Mutex.unlock threads_mutex
  done;
  List.iter Thread.join !threads;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink sp.rp_socket with Unix.Unix_error _ -> ());
  Log.close !store;
  exit 0

let maybe_run_backend () =
  if Array.exists (fun a -> a = backend_flag) Sys.argv then begin
    match Sys.getenv_opt spec_env with
    | None ->
      prerr_endline "replica backend: missing spec environment";
      exit 2
    | Some s -> backend_main (spec_of_string s)
  end

(* ------------------------------------------------------------------ *)
(* The front coordinator                                               *)
(* ------------------------------------------------------------------ *)

type config = {
  replicas : int;  (* N *)
  write_quorum : int;  (* W: fsync'd copies before a write is acked *)
  max_segment_bytes : int;
  socket_dir : string option;
  probe_interval_s : float;  (* supervisor cadence; <= 0 disables the thread *)
  call_timeout_s : float;
  scrub_interval_s : float;  (* per-backend online scrub cadence; 0 = off *)
  chaos : Chaos.config option;  (* network fault plane on data-plane frames *)
  breaker : Breaker.config;
  io_faults : (int * float * float * float * float) option;
      (* base seed, short-write / fsync-fail / fsync-ignore / crash rates:
         a per-node disk fault plane — the oracle's composition axis *)
}

let default_config =
  {
    replicas = 3;
    write_quorum = 2;
    max_segment_bytes = 8 * 1024 * 1024;
    socket_dir = None;
    probe_interval_s = 0.1;
    call_timeout_s = 5.;
    scrub_interval_s = 0.;
    chaos = None;
    breaker = Breaker.default_config;
    io_faults = None;
  }

type node = {
  nid : int;
  ndir : string;
  npath : string;  (* socket *)
  mutable npid : int;
  mutable nrespawns : int;
  nbreaker : Breaker.t;
  nchaos_seq : int Atomic.t;
  npartitioned : bool Atomic.t;  (* the oracle's network partition flag *)
  mutable ntainted : bool;  (* unconfirmed undo: out of promotion until repaired *)
  mutable ntaint_floor : (int * int) option;
      (* lowest rollback target whose undo went unconfirmed; everything
         below it is quorum-acked content (or markers), so a later undo
         retry that confirms this position clears the taint without
         needing a live primary. [None] = the possibly-durable orphan's
         position is unknown (a primary that went silent mid-append) and
         only a full repair can prove the node clean. *)
  nmutex : Mutex.t;
  mutable nidle : Unix.file_descr list;  (* pooled connections *)
}

type t = {
  cfg : config;
  sock_dir : string;
  store_dir : string;
  nodes : node array;
  rmutex : Mutex.t;  (* serializes writes, promotion, and repair *)
  mutable primary : int;
  mutable epoch : int;
  promotions : int Atomic.t;
  truncated_tails : int Atomic.t;  (* deposed tails cut by repair *)
  quorum_failures : int Atomic.t;
  undo_failures : int Atomic.t;
  repairs : int Atomic.t;
  stop : bool Atomic.t;
  mutable probe_thread : Thread.t option;
}

type error = [ Log.error | `Unavailable of string ]

let error_message = function
  | #Log.error as e -> Log.error_message e
  | `Unavailable m -> Printf.sprintf "store:unavailable: %s" m

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_rlock t f =
  Mutex.lock t.rmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rmutex) f

let pool_take n =
  Mutex.lock n.nmutex;
  let fd = match n.nidle with [] -> None | fd :: rest -> n.nidle <- rest; Some fd in
  Mutex.unlock n.nmutex;
  fd

let pool_put n fd =
  Mutex.lock n.nmutex;
  n.nidle <- fd :: n.nidle;
  Mutex.unlock n.nmutex

let pool_clear n =
  Mutex.lock n.nmutex;
  let fds = n.nidle in
  n.nidle <- [];
  Mutex.unlock n.nmutex;
  List.iter close_quiet fds

let connect n ~timeout_s =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.
   with Unix.Unix_error _ -> ());
  match Unix.connect fd (Unix.ADDR_UNIX n.npath) with
  | () -> fd
  | exception e ->
    close_quiet fd;
    raise e

(* Identical fault enactment to the shard transport (see shard.ml):
   verdicts are drawn per data-plane frame from the node's own sequence
   counter, so one seed replays one schedule. *)
let chaos_send_recv c n fd payload =
  let seq = Atomic.fetch_and_add n.nchaos_seq 1 in
  match Chaos.decide c ~shard:n.nid ~seq with
  | Chaos.Pass ->
    send_frame fd payload;
    recv_frame fd
  | Chaos.Delay d | Chaos.Stall d ->
    Thread.delay d;
    send_frame fd payload;
    recv_frame fd
  | Chaos.Drop -> recv_frame fd
  | Chaos.Truncate ->
    let wire = Frame.encode payload in
    Frame.send_all fd (String.sub wire 0 (String.length wire / 2));
    Frame.perr "chaos: frame truncated in flight"
  | Chaos.Corrupt ->
    let wire = Bytes.of_string (Frame.encode payload) in
    let off =
      Frame.payload_offset
      + Chaos.corrupt_offset c ~shard:n.nid ~seq ~len:(String.length payload)
    in
    Bytes.set wire off (Char.chr (Char.code (Bytes.get wire off) lxor 0xff));
    Frame.send_all fd (Bytes.unsafe_to_string wire);
    recv_frame fd
  | Chaos.Duplicate ->
    send_frame fd payload;
    send_frame fd payload;
    let reply1 = recv_frame fd in
    (* The second copy's fate decides whether a refusal can be
       trusted: a duplicated write that nacked once and applied once
       IS durable, so a nack may only be surfaced when BOTH copies
       nacked — otherwise the coordinator would book a clean refusal
       for an append that survives on disk (and can later be
       canonized by an election its extra bytes helped win). An
       unreadable second reply leaves the outcome unknowable:
       escalate to the transport error so the caller treats the
       write as possibly-durable, never as cleanly refused. *)
    let reply2 = recv_frame fd in
    if Frame.nack_reason reply1 = None then reply1 else reply2

let is_timeout_exn = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) -> true
  | _ -> false

(* One exchange with a node. [data] opts the frame into the chaos
   plane and the partition flag — write, undo and get; status,
   promotion, and repair frames are exempt so supervision stays
   truthful and anti-entropy provably converges once the partition
   heals. *)
type rsp = Reply of string | Nack of string | Down of exn

let raw_call t n payload ~data ~timeout_s =
  (* A partitioned node is unreachable for every frame — data, control
     and repair alike; unlike the chaos plane, a partition models the
     network itself being gone, not a lossy link. *)
  if Atomic.get n.npartitioned then begin
    Thread.delay 0.001;
    raise (Unix.Unix_error (Unix.ETIMEDOUT, "replica partitioned", ""))
  end;
  let exchange fd =
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s with Unix.Unix_error _ -> ());
    let reply =
      match t.cfg.chaos with
      | Some c when data && Chaos.enabled c -> chaos_send_recv c n fd payload
      | _ ->
        send_frame fd payload;
        recv_frame fd
    in
    match Frame.nack_reason reply with
    | Some reason -> raise (Frame.Nacked reason)
    | None -> reply
  in
  let stale_conn = function
    | End_of_file -> true
    | Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ENOTCONN | Unix.EBADF), _, _)
      ->
      true
    | _ -> false
  in
  match pool_take n with
  | Some fd -> (
    match exchange fd with
    | reply ->
      pool_put n fd;
      reply
    | exception e when stale_conn e ->
      close_quiet fd;
      let fd = connect n ~timeout_s in
      (match exchange fd with
      | reply ->
        pool_put n fd;
        reply
      | exception e ->
        close_quiet fd;
        raise e)
    | exception e ->
      close_quiet fd;
      raise e)
  | None -> (
    let fd = connect n ~timeout_s in
    match exchange fd with
    | reply ->
      pool_put n fd;
      reply
    | exception e ->
      close_quiet fd;
      raise e)

let node_call ?(data = false) t n payload =
  match raw_call t n payload ~data ~timeout_s:t.cfg.call_timeout_s with
  | reply ->
    Breaker.record_success n.nbreaker;
    Reply reply
  | exception Frame.Nacked reason ->
    (* The node is alive (it answered); the payload was refused or lost. *)
    Breaker.record_success n.nbreaker;
    Nack reason
  | exception e ->
    Breaker.record_failure n.nbreaker ~timeout:(is_timeout_exn e) ~now:(Clock.now ()) ();
    Down e

let node_status ?(digests = false) t n =
  match node_call t n (Repl_log.encode_status_req ~digests) with
  | Reply p -> ( try Some (Repl_log.decode_status p) with _ -> None)
  | Nack _ | Down _ -> None

(* ------------------------------------------------------------------ *)
(* Anti-entropy repair                                                 *)
(* ------------------------------------------------------------------ *)

let fetch t n ~seg ~from ~upto =
  match node_call t n (Repl_log.encode_fetch ~seg ~from ~upto) with
  | Reply rp -> ( try Some (Repl_log.decode_bytes rp) with _ -> None)
  | Nack _ | Down _ -> None

let prefix_digest t n ~seg ~upto =
  match node_call t n (Repl_log.encode_prefix_digest ~seg ~upto) with
  | Reply rp -> ( try Some (Repl_log.decode_bytes rp) with _ -> None)
  | Nack _ | Down _ -> None

let install t n ~seg ~from data =
  match node_call t n (Repl_log.encode_install ~seg ~from data) with
  | Reply "K" -> true
  | Reply _ | Nack _ | Down _ -> false

(* Bring one replica byte-identical to the primary. Per segment: equal
   extent and digest → untouched; replica shorter with a matching
   prefix digest → stream only the missing suffix; replica longer (or
   divergent) with the primary's image a clean prefix → truncate the
   deposed tail; anything else → replace the segment wholesale.
   Segments the primary no longer has are dropped by the commit.
   Caller holds rmutex. *)
let repair_node t n =
  let p = t.nodes.(t.primary) in
  if n.nid = p.nid then true
  else
    match (node_status ~digests:true t p, node_status ~digests:true t n) with
    | Some pst, Some rst ->
      let rsegs = List.map (fun g -> (g.Repl_log.g_id, g)) rst.Repl_log.st_segs in
      let pids = List.map (fun g -> g.Repl_log.g_id) pst.Repl_log.st_segs in
      let truncating =
        ref (List.exists (fun (id, _) -> not (List.mem id pids)) rsegs)
      in
      let steps =
        List.filter_map
          (fun (pg : Repl_log.seg_info) ->
            match List.assoc_opt pg.Repl_log.g_id rsegs with
            | None -> Some (`Full pg)
            | Some rg
              when rg.Repl_log.g_len = pg.Repl_log.g_len
                   && rg.Repl_log.g_digest = pg.Repl_log.g_digest ->
              None
            | Some rg when rg.Repl_log.g_len < pg.Repl_log.g_len -> (
              match prefix_digest t p ~seg:pg.Repl_log.g_id ~upto:rg.Repl_log.g_len with
              | Some d when d = rg.Repl_log.g_digest ->
                Some (`Suffix (pg, rg.Repl_log.g_len))
              | _ ->
                (* Shorter but with different bytes: a deposed tail the
                   new term has since outgrown. *)
                truncating := true;
                Some (`Full pg))
            | Some _ -> (
              (* Replica at or past the primary's extent with different
                 bytes somewhere: a deposed-primary tail. *)
              truncating := true;
              match prefix_digest t n ~seg:pg.Repl_log.g_id ~upto:pg.Repl_log.g_len with
              | Some d when d = pg.Repl_log.g_digest ->
                Some (`Cut (pg.Repl_log.g_id, pg.Repl_log.g_len))
              | _ -> Some (`Full pg)))
          pst.Repl_log.st_segs
      in
      if steps = [] && not !truncating && rst.Repl_log.st_epoch = pst.Repl_log.st_epoch
      then begin
        n.ntainted <- false;
        n.ntaint_floor <- None;
        true
      end
      else begin
        let ok = ref true in
        List.iter
          (fun step ->
            if !ok then
              match step with
              | `Cut (id, len) -> if not (install t n ~seg:id ~from:len "") then ok := false
              | `Suffix (pg, from) -> (
                match
                  fetch t p ~seg:pg.Repl_log.g_id ~from ~upto:pg.Repl_log.g_len
                with
                | Some data when String.length data = pg.Repl_log.g_len - from ->
                  if not (install t n ~seg:pg.Repl_log.g_id ~from data) then ok := false
                | _ -> ok := false)
              | `Full pg -> (
                match fetch t p ~seg:pg.Repl_log.g_id ~from:0 ~upto:pg.Repl_log.g_len with
                | Some data when String.length data = pg.Repl_log.g_len ->
                  if not (install t n ~seg:pg.Repl_log.g_id ~from:0 data) then ok := false
                | _ -> ok := false))
          steps;
        !ok
        &&
        match node_call t n (Repl_log.encode_commit ~epoch:pst.Repl_log.st_epoch pids) with
        | Reply rp -> (
          match Repl_log.decode_status rp with
          | st
            when st.Repl_log.st_epoch = pst.Repl_log.st_epoch
                 && st.Repl_log.st_pos = pst.Repl_log.st_pos
                 && st.Repl_log.st_total = pst.Repl_log.st_total ->
            if !truncating then Atomic.incr t.truncated_tails;
            n.ntainted <- false;
            n.ntaint_floor <- None;
            Atomic.incr t.repairs;
            true
          | _ -> false
          | exception _ -> false)
        | Nack _ | Down _ -> false
      end
    | _ -> false

let seg_images st =
  List.map
    (fun g -> (g.Repl_log.g_id, g.Repl_log.g_len, g.Repl_log.g_digest))
    st.Repl_log.st_segs

(* Caller holds rmutex. *)
let converged_locked t =
  match node_status ~digests:true t t.nodes.(t.primary) with
  | None -> false
  | Some pst ->
    Array.for_all
      (fun n ->
        n.nid = t.primary
        ||
        match node_status ~digests:true t n with
        | Some rst ->
          rst.Repl_log.st_epoch = pst.Repl_log.st_epoch
          && seg_images rst = seg_images pst
        | None -> false)
      t.nodes

(* ------------------------------------------------------------------ *)
(* Election                                                            *)
(* ------------------------------------------------------------------ *)

(* Promote the most-caught-up reachable, untainted node: max (epoch,
   durable bytes). The winner appends a durable epoch marker on a
   bumped term ('E'); the other candidates are then repaired against
   it, which streams the marker (and anything else they are missing)
   and is the only way a follower adopts the new term — epoch always
   travels with the content that backs it.

   Three disciplines keep elections from losing acked writes. The
   candidate set must be large enough (N - W + 1) that it provably
   intersects every write quorum, so at least one candidate holds
   every acked write. Only the TOP-ranked candidate may win: because
   untainted logs are canonical prefixes and epochs are only adopted
   with content, the max-(epoch, bytes) candidate of any such set
   holds them all — crowning a runner-up after a failed attempt could
   canonize a log that misses an acked write, so a failed attempt
   fails the whole election instead. And every attempt burns its term
   number (the coordinator's epoch high-water mark advances even on
   failure), so a marker whose append landed but whose reply was lost
   can never share a term with a later winner. Caller holds rmutex. *)
let promote t =
  (* Taint recovery that needs no primary: a node tainted by an
     unconfirmed rollback carries the rollback's floor, and everything
     below that floor is quorum-acked content — so retrying the undo
     (now that the partition healed or the stall passed) and finding
     the node at or before the floor proves the orphan gone. Without
     this, two unconfirmed rollbacks can wedge a 3-node cluster for
     good: elections need N - W + 1 untainted candidates, and the only
     other untainting path (anti-entropy repair) needs the very
     primary that can no longer be elected. *)
  Array.iter
    (fun n ->
      match n.ntaint_floor with
      | Some (seg, off)
        when n.ntainted && not (Breaker.blocked n.nbreaker ~now:(Clock.now ())) -> (
        match node_call ~data:true t n (Repl_log.encode_undo ~epoch:t.epoch ~seg ~off) with
        | Reply "K" ->
          n.ntainted <- false;
          n.ntaint_floor <- None
        | Nack reason
          when String.length reason >= 10 && String.sub reason 0 10 = "undo-ahead" ->
          n.ntainted <- false;
          n.ntaint_floor <- None
        | Reply _ | Nack _ | Down _ -> ())
      | _ -> ())
    t.nodes;
  let viable n = Option.map (fun st -> (n, st)) (node_status t n) in
  let rank =
    List.sort (fun (_, a) (_, b) ->
        compare
          (b.Repl_log.st_epoch, b.Repl_log.st_total)
          (a.Repl_log.st_epoch, a.Repl_log.st_total))
  in
  let untainted =
    Array.to_list t.nodes |> List.filter_map (fun n -> if n.ntainted then None else viable n)
  in
  let election_quorum = Array.length t.nodes - t.cfg.write_quorum + 1 in
  let cands =
    if List.length untainted >= election_quorum then rank untainted
    else
      (* Last resort, so a run of bad luck cannot wedge the cluster for
         good: admit floor-LESS tainted nodes — deposed primaries that
         went silent mid-append. Such a node carries at most one orphan
         record at its tip, and that record is ledger-ambiguous (the
         write was refused with rollback unconfirmed), which the
         contract allows to survive. Its rank inflation is harmless:
         within its term every acked write flowed through it, and acks
         from later terms live on nodes whose higher epoch outranks it
         regardless of byte counts. Floor-tainted nodes stay excluded —
         a FOLLOWER's orphan bytes could outrank a genuine acked holder
         in the same term — but those are exactly the nodes the
         floor-retry above recovers as soon as they are reachable. *)
      rank
        (untainted
        @ (Array.to_list t.nodes
          |> List.filter_map (fun n ->
                 if n.ntainted && n.ntaint_floor = None then viable n else None)))
  in
  if List.length cands < election_quorum then false
  else begin
    let epoch =
      1
      + List.fold_left (fun m (_, st) -> max m st.Repl_log.st_epoch) t.epoch cands
    in
    match cands with
    | [] -> false
    | (n, _) :: _ -> (
      match node_call t n (Repl_log.encode_promote ~epoch) with
      | Reply p
        when (try (Repl_log.decode_status p).Repl_log.st_epoch = epoch with _ -> false)
        ->
        t.primary <- n.nid;
        t.epoch <- epoch;
        (* A last-resort winner's possible orphan is now canon (it is
           ledger-ambiguous, so the contract permits it); the primary
           is the source of truth by definition. *)
        n.ntainted <- false;
        n.ntaint_floor <- None;
        Atomic.incr t.promotions;
        List.iter
          (fun (m, _) ->
            if m.nid <> n.nid then
              (* Stream the marker (and whatever else the follower is
                 missing) right away so it can ack the next write. *)
              ignore (repair_node t m))
          cands;
        true
      | _ ->
        (* Burn the attempted term: the marker may have landed with the
           reply lost, and this number must never be reused. *)
        t.epoch <- epoch;
        false)
  end

(* The primary is only trusted while its breaker is closed and its undo
   history is clean; anything else triggers an election first. Caller
   holds rmutex. *)
let ensure_primary t =
  let p = t.nodes.(t.primary) in
  if p.ntainted || Breaker.blocked p.nbreaker ~now:(Clock.now ()) then promote t else true

(* ------------------------------------------------------------------ *)
(* The quorum write path                                               *)
(* ------------------------------------------------------------------ *)

type write_outcome =
  | Acked of { hash : string; applied : bool }
  | Refused of { clean : bool; reason : string }
      (* no quorum; [clean] = the append was confirmed rolled back
         everywhere it landed (nothing of it can ever resurrect) *)

let write_outcome t ~kind ~collection ~doc ~body =
  with_rlock t (fun () ->
      if not (ensure_primary t) then
        Refused { clean = true; reason = "no primary reachable" }
      else begin
        let now () = Clock.now () in
        (* [dirty] = an earlier attempt may have left a durable orphan
           of this append on a (now tainted) deposed primary; any final
           refusal must then report the rollback as unconfirmed, since
           only a later repair — not this call — removes that orphan. *)
        let rec attempt ~retried ~dirty =
          let p = t.nodes.(t.primary) in
          let w =
            {
              Repl_log.w_epoch = t.epoch;
              w_expect = None;
              w_kind = kind;
              w_collection = collection;
              w_doc = doc;
              w_body = body;
            }
          in
          let orphaned reason =
            (* No countable reply from the primary: the append may sit
               durably on it at an unknown position. Taint it out of
               promotion so re-election cannot canonize the orphan;
               repair truncates the tail against the next primary's
               image before clearing the taint. *)
            p.ntainted <- true;
            p.ntaint_floor <- None;
            Atomic.incr t.undo_failures;
            if (not retried) && promote t then attempt ~retried:true ~dirty:true
            else Refused { clean = false; reason }
          in
          match node_call ~data:true t p (Repl_log.encode_write w) with
          | Down _ -> orphaned "primary unreachable"
          | Nack _ when not retried ->
            (* The primary's disk refused the append (nothing durable —
               the store repairs back to the barrier on error): re-elect,
               possibly the same node on a fresh term, and give the
               write one more try. *)
            if promote t then attempt ~retried:true ~dirty
            else Refused { clean = not dirty; reason = "primary unreachable" }
          | Nack reason -> Refused { clean = not dirty; reason }
          | Reply reply -> (
            match Repl_log.decode_write_reply reply with
            | exception _ -> orphaned "primary reply unparseable"
            | r when not r.Repl_log.a_applied ->
              (* A delete of an absent doc: nothing was appended, so
                 there is nothing to replicate and nothing to lose. *)
              Acked { hash = r.Repl_log.a_hash; applied = false }
            | r ->
              let acked = ref [] in
              (* Nodes whose append outcome is unknown: the frame may
                 have applied durably even though no countable reply
                 came back (reply dropped by chaos, timeout mid-
                 exchange, unparseable reply). On quorum failure these
                 must be rolled back too — an orphan record left on one
                 of them inflates its (epoch, total) election rank and
                 can later crown a node that missed acked writes. A
                 clean Nack is the one safe case: the backend answered
                 that nothing was appended. *)
              let ambiguous = ref [] in
              Array.iter
                (fun n ->
                  if
                    n.nid <> t.primary && (not n.ntainted)
                    && (not (Breaker.blocked n.nbreaker ~now:(now ())))
                    && Breaker.try_probe n.nbreaker ~now:(now ())
                  then begin
                    let wr = { w with Repl_log.w_expect = Some r.Repl_log.a_pre } in
                    match node_call ~data:true t n (Repl_log.encode_write wr) with
                    | Reply rp -> (
                      match Repl_log.decode_write_reply rp with
                      | rr when rr.Repl_log.a_applied = r.Repl_log.a_applied ->
                        acked := n :: !acked
                      | _ -> ambiguous := n :: !ambiguous
                      | exception _ -> ambiguous := n :: !ambiguous)
                    | Nack _ -> ()
                    | Down _ -> ambiguous := n :: !ambiguous
                  end)
                t.nodes;
              let acks = 1 + List.length !acked in
              if acks >= t.cfg.write_quorum then
                Acked { hash = r.Repl_log.a_hash; applied = r.Repl_log.a_applied }
              else begin
                (* Short of quorum: the append must not survive. Roll
                   every copy back to its pre-append position; a node
                   whose rollback cannot be confirmed is tainted out of
                   promotion until repair proves it clean again. *)
                Atomic.incr t.quorum_failures;
                let clean = ref true in
                let seg, off = r.Repl_log.a_pre in
                let undo n =
                  match
                    node_call ~data:true t n (Repl_log.encode_undo ~epoch:t.epoch ~seg ~off)
                  with
                  | Reply "K" -> ()
                  | Nack reason
                    when String.length reason >= 10
                         && String.sub reason 0 10 = "undo-ahead" ->
                    (* The node's durable extent ends before the append
                       point: nothing of this write ever landed there —
                       as clean as a successful rollback. *)
                    ()
                  | Reply _ | Nack _ | Down _ ->
                    clean := false;
                    n.ntainted <- true;
                    (* Everything below the rollback target is acked
                       content: remember the lowest such floor so a
                       later retried undo can prove the node clean
                       again even with no primary electable. *)
                    (match n.ntaint_floor with
                    | Some f when f <= (seg, off) -> ()
                    | _ -> n.ntaint_floor <- Some (seg, off));
                    Atomic.incr t.undo_failures
                in
                undo p;
                List.iter undo !acked;
                List.iter undo !ambiguous;
                Refused
                  {
                    clean = !clean && not dirty;
                    reason =
                      Printf.sprintf "write quorum unavailable (%d/%d acks)" acks
                        t.cfg.write_quorum;
                  }
              end)
        in
        attempt ~retried:false ~dirty:false
      end)

let put t ~collection ~doc body =
  match write_outcome t ~kind:`Put ~collection ~doc ~body with
  | Acked { hash; _ } -> Ok hash
  | Refused { reason; _ } -> Error (`Unavailable reason)

let delete t ~collection ~doc =
  match write_outcome t ~kind:`Delete ~collection ~doc ~body:"" with
  | Acked { applied; _ } -> Ok applied
  | Refused { reason; _ } -> Error (`Unavailable reason)

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

(* Primary first — its index saw every acked write — then any reachable
   replica: a read served from a follower during failover may be
   slightly stale, never torn (every record is CRC-verified by the
   backend store before a byte leaves it). *)
let get t ~collection ~doc =
  let primary = t.primary in
  let order =
    t.nodes.(primary)
    :: (Array.to_list t.nodes |> List.filter (fun n -> n.nid <> primary && not n.ntainted))
  in
  let rec go fallback = function
    | [] -> (
      match fallback with
      | Some e -> Error e
      | None -> Error (`Unavailable "no replica reachable"))
    | n :: rest -> (
      match node_call ~data:true t n (Repl_log.encode_get ~collection ~doc) with
      | Reply rp -> (
        match Repl_log.decode_get_reply rp with
        | Some (snapshot, hash) -> Ok (snapshot, hash)
        | None -> Error `Not_found
        | exception _ -> go fallback rest)
      | Nack reason ->
        let e =
          if String.length reason >= 13 && String.sub reason 0 13 = "store:corrupt" then
            `Corrupt reason
          else `Io reason
        in
        (* The primary's verdict on its own bytes is authoritative
           (quarantine visibility); a follower's is a fallback. *)
        if n.nid = primary then Error e else go (Some e) rest
      | Down _ -> go fallback rest)
  in
  go None order

let repair t =
  with_rlock t (fun () ->
      (* A tainted primary (its quorum-failure rollback went
         unconfirmed) must not become the repair image: re-elect an
         untainted node first, so the taint's unacked tail is truncated
         rather than replicated. *)
      ignore (ensure_primary t);
      Array.fold_left
        (fun acc n ->
          if n.nid <> t.primary && repair_node t n then acc + 1 else acc)
        0 t.nodes)

let repair_until_converged t ~max_rounds =
  let rec go r =
    if with_rlock t (fun () -> converged_locked t) then true
    else if r >= max_rounds then false
    else begin
      ignore (repair t);
      go (r + 1)
    end
  in
  go 0

let converged t = with_rlock t (fun () -> converged_locked t)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let spawn_node t n =
  let seed, short, ffail, fignore, crash =
    match t.cfg.io_faults with
    | None -> (-1, 0., 0., 0., 0.)
    | Some (base, s, f, g, c) ->
      (* A different derived seed per incarnation: a node that died to
         an injected crash must not replay the identical fault at the
         identical byte on respawn, forever. *)
      ((base * 1231) + (n.nid * 101) + (n.nrespawns * 7919), s, f, g, c)
  in
  let sp =
    {
      rp_socket = n.npath;
      rp_id = n.nid;
      rp_dir = n.ndir;
      rp_segbytes = t.cfg.max_segment_bytes;
      rp_scrub_s = t.cfg.scrub_interval_s;
      rp_seed = seed;
      rp_short = short;
      rp_ffail = ffail;
      rp_fignore = fignore;
      rp_crash = crash;
    }
  in
  let exe = Sys.executable_name in
  let env =
    let prefix = spec_env ^ "=" in
    let plen = String.length prefix in
    Array.append
      (Array.of_list
         (List.filter
            (fun kv -> not (String.length kv >= plen && String.sub kv 0 plen = prefix))
            (Array.to_list (Unix.environment ()))))
      [| prefix ^ spec_to_string sp |]
  in
  let pid =
    Unix.create_process_env exe [| exe; backend_flag |] env Unix.stdin Unix.stdout
      Unix.stderr
  in
  n.npid <- pid;
  n.nrespawns <- n.nrespawns + 1

let ping t n =
  match node_call t n "P" with Reply "P" -> true | _ -> false

let wait_ready t n ~timeout_s =
  let deadline = Clock.now () +. timeout_s in
  let rec go () =
    if ping t n then true
    else begin
      (* A backend running a live injected-fault plane can crash during
         its own startup (the fresh store's first writes draw from the
         schedule like any other op). Reap the corpse and respawn —
         each incarnation derives a fresh fault schedule, so this
         terminates — rather than pinging a ghost until the deadline. *)
      (match Unix.waitpid [ Unix.WNOHANG ] n.npid with
      | 0, _ -> ()
      | _ ->
        pool_clear n;
        if not (Atomic.get t.stop) then spawn_node t n
      | exception Unix.Unix_error _ -> ());
      if Clock.now () > deadline then false
      else begin
        Thread.delay 0.02;
        go ()
      end
    end
  in
  go ()

let rec probe_loop t =
  if not (Atomic.get t.stop) then begin
    Thread.delay t.cfg.probe_interval_s;
    if not (Atomic.get t.stop) then begin
      Array.iter
        (fun n ->
          match Unix.waitpid [ Unix.WNOHANG ] n.npid with
          | 0, _ -> ()
          | _ ->
            (* The backend died under us (crash, OOM, kill -9): open
               the breaker outright, drop its pooled conns, respawn.
               If it was the primary, the next write (or the repair
               below) elects a successor. *)
            Breaker.force_open n.nbreaker ~now:(Clock.now ());
            pool_clear n;
            if not (Atomic.get t.stop) then spawn_node t n
          | exception Unix.Unix_error _ -> ())
        t.nodes;
      with_rlock t (fun () ->
          ignore (ensure_primary t);
          (* Background anti-entropy: a no-op two-status exchange per
             in-sync replica, real streaming only when one lags. *)
          Array.iter
            (fun n -> if n.nid <> t.primary then ignore (repair_node t n))
            t.nodes);
      probe_loop t
    end
  end

let create ?(config = default_config) ~dir () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cfg =
    {
      config with
      replicas = max 1 config.replicas;
      write_quorum = max 1 (min config.write_quorum (max 1 config.replicas));
    }
  in
  let sock_dir =
    match cfg.socket_dir with
    | Some d ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o700;
      d
    | None ->
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "awb-repl-%d" (Unix.getpid ()))
      in
      if not (Sys.file_exists d) then Unix.mkdir d 0o700;
      d
  in
  let nodes =
    Array.init cfg.replicas (fun i ->
        {
          nid = i;
          ndir = Filename.concat dir (Printf.sprintf "replica-%d" i);
          npath = Filename.concat sock_dir (Printf.sprintf "replica-%d.sock" i);
          npid = -1;
          nrespawns = 0;
          nbreaker = Breaker.create ~config:cfg.breaker ();
          nchaos_seq = Atomic.make 0;
          npartitioned = Atomic.make false;
          ntainted = false;
          ntaint_floor = None;
          nmutex = Mutex.create ();
          nidle = [];
        })
  in
  let t =
    {
      cfg;
      sock_dir;
      store_dir = dir;
      nodes;
      rmutex = Mutex.create ();
      primary = 0;
      epoch = 0;
      promotions = Atomic.make 0;
      truncated_tails = Atomic.make 0;
      quorum_failures = Atomic.make 0;
      undo_failures = Atomic.make 0;
      repairs = Atomic.make 0;
      stop = Atomic.make false;
      probe_thread = None;
    }
  in
  Array.iter (fun n -> spawn_node t n) nodes;
  Array.iter
    (fun n ->
      if not (wait_ready t n ~timeout_s:15.) then begin
        (* Don't leak the siblings that did come up. *)
        Array.iter
          (fun m ->
            if m.npid > 0 then begin
              (try Unix.kill m.npid Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] m.npid) with Unix.Unix_error _ -> ())
            end)
          nodes;
        failwith (Printf.sprintf "replica %d did not come up" n.nid)
      end)
    nodes;
  (* First election: the nodes may be rejoining existing (possibly
     divergent) directories — pick the most caught-up, then repair the
     rest against it before taking traffic. Only the top-ranked
     candidate may win, and a backend running a live fault plane can
     crash during its marker append — respawn the fallen and retry on
     a fresh term rather than giving up. The promotion counter is not
     charged for the bootstrap election. *)
  with_rlock t (fun () ->
      let reap_and_respawn () =
        Array.iter
          (fun n ->
            let dead =
              match Unix.waitpid [ Unix.WNOHANG ] n.npid with
              | 0, _ -> false
              | _ -> true
              | exception Unix.Unix_error _ -> false
            in
            if dead then begin
              pool_clear n;
              n.ntainted <- false;
              n.ntaint_floor <- None;
              spawn_node t n;
              ignore (wait_ready t n ~timeout_s:15.)
            end)
          nodes
      in
      let rec elect attempts =
        promote t
        ||
        if attempts = 0 then false
        else begin
          reap_and_respawn ();
          elect (attempts - 1)
        end
      in
      if not (elect 10) then failwith "replica cluster failed its first election";
      Array.iter (fun n -> if n.nid <> t.primary then ignore (repair_node t n)) nodes);
  Atomic.set t.promotions 0;
  if cfg.probe_interval_s > 0. then
    t.probe_thread <- Some (Thread.create (fun () -> probe_loop t) ());
  t

let wait_exit ?(timeout_s = 10.) pid =
  let deadline = Clock.now () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Clock.now () > deadline then false
      else begin
        Thread.delay 0.01;
        go ()
      end
    | _ -> true
    | exception Unix.Unix_error _ -> true
  in
  go ()

let kill_quiet pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let drain_node n =
  (match connect n ~timeout_s:2. with
  | fd ->
    (try
       send_frame fd "D";
       ignore (recv_frame fd)
     with _ -> ());
    close_quiet fd
  | exception _ -> ());
  pool_clear n;
  if not (wait_exit ~timeout_s:10. n.npid) then begin
    kill_quiet n.npid Sys.sigterm;
    if not (wait_exit ~timeout_s:2. n.npid) then begin
      kill_quiet n.npid Sys.sigkill;
      ignore (wait_exit ~timeout_s:2. n.npid)
    end
  end

let shutdown t =
  if Atomic.compare_and_set t.stop false true then begin
    (match t.probe_thread with Some th -> Thread.join th | None -> ());
    t.probe_thread <- None;
    Array.iter
      (fun n ->
        drain_node n;
        try Unix.unlink n.npath with Unix.Unix_error _ | Sys_error _ -> ())
      t.nodes;
    try Unix.rmdir t.sock_dir with Unix.Unix_error _ | Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Introspection and the oracle's disruption hooks                     *)
(* ------------------------------------------------------------------ *)

let primary t = t.primary
let epoch t = t.epoch
let replica_count t = Array.length t.nodes
let promotions t = Atomic.get t.promotions
let truncated_tails t = Atomic.get t.truncated_tails
let quorum_failures t = Atomic.get t.quorum_failures
let undo_failures t = Atomic.get t.undo_failures
let repairs t = Atomic.get t.repairs
let node_pid t i = t.nodes.(i).npid
let node_dir t i = t.nodes.(i).ndir
let node_socket t i = t.nodes.(i).npath
let tainted t i = t.nodes.(i).ntainted

let kill_node t i =
  let n = t.nodes.(i) in
  kill_quiet n.npid Sys.sigkill;
  ignore (wait_exit ~timeout_s:5. n.npid);
  pool_clear n;
  Breaker.force_open n.nbreaker ~now:(Clock.now ())

let respawn_node t i =
  let n = t.nodes.(i) in
  pool_clear n;
  spawn_node t n;
  wait_ready t n ~timeout_s:15.

(* With the probe thread disabled (the oracle's deterministic mode)
   nobody reaps a backend felled by its own injected disk crash; this
   is the oracle's substitute, with the probe loop's bookkeeping. *)
let alive t i =
  let n = t.nodes.(i) in
  let rec probe () =
    match Unix.waitpid [ Unix.WNOHANG ] n.npid with
    | 0, _ -> true
    | _ ->
      pool_clear n;
      Breaker.force_open n.nbreaker ~now:(Clock.now ());
      n.npid <- -1;
      false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> probe ()
    | exception Unix.Unix_error _ ->
      (* ECHILD: already reaped (e.g. by [kill_node]). *)
      pool_clear n;
      n.npid <- -1;
      false
  in
  n.npid > 0 && probe ()

let set_partition t i flag = Atomic.set t.nodes.(i).npartitioned flag

let statuses t =
  Array.map (fun n -> node_status ~digests:true t n) t.nodes

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* Inject a {replica="i"} label into each unlabeled sample line of a
   backend's exposition, keeping HELP/TYPE metadata for dedup above. *)
let relabel ~replica text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         if line = "" || line.[0] = '#' then line
         else
           match String.index_opt line ' ' with
           | Some i ->
             Printf.sprintf "%s{replica=\"%d\"}%s" (String.sub line 0 i) replica
               (String.sub line i (String.length line - i))
           | None -> line)
  |> String.concat "\n"

let dedup_metadata text =
  let seen = Hashtbl.create 64 in
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         if String.length line > 0 && line.[0] = '#' then
           if Hashtbl.mem seen line then false
           else begin
             Hashtbl.add seen line ();
             true
           end
         else true)
  |> String.concat "\n"

let metrics t =
  let b = Buffer.create 4096 in
  let parts =
    Array.to_list t.nodes
    |> List.filter_map (fun n ->
           match node_call t n "M" with
           | Reply reply when String.length reply > 0 && reply.[0] = 'M' ->
             Some (relabel ~replica:n.nid (String.sub reply 1 (String.length reply - 1)))
           | _ -> None)
  in
  Buffer.add_string b (dedup_metadata (String.concat "" parts));
  let sts = Array.map (fun n -> node_status t n) t.nodes in
  let ptotal =
    match sts.(t.primary) with Some st -> st.Repl_log.st_total | None -> 0
  in
  let gauge_series name help f =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n" name help name);
    Array.iteri
      (fun i n ->
        Buffer.add_string b
          (Printf.sprintf "%s{replica=\"%d\"} %d\n" name n.nid (f i n)))
      t.nodes
  in
  gauge_series "lopsided_store_replica_role" "1 on the current primary, 0 on followers."
    (fun i _ -> if i = t.primary then 1 else 0);
  gauge_series "lopsided_store_replica_lag_bytes"
    "Durable log bytes this replica trails the primary by." (fun i _ ->
      match sts.(i) with
      | Some st -> max 0 (ptotal - st.Repl_log.st_total)
      | None -> ptotal);
  gauge_series "lopsided_store_replica_breaker_state"
    "Replica circuit breaker: 0 closed, 1 open, 2 half-open." (fun _ n ->
      Breaker.state_code n.nbreaker);
  gauge_series "lopsided_store_replica_tainted"
    "1 while an unconfirmed undo keeps the replica out of promotion." (fun _ n ->
      if n.ntainted then 1 else 0);
  let gauge name help v =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n%s %d\n" name help name name v)
  in
  let counter name help v =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n%s %d\n" name help name name v)
  in
  gauge "lopsided_store_repl_epoch" "Current replication term." t.epoch;
  gauge "lopsided_store_repl_write_quorum" "Fsync'd copies required before a write is acked."
    t.cfg.write_quorum;
  counter "lopsided_store_repl_promotions_total"
    "Primary failovers: a follower promoted onto a bumped epoch." (promotions t);
  counter "lopsided_store_repl_truncated_tails_total"
    "Deposed-primary tails truncated by anti-entropy repair." (truncated_tails t);
  counter "lopsided_store_repl_quorum_failures_total"
    "Writes refused because fewer than W replicas acknowledged." (quorum_failures t);
  counter "lopsided_store_repl_undo_failures_total"
    "Unconfirmed rollbacks of quorum-failed writes (replica tainted)." (undo_failures t);
  counter "lopsided_store_repl_repairs_total"
    "Replicas brought byte-identical to the primary by anti-entropy." (repairs t);
  Buffer.contents b
