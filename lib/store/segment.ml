(* Segment files: the append-only record log under the store.

   One segment = an 8-byte magic header followed by length-prefixed,
   CRC32-checksummed records in the Frame wire discipline (see
   lib/server/frame.ml — the codec is duplicated here rather than
   inverting the dependency, since the server depends on the store for
   its /collections routes):

     record  = u32 length, u8 version, payload, u32 crc32(payload)
     payload = u8 kind ('P' put | 'D' delete | 'E' epoch marker),
               u32 epoch, lp collection, lp doc,
               lp content-md5-hex, lp snapshot

   Version 2 stamps every record with the replication epoch (the term
   of the primary that wrote it); version 1 records — written before
   replication existed — decode with epoch 0. Epoch markers ('E') are
   appended at promotion: they carry no document, only the new epoch,
   making a failover durable and giving the new primary's log a record
   the deposed primary's divergent tail can never match.

   where [length] counts everything after itself. The scanner never
   trusts a byte it has not checksummed, and classifies damage by
   position: a bad record whose extent reaches end-of-file is a torn
   tail (the crash left a partial append — truncate and carry on), a
   bad record with live data after it is mid-log damage (bit rot — the
   segment is quarantined, never silently skipped). *)

(* ------------------------------------------------------------------ *)
(* Codec (the Frame primitives)                                        *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let add_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let add_u16 b n =
  add_u8 b (n lsr 8);
  add_u8 b n

let add_u32 b n =
  add_u16 b (n lsr 16);
  add_u16 b n

let add_lp b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let get_u8 s pos =
  if !pos >= String.length s then corrupt "truncated record";
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_u16 s pos =
  let hi = get_u8 s pos in
  (hi lsl 8) lor get_u8 s pos

let get_u32 s pos =
  let hi = get_u16 s pos in
  (hi lsl 16) lor get_u16 s pos

let get_lp s pos =
  let n = get_u32 s pos in
  if !pos + n > String.length s then corrupt "truncated string field";
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

let magic = "AWBSEG1\n"
let header_len = String.length magic
let version = 2
let min_version = 1
let max_record_bytes = 64 * 1024 * 1024

type record = {
  kind : [ `Put | `Delete | `Epoch ];
  epoch : int;  (* replication term stamped at append; 0 in v1 records *)
  collection : string;
  doc : string;
  hash : string;  (* MD5 hex of [snapshot] at ingest *)
  snapshot : string;  (* serialized document; empty for [`Delete] *)
}

let epoch_marker epoch =
  { kind = `Epoch; epoch; collection = ""; doc = ""; hash = ""; snapshot = "" }

let encode r =
  let p = Buffer.create (String.length r.snapshot + 64) in
  add_u8 p (Char.code (match r.kind with `Put -> 'P' | `Delete -> 'D' | `Epoch -> 'E'));
  add_u32 p r.epoch;
  add_lp p r.collection;
  add_lp p r.doc;
  add_lp p r.hash;
  add_lp p r.snapshot;
  let payload = Buffer.contents p in
  let b = Buffer.create (String.length payload + 9) in
  add_u32 b (String.length payload + 5);
  add_u8 b version;
  Buffer.add_string b payload;
  add_u32 b (crc32 payload);
  Buffer.contents b

let decode_payload ~ver payload =
  let pos = ref 0 in
  let kind =
    match Char.chr (get_u8 payload pos) with
    | 'P' -> `Put
    | 'D' -> `Delete
    | 'E' when ver >= 2 -> `Epoch
    | k -> corrupt "unknown record kind %C" k
  in
  let epoch = if ver >= 2 then get_u32 payload pos else 0 in
  let collection = get_lp payload pos in
  let doc = get_lp payload pos in
  let hash = get_lp payload pos in
  let snapshot = get_lp payload pos in
  if !pos <> String.length payload then corrupt "trailing bytes in record payload";
  { kind; epoch; collection; doc; hash; snapshot }

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Rec of record * int  (* record, end offset *)
  | End  (* clean end of segment at this offset *)
  | Torn of string  (* damage reaches EOF: truncate here and carry on *)
  | Damaged of string  (* damage with live data after it: quarantine *)

let scan_one data pos =
  let total = String.length data in
  if pos = total then End
  else if pos + 4 > total then Torn "truncated record length"
  else begin
    let rlen = get_u32 data (ref pos) in
    let rend = pos + 4 + rlen in
    (* A verdict for a record that failed validation: damage that runs
       to EOF is a torn append, anything earlier is mid-log. *)
    let bad reason = if rend >= total then Torn reason else Damaged reason in
    if rend > total then Torn (Printf.sprintf "record runs %d bytes past EOF" (rend - total))
    else if rlen < 5 || rlen > max_record_bytes then
      bad (Printf.sprintf "absurd record length %d" rlen)
    else begin
      let ver = Char.code data.[pos + 4] in
      let payload = String.sub data (pos + 5) (rlen - 5) in
      let crc = get_u32 data (ref (rend - 4)) in
      if ver < min_version || ver > version then
        bad (Printf.sprintf "unsupported record version %d" ver)
      else if crc <> crc32 payload then bad "record crc mismatch"
      else
        match decode_payload ~ver payload with
        | r -> Rec (r, rend)
        | exception Corrupt m -> bad m
    end
  end

type outcome =
  | Clean
  | Torn_tail of int * string  (* keep length, reason *)
  | Mid_log_damage of int * string  (* damage offset, reason *)

(* Walk the records in [data] starting at [from]; returns each valid
   record with its (offset, framed length) and how the walk ended. *)
let scan_tail data ~from =
  let recs = ref [] in
  let rec go pos =
    match scan_one data pos with
    | End -> Clean
    | Rec (r, next) ->
      recs := (r, pos, next - pos) :: !recs;
      go next
    | Torn reason -> Torn_tail (pos, reason)
    | Damaged reason -> Mid_log_damage (pos, reason)
  in
  let outcome = go from in
  (List.rev !recs, outcome)

(* Header triage: a short file that is a prefix of the magic is a torn
   header (the segment's birth was cut short — harmless), anything else
   that fails the magic check is damage. *)
let check_header data =
  let n = String.length data in
  if n >= header_len && String.sub data 0 header_len = magic then `Ok
  else if n < header_len && data = String.sub magic 0 n then `Torn_header
  else `Bad_header

let seg_name id = Printf.sprintf "seg-%06d.log" id

let seg_id name =
  match String.length name = 14 && String.sub name 0 4 = "seg-" && Filename.check_suffix name ".log" with
  | true -> int_of_string_opt (String.sub name 4 6)
  | false -> None
