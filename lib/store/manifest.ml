(* The manifest: one CRC-guarded binary snapshot of the store's shape —
   live segments with their checkpointed durable lengths, quarantined
   segments, and the doc -> (segment, offset) table as of the last
   checkpoint.

   Swap is atomic and durable: serialize to MANIFEST.tmp (through the
   faultable file, so the I/O fault plane reaches this path too), fsync
   the temp, rename over MANIFEST, fsync the directory. A crash at any
   point leaves either the old manifest or the new one, never a blend;
   a torn temp is ignored on load. Recovery treats the manifest as a
   checkpoint, not an authority: segments are replayed from their
   checkpointed lengths, so a stale manifest only costs replay work. *)

let magic = "AWBMAN2\n"
let file_name = "MANIFEST"
let tmp_name = "MANIFEST.tmp"

type loc = {
  l_collection : string;
  l_doc : string;
  l_hash : string;
  l_seg : int;
  l_off : int;
  l_len : int;  (* framed record length *)
}

type t = {
  next_seg : int;
  active : int;  (* -1 = none *)
  epoch : int;  (* replication term at checkpoint time; 0 = never replicated *)
  segs : (int * int) list;  (* id, checkpointed durable length; ascending *)
  quarantined : (int * string) list;  (* id, reason *)
  docs : loc list;
}

let empty =
  { next_seg = 0; active = -1; epoch = 0; segs = []; quarantined = []; docs = [] }

let encode m =
  let p = Buffer.create 4096 in
  Segment.add_u32 p m.next_seg;
  Segment.add_u32 p (m.active + 1);
  (* The epoch must ride in the checkpoint: replay starts at the
     checkpointed lengths, so an epoch marker below them is never seen
     again — without this field a crashed replica would reopen at term
     0 and look electable over nodes that outrank it. *)
  Segment.add_u32 p m.epoch;
  Segment.add_u32 p (List.length m.segs);
  List.iter
    (fun (id, len) ->
      Segment.add_u32 p id;
      Segment.add_u32 p len)
    m.segs;
  Segment.add_u32 p (List.length m.quarantined);
  List.iter
    (fun (id, reason) ->
      Segment.add_u32 p id;
      Segment.add_lp p reason)
    m.quarantined;
  Segment.add_u32 p (List.length m.docs);
  List.iter
    (fun l ->
      Segment.add_lp p l.l_collection;
      Segment.add_lp p l.l_doc;
      Segment.add_lp p l.l_hash;
      Segment.add_u32 p l.l_seg;
      Segment.add_u32 p l.l_off;
      Segment.add_u32 p l.l_len)
    m.docs;
  let payload = Buffer.contents p in
  let b = Buffer.create (String.length payload + 20) in
  Buffer.add_string b magic;
  Segment.add_u32 b (String.length payload);
  Buffer.add_string b payload;
  Segment.add_u32 b (Segment.crc32 payload);
  Buffer.contents b

let decode data =
  let mlen = String.length magic in
  if String.length data < mlen + 8 then raise (Segment.Corrupt "manifest truncated");
  if String.sub data 0 mlen <> magic then raise (Segment.Corrupt "bad manifest magic");
  let pos = ref mlen in
  let plen = Segment.get_u32 data pos in
  if !pos + plen + 4 > String.length data then
    raise (Segment.Corrupt "manifest payload truncated");
  let payload = String.sub data !pos plen in
  let crc = Segment.get_u32 data (ref (!pos + plen)) in
  if crc <> Segment.crc32 payload then raise (Segment.Corrupt "manifest crc mismatch");
  let pos = ref 0 in
  let next_seg = Segment.get_u32 payload pos in
  let active = Segment.get_u32 payload pos - 1 in
  let epoch = Segment.get_u32 payload pos in
  let nsegs = Segment.get_u32 payload pos in
  let segs =
    List.init nsegs (fun _ ->
        let id = Segment.get_u32 payload pos in
        let len = Segment.get_u32 payload pos in
        (id, len))
  in
  let nq = Segment.get_u32 payload pos in
  let quarantined =
    List.init nq (fun _ ->
        let id = Segment.get_u32 payload pos in
        let reason = Segment.get_lp payload pos in
        (id, reason))
  in
  let ndocs = Segment.get_u32 payload pos in
  let docs =
    List.init ndocs (fun _ ->
        let l_collection = Segment.get_lp payload pos in
        let l_doc = Segment.get_lp payload pos in
        let l_hash = Segment.get_lp payload pos in
        let l_seg = Segment.get_u32 payload pos in
        let l_off = Segment.get_u32 payload pos in
        let l_len = Segment.get_u32 payload pos in
        { l_collection; l_doc; l_hash; l_seg; l_off; l_len })
  in
  { next_seg; active; epoch; segs; quarantined; docs }

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Write temp + fsync + rename + fsync dir. Raises Io_fault.Fault (or a
   Unix error) with the old manifest still installed; may also _exit at
   an injected kill point — both leave a recoverable store. *)
let save ?plane ~dir m =
  let tmp = Filename.concat dir tmp_name in
  (try Unix.unlink tmp with Unix.Unix_error _ -> ());
  let f = Io_fault.openf ?plane tmp in
  (try
     Io_fault.append f (encode m);
     Io_fault.fsync f
   with e ->
     Io_fault.close f;
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e);
  Io_fault.close f;
  Unix.rename tmp (Filename.concat dir file_name);
  fsync_dir dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir =
  let path = Filename.concat dir file_name in
  if not (Sys.file_exists path) then `Missing
  else
    match decode (read_file path) with
    | m -> `Manifest m
    | exception Segment.Corrupt reason -> `Damaged reason
    | exception Sys_error reason -> `Damaged reason
