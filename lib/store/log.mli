(** The crash-safe collection store: named collections of documents on
    a segmented append-only log, with fsync barriers (a put is
    acknowledged only once durable), CRC-verified reads, torn-tail
    truncation and mid-log quarantine at recovery, and an atomically
    swapped manifest checkpoint. *)

type error = [ `Corrupt of string | `Io of string | `Not_found ]

val error_message : error -> string
(** [store:corrupt: ...], [store:io: ...], [store:not-found]. *)

type t

type counts = {
  n_ingests : int;
  n_deletes : int;
  n_reads : int;
  n_fsyncs : int;
  n_recovered_records : int;
  n_truncated_tails : int;
  n_quarantined_segments : int;
  n_read_crc_failures : int;
  n_io_errors : int;
  n_appended_bytes : int;
  n_scrub_runs : int;
  n_scrub_damaged : int;
}

val open_store : ?plane:Io_fault.t -> ?max_segment_bytes:int -> string -> t
(** Open (creating the directory if needed) and recover: load the
    manifest checkpoint, replay every segment's suffix, truncate torn
    tails, quarantine mid-log damage. [max_segment_bytes] (default
    8 MiB) bounds a segment before rotation. [plane] routes every
    write/fsync through the I/O fault injector — never set it in
    production. *)

val put : t -> collection:string -> doc:string -> string -> (string, error) result
(** Append + fsync + index. Returns the content hash; when it returns
    [Ok] the document is durable. On [Error] the segment has been
    repaired back to the last barrier — nothing partial survives. *)

val get : t -> collection:string -> doc:string -> (string * string, error) result
(** [(snapshot, hash)]. Re-reads and CRC-verifies the record; a
    mismatch quarantines the segment and answers [`Corrupt]. *)

val delete : t -> collection:string -> doc:string -> (bool, error) result
(** Durable tombstone; [Ok false] if the document was absent. *)

val mem : t -> collection:string -> doc:string -> bool
val list_docs : t -> collection:string -> (string * string) list
(** [(doc, hash)] sorted. *)

val collections : t -> string list
val doc_count : t -> int
val segment_count : t -> int
val quarantined : t -> (int * string) list
val dir : t -> string

(** {1 Replication hooks} *)

val epoch : t -> int
(** The replication term stamped into appended records. Recovered as
    the maximum epoch among replayed records (0 for a store that has
    never been replicated). *)

val set_epoch : t -> int -> unit
(** Adopt a newer term; monotonic — lower values are ignored. *)

val position : t -> int * int
(** [(active segment id, logical offset)] the next append lands at.
    Replicas in sync with the primary agree on this pair before every
    replicated append. *)

val total_bytes : t -> int
(** Durable log bytes across live segments — the replication lag unit. *)

val live_segments : t -> (int * int) list
(** [(id, durable length)] per live segment, for anti-entropy digest
    comparison. *)

val append_epoch_marker : t -> epoch:int -> (unit, error) result
(** Adopt [epoch] and append the durable promotion record. *)

val scrub_pass : t -> int
(** One online scrub pass: re-verify every record checksum in the
    durable prefix of each live segment, quarantining damage found (a
    damaged active segment is also sealed). Returns the number of
    segments newly quarantined. *)

val checkpoint : t -> (unit, error) result
(** Fsync the active segment and atomically swap a fresh manifest. *)

val close : t -> unit
(** Checkpoint (best-effort) and release. *)

val counts : t -> counts
val to_prometheus : t -> string
(** The [lopsided_store_*] counter/gauge block. *)
