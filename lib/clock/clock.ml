external monotonic_ns : unit -> int64 = "lopsided_clock_monotonic_ns"

let now_ns () = Int64.to_int (monotonic_ns ())
let now () = Int64.to_float (monotonic_ns ()) *. 1e-9
let ns_of_s s = int_of_float (s *. 1e9)
let s_of_ns ns = float_of_int ns *. 1e-9
