#include <time.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>

/* Monotonic wall-clock in nanoseconds. CLOCK_MONOTONIC is immune to NTP
   steps and settimeofday, which is exactly what deadline math needs. */
CAMLprim value lopsided_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    caml_failwith("clock_gettime(CLOCK_MONOTONIC) failed");
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
