(** Monotonic time for deadline and latency math.

    [Unix.gettimeofday] is wall-clock time: an NTP step or a manual clock
    change moves it, silently stretching or collapsing every in-flight
    deadline. Everything in this repo that measures durations or enforces
    deadlines goes through this module instead, which reads
    [CLOCK_MONOTONIC]. The absolute value is meaningless (origin is
    unspecified, typically boot); only differences are. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds. On 64-bit platforms an [int]
    holds ~292 years of nanoseconds, so overflow is not a practical
    concern. *)

val now : unit -> float
(** Current monotonic time in seconds (same clock as {!now_ns}). *)

val ns_of_s : float -> int
(** Convert a duration in seconds to nanoseconds. *)

val s_of_ns : int -> float
(** Convert a duration in nanoseconds to seconds. *)
