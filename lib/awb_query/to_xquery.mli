(** The calculus compiled to XQuery — the paper's original implementation
    strategy: the query language interpreted by XQuery over AWB's XML
    export.

    [compile] produces a complete XQuery program expecting the exported
    model's root element in the external variable [$model]; [eval] runs it
    through the engine and maps the resulting [node] elements back to model
    nodes. The generated query leans on the engine's general [=] for set
    membership (["@type = ("User", "Admin")"]) — one of the few places the
    paper found that operator genuinely handy. *)

val compile : Awb.Metamodel.t -> Ast.t -> string

val eval_on_export :
  ?focus:Awb.Model.node ->
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  Awb.Model.t ->
  export_root:Xml_base.Node.t ->
  Ast.t ->
  Awb.Model.node list
(** Evaluate against a previously exported model (the [awb-model]
    element), avoiding re-export cost; results are mapped back to the
    model's nodes by id. [limits] attaches resource budgets to the
    underlying XQuery run ({!Xquery.Errors.Resource_exhausted} on a
    trip); [fast_eval] pins or enables the engine fast paths. *)

val eval :
  ?focus:Awb.Model.node ->
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  Awb.Model.t ->
  Ast.t ->
  Awb.Model.node list
(** Exports the model, then {!eval_on_export}. *)

val eval_string :
  ?focus:Awb.Model.node -> Awb.Model.t -> string -> Awb.Model.node list
