module M = Awb.Model
module MM = Awb.Metamodel

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* All declared concrete subtypes of [ty] (the calculus is subtype-aware;
   the XML export is not, so the compiler expands the hierarchy into an
   explicit name list and leans on existential "=" for membership). *)
let concrete_subtypes mm ty =
  let declared = MM.node_type_names mm in
  let subs = List.filter (fun t -> MM.is_subtype mm t ty) declared in
  if List.mem ty subs then subs else ty :: subs

let concrete_subrelations mm rel =
  let declared = MM.relation_type_names mm in
  let subs = List.filter (fun r -> MM.is_subrelation mm r rel) declared in
  if List.mem rel subs then subs else rel :: subs

let name_list names = "(" ^ String.concat ", " (List.map quote names) ^ ")"

let prop_path pname = Printf.sprintf "property[@name = %s]" (quote pname)

let literal_for lit =
  match int_of_string_opt (String.trim lit) with
  | Some n -> string_of_int n
  | None -> quote lit

let step_binding mm prev var = function
  | Ast.Follow { rel; dir; to_type } ->
    let rels = name_list (concrete_subrelations mm rel) in
    let from_attr, to_attr =
      match dir with Ast.Forward -> ("source", "target") | Ast.Backward -> ("target", "source")
    in
    let target_filter =
      match to_type with
      | None -> ""
      | Some ty -> Printf.sprintf "[@type = %s]" (name_list (concrete_subtypes mm ty))
    in
    Printf.sprintf
      "let %s := for $n in %s\n\
      \           for $r in $model/relation[@type = %s][@%s = $n/@id]\n\
      \           return $model/node[@id = $r/@%s]%s"
      var prev rels from_attr to_attr target_filter
  | Ast.Filter_type ty ->
    Printf.sprintf "let %s := for $n in %s where $n/@type = %s return $n" var prev
      (name_list (concrete_subtypes mm ty))
  | Ast.Filter_prop { pname; op; literal } ->
    let cond =
      match op with
      | Ast.P_eq -> Printf.sprintf "$n/%s = %s" (prop_path pname) (literal_for literal)
      | Ast.P_ne -> Printf.sprintf "$n/%s != %s" (prop_path pname) (literal_for literal)
      | Ast.P_lt -> Printf.sprintf "$n/%s < %s" (prop_path pname) (literal_for literal)
      | Ast.P_gt -> Printf.sprintf "$n/%s > %s" (prop_path pname) (literal_for literal)
      | Ast.P_contains ->
        Printf.sprintf "some $p in $n/%s satisfies contains(string($p), %s)"
          (prop_path pname) (quote literal)
    in
    Printf.sprintf "let %s := for $n in %s where %s return $n" var prev cond
  | Ast.Filter_has_prop p ->
    Printf.sprintf "let %s := for $n in %s where exists($n/%s) return $n" var prev
      (prop_path p)
  | Ast.Filter_not_has_prop p ->
    Printf.sprintf "let %s := for $n in %s where empty($n/%s) return $n" var prev
      (prop_path p)
  | Ast.Distinct ->
    Printf.sprintf
      "let %s := for $id in distinct-values(for $n in %s return string($n/@id))\n\
      \           return $model/node[@id = $id]"
      var prev
  | Ast.Sort_by_label ->
    Printf.sprintf
      "let %s := for $n in %s order by string(($n/%s, $n/@id)[1]) return $n" var prev
      (prop_path "name")
  | Ast.Sort_by_prop { pname; descending } ->
    (* Two keys: numeric when the values are numbers (NaN ties for pure
       strings), string as tie-break — matching the native evaluator's
       numeric-aware comparison on homogeneous data. *)
    let dir = if descending then "descending" else "ascending" in
    Printf.sprintf
      "let %s := for $n in %s order by number($n/%s[1]) %s, string($n/%s[1]) %s return $n"
      var prev (prop_path pname) dir (prop_path pname) dir
  | Ast.Limit n -> Printf.sprintf "let %s := subsequence(%s, 1, %d)" var prev n

let compile mm (q : Ast.t) =
  let start =
    match q.Ast.start with
    | Ast.All -> "let $s0 := $model/node"
    | Ast.Of_type ty ->
      Printf.sprintf "let $s0 := $model/node[@type = %s]"
        (name_list (concrete_subtypes mm ty))
    | Ast.Node_id id -> Printf.sprintf "let $s0 := $model/node[@id = %s]" (quote id)
    | Ast.Focus -> "let $s0 := $focus"
  in
  let bindings, last =
    List.fold_left
      (fun (acc, i) step ->
        let var = Printf.sprintf "$s%d" (i + 1) in
        (step_binding mm (Printf.sprintf "$s%d" i) var step :: acc, i + 1))
      ([ start ], 0) q.Ast.steps
  in
  String.concat "\n" (List.rev bindings) ^ Printf.sprintf "\nreturn $s%d" last

let eval_on_export ?focus ?limits ?fast_eval model ~export_root q =
  let src = compile (M.metamodel model) q in
  let focus_seq =
    match focus with
    | None -> []
    | Some (n : M.node) ->
      (* Locate the focus node's element in the export by id. *)
      Xml_base.Node.find_all
        (fun e ->
          Xml_base.Node.is_element e
          && Xml_base.Node.name e = "node"
          && Xml_base.Node.attr e "id" = Some n.M.id)
        export_root
      |> Xquery.Value.of_nodes
  in
  let result =
    Xquery.Engine.eval_query ?limits ?fast_eval
      ~vars:[ ("model", Xquery.Value.of_node export_root); ("focus", focus_seq) ]
      src
  in
  List.filter_map
    (function
      | Xquery.Value.Node n when Xml_base.Node.is_element n ->
        (match Xml_base.Node.attr n "id" with
        | Some id -> M.find_node model id
        | None -> None)
      | _ -> None)
    result

let export_root model =
  let doc = Awb.Xml_io.export model in
  List.hd (Xml_base.Node.children doc)

let eval ?focus ?limits ?fast_eval model q =
  eval_on_export ?focus ?limits ?fast_eval model ~export_root:(export_root model) q

let eval_string ?focus model text = eval ?focus model (Parser.parse text)
