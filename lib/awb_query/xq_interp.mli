(** The third implementation of the query calculus — the paper's actual
    first one: an interpreter for the calculus written IN XQuery
    ("essentially writing an interpreter in XQuery, which is not a hard
    exercise"). Slow on purpose; benchmark E1 quantifies it. *)

val query_to_xml : Ast.t -> Xml_base.Node.t
(** The calculus query as the XML the interpreter walks. *)

val interpreter_source : string
(** The interpreter itself, in XQuery. *)

val eval_on_export :
  ?focus:Awb.Model.node ->
  Awb.Model.t ->
  export_root:Xml_base.Node.t ->
  Ast.t ->
  Awb.Model.node list
(** Run against an already-exported model (export once, query many). *)

val eval : ?focus:Awb.Model.node -> Awb.Model.t -> Ast.t -> Awb.Model.node list
(** Export the model, then {!eval_on_export}. *)

val eval_string : ?focus:Awb.Model.node -> Awb.Model.t -> string -> Awb.Model.node list
(** Parse the calculus text, then {!eval}. *)
