(* The "Java rewrite" of the document generator, in the style the paper
   describes:

   - One exception, Gen_trouble, carrying a message, the location, and the
     focus — "we could get away with not checking for errors except at the
     highest level".
   - Mutable accumulators: whenever a heading is produced, toss it into a
     list; whenever a node is observed, cram it into a set.
   - A single generation pass, then "a very modest second phase" that
     patches the produced document in place: the ToC and omissions tables
     are crammed into their placeholders by mutating the in-memory XML,
     and marker phrases are replaced by ripping text nodes apart and
     shoving the table bodily into the gap.
   - Grid tables are built as a skeleton of empty <td>s held in a
     two-dimensional array, then filled in separate loops. *)

module N = Xml_base.Node
open Spec

exception
  Gen_trouble of { message : string; location : string; focus : string }

type state = {
  model : Awb.Model.t;
  queries : Queries.t;
  limits : Xquery.Context.limits; (* ticked once per directive *)
  level : level;
  stats : stats;
  visited : (string, unit) Hashtbl.t;
  mutable toc : (int * string) ref list;
      (* reversed; each entry is a cell reserved before its heading is
         generated, so entries order like the functional engine's
         document-order TOC-ENTRY markers even when sections nest inside
         headings *)
  mutable markers : (string * N.t) list; (* definition order, reversed *)
  mutable problems : string list; (* reversed *)
}

type ctx = { focus : Awb.Model.node option; path : string list; depth : int }

let trouble state ctx fmt =
  Printf.ksprintf
    (fun message ->
      state.stats.exceptions_raised <- state.stats.exceptions_raised + 1;
      raise
        (Gen_trouble
           {
             message;
             location = path_to_string ctx.path;
             focus =
               (match ctx.focus with
               | Some n -> Awb.Model.label state.model n
               | None -> "");
           }))
    fmt

(* The utility functions "generally got extra arguments ... so that [they]
   can throw a more comprehensive error message" — hence state and ctx
   everywhere, in the same order, every time. *)

let required_attr state ctx elt attr =
  match N.attr elt attr with
  | Some v -> v
  | None -> trouble state ctx "%s" (msg_missing_attr (N.name elt) attr)

let required_child state ctx elt child =
  match N.child_element elt child with
  | Some c -> c
  | None -> trouble state ctx "%s" (msg_missing_child (N.name elt) child)

let parse_query state ctx src =
  match Queries.parse src with
  | Ok q -> q
  | Error reason -> trouble state ctx "%s" (msg_bad_query src reason)

let required_focus state ctx directive =
  match ctx.focus with
  | Some n -> n
  | None -> trouble state ctx "%s" (msg_no_focus directive)

let mark_visited state (n : Awb.Model.node) =
  state.stats.visited_count <- state.stats.visited_count + 1;
  Hashtbl.replace state.visited n.Awb.Model.id ()

let split_types s =
  String.split_on_char ' ' s |> List.map String.trim |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Grid tables: skeleton + fill                                        *)
(* ------------------------------------------------------------------ *)

(* "We constructed the skeleton of the table ... and stored references to
   the <td>s in a two-dimensional array. Then we filled in the corner,
   the row titles, the column titles, and the values, each in a separate
   loop." *)
let build_grid_skeleton_and_fill model rel rows cols =
  let rows_arr = Array.of_list rows in
  let cols_arr = Array.of_list cols in
  let nrows = Array.length rows_arr + 1 in
  let ncols = Array.length cols_arr + 1 in
  (* Skeleton. *)
  let cells = Array.init nrows (fun _ -> Array.init ncols (fun _ -> N.element "td")) in
  let trs =
    Array.map (fun row -> N.element "tr" ~children:(Array.to_list row)) cells
  in
  let table =
    N.element "table" ~attrs:[ N.attribute "class" "awb-table" ] ~children:(Array.to_list trs)
  in
  let put i j text = if text <> "" then N.append_child cells.(i).(j) (N.text text) in
  (* Corner. *)
  put 0 0 grid_corner;
  (* Column titles. *)
  Array.iteri (fun j c -> put 0 (j + 1) (Awb.Model.label model c)) cols_arr;
  (* Row titles. *)
  Array.iteri (fun i r -> put (i + 1) 0 (Awb.Model.label model r)) rows_arr;
  (* Values — "no need to mingle the computations of row titles and cell
     values". *)
  Array.iteri
    (fun i r ->
      Array.iteri (fun j c -> put (i + 1) (j + 1) (grid_cell model rel r c)) cols_arr)
    rows_arr;
  table

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let rec eval_condition state ctx (cond : N.t) =
  match N.name cond with
  | "focus-is-type" ->
    let ty = required_attr state ctx cond "type" in
    let n = required_focus state ctx "focus-is-type" in
    Awb.Metamodel.is_subtype (Awb.Model.metamodel state.model) n.Awb.Model.ntype ty
  | "has-prop" ->
    let pname = required_attr state ctx cond "name" in
    let n = required_focus state ctx "has-prop" in
    Awb.Model.prop n pname <> None
  | "nonempty" ->
    let src = required_attr state ctx cond "query" in
    let q = parse_query state ctx src in
    Queries.run state.queries ?focus:ctx.focus q <> []
  | "not" -> (
    match N.child_elements cond with
    | [ inner ] -> not (eval_condition state { ctx with path = "not" :: ctx.path } inner)
    | _ -> trouble state ctx "%s" (msg_missing_child "not" "condition"))
  | other -> trouble state ctx "%s" (msg_unknown_condition other)

(* ------------------------------------------------------------------ *)
(* The walk: "Element c1 = requiredChild(...); continue to compute"    *)
(* ------------------------------------------------------------------ *)

let rec gen state ctx (tpl : N.t) : N.t list =
  (* One budget tick per template node: mid-walk preemption for deadlines
     and fuel, not just phase boundaries. *)
  Xquery.Context.tick state.limits;
  match N.kind tpl with
  | N.Text -> [ N.text (N.string_value tpl) ]
  | N.Comment -> [ N.comment (N.string_value tpl) ]
  | N.Processing_instruction | N.Attribute | N.Document -> []
  | N.Element -> (
    let ctx = { ctx with path = N.name tpl :: ctx.path } in
    match N.name tpl with
    | "for" ->
      let src = required_attr state ctx tpl "nodes" in
      let q = parse_query state ctx src in
      let nodes = Queries.run state.queries ?focus:ctx.focus q in
      List.concat_map
        (fun n ->
          mark_visited state n;
          gen_list state { ctx with focus = Some n } (N.children tpl))
        nodes
    | "if" ->
      let test = required_child state ctx tpl "test" in
      let cond =
        match N.child_elements test with
        | [ c ] -> c
        | _ -> trouble state ctx "%s" (msg_missing_child "test" "condition")
      in
      if eval_condition state ctx cond then
        gen_list state ctx (N.children (required_child state ctx tpl "then"))
      else (
        match N.child_element tpl "else" with
        | Some branch -> gen_list state ctx (N.children branch)
        | None -> [])
    | "label" ->
      let n = required_focus state ctx "label" in
      [ N.text (Awb.Model.label state.model n) ]
    | "property" -> (
      let pname = required_attr state ctx tpl "name" in
      let n = required_focus state ctx "property" in
      match Awb.Model.prop_string n pname with "" -> [] | v -> [ N.text v ])
    | "required-property" -> (
      let pname = required_attr state ctx tpl "name" in
      let n = required_focus state ctx "required-property" in
      match Awb.Model.prop n pname with
      | Some v -> [ N.text (Awb.Model.value_to_string v) ]
      | None ->
        trouble state ctx "%s"
          (msg_missing_property pname (Awb.Model.label state.model n)))
    | "rich-property" -> (
      let pname = required_attr state ctx tpl "name" in
      let n = required_focus state ctx "rich-property" in
      match Awb.Model.prop_string n pname with
      | "" -> []
      | raw -> (
        match Xml_base.Parser.parse_fragment raw with
        | fragment -> List.map N.copy fragment
        | exception Xml_base.Parser.Parse_error { message; _ } ->
          trouble state ctx "%s"
            (msg_malformed_rich_property pname (Awb.Model.label state.model n) message)))
    | "value-of" -> (
      let src = required_attr state ctx tpl "query" in
      let q = parse_query state ctx src in
      let sep = Option.value ~default:", " (N.attr tpl "separator") in
      match Queries.run state.queries ?focus:ctx.focus q with
      | [] -> []
      | nodes ->
        [ N.text (String.concat sep (List.map (Awb.Model.label state.model) nodes)) ])
    | "count-of" ->
      let src = required_attr state ctx tpl "query" in
      let q = parse_query state ctx src in
      [ N.text (string_of_int (List.length (Queries.run state.queries ?focus:ctx.focus q))) ]
    | "with-single" -> (
      let ty = required_attr state ctx tpl "type" in
      match Awb.Model.nodes_of_type state.model ty with
      | [ n ] ->
        mark_visited state n;
        gen_list state { ctx with focus = Some n } (N.children tpl)
      | others -> trouble state ctx "%s" (msg_exactly_one ty (List.length others)))
    | "section" ->
      let heading = required_child state ctx tpl "heading" in
      (* "Whenever a heading ... is produced, toss it into a list." The
         slot is reserved before the heading runs, in case the heading
         itself contains sections. *)
      let slot = ref (ctx.depth, "") in
      state.toc <- slot :: state.toc;
      let heading_out =
        gen_list state { ctx with path = "heading" :: ctx.path } (N.children heading)
      in
      let heading_text = String.concat "" (List.map N.string_value heading_out) in
      slot := (ctx.depth, heading_text);
      let body_tpls =
        List.filter
          (fun k -> not (N.is_element k && N.name k = "heading"))
          (N.children tpl)
      in
      let body = gen_list state { ctx with depth = ctx.depth + 1 } body_tpls in
      let level = min 6 (ctx.depth + 2) in
      [
        N.element "div"
          ~attrs:[ N.attribute "class" "section" ]
          ~children:(N.element (Printf.sprintf "h%d" level) ~children:heading_out :: body);
      ]
    | "table-of-contents" ->
      if state.level = Skeleton then [ render_toc_skeleton () ]
      else [ N.element "TOC-PLACEHOLDER" ]
    | "table-of-omissions" ->
      let types = required_attr state ctx tpl "types" in
      if state.level = Skeleton then [ render_omissions_skeleton () ]
      else [ N.element "OMISSIONS-PLACEHOLDER" ~attrs:[ N.attribute "types" types ] ]
    | "grid-table" ->
      let rows_src = required_attr state ctx tpl "rows" in
      let cols_src = required_attr state ctx tpl "cols" in
      let rel = required_attr state ctx tpl "rel" in
      let rows = Queries.run state.queries ?focus:ctx.focus (parse_query state ctx rows_src) in
      let cols = Queries.run state.queries ?focus:ctx.focus (parse_query state ctx cols_src) in
      [ build_grid_skeleton_and_fill state.model rel rows cols ]
    | "marker-table" ->
      let name = required_attr state ctx tpl "name" in
      let rows_src = required_attr state ctx tpl "rows" in
      let cols_src = required_attr state ctx tpl "cols" in
      let rel = required_attr state ctx tpl "rel" in
      if state.level = Skeleton then
        (* No marker patch pass will run: leave the phrase in the text
           and skip building the table at all. *)
        ignore (name, rows_src, cols_src, rel)
      else begin
        let rows = Queries.run state.queries ?focus:ctx.focus (parse_query state ctx rows_src) in
        let cols = Queries.run state.queries ?focus:ctx.focus (parse_query state ctx cols_src) in
        state.markers <- (name, build_grid_skeleton_and_fill state.model rel rows cols) :: state.markers
      end;
      []
    | _ ->
      let kids = gen_list state ctx (N.children tpl) in
      [
        N.element (N.name tpl)
          ~attrs:(List.map N.copy (N.attributes tpl))
          ~children:kids;
      ])

and gen_list state ctx tpls = List.concat_map (gen state ctx) tpls

(* ------------------------------------------------------------------ *)
(* The patch pass: in-place mutation of the produced document          *)
(* ------------------------------------------------------------------ *)

let patch_placeholders state root =
  state.stats.phases <- state.stats.phases + 1;
  let placeholders =
    N.find_all
      (fun n ->
        N.is_element n
        && (N.name n = "TOC-PLACEHOLDER" || N.name n = "OMISSIONS-PLACEHOLDER"))
      root
  in
  List.iter
    (fun ph ->
      let replacement =
        if N.name ph = "TOC-PLACEHOLDER" then
          render_toc (List.rev_map (fun slot -> !slot) state.toc)
        else
          render_omissions state.model
            ~visited:(Hashtbl.mem state.visited)
            ~types:(split_types (Option.value ~default:"" (N.attr ph "types")))
      in
      match N.parent ph with
      | Some p -> N.replace_child p ~old:ph [ replacement ]
      | None -> ())
    placeholders

let patch_markers state root =
  let markers = List.rev state.markers in
  let used = Hashtbl.create 7 in
  let rec patch_node n =
    match N.kind n with
    | N.Text -> (
      let text = N.string_value n in
      let hit =
        List.find_opt
          (fun (name, _) -> Astring.String.is_infix ~affix:(marker_phrase name) text)
          markers
      in
      match (hit, N.parent n) with
      | Some (name, table), Some parent ->
        Hashtbl.replace used name ();
        let phrase = marker_phrase name in
        (* Rip the text node apart and shove the table bodily into the
           gap. *)
        let rec pieces s acc =
          match Astring.String.find_sub ~sub:phrase s with
          | None -> List.rev (if s = "" then acc else N.text s :: acc)
          | Some i ->
            let before = String.sub s 0 i in
            let after =
              String.sub s (i + String.length phrase) (String.length s - i - String.length phrase)
            in
            let acc = if before = "" then acc else N.text before :: acc in
            pieces after (N.copy table :: acc)
        in
        let replacement = pieces text [] in
        N.replace_child parent ~old:n replacement;
        (* Replacement pieces may contain further markers in 'after'
           segments; re-scan them. *)
        List.iter patch_node replacement
      | _ -> ())
    | N.Element | N.Document -> List.iter patch_node (N.children n)
    | N.Comment | N.Processing_instruction | N.Attribute -> ()
  in
  patch_node root;
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem used name) then
        state.problems <-
          Printf.sprintf "marker table %s was defined but %s never appears" name
            (marker_phrase name)
          :: state.problems)
    markers

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let template_root template =
  match N.kind template with
  | N.Document -> List.hd (N.child_elements template)
  | _ -> template

let generate ?(backend = Native_queries) ?limits ?fast_eval ?(level = Full) model ~template =
  let stats = new_stats () in
  let limits =
    match limits with Some l -> l | None -> Xquery.Context.unlimited ()
  in
  let queries = Queries.make ~limits ?fast_eval backend model stats in
  let state =
    {
      model;
      queries;
      limits;
      level;
      stats;
      visited = Hashtbl.create 64;
      toc = [];
      markers = [];
      problems = [];
    }
  in
  let validation_problems =
    List.map
      (fun w -> Format.asprintf "%a" Awb.Validate.pp_warning w)
      (Awb.Validate.check model)
  in
  let ctx = { focus = None; path = []; depth = 0 } in
  stats.phases <- 1;
  (* "Not checking for errors except at the highest level." *)
  match
    (* An already-blown budget (typically an expired deadline) must fail
       before any generation work, not after the amortized tick interval
       happens to elapse. *)
    Xquery.Context.check limits;
    gen state ctx (template_root template)
  with
  | [ root ] ->
    (* A skeleton run ends at the walk: stubs are already in place, the
       "very modest second phase" is exactly what we shed. *)
    if level = Full then begin
      patch_placeholders state root;
      patch_markers state root
    end;
    { document = root; problems = validation_problems @ List.rev state.problems; stats }
  | _ ->
    {
      document =
        generation_failed ~message:"template did not produce a single root element"
          ~location:"" ();
      problems = validation_problems;
      stats;
    }
  | exception Gen_trouble { message; location; focus = _ } ->
    {
      document = generation_failed ~message ~location ();
      problems = validation_problems;
      stats;
    }
  | exception Xquery.Errors.Resource_exhausted { resource; limit; used } ->
    let document, problem = resource_failure resource ~limit ~used in
    { document; problems = validation_problems @ [ problem ]; stats }

let generate_with_streams ?backend ?limits ?fast_eval model ~template =
  let result = generate ?backend ?limits ?fast_eval model ~template in
  (wrap_streams ~document:result.document ~problems:result.problems, result.stats)
