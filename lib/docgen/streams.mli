(** Output streams. XQuery "produces only a single output stream", so the
    functional engine wraps document and problem report into one
    [<output-streams>] element; this module splits them apart — directly,
    or via the "little XSLT program" the paper's team actually used. *)

type split = { document : Xml_base.Node.t; problems : string list }

exception Malformed_stream of string

val split : Xml_base.Node.t -> split
(** Direct split. @raise Malformed_stream when the wrapper shape is wrong. *)

val document_stylesheet : string
(** The XSLT source extracting the document stream. *)

val problems_stylesheet : string
(** The XSLT source extracting the problem report. *)

val split_via_xslt : Xml_base.Node.t -> split
(** The same split, performed by the XSLT engine running the two
    stylesheets above. @raise Malformed_stream as {!split}. *)
