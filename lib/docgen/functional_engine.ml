(* The XQuery-style document generator, written the way the paper's XQuery
   version had to be written:

   - No mutation anywhere in the generation logic. State (the focus, the
     section depth) is threaded through a context record.
   - No exceptions for generation errors. A failing computation returns an
     <error> element carrying <message> and <location>; every call site
     must test for it and ship it upward, so "the actual behavior of most
     code [is] badly obscured, with one small piece of computation every
     few lines, hidden behind billows of error messages".
   - No accumulators. Tables of contents, omissions, and marker tables are
     communicated to later phases inside <INTERNAL-DATA> elements embedded
     in the output; five whole-document copy phases then assemble the
     final document, "requiring multiple copies of the entire output".

   The only mutable thing in sight is the stats record, which is
   measurement apparatus, not program state. *)

module N = Xml_base.Node
open Spec

type ctx = {
  model : Awb.Model.t;
  queries : Queries.t;
  limits : Xquery.Context.limits; (* ticked once per directive *)
  level : level;
  focus : Awb.Model.node option;
  path : string list; (* reversed; innermost first *)
  depth : int; (* section nesting *)
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Error values                                                        *)
(* ------------------------------------------------------------------ *)

let make_error ctx message =
  N.element "error"
    ~children:
      [
        N.element "message" ~children:[ N.text message ];
        N.element "location" ~children:[ N.text (path_to_string ctx.path) ];
      ]

(* "LET $return-value := f(...) RETURN IF is-error(...)": the check every
   call site performs. The counter records how many such tests actually
   ran — the measurable residue of the pattern. *)
let is_error ctx (nodes : N.t list) =
  ctx.stats.error_checks <- ctx.stats.error_checks + 1;
  match nodes with
  | [ e ] -> N.is_element e && N.name e = "error"
  | _ -> false

let error_message = function
  | [ e ] -> (
    match N.child_element e "message" with
    | Some m -> N.string_value m
    | None -> "")
  | _ -> ""

(* ------------------------------------------------------------------ *)
(* Small helpers (pure)                                                *)
(* ------------------------------------------------------------------ *)

let internal_data kids = N.element "INTERNAL-DATA" ~children:kids

let visited_marker (n : Awb.Model.node) =
  internal_data [ N.element "VISITED" ~attrs:[ N.attribute "node-id" n.Awb.Model.id ] ]

let toc_marker depth text =
  internal_data
    [
      N.element "TOC-ENTRY"
        ~attrs:[ N.attribute "depth" (string_of_int depth); N.attribute "text" text ];
    ]

let focus_label ctx n = Awb.Model.label ctx.model n

let split_types s =
  String.split_on_char ' ' s |> List.map String.trim |> List.filter (fun x -> x <> "")

(* All-at-once grid table construction: "each row and then the table
   itself must be produced in its entirety, all at once". *)
let build_grid_all_at_once model rel rows cols =
  let td text = N.element "td" ~children:(if text = "" then [] else [ N.text text ]) in
  let header_row =
    N.element "tr"
      ~children:(td grid_corner :: List.map (fun c -> td (Awb.Model.label model c)) cols)
  in
  let data_row r =
    N.element "tr"
      ~children:
        (td (Awb.Model.label model r)
        :: List.map (fun c -> td (grid_cell model rel r c)) cols)
  in
  N.element "table"
    ~attrs:[ N.attribute "class" "awb-table" ]
    ~children:(header_row :: List.map data_row rows)

(* ------------------------------------------------------------------ *)
(* Attribute / child / query access, error-value style                 *)
(* ------------------------------------------------------------------ *)

(* Each of these returns either the wanted thing or an error element; the
   caller tests. This is the requiredChild(...) of the paper, in the
   representation XQuery forced. *)

let required_attr ctx elt attr : (string, N.t list) Either.t =
  match N.attr elt attr with
  | Some v -> Either.Left v
  | None -> Either.Right [ make_error ctx (msg_missing_attr (N.name elt) attr) ]

let required_child ctx elt child : (N.t, N.t list) Either.t =
  match N.child_element elt child with
  | Some c -> Either.Left c
  | None -> Either.Right [ make_error ctx (msg_missing_child (N.name elt) child) ]

let parse_query ctx src : (Awb_query.Ast.t, N.t list) Either.t =
  match Queries.parse src with
  | Ok q -> Either.Left q
  | Error reason -> Either.Right [ make_error ctx (msg_bad_query src reason) ]

let required_focus ctx directive : (Awb.Model.node, N.t list) Either.t =
  match ctx.focus with
  | Some n -> Either.Left n
  | None -> Either.Right [ make_error ctx (msg_no_focus directive) ]

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

(* A condition evaluates to either a boolean or an error value. *)
let rec eval_condition ctx (cond : N.t) : (bool, N.t list) Either.t =
  match N.name cond with
  | "focus-is-type" -> (
    match required_attr ctx cond "type" with
    | Either.Right e -> Either.Right e
    | Either.Left ty -> (
      match required_focus ctx "focus-is-type" with
      | Either.Right e -> Either.Right e
      | Either.Left n ->
        Either.Left
          (Awb.Metamodel.is_subtype (Awb.Model.metamodel ctx.model) n.Awb.Model.ntype ty)))
  | "has-prop" -> (
    match required_attr ctx cond "name" with
    | Either.Right e -> Either.Right e
    | Either.Left pname -> (
      match required_focus ctx "has-prop" with
      | Either.Right e -> Either.Right e
      | Either.Left n -> Either.Left (Awb.Model.prop n pname <> None)))
  | "nonempty" -> (
    match required_attr ctx cond "query" with
    | Either.Right e -> Either.Right e
    | Either.Left src -> (
      match parse_query ctx src with
      | Either.Right e -> Either.Right e
      | Either.Left q -> Either.Left (Queries.run ctx.queries ?focus:ctx.focus q <> [])))
  | "not" -> (
    match N.child_elements cond with
    | [ inner ] -> (
      match eval_condition { ctx with path = "not" :: ctx.path } inner with
      | Either.Left b -> Either.Left (not b)
      | Either.Right e -> Either.Right e)
    | _ -> Either.Right [ make_error ctx (msg_missing_child "not" "condition") ])
  | other -> Either.Right [ make_error ctx (msg_unknown_condition other) ]

(* ------------------------------------------------------------------ *)
(* The recursive walk                                                  *)
(* ------------------------------------------------------------------ *)

let rec gen ctx (tpl : N.t) : N.t list =
  (* One budget tick per template node: mid-walk preemption for deadlines
     and fuel, not just phase boundaries. The one deliberate crack in the
     no-exceptions architecture — a budget trip is not a generation error
     the error-value convention should swallow. *)
  Xquery.Context.tick ctx.limits;
  match N.kind tpl with
  | N.Text -> [ N.text (N.string_value tpl) ]
  | N.Comment -> [ N.comment (N.string_value tpl) ]
  | N.Processing_instruction | N.Attribute | N.Document -> []
  | N.Element -> (
    let ctx = { ctx with path = N.name tpl :: ctx.path } in
    match N.name tpl with
    | "for" -> gen_for ctx tpl
    | "if" -> gen_if ctx tpl
    | "label" -> gen_label ctx
    | "property" -> gen_property ctx tpl
    | "required-property" -> gen_required_property ctx tpl
    | "rich-property" -> gen_rich_property ctx tpl
    | "value-of" -> gen_value_of ctx tpl
    | "count-of" -> gen_count_of ctx tpl
    | "with-single" -> gen_with_single ctx tpl
    | "section" -> gen_section ctx tpl
    | "table-of-contents" ->
      if ctx.level = Skeleton then [ render_toc_skeleton () ]
      else [ N.element "TOC-PLACEHOLDER" ]
    | "table-of-omissions" -> gen_omissions_placeholder ctx tpl
    | "grid-table" -> gen_grid ctx tpl
    | "marker-table" -> gen_marker_table ctx tpl
    | _ -> gen_copy ctx tpl)

and gen_list ctx = function
  | [] -> []
  | tpl :: rest ->
    let head = gen ctx tpl in
    if is_error ctx head then head
    else
      let tail = gen_list ctx rest in
      if is_error ctx tail then tail else head @ tail

and gen_copy ctx tpl =
  let kids = gen_list ctx (N.children tpl) in
  if is_error ctx kids then kids
  else
    [
      N.element (N.name tpl)
        ~attrs:(List.map N.copy (N.attributes tpl))
        ~children:kids;
    ]

and gen_for ctx tpl =
  match required_attr ctx tpl "nodes" with
  | Either.Right e -> e
  | Either.Left src -> (
    match parse_query ctx src with
    | Either.Right e -> e
    | Either.Left q ->
      let nodes = Queries.run ctx.queries ?focus:ctx.focus q in
      let rec iterate = function
        | [] -> []
        | n :: rest ->
          ctx.stats.visited_count <- ctx.stats.visited_count + 1;
          let body = gen_list { ctx with focus = Some n } (N.children tpl) in
          if is_error ctx body then body
          else
            let tail = iterate rest in
            if is_error ctx tail then tail
            else if ctx.level = Skeleton then body @ tail
            else (visited_marker n :: body) @ tail
      in
      iterate nodes)

and gen_if ctx tpl =
  match required_child ctx tpl "test" with
  | Either.Right e -> e
  | Either.Left test -> (
    let cond_result =
      match N.child_elements test with
      | [ cond ] -> eval_condition ctx cond
      | _ -> Either.Right [ make_error ctx (msg_missing_child "test" "condition") ]
    in
    match cond_result with
    | Either.Right e -> e
    | Either.Left b ->
      if b then
        match required_child ctx tpl "then" with
        | Either.Right e -> e
        | Either.Left branch -> gen_list ctx (N.children branch)
      else (
        match N.child_element tpl "else" with
        | Some branch -> gen_list ctx (N.children branch)
        | None -> []))

and gen_label ctx =
  match required_focus ctx "label" with
  | Either.Right e -> e
  | Either.Left n -> [ N.text (focus_label ctx n) ]

and gen_property ctx tpl =
  match required_attr ctx tpl "name" with
  | Either.Right e -> e
  | Either.Left pname -> (
    match required_focus ctx "property" with
    | Either.Right e -> e
    | Either.Left n -> (
      match Awb.Model.prop_string n pname with "" -> [] | v -> [ N.text v ]))

and gen_required_property ctx tpl =
  match required_attr ctx tpl "name" with
  | Either.Right e -> e
  | Either.Left pname -> (
    match required_focus ctx "required-property" with
    | Either.Right e -> e
    | Either.Left n -> (
      match Awb.Model.prop n pname with
      | Some v -> [ N.text (Awb.Model.value_to_string v) ]
      | None ->
        [ make_error ctx (msg_missing_property pname (focus_label ctx n)) ]))

and gen_rich_property ctx tpl =
  match required_attr ctx tpl "name" with
  | Either.Right e -> e
  | Either.Left pname -> (
    match required_focus ctx "rich-property" with
    | Either.Right e -> e
    | Either.Left n -> (
      match Awb.Model.prop_string n pname with
      | "" -> []
      | raw -> (
        (* HTML-valued properties are strings internally, XML on output:
           parse the fragment and splice it. *)
        match Xml_base.Parser.parse_fragment raw with
        | fragment -> List.map N.copy fragment
        | exception Xml_base.Parser.Parse_error { message; _ } ->
          [
            make_error ctx
              (msg_malformed_rich_property pname (focus_label ctx n) message);
          ])))

and gen_value_of ctx tpl =
  match required_attr ctx tpl "query" with
  | Either.Right e -> e
  | Either.Left src -> (
    match parse_query ctx src with
    | Either.Right e -> e
    | Either.Left q ->
      let sep = Option.value ~default:", " (N.attr tpl "separator") in
      let nodes = Queries.run ctx.queries ?focus:ctx.focus q in
      (match nodes with
      | [] -> []
      | nodes -> [ N.text (String.concat sep (List.map (focus_label ctx) nodes)) ]))

and gen_count_of ctx tpl =
  match required_attr ctx tpl "query" with
  | Either.Right e -> e
  | Either.Left src -> (
    match parse_query ctx src with
    | Either.Right e -> e
    | Either.Left q ->
      [ N.text (string_of_int (List.length (Queries.run ctx.queries ?focus:ctx.focus q))) ])

and gen_with_single ctx tpl =
  match required_attr ctx tpl "type" with
  | Either.Right e -> e
  | Either.Left ty -> (
    match Awb.Model.nodes_of_type ctx.model ty with
    | [ n ] ->
      ctx.stats.visited_count <- ctx.stats.visited_count + 1;
      let body = gen_list { ctx with focus = Some n } (N.children tpl) in
      if is_error ctx body then body
      else if ctx.level = Skeleton then body
      else visited_marker n :: body
    | others -> [ make_error ctx (msg_exactly_one ty (List.length others)) ])

and gen_section ctx tpl =
  match required_child ctx tpl "heading" with
  | Either.Right e -> e
  | Either.Left heading -> (
    let heading_out = gen_list { ctx with path = "heading" :: ctx.path } (N.children heading) in
    if is_error ctx heading_out then heading_out
    else
      let body_tpls =
        List.filter
          (fun k -> not (N.is_element k && N.name k = "heading"))
          (N.children tpl)
      in
      let body = gen_list { ctx with depth = ctx.depth + 1 } body_tpls in
      if is_error ctx body then body
      else
        let level = min 6 (ctx.depth + 2) in
        (* The ToC entry text is the heading's visible text: the
           INTERNAL-DATA plumbing riding along in the output must not
           leak into it. *)
        let rec visible_text n =
          match N.kind n with
          | N.Element when N.name n = "INTERNAL-DATA" -> ""
          | N.Element | N.Document ->
            String.concat "" (List.map visible_text (N.children n))
          | N.Text -> N.string_value n
          | N.Attribute | N.Comment | N.Processing_instruction -> ""
        in
        let heading_text = String.concat "" (List.map visible_text heading_out) in
        let div =
          N.element "div"
            ~attrs:[ N.attribute "class" "section" ]
            ~children:
              (N.element (Printf.sprintf "h%d" level) ~children:heading_out :: body)
        in
        if ctx.level = Skeleton then [ div ]
        else [ toc_marker ctx.depth heading_text; div ])

and gen_omissions_placeholder ctx tpl =
  match required_attr ctx tpl "types" with
  | Either.Right e -> e
  | Either.Left types ->
    if ctx.level = Skeleton then [ render_omissions_skeleton () ]
    else [ N.element "OMISSIONS-PLACEHOLDER" ~attrs:[ N.attribute "types" types ] ]

and gen_grid ctx tpl =
  match (required_attr ctx tpl "rows", required_attr ctx tpl "cols", required_attr ctx tpl "rel") with
  | Either.Right e, _, _ | _, Either.Right e, _ | _, _, Either.Right e -> e
  | Either.Left rows_src, Either.Left cols_src, Either.Left rel -> (
    match (parse_query ctx rows_src, parse_query ctx cols_src) with
    | Either.Right e, _ | _, Either.Right e -> e
    | Either.Left rows_q, Either.Left cols_q ->
      let rows = Queries.run ctx.queries ?focus:ctx.focus rows_q in
      let cols = Queries.run ctx.queries ?focus:ctx.focus cols_q in
      [ build_grid_all_at_once ctx.model rel rows cols ])

and gen_marker_table ctx tpl =
  match
    ( required_attr ctx tpl "name",
      required_attr ctx tpl "rows",
      required_attr ctx tpl "cols",
      required_attr ctx tpl "rel" )
  with
  | Either.Right e, _, _, _ | _, Either.Right e, _, _ | _, _, Either.Right e, _
  | _, _, _, Either.Right e ->
    e
  | Either.Left name, Either.Left rows_src, Either.Left cols_src, Either.Left rel -> (
    (* Skeleton: attributes are still validated (same errors as the host
       engine) but no table is built — the patch phase that would splice
       it is exactly what the skeleton sheds. *)
    if ctx.level = Skeleton then begin
      ignore (name, rows_src, cols_src, rel);
      []
    end
    else
      match (parse_query ctx rows_src, parse_query ctx cols_src) with
      | Either.Right e, _ | _, Either.Right e -> e
      | Either.Left rows_q, Either.Left cols_q ->
        let rows = Queries.run ctx.queries ?focus:ctx.focus rows_q in
        let cols = Queries.run ctx.queries ?focus:ctx.focus cols_q in
        [
          internal_data
            [
              N.element "MARKER-TABLE"
                ~attrs:[ N.attribute "name" name ]
                ~children:[ build_grid_all_at_once ctx.model rel rows cols ];
            ];
        ])

(* ------------------------------------------------------------------ *)
(* Phases 2..5: whole-document copies                                  *)
(* ------------------------------------------------------------------ *)

(* Copy a tree, transforming elements through [rewrite] (which returns
   None to mean "copy structurally"). Every allocated node is counted —
   the cost the paper accepted as "fairly inefficient, requiring multiple
   copies of the entire output". *)
let rec copy_phase stats rewrite (n : N.t) : N.t list =
  match rewrite n with
  | Some replacement -> replacement
  | None -> (
    match N.kind n with
    | N.Element ->
      stats.nodes_copied <- stats.nodes_copied + 1;
      [
        N.element (N.name n)
          ~attrs:
            (List.map
               (fun a ->
                 stats.nodes_copied <- stats.nodes_copied + 1;
                 N.copy a)
               (N.attributes n))
          ~children:(List.concat_map (copy_phase stats rewrite) (N.children n));
      ]
    | N.Text | N.Comment | N.Processing_instruction | N.Attribute ->
      stats.nodes_copied <- stats.nodes_copied + 1;
      [ N.copy n ]
    | N.Document -> List.concat_map (copy_phase stats rewrite) (N.children n))

let run_phase ctx rewrite root =
  ctx.stats.phases <- ctx.stats.phases + 1;
  match copy_phase ctx.stats rewrite root with
  | [ r ] -> r
  | _ -> invalid_arg "Docgen.Functional_engine: phase must preserve the root"

let phase_omissions ctx root =
  let visited_ids = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match N.attr v "node-id" with
      | Some id -> Hashtbl.replace visited_ids id ()
      | None -> ())
    (N.find_all (fun n -> N.is_element n && N.name n = "VISITED") root);
  let rewrite n =
    if N.is_element n && N.name n = "OMISSIONS-PLACEHOLDER" then
      let types = split_types (Option.value ~default:"" (N.attr n "types")) in
      Some
        [
          render_omissions ctx.model ~visited:(Hashtbl.mem visited_ids) ~types;
        ]
    else None
  in
  run_phase ctx rewrite root

let phase_toc ctx root =
  let entries =
    List.filter_map
      (fun e ->
        match (N.attr e "depth", N.attr e "text") with
        | Some d, Some t -> Some (int_of_string d, t)
        | _ -> None)
      (N.find_all (fun n -> N.is_element n && N.name n = "TOC-ENTRY") root)
  in
  let rewrite n =
    if N.is_element n && N.name n = "TOC-PLACEHOLDER" then Some [ render_toc entries ]
    else None
  in
  run_phase ctx rewrite root

(* Split [text] on the marker phrase for [name], interleaving copies of
   the table. *)
let splice_marker stats phrase table text =
  let rec go s acc =
    match Astring.String.find_sub ~sub:phrase s with
    | None -> List.rev (if s = "" then acc else N.text s :: acc)
    | Some i ->
      let before = String.sub s 0 i in
      let after = String.sub s (i + String.length phrase) (String.length s - i - String.length phrase) in
      let acc = if before = "" then acc else N.text before :: acc in
      stats.nodes_copied <- stats.nodes_copied + 1;
      go after (N.copy table :: acc)
  in
  go text []

let phase_markers ctx root =
  let tables =
    List.filter_map
      (fun e ->
        match (N.attr e "name", N.child_elements e) with
        | Some name, [ table ] -> Some (name, table)
        | _ -> None)
      (N.find_all (fun n -> N.is_element n && N.name n = "MARKER-TABLE") root)
  in
  let rewrite n =
    if N.is_text n then begin
      let text = N.string_value n in
      let hit =
        List.find_opt (fun (name, _) -> Astring.String.is_infix ~affix:(marker_phrase name) text) tables
      in
      match hit with
      | None -> None
      | Some (name, table) ->
        Some (splice_marker ctx.stats (marker_phrase name) table text)
    end
    else None
  in
  run_phase ctx rewrite root

let phase_strip_internal ctx root =
  let rewrite n =
    if N.is_element n && N.name n = "INTERNAL-DATA" then Some [] else None
  in
  run_phase ctx rewrite root

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let template_root template =
  match N.kind template with
  | N.Document -> List.hd (N.child_elements template)
  | _ -> template

let marker_problems root used_root =
  (* Markers defined but whose phrase never occurred anywhere. *)
  let defined =
    List.filter_map
      (fun e -> N.attr e "name")
      (N.find_all (fun n -> N.is_element n && N.name n = "MARKER-TABLE") root)
  in
  List.filter_map
    (fun name ->
      let phrase = marker_phrase name in
      let occurs =
        List.exists
          (fun t -> Astring.String.is_infix ~affix:phrase (N.string_value t))
          (N.find_all N.is_text used_root)
      in
      if occurs then None
      else Some (Printf.sprintf "marker table %s was defined but %s never appears" name phrase))
    defined

let generate ?(backend = Xquery_queries) ?limits ?fast_eval ?(level = Full) model ~template =
  let stats = new_stats () in
  let limits =
    match limits with Some l -> l | None -> Xquery.Context.unlimited ()
  in
  let queries = Queries.make ~limits ?fast_eval backend model stats in
  let validation_problems =
    List.map
      (fun w -> Format.asprintf "%a" Awb.Validate.pp_warning w)
      (Awb.Validate.check model)
  in
  let ctx =
    { model; queries; limits; level; focus = None; path = []; depth = 0; stats }
  in
  stats.phases <- 1;
  match
    (* Fail an already-blown budget before any generation work. *)
    Xquery.Context.check limits;
    gen ctx (template_root template)
  with
  | exception Xquery.Errors.Resource_exhausted { resource; limit; used } ->
    let document, problem = resource_failure resource ~limit ~used in
    { document; problems = validation_problems @ [ problem ]; stats }
  | phase1 ->
    if is_error ctx phase1 then
      {
        document =
          generation_failed ~message:(error_message phase1)
            ~location:
              (match phase1 with
              | [ e ] -> (
                match N.child_element e "location" with
                | Some l -> N.string_value l
                | None -> "")
              | _ -> "")
            ();
        problems = validation_problems;
        stats;
      }
    else (
      match phase1 with
      | [ root1 ] when level = Skeleton ->
        (* The walk already dropped skeleton stubs in place and emitted
           no INTERNAL-DATA: phases 2..5 — the whole-document copies the
           paper calls "fairly inefficient" — are exactly what we shed. *)
        { document = root1; problems = validation_problems; stats }
      | [ root1 ] ->
        let problems = validation_problems @ marker_problems root1 root1 in
        let root2 = phase_omissions ctx root1 in
        let root3 = phase_toc ctx root2 in
        let root4 = phase_markers ctx root3 in
        let root5 = phase_strip_internal ctx root4 in
        { document = root5; problems; stats }
      | _ ->
        {
          document =
            generation_failed ~message:"template did not produce a single root element"
              ~location:"" ();
          problems = validation_problems;
          stats;
        })

let generate_with_streams ?backend ?limits ?fast_eval model ~template =
  let result = generate ?backend ?limits ?fast_eval model ~template in
  (wrap_streams ~document:result.document ~problems:result.problems, result.stats)
