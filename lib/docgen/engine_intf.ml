(** The one interface all three document-generation engines implement.

    The paper gives us three architectures for the same job: the
    functional XQuery-style engine, the host-language rewrite, and the
    genuine XQuery core run by the engine in lib/xquery. Callers should
    not care which one they are driving — they ask for a {!Spec.result}
    and pick the architecture by name. [Docgen.generate] dispatches on
    {!kind}; the service layer and the CLIs go through it exclusively. *)

type kind = [ `Host | `Functional | `Xq ]

let all_kinds : kind list = [ `Host; `Functional; `Xq ]

let kind_name : kind -> string = function
  | `Host -> "host"
  | `Functional -> "functional"
  | `Xq -> "xq"

let kind_of_string : string -> (kind, string) result = function
  | "host" -> Ok `Host
  | "functional" -> Ok `Functional
  | "xq" -> Ok `Xq
  | other ->
    Error (Printf.sprintf "unknown engine %S (host|functional|xq)" other)

(** What every engine must provide: a name for diagnostics and the
    uniform generation entry point. [backend] selects the calculus query
    backend where the engine has one; the [`Xq] engine embeds its own
    queries and ignores it. Everything else about the run — execution
    mode, resource budgets, degradation level, a worker pool for
    data-parallel plan fragments — arrives in the one
    {!Xquery.Engine.Exec_opts.t} record shared with the XQuery engine
    itself. A budget trip ends generation with a [<generation-failed>]
    document carrying the trip's [resource:*] code, plus a [problems]
    entry — it never escapes as an exception. [Exec_opts.Skeleton] skips
    the optional enrichment phases (TOC/omissions regeneration, marker
    patching) so a brownout can trade completeness for latency; engines
    without those phases accept and ignore it. Engines that do not run
    queries through the XQuery engine map [Seed] to their reference
    algorithms and any other mode to their fast paths. *)
module type S = sig
  val name : string

  val generate :
    ?backend:Spec.query_backend ->
    opts:Xquery.Engine.Exec_opts.t ->
    Awb.Model.t ->
    template:Xml_base.Node.t ->
    Spec.result
end

(* Translation helpers for engines that still speak the older
   limits/fast_eval/level vocabulary internally. *)

let fast_eval_of_opts (opts : Xquery.Engine.Exec_opts.t) =
  match opts.Xquery.Engine.Exec_opts.mode with
  | Xquery.Engine.Exec_opts.Seed -> false
  | Xquery.Engine.Exec_opts.Fast | Xquery.Engine.Exec_opts.Plan -> true

let spec_level_of_opts (opts : Xquery.Engine.Exec_opts.t) =
  match opts.Xquery.Engine.Exec_opts.level with
  | Xquery.Engine.Exec_opts.Full -> Spec.Full
  | Xquery.Engine.Exec_opts.Skeleton -> Spec.Skeleton

let opts_of_legacy ?limits ?fast_eval ?level () =
  let mode =
    match fast_eval with
    | Some true -> Xquery.Engine.Exec_opts.Fast
    | Some false -> Xquery.Engine.Exec_opts.Seed
    | None -> Xquery.Engine.Exec_opts.ambient_mode ()
  in
  let level =
    match level with
    | Some Spec.Skeleton -> Xquery.Engine.Exec_opts.Skeleton
    | Some Spec.Full | None -> Xquery.Engine.Exec_opts.Full
  in
  Xquery.Engine.Exec_opts.make ~mode ?limits ~level ()
