(** The one interface all three document-generation engines implement.

    The paper gives us three architectures for the same job: the
    functional XQuery-style engine, the host-language rewrite, and the
    genuine XQuery core run by the engine in lib/xquery. Callers should
    not care which one they are driving — they ask for a {!Spec.result}
    and pick the architecture by name. [Docgen.generate] dispatches on
    {!kind}; the service layer and the CLIs go through it exclusively. *)

type kind = [ `Host | `Functional | `Xq ]

let all_kinds : kind list = [ `Host; `Functional; `Xq ]

let kind_name : kind -> string = function
  | `Host -> "host"
  | `Functional -> "functional"
  | `Xq -> "xq"

let kind_of_string : string -> (kind, string) result = function
  | "host" -> Ok `Host
  | "functional" -> Ok `Functional
  | "xq" -> Ok `Xq
  | other ->
    Error (Printf.sprintf "unknown engine %S (host|functional|xq)" other)

(** What every engine must provide: a name for diagnostics and the
    uniform generation entry point. [backend] selects the calculus query
    backend where the engine has one; the [`Xq] engine embeds its own
    queries and ignores it. [limits] attaches resource budgets (fuel,
    recursion depth, node allocation, monotonic deadline) to the run: a
    budget trip ends generation with a [<generation-failed>] document
    carrying the trip's [resource:*] code, plus a [problems] entry — it
    never escapes as an exception. [fast_eval] pins ([false]) or enables
    ([true]) the XQuery evaluator's fast paths where the engine runs
    queries through it. [level] selects the degradation level:
    [Spec.Skeleton] skips the optional enrichment phases (TOC/omissions
    regeneration, marker patching) so a brownout can trade completeness
    for latency; engines without those phases accept and ignore it. *)
module type S = sig
  val name : string

  val generate :
    ?backend:Spec.query_backend ->
    ?limits:Xquery.Context.limits ->
    ?fast_eval:bool ->
    ?level:Spec.level ->
    Awb.Model.t ->
    template:Xml_base.Node.t ->
    Spec.result
end
