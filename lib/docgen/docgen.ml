(** The document-generation library, fronted by one engine-neutral API.

    The paper builds the same generator three times — functional
    XQuery-style, host-language rewrite, and a genuine XQuery core — and
    the interesting comparisons need to swap architectures freely. This
    main module is the only surface callers outside lib/docgen should
    use: pick an engine by name and call {!generate}. The per-engine
    modules stay exported for the benchmarks that measure their exposed
    internals (grid construction, stream wrapping). *)

module Spec = Spec
module Queries = Queries
module Streams = Streams
module Engine_intf = Engine_intf
module Functional_engine = Functional_engine
module Host_engine = Host_engine
module Xq_engine = Xq_engine

type engine = Engine_intf.kind

let all_engines = Engine_intf.all_kinds
let engine_name = Engine_intf.kind_name
let engine_of_string = Engine_intf.kind_of_string

(* The three architectures as first-class implementations of the one
   interface. *)

module Host : Engine_intf.S = struct
  let name = "host"

  let generate ?backend ~opts model ~template =
    Host_engine.generate ?backend
      ?limits:opts.Xquery.Engine.Exec_opts.limits
      ~fast_eval:(Engine_intf.fast_eval_of_opts opts)
      ~level:(Engine_intf.spec_level_of_opts opts) model ~template
end

module Functional : Engine_intf.S = struct
  let name = "functional"

  let generate ?backend ~opts model ~template =
    Functional_engine.generate ?backend
      ?limits:opts.Xquery.Engine.Exec_opts.limits
      ~fast_eval:(Engine_intf.fast_eval_of_opts opts)
      ~level:(Engine_intf.spec_level_of_opts opts) model ~template
end

module Xq : Engine_intf.S = struct
  let name = "xq"

  let generate ?backend ~opts model ~template =
    Xq_engine.generate_spec ?backend ~opts model ~template
end

let engine_module : engine -> (module Engine_intf.S) = function
  | `Host -> (module Host)
  | `Functional -> (module Functional)
  | `Xq -> (module Xq)

(* The primary entry point: one options record, shared with the XQuery
   engine itself, so an execution mode or worker pool chosen at the
   service edge flows through docgen unchanged. *)
let run ?backend ?(engine : engine = `Host) ~opts model ~template =
  let (module E : Engine_intf.S) = engine_module engine in
  E.generate ?backend ~opts model ~template

(* Deprecated shim (kept one release): the labelled-argument entry point.
   New code should build an [Exec_opts.t] and call [run]. *)
let generate ?backend ?limits ?fast_eval ?level ?(engine : engine = `Host) model
    ~template =
  run ?backend ~engine
    ~opts:(Engine_intf.opts_of_legacy ?limits ?fast_eval ?level ())
    model ~template

let generate_with_streams ?backend ?limits ?fast_eval ?(engine : engine = `Host) model
    ~template =
  match engine with
  | `Host -> Host_engine.generate_with_streams ?backend ?limits ?fast_eval model ~template
  | `Functional ->
    Functional_engine.generate_with_streams ?backend ?limits ?fast_eval model ~template
  | `Xq ->
    let result =
      Xq_engine.generate_spec ?backend
        ~opts:(Engine_intf.opts_of_legacy ?limits ?fast_eval ())
        model ~template
    in
    ( Spec.wrap_streams ~document:result.Spec.document ~problems:result.Spec.problems,
      result.Spec.stats )
