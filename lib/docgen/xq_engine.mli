(** The document-generator dispatch core as an actual XQuery program, run
    by the engine in lib/xquery — "a quite straightforward recursive walk
    over the XML structure of the template".

    Supports the core subset: [for] (with [nodes="all"] or
    [nodes="type:T"], subtype-aware via the exported metamodel), [if]
    with [focus-is-type]/[has-prop]/[not] conditions, [label],
    [property], and copy-through of everything else. Failures use the
    paper's error-value convention: the only way to detect them is to
    find [<error>] elements in the result. *)

val query_source : string
(** The XQuery text itself. *)

type result = { document : Xml_base.Node.t option; error : string option }

val compile : unit -> Xquery.Engine.compiled
(** Compile {!query_source} once for reuse across many generations. *)

val generate :
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  result
(** One-shot legacy shim: {!compile} then {!generate_compiled} with the
    options the old labelled arguments translate to. *)

val generate_compiled :
  opts:Xquery.Engine.Exec_opts.t ->
  Xquery.Engine.compiled ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  result
(** Run a previously compiled dispatch core under [opts] — mode, limits,
    and worker pool all flow straight into {!Xquery.Engine.run}. A budget
    trip raises {!Xquery.Errors.Resource_exhausted} (use
    {!generate_spec} to have it mapped to a [<generation-failed>]
    document instead). *)

val generate_spec :
  ?backend:Spec.query_backend ->
  ?compiled:Xquery.Engine.compiled ->
  opts:Xquery.Engine.Exec_opts.t ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  Spec.result
(** {!Engine_intf.S}-shaped adapter. [backend] is accepted for interface
    uniformity and ignored (the xq core embeds its own queries), and so
    is [level] — the dispatch core has no enrichment phases to shed, its
    full output already is the skeleton-grade document; an
    error surfaces as a [<generation-failed>] document, like the other
    engines, and a resource-budget trip as the same document with its
    [resource:*] code plus a [problems] entry. Pass [compiled] to skip
    recompiling the core. *)
