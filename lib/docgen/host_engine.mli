(** The "Java rewrite" of the document generator.

    One exception type ([Gen_trouble]) checked only at the top; mutable
    accumulators for the table of contents and the visited set; a single
    generation pass followed by an in-place patch pass that fills
    placeholders and splices marker tables by ripping text nodes apart.
    Produces byte-identical output to {!Functional_engine} on every
    input — the contrast is architectural, and the [stats] quantify it. *)

exception
  Gen_trouble of { message : string; location : string; focus : string }
(** The one exception "nearly every function" can throw; carries what the
    paper's GenTrouble carried. Caught internally by {!generate}; exposed
    for callers embedding the walk directly. *)

val generate :
  ?backend:Spec.query_backend ->
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  ?level:Spec.level ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  Spec.result
(** Generate a document. [backend] defaults to {!Spec.Native_queries} —
    the rewrite ran its queries natively. [limits] budgets the run (one
    tick per template directive plus the queries' own accounting); a trip
    returns a [<generation-failed>] document with the [resource:*] code
    and a [problems] entry. [level = Skeleton] stops after the generation
    walk: TOC/omissions placeholders render as degraded stubs and the
    in-place patch pass never runs. *)

val generate_with_streams :
  ?backend:Spec.query_backend ->
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  Xml_base.Node.t * Spec.stats
(** Output-stream wrapper, kept compatible with the functional engine. *)

(** {1 Exposed internals (benchmarked directly)} *)

val build_grid_skeleton_and_fill :
  Awb.Model.t -> string -> Awb.Model.node list -> Awb.Model.node list -> Xml_base.Node.t
(** The skeleton-and-fill grid construction: empty [<td>]s held in a 2-D
    array, then corner, column titles, row titles, and values filled in
    four separate loops. *)
