(** Calculus query execution for the document generator, switchable
    between the native evaluator and the compiled-to-XQuery backend. The
    paper's project ran everything through XQuery; the rewrite ran
    natively. Benchmarks hold this axis fixed or vary it on purpose
    (ablation A2). *)

type t

val make :
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  Spec.query_backend ->
  Awb.Model.t ->
  Spec.stats ->
  t
(** For the XQuery backend this exports the model once up front. Every
    {!run} bumps [stats.queries_run]. [limits] threads resource budgets
    into every query this handle runs (both backends charge it;
    XQuery-backend runs enforce it inside the evaluator too);
    [fast_eval] pins or enables the engine fast paths. *)

val parse : string -> (Awb_query.Ast.t, string) result
val run : t -> ?focus:Awb.Model.node -> Awb_query.Ast.t -> Awb.Model.node list
