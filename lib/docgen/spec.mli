(** Shared specification for the document-generation engines: the
    directive vocabulary, renderings all engines must produce
    byte-for-byte, error-message texts, and the instrumentation record
    the benchmarks read. The engines differ in {e architecture} (the
    paper's subject), not in output. *)

val directive_names : string list
(** Every element name the template language treats as a directive. *)

type query_backend = Native_queries | Xquery_queries

type level = Full | Skeleton
(** Degradation level. [Full] runs every phase. [Skeleton] runs the
    generation walk only: TOC/omissions regeneration and the marker
    patch pass — the whole-document enrichment phases — are skipped,
    and their placeholders render as the degraded stubs below. All
    engines must produce byte-identical skeletons, same as full runs. *)

val level_name : level -> string
(** ["full"] / ["skeleton"]. *)

(** {1 Instrumentation} *)

type stats = {
  mutable phases : int;  (** whole-document passes performed *)
  mutable nodes_copied : int;  (** nodes allocated copying between phases *)
  mutable error_checks : int;  (** is-error tests executed (functional) *)
  mutable exceptions_raised : int;  (** Gen_trouble raised (host) *)
  mutable visited_count : int;
  mutable queries_run : int;
}

val new_stats : unit -> stats

type result = { document : Xml_base.Node.t; problems : string list; stats : stats }

(** {1 Error message texts (identical in every engine)} *)

val msg_exactly_one : string -> int -> string
val msg_missing_child : string -> string -> string
val msg_missing_attr : string -> string -> string
val msg_bad_query : string -> string -> string
val msg_no_focus : string -> string
val msg_missing_property : string -> string -> string
val msg_malformed_rich_property : string -> string -> string -> string
val msg_unknown_condition : string -> string

(** {1 Shared renderings} *)

val render_toc : (int * string) list -> Xml_base.Node.t
(** Table of contents from (depth, text) entries in document order. *)

val render_omissions :
  Awb.Model.t -> visited:(string -> bool) -> types:string list -> Xml_base.Node.t
(** Omissions: nodes of the given types never visited, sorted by label. *)

val render_toc_skeleton : unit -> Xml_base.Node.t
(** The empty stub a [Skeleton] run drops where the TOC would go. *)

val render_omissions_skeleton : unit -> Xml_base.Node.t
(** The empty stub a [Skeleton] run drops where the omissions table
    would go. *)

val grid_cell : Awb.Model.t -> string -> Awb.Model.node -> Awb.Model.node -> string
(** Grid-table cell text: how many [rel] relation instances connect row
    to col (empty string for zero). *)

val grid_corner : string
val marker_phrase : string -> string

val wrap_streams : document:Xml_base.Node.t -> problems:string list -> Xml_base.Node.t
(** The single-output-stream wrapper; split with {!Streams.split}. *)

val generation_failed :
  ?code:string -> message:string -> location:string -> unit -> Xml_base.Node.t
(** The [<generation-failed>] error document every engine returns on
    failure. [code], when non-empty, is carried in a [<code>] child —
    used for resource-budget trips (["resource:fuel"], ...) so callers
    can recover the structured taxonomy from the document. *)

val resource_failure :
  Xquery.Errors.resource -> limit:int -> used:int -> Xml_base.Node.t * string
(** A budget trip as a [<generation-failed>] document (with its
    [resource:*] code) paired with the [problems] entry describing it. *)

val path_to_string : string list -> string
(** Render a reversed directive path ("innermost first") as a location. *)
