(* Shared specification for the two document-generation engines: the
   directive vocabulary, the renderings both must produce byte-for-byte,
   the error-message texts, and the instrumentation record the benchmarks
   read.

   The two engines differ in *architecture* (the paper's subject), not in
   output: Functional_engine is the XQuery-style implementation (error
   values, multiple whole-document phases, no mutation); Host_engine is
   the "Java rewrite" (exceptions, mutable accumulators, in-place
   patching). On any input, their final outputs must be identical. *)

module N = Xml_base.Node

(* The template language:

   <document title="...">        root; copied with processed children
   <for nodes="CALCULUS">        iterate; binds the focus, marks visited
   <if><test>COND</test><then>..</then><else>..</else></if>
     COND: <focus-is-type type="T"/> | <has-prop name="P"/>
           | <nonempty query="Q"/> | <not>COND</not>
   <label/>                      label of the focus
   <property name="P"/>          property of the focus ("" when absent)
   <required-property name="P"/> property that must exist (else error)
   <rich-property name="P"/>     HTML-valued property, parsed and spliced
                                 as XML (error if malformed)
   <value-of query="Q" separator=", "/>
   <count-of query="Q"/>
   <with-single type="T">        binds focus to the unique T node (else error)
   <section><heading>..</heading> BODY </section>
   <table-of-contents/>
   <table-of-omissions types="T1 T2"/>
   <grid-table rows="Q" cols="Q" rel="R"/>
   <marker-table name="NAME" rows="Q" cols="Q" rel="R"/>
                                 defines a table spliced wherever the text
                                 "NAME-GOES-HERE" appears
   anything else                 copied; children processed *)

let directive_names =
  [
    "document"; "for"; "if"; "test"; "then"; "else"; "focus-is-type"; "has-prop";
    "nonempty"; "not"; "label"; "property"; "required-property"; "rich-property";
    "value-of"; "count-of";
    "with-single"; "section"; "heading"; "table-of-contents"; "table-of-omissions";
    "grid-table"; "marker-table";
  ]

type query_backend = Native_queries | Xquery_queries

(* Degradation level. [Full] runs every phase. [Skeleton] is the
   brownout answer: the single generation walk only, with the optional
   enrichment phases — TOC/omissions regeneration and the marker patch
   pass, exactly the whole-document copies the paper shows dominating
   the functional engine's cost — skipped. Placeholders render as empty
   stub divs (below) so a skeleton is still a valid document, and both
   engines must produce byte-identical skeletons just as they do full
   documents. *)
type level = Full | Skeleton

let level_name = function Full -> "full" | Skeleton -> "skeleton"

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable phases : int; (* whole-document passes performed *)
  mutable nodes_copied : int; (* nodes allocated copying between phases *)
  mutable error_checks : int; (* is-error tests executed (functional) *)
  mutable exceptions_raised : int; (* Gen_trouble raised (host) *)
  mutable visited_count : int;
  mutable queries_run : int;
}

let new_stats () =
  {
    phases = 0;
    nodes_copied = 0;
    error_checks = 0;
    exceptions_raised = 0;
    visited_count = 0;
    queries_run = 0;
  }

type result = { document : N.t; problems : string list; stats : stats }

(* ------------------------------------------------------------------ *)
(* Error message texts (identical in both engines)                     *)
(* ------------------------------------------------------------------ *)

let msg_exactly_one ty n =
  if n = 0 then
    Printf.sprintf "There should have been exactly one %s node, but there were none." ty
  else
    Printf.sprintf "There should have been exactly one %s node, but there were %d." ty n

let msg_missing_child parent child =
  Printf.sprintf "The <%s> directive needs a <%s> child, but there is none." parent child

let msg_missing_attr elt attr =
  Printf.sprintf "The <%s> directive needs a %s attribute, but there is none." elt attr

let msg_bad_query q reason = Printf.sprintf "Cannot parse the query %S: %s" q reason

let msg_no_focus directive =
  Printf.sprintf "The <%s> directive needs a focus, but no <for> is in effect." directive

let msg_missing_property pname label =
  Printf.sprintf "Node %S should have a property %s, but it does not." label pname

let msg_malformed_rich_property pname label reason =
  Printf.sprintf "Property %s of node %S should be well-formed XML, but: %s" pname
    label reason

let msg_unknown_condition name =
  Printf.sprintf "Unknown condition <%s> inside <test>." name

(* ------------------------------------------------------------------ *)
(* Shared renderings                                                   *)
(* ------------------------------------------------------------------ *)

(* Table of contents from (depth, text) entries in document order. *)
let render_toc entries =
  let item (depth, text) =
    N.element "li"
      ~attrs:[ N.attribute "class" (Printf.sprintf "toc-depth-%d" depth) ]
      ~children:[ N.text text ]
  in
  N.element "div"
    ~attrs:[ N.attribute "class" "table-of-contents" ]
    ~children:[ N.element "ol" ~children:(List.map item entries) ]

(* The degraded stand-ins a Skeleton run drops in place of the real
   tables: structurally valid, visibly marked, and cheap. *)
let render_toc_skeleton () =
  N.element "div" ~attrs:[ N.attribute "class" "table-of-contents degraded" ]

let render_omissions_skeleton () =
  N.element "div" ~attrs:[ N.attribute "class" "table-of-omissions degraded" ]

(* Omissions: nodes of the given types never visited, sorted by label. *)
let render_omissions model ~visited ~types =
  let candidates =
    List.concat_map (fun ty -> Awb.Model.nodes_of_type model ty) types
  in
  let seen = Hashtbl.create 16 in
  let candidates =
    List.filter
      (fun (n : Awb.Model.node) ->
        if Hashtbl.mem seen n.Awb.Model.id then false
        else begin
          Hashtbl.add seen n.Awb.Model.id ();
          true
        end)
      candidates
  in
  let omitted = List.filter (fun (n : Awb.Model.node) -> not (visited n.Awb.Model.id)) candidates in
  let omitted =
    List.sort
      (fun a b -> compare (Awb.Model.label model a) (Awb.Model.label model b))
      omitted
  in
  let item n =
    N.element "li"
      ~children:
        [
          N.text
            (Printf.sprintf "%s (%s)" (Awb.Model.label model n) n.Awb.Model.ntype);
        ]
  in
  N.element "div"
    ~attrs:[ N.attribute "class" "table-of-omissions" ]
    ~children:
      (if omitted = [] then [ N.element "p" ~children:[ N.text "Nothing was omitted." ] ]
       else [ N.element "ul" ~children:(List.map item omitted) ])

(* Grid-table cell: how many [rel] relation objects connect row to col. *)
let grid_cell model rel (row : Awb.Model.node) (col : Awb.Model.node) =
  let mm = Awb.Model.metamodel model in
  let count =
    List.length
      (List.filter
         (fun (r : Awb.Model.relation) ->
           Awb.Metamodel.is_subrelation mm r.Awb.Model.rtype rel
           && r.Awb.Model.source = row.Awb.Model.id
           && r.Awb.Model.target = col.Awb.Model.id)
         (Awb.Model.relations model))
  in
  if count = 0 then "" else string_of_int count

let grid_corner = {|row\col|}

let marker_phrase name = name ^ "-GOES-HERE"

(* The wrapper around the single output stream: the functional engine can
   only produce one stream, so document and problem report travel together
   and must be split afterwards (Streams.split). *)
let wrap_streams ~document ~problems =
  N.element "output-streams"
    ~children:
      [
        N.element "document" ~children:[ document ];
        N.element "problems"
          ~children:(List.map (fun p -> N.element "problem" ~children:[ N.text p ]) problems);
      ]

let generation_failed ?(code = "") ~message ~location () =
  N.element "generation-failed"
    ~children:
      ((if code = "" then [] else [ N.element "code" ~children:[ N.text code ] ])
      @ [
          N.element "message" ~children:[ N.text message ];
          N.element "location" ~children:[ N.text location ];
        ])

(* A resource-budget trip, in the engines' error-value shape: the
   structured code rides in a <code> child so the service can rebuild the
   taxonomy from the document, and the trip also lands in [problems] so
   plain callers see it without digging. *)
let resource_failure (r : Xquery.Errors.resource) ~limit ~used =
  let code = Xquery.Errors.resource_code r in
  let message = Xquery.Errors.resource_message r ~limit ~used in
  let document = generation_failed ~code ~message ~location:"" () in
  (document, Printf.sprintf "resource budget tripped (%s): %s" code message)

let path_to_string path = String.concat "/" (List.rev path)
