(* Calculus query execution for the document generator, switchable between
   the native evaluator and the XQuery backend (the paper's original
   implementation ran everything through XQuery; the rewrite ran natively —
   benchmarks need to hold this axis fixed or vary it on purpose). *)

type t = {
  model : Awb.Model.t;
  backend : Spec.query_backend;
  export_root : Xml_base.Node.t option; (* prepared once for the XQuery backend *)
  stats : Spec.stats;
  limits : Xquery.Context.limits option; (* threaded into XQuery-backend runs *)
  fast_eval : bool option;
}

let make ?limits ?fast_eval backend model stats =
  let export_root =
    match backend with
    | Spec.Native_queries -> None
    | Spec.Xquery_queries ->
      Some (List.hd (Xml_base.Node.children (Awb.Xml_io.export model)))
  in
  { model; backend; export_root; stats; limits; fast_eval }

let parse src =
  match Awb_query.Parser.parse src with
  | q -> Ok q
  | exception Awb_query.Parser.Parse_error reason -> Error reason

let run t ?focus (q : Awb_query.Ast.t) : Awb.Model.node list =
  t.stats.Spec.queries_run <- t.stats.Spec.queries_run + 1;
  (* The native backend never enters the XQuery evaluator, so its budget
     accounting happens here: one step per query keeps a runaway template
     loop (a query per iteration) under the same fuel/deadline regime. *)
  (match t.limits with Some l -> Xquery.Context.tick l | None -> ());
  match t.backend with
  | Spec.Native_queries -> Awb_query.Native.eval ?focus t.model q
  | Spec.Xquery_queries ->
    let export_root = Option.get t.export_root in
    Awb_query.To_xquery.eval_on_export ?focus ?limits:t.limits ?fast_eval:t.fast_eval
      t.model ~export_root q
