(** The XQuery-style document generator — the paper's first implementation,
    reproduced architecturally.

    Pure generation logic: no mutation, no exceptions. Errors travel as
    [<error>] elements tested at every call site; tables of contents,
    omissions, and marker tables ride the output inside [<INTERNAL-DATA>]
    elements and are resolved by five whole-document copy phases. The
    [stats] in the result count the architecture's cost: phases, nodes
    copied between phases, and is-error checks executed. *)

val generate :
  ?backend:Spec.query_backend ->
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  ?level:Spec.level ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  Spec.result
(** Generate a document. [backend] defaults to {!Spec.Xquery_queries} —
    the configuration the paper's project actually ran. On a generation
    error the result document is a [<generation-failed>] element carrying
    the message and directive location. [limits] budgets the run (one
    tick per template directive plus the queries' own accounting); a trip
    returns a [<generation-failed>] document with the [resource:*] code
    and a [problems] entry. [level = Skeleton] emits no [<INTERNAL-DATA>]
    and skips phases 2..5 entirely — the whole-document copies are the
    cost being shed — producing the same skeleton as the host engine. *)

val generate_with_streams :
  ?backend:Spec.query_backend ->
  ?limits:Xquery.Context.limits ->
  ?fast_eval:bool ->
  Awb.Model.t ->
  template:Xml_base.Node.t ->
  Xml_base.Node.t * Spec.stats
(** Like {!generate} but wraps document + problems into the single
    [<output-streams>] element XQuery's one-output-stream world requires;
    split it with {!Streams.split} (or {!Streams.split_via_xslt}). *)

(** {1 Exposed internals (benchmarked directly)} *)

val build_grid_all_at_once :
  Awb.Model.t -> string -> Awb.Model.node list -> Awb.Model.node list -> Xml_base.Node.t
(** The all-at-once grid-table construction: each row, and then the
    table, produced in its entirety. Compared against
    {!Host_engine.build_grid_skeleton_and_fill} by experiment E4. *)
