(* The document-generator core as an actual XQuery program, run by the
   engine in lib/xquery. This is the real thing the paper describes: "a
   quite straightforward recursive walk over the XML structure of the
   template ... mostly lines of the form if ($tag-name = "for") then
   generate_for(...)". It supports the dispatch core (for / if /
   focus-is-type / has-prop / label / property / copy-through) and uses
   the paper's error-value convention — a failing computation returns an
   <error> element, because XQuery gives it nothing better.

   The model and metamodel arrive as the XML exports bound to $model and
   $mm; the template is bound to $template. *)

module N = Xml_base.Node

let query_source =
  {|
declare function local:is-subtype($mm, $sub, $super) {
  if ($sub eq $super) then true()
  else
    let $decl := $mm/node-type[@name = $sub]
    return
      if (empty($decl)) then false()
      else if (empty($decl/@parent)) then false()
      else local:is-subtype($mm, string($decl[1]/@parent), $super)
};

declare function local:nodes-of-type($model, $mm, $ty) {
  for $n in $model/node
  where local:is-subtype($mm, string($n/@type), $ty)
  return $n
};

declare function local:label($n) {
  string(($n/property[@name = "name"], $n/@id)[1])
};

(: The error-value convention. A singleton <error> element means failure;
   there is no other channel. :)
declare function local:mk-error($message) {
  <error><message>{$message}</message></error>
};

declare function local:is-error($v) {
  (count($v) eq 1) and ($v[1] instance of element(error))
};

(: Evaluate a <test> condition to true/false, or an <error>. :)
declare function local:condition($cond, $mm, $focus) {
  if (name($cond) eq "focus-is-type") then
    if (empty($focus)) then local:mk-error("focus-is-type needs a focus")
    else local:is-subtype($mm, string($focus[1]/@type), string($cond/@type))
  else if (name($cond) eq "has-prop") then
    if (empty($focus)) then local:mk-error("has-prop needs a focus")
    else exists($focus[1]/property[@name = string($cond/@name)])
  else if (name($cond) eq "not") then
    let $inner := local:condition(($cond/*)[1], $mm, $focus)
    return if (local:is-error($inner)) then $inner else not($inner)
  else local:mk-error(concat("unknown condition ", name($cond)))
};

(: The for directive understands nodes="all" and nodes="type:T". :)
declare function local:for-nodes($spec, $model, $mm) {
  if ($spec eq "all") then $model/node
  else if (starts-with($spec, "type:")) then
    local:nodes-of-type($model, $mm, substring-after($spec, "type:"))
  else local:mk-error(concat("cannot understand nodes spec ", $spec))
};

declare function local:gen-kids($t, $model, $mm, $focus) {
  for $k in $t/node() return local:gen($k, $model, $mm, $focus)
};

declare function local:gen($t, $model, $mm, $focus) {
  if (exists($t[self::text()])) then text { string($t) }
  else if (empty($t[self::element()])) then ()
  else if (name($t) eq "for") then
    let $nodes := local:for-nodes(string($t/@nodes), $model, $mm)
    return
      if (local:is-error($nodes)) then $nodes
      else for $n in $nodes return local:gen-kids($t, $model, $mm, $n)
  else if (name($t) eq "if") then
    let $test := ($t/test/*)[1]
    return
      if (empty($test)) then local:mk-error("if needs a test")
      else
        let $b := local:condition($test, $mm, $focus)
        return
          if (local:is-error($b)) then $b
          else if ($b) then local:gen-kids(($t/then)[1], $model, $mm, $focus)
          else local:gen-kids(($t/else)[1], $model, $mm, $focus)
  else if (name($t) eq "label") then
    if (empty($focus)) then local:mk-error("label needs a focus")
    else text { local:label($focus[1]) }
  else if (name($t) eq "property") then
    if (empty($focus)) then local:mk-error("property needs a focus")
    else
      let $v := $focus[1]/property[@name = string($t/@name)]
      return if (empty($v)) then () else text { string($v[1]) }
  else
    element { name($t) } {
      (for $a in $t/attribute::* return attribute { name($a) } { string($a) }),
      local:gen-kids($t, $model, $mm, $focus)
    }
};

local:gen($template, $model, $mm, ())
|}

type result = { document : N.t option; error : string option }

(* The dispatch core compiles to a reusable program: callers that serve
   many requests (the service layer) compile once and run many times
   instead of re-parsing ~90 lines of XQuery per document. *)
let compile () = Xquery.Engine.compile query_source

let generate_compiled ~(opts : Xquery.Engine.Exec_opts.t) compiled model ~template =
  let mm = Awb.Model.metamodel model in
  let export = Awb.Xml_io.export model in
  let model_root = List.hd (N.children export) in
  let mm_root = Awb.Xml_io.export_metamodel mm in
  let template_root =
    match N.kind template with
    | N.Document -> List.hd (N.child_elements template)
    | _ -> template
  in
  let opts =
    {
      opts with
      Xquery.Engine.Exec_opts.vars =
        [
          ("model", Xquery.Value.of_node model_root);
          ("mm", Xquery.Value.of_node mm_root);
          ("template", Xquery.Value.of_node template_root);
        ]
        @ opts.Xquery.Engine.Exec_opts.vars;
    }
  in
  let result = Xquery.Engine.run ~opts compiled in
  (* The footnote problem, live: the only way to know the generation
     failed is to look for <error> elements in the value. *)
  let nodes =
    List.filter_map (function Xquery.Value.Node n -> Some n | Xquery.Value.Atomic _ -> None) result
  in
  let errors =
    List.concat_map
      (fun n -> N.find_all (fun e -> N.is_element e && N.name e = "error") n)
      nodes
  in
  match (errors, nodes) with
  | e :: _, _ -> { document = None; error = Some (N.string_value e) }
  | [], [ doc ] -> { document = Some doc; error = None }
  | [], _ -> { document = None; error = Some "template did not produce a single element" }

let generate ?limits ?fast_eval model ~template =
  generate_compiled
    ~opts:(Engine_intf.opts_of_legacy ?limits ?fast_eval ())
    (compile ()) model ~template

(* Adapter to the engine-uniform result shape (Engine_intf.S). The xq
   core embeds its own queries, so [backend] is accepted and ignored;
   a generation error becomes the same <generation-failed> document the
   other two engines produce, and a resource-budget trip inside the
   evaluator the same <generation-failed> + problems entry as the other
   engines'. The [opts] level is likewise ignored — the dispatch core has
   no enrichment phases to shed. *)
let generate_spec ?backend:_ ?compiled ~(opts : Xquery.Engine.Exec_opts.t) model
    ~template : Spec.result =
  let stats = Spec.new_stats () in
  stats.Spec.phases <- 1;
  stats.Spec.queries_run <- 1;
  match
    let c = match compiled with Some c -> c | None -> compile () in
    generate_compiled ~opts c model ~template
  with
  | exception Xquery.Errors.Resource_exhausted { resource; limit; used } ->
    let document, problem = Spec.resource_failure resource ~limit ~used in
    { Spec.document; problems = [ problem ]; stats }
  | { document = Some doc; _ } -> { Spec.document = doc; problems = []; stats }
  | { document = None; error } ->
    {
      Spec.document =
        Spec.generation_failed
          ~message:(Option.value ~default:"generation failed" error)
          ~location:"" ();
      problems = [];
      stats;
    }
