(* The physical plan: a small first-order instruction set the compiler
   (Compile) lowers the XQuery AST onto and the executor (Plan_exec)
   runs without consulting the AST again.

   The interesting operators are the ones the tree-walking interpreter
   cannot express: [P_steps] fuses a whole chain of path steps (with any
   pushed-down node-test predicates) into one pipelined walk over node
   arrays; [P_for_loop] is a FLWOR lowered to a tight loop that mutates
   a slot in a flat frame instead of threading a string-keyed
   environment; [P_call_user]/[P_call_builtin] are call sites resolved
   at compile time to an index or a closure, so no name is looked up at
   run time. Variables in general live in integer slots ([P_slot]);
   only genuinely global names ([P_global]) still resolve dynamically,
   preserving the interpreter's declaration-order semantics.

   Plans render to text for [--explain]; the rendering is the
   user-facing contract documented in EXPERIMENTS.md. *)

type step = {
  axis : Ast.axis;
  test : Ast.node_test;
  preds : t array;
      (* pushed-down predicates: node-only pipelines evaluated as an
         emptiness test per candidate node (never positional) *)
}

and t =
  | P_const of Value.sequence (* literal, built at compile time *)
  | P_slot of int * string (* frame slot; the name is for explain only *)
  | P_global of string (* external / declared global variable *)
  | P_context_item
  | P_root
  | P_seq of t array
  | P_range of t * t
  | P_arith of Ast.arith * t * t
  | P_neg of t
  | P_general_cmp of Ast.cmp * t * t
  | P_value_cmp of Ast.cmp * t * t
  | P_node_cmp of Ast.node_cmp * t * t
  | P_and of t * t
  | P_or of t * t
  | P_set_op of Ast.set_op * t * t (* hash set algebra over node ids *)
  | P_if of t * t * t
  | P_steps of steps_op
  | P_path of t * t (* general e1/e2 when e2 is not a step chain *)
  | P_filter_pos of t * int (* e[3]: select by index *)
  | P_filter of t * t (* general predicate: positional or boolean *)
  | P_exists of t * bool (* flag: early-exit walk is available *)
  | P_empty of t * bool
  | P_ebv of t (* fn:boolean *)
  | P_not of t
  | P_call_builtin of
      string * (Context.dyn -> Value.sequence list -> Value.sequence) * t array
  | P_call_user of int * string * t array (* direct index into funcs *)
  | P_call_unknown of string * int (* raises XPST0017 when executed *)
  | P_flwor of pclause array * porder array * t
  | P_for_loop of {
      slot : int;
      var : string;
      typ : Stype.t option;
      src : t;
      body : t;
      par_safe : bool;
          (* body provably free of trace/doc effects: eligible for
             data-parallel fragment execution *)
    }
  | P_quantified of Ast.quantifier * (int * string * t) array * t
  | P_cast of Ast.cast_target * t
  | P_castable of Ast.cast_target * t
  | P_instance_of of t * Stype.t
  | P_treat of t * Stype.t
  | P_typeswitch of {
      operand : t;
      cases : pcase array;
      default_slot : int option;
      default_var : string option;
      default : t;
    }
  | P_elem of pname * t array
  | P_attr of pname * attr_part array
  | P_text of t
  | P_doc of t array
  | P_comment of t

and steps_op = {
  base : t;
  steps : step array;
  sorted_if_single : bool;
      (* statically proven: a singleton base leaves the pipeline output
         already in document order, so the final sort can be skipped *)
  raw : bool;
      (* a bare step outside any path: deliver axis-walk order with no
         final document-order pass, as the interpreter does *)
}

and pclause =
  | PC_for of {
      slot : int;
      var : string;
      typ : Stype.t option;
      pos_slot : int option;
      pos_var : string option;
      src : t;
    }
  | PC_let of { slot : int; var : string; typ : Stype.t option; value : t }
  | PC_where of t

and porder = { key : t; descending : bool; empty_greatest : bool }
and pcase = { c_slot : int option; c_var : string option; c_type : Stype.t; c_body : t }
and pname = PN_static of string | PN_computed of t
and attr_part = PA_lit of string | PA_dyn of t

type pfunc = {
  fname : string;
  params : (string * Stype.t option) array;
  ret_type : Stype.t option;
  frame_size : int;
  body : t;
  memoizable : bool;
      (* provably pure: no trace/doc and no node construction anywhere in
         the body's call graph, so a call is a function of its argument
         values (atomics by value, nodes by identity) and the executor
         may cache results per run *)
}

type pglobal = { gname : string; gtype : Stype.t option; gframe : int; init : t }

(* What the plan rewriter did while lowering; rendered by --explain next
   to the PR-2 optimizer's own stats. *)
type stats = {
  mutable steps_fused : int; (* path steps merged into pipelines *)
  mutable preds_fused : int; (* predicates pushed into step walks *)
  mutable loops_tightened : int; (* FLWORs lowered to tight slot loops *)
  mutable early_exits : int; (* exists/empty probes that can stop early *)
  mutable calls_resolved : int; (* call sites bound at compile time *)
  mutable funcs_memoized : int; (* functions proved pure and memoizable *)
}

let new_stats () =
  {
    steps_fused = 0;
    preds_fused = 0;
    loops_tightened = 0;
    early_exits = 0;
    calls_resolved = 0;
    funcs_memoized = 0;
  }

type program = {
  funcs : pfunc array;
  globals : pglobal array;
  main_frame : int;
  main : t;
  pstats : stats;
}

(* ------------------------------------------------------------------ *)
(* Rendering (the --explain output)                                    *)
(* ------------------------------------------------------------------ *)

let test_name = function
  | Ast.Name_test n -> n
  | Ast.Wildcard -> "*"
  | Ast.Kind_node -> "node()"
  | Ast.Kind_text -> "text()"
  | Ast.Kind_comment -> "comment()"
  | Ast.Kind_pi None -> "processing-instruction()"
  | Ast.Kind_pi (Some t) -> Printf.sprintf "processing-instruction(%s)" t
  | Ast.Kind_element None -> "element()"
  | Ast.Kind_element (Some n) -> Printf.sprintf "element(%s)" n
  | Ast.Kind_attribute None -> "attribute()"
  | Ast.Kind_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
  | Ast.Kind_document -> "document-node()"

let cmp_name = function
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Lt -> "lt"
  | Ast.Le -> "le"
  | Ast.Gt -> "gt"
  | Ast.Ge -> "ge"

let arith_name = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "div"
  | Ast.Idiv -> "idiv"
  | Ast.Mod -> "mod"

let set_op_name = function
  | Ast.Union -> "union"
  | Ast.Intersect -> "intersect"
  | Ast.Except -> "except"

let render_program (p : program) : string =
  let b = Buffer.create 2048 in
  let line indent fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b (String.make (2 * indent) ' ');
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let rec go indent (plan : t) =
    match plan with
    | P_const v -> line indent "const %s" (Value.to_display_string v)
    | P_slot (i, name) -> line indent "slot %d ($%s)" i name
    | P_global name -> line indent "global $%s" name
    | P_context_item -> line indent "context-item"
    | P_root -> line indent "root"
    | P_seq parts ->
      line indent "seq";
      Array.iter (go (indent + 1)) parts
    | P_range (a, z) ->
      line indent "range";
      go (indent + 1) a;
      go (indent + 1) z
    | P_arith (op, a, z) ->
      line indent "arith %s" (arith_name op);
      go (indent + 1) a;
      go (indent + 1) z
    | P_neg a ->
      line indent "neg";
      go (indent + 1) a
    | P_general_cmp (op, a, z) ->
      line indent "general-cmp %s" (cmp_name op);
      go (indent + 1) a;
      go (indent + 1) z
    | P_value_cmp (op, a, z) ->
      line indent "value-cmp %s" (cmp_name op);
      go (indent + 1) a;
      go (indent + 1) z
    | P_node_cmp (op, a, z) ->
      line indent "node-cmp %s"
        (match op with Ast.Is -> "is" | Ast.Precedes -> "<<" | Ast.Follows -> ">>");
      go (indent + 1) a;
      go (indent + 1) z
    | P_and (a, z) ->
      line indent "and";
      go (indent + 1) a;
      go (indent + 1) z
    | P_or (a, z) ->
      line indent "or";
      go (indent + 1) a;
      go (indent + 1) z
    | P_set_op (op, a, z) ->
      line indent "hash-%s" (set_op_name op);
      go (indent + 1) a;
      go (indent + 1) z
    | P_if (c, t, f) ->
      line indent "if";
      go (indent + 1) c;
      go (indent + 1) t;
      go (indent + 1) f
    | P_steps { base; steps; sorted_if_single; raw } ->
      line indent "steps%s%s [%s]"
        (if raw then " (axis-order)" else "")
        (if sorted_if_single then " (order-free)" else "")
        (String.concat "/"
           (Array.to_list
              (Array.map
                 (fun s ->
                   Printf.sprintf "%s::%s%s" (Ast.axis_name s.axis) (test_name s.test)
                     (if Array.length s.preds = 0 then ""
                      else Printf.sprintf "[%d preds]" (Array.length s.preds)))
                 steps)));
      go (indent + 1) base;
      Array.iter
        (fun s -> Array.iter (fun p -> go (indent + 1) p) s.preds)
        steps
    | P_path (a, z) ->
      line indent "path";
      go (indent + 1) a;
      go (indent + 1) z
    | P_filter_pos (base, k) ->
      line indent "select-index %d" k;
      go (indent + 1) base
    | P_filter (base, pred) ->
      line indent "filter";
      go (indent + 1) base;
      go (indent + 1) pred
    | P_exists (a, early) ->
      line indent "exists%s" (if early then " (early-exit)" else "");
      go (indent + 1) a
    | P_empty (a, early) ->
      line indent "empty%s" (if early then " (early-exit)" else "");
      go (indent + 1) a
    | P_ebv a ->
      line indent "ebv";
      go (indent + 1) a
    | P_not a ->
      line indent "not";
      go (indent + 1) a
    | P_call_builtin (name, _, args) ->
      line indent "call-builtin %s/%d" name (Array.length args);
      Array.iter (go (indent + 1)) args
    | P_call_user (idx, name, args) ->
      line indent "call-user #%d %s/%d" idx name (Array.length args);
      Array.iter (go (indent + 1)) args
    | P_call_unknown (name, arity) -> line indent "call-unknown %s/%d" name arity
    | P_flwor (clauses, order_by, ret) ->
      line indent "flwor";
      Array.iter
        (function
          | PC_for { slot; var; pos_slot; src; _ } ->
            line (indent + 1) "for $%s -> slot %d%s" var slot
              (match pos_slot with
              | Some s -> Printf.sprintf " (pos -> slot %d)" s
              | None -> "");
            go (indent + 2) src
          | PC_let { slot; var; value; _ } ->
            line (indent + 1) "let $%s -> slot %d" var slot;
            go (indent + 2) value
          | PC_where cond ->
            line (indent + 1) "where";
            go (indent + 2) cond)
        clauses;
      Array.iter
        (fun o ->
          line (indent + 1) "order-by%s%s"
            (if o.descending then " descending" else "")
            (if o.empty_greatest then " empty-greatest" else "");
          go (indent + 2) o.key)
        order_by;
      line (indent + 1) "return";
      go (indent + 2) ret
    | P_for_loop { slot; var; src; body; par_safe; _ } ->
      line indent "for-loop $%s -> slot %d%s" var slot
        (if par_safe then " (parallel-ok)" else "");
      go (indent + 1) src;
      go (indent + 1) body
    | P_quantified (q, bindings, body) ->
      line indent "%s"
        (match q with Ast.Some_q -> "some" | Ast.Every_q -> "every");
      Array.iter
        (fun (slot, var, src) ->
          line (indent + 1) "bind $%s -> slot %d" var slot;
          go (indent + 2) src)
        bindings;
      line (indent + 1) "satisfies";
      go (indent + 2) body
    | P_cast (t, a) ->
      line indent "cast %s"
        (match t with
        | Ast.To_int -> "xs:integer"
        | Ast.To_double -> "xs:double"
        | Ast.To_string -> "xs:string"
        | Ast.To_bool -> "xs:boolean");
      go (indent + 1) a
    | P_castable (_, a) ->
      line indent "castable";
      go (indent + 1) a
    | P_instance_of (a, ty) ->
      line indent "instance-of %s" (Stype.to_string ty);
      go (indent + 1) a
    | P_treat (a, ty) ->
      line indent "treat-as %s" (Stype.to_string ty);
      go (indent + 1) a
    | P_typeswitch { operand; cases; default; _ } ->
      line indent "typeswitch";
      go (indent + 1) operand;
      Array.iter
        (fun c ->
          line (indent + 1) "case %s" (Stype.to_string c.c_type);
          go (indent + 2) c.c_body)
        cases;
      line (indent + 1) "default";
      go (indent + 2) default
    | P_elem (name, content) ->
      (match name with
      | PN_static n -> line indent "element %s" n
      | PN_computed e ->
        line indent "element (computed)";
        go (indent + 1) e);
      Array.iter (go (indent + 1)) content
    | P_attr (name, parts) ->
      (match name with
      | PN_static n -> line indent "attribute %s" n
      | PN_computed e ->
        line indent "attribute (computed)";
        go (indent + 1) e);
      Array.iter
        (function
          | PA_lit s -> line (indent + 1) "lit %S" s
          | PA_dyn p -> go (indent + 1) p)
        parts
    | P_text a ->
      line indent "text";
      go (indent + 1) a
    | P_doc content ->
      line indent "document";
      Array.iter (go (indent + 1)) content
    | P_comment a ->
      line indent "comment";
      go (indent + 1) a
  in
  Buffer.add_string b "plan:\n";
  Array.iteri
    (fun i f ->
      line 1 "function #%d %s/%d (frame %d)%s" i f.fname (Array.length f.params)
        f.frame_size
        (if f.memoizable then " (memo)" else "");
      go 2 f.body)
    p.funcs;
  Array.iter
    (fun g ->
      line 1 "global $%s (frame %d)" g.gname g.gframe;
      go 2 g.init)
    p.globals;
  line 1 "main (frame %d)" p.main_frame;
  go 2 p.main;
  line 1
    "(: plan rewriter: %d steps fused, %d predicates pushed, %d loops tightened, %d \
     early exits, %d calls resolved, %d functions memoized :)"
    p.pstats.steps_fused p.pstats.preds_fused p.pstats.loops_tightened
    p.pstats.early_exits p.pstats.calls_resolved p.pstats.funcs_memoized;
  Buffer.contents b
