exception Error of { code : string; message : string }

let raise_error code fmt =
  Format.kasprintf (fun message -> raise (Error { code = "err:" ^ code; message })) fmt

type resource = Fuel | Depth | Nodes | Deadline | Stack | Memory

exception Resource_exhausted of { resource : resource; limit : int; used : int }

let resource_name = function
  | Fuel -> "fuel"
  | Depth -> "depth"
  | Nodes -> "nodes"
  | Deadline -> "deadline"
  | Stack -> "stack"
  | Memory -> "memory"

let resource_code r = "resource:" ^ resource_name r

let resource_of_code = function
  | "resource:fuel" -> Some Fuel
  | "resource:depth" -> Some Depth
  | "resource:nodes" -> Some Nodes
  | "resource:deadline" -> Some Deadline
  | "resource:stack" -> Some Stack
  | "resource:memory" -> Some Memory
  | _ -> None

let resource_message resource ~limit ~used =
  match resource with
  | Fuel -> Printf.sprintf "evaluation fuel exhausted (%d steps, limit %d)" used limit
  | Depth ->
    Printf.sprintf "user-function recursion too deep (depth %d, limit %d)" used limit
  | Nodes ->
    Printf.sprintf "node allocation budget exhausted (%d nodes, limit %d)" used limit
  | Deadline ->
    Printf.sprintf "deadline exceeded mid-evaluation (%.1f ms past deadline)"
      (float_of_int (used - limit) /. 1e6)
  | Stack -> "evaluation overflowed the stack"
  | Memory -> "evaluation ran out of memory"

let exhaust resource ~limit ~used =
  raise (Resource_exhausted { resource; limit; used })

let code_of = function
  | Error { code; _ } -> Some code
  | Resource_exhausted { resource; _ } -> Some (resource_code resource)
  | _ -> None

let xpst0003 = "XPST0003"
let xpst0008 = "XPST0008"
let xpst0017 = "XPST0017"
let xpdy0002 = "XPDY0002"
let xpty0004 = "XPTY0004"
let xpty0018 = "XPTY0018"
let xpty0019 = "XPTY0019"
let forg0001 = "FORG0001"
let forg0006 = "FORG0006"
let foar0001 = "FOAR0001"
let foca0002 = "FOCA0002"
let fons0004 = "FONS0004"
let xqty0024 = "XQTY0024"
let xqdy0025 = "XQDY0025"
let foer0000 = "FOER0000"
let fodc0002 = "FODC0002"
let forx0002 = "FORX0002"
