module N = Xml_base.Node

type atomic =
  | A_int of int
  | A_double of float
  | A_string of string
  | A_bool of bool
  | A_untyped of string

type item = Atomic of atomic | Node of N.t
type sequence = item list

let empty = []
let singleton i = [ i ]
let of_int n = [ Atomic (A_int n) ]
let of_double f = [ Atomic (A_double f) ]
let of_string s = [ Atomic (A_string s) ]
let of_bool b = [ Atomic (A_bool b) ]
let of_node n = [ Node n ]
let of_nodes ns = List.map (fun n -> Node n) ns
let seq = List.concat

let atomize s =
  List.map (function Atomic a -> a | Node n -> A_untyped (N.string_value n)) s

let atomize_seq (s : item Seq.t) : atomic Seq.t =
  Seq.map (function Atomic a -> a | Node n -> A_untyped (N.string_value n)) s

(* Canonical lexical forms. Doubles print like XPath: integral values
   without a fractional part, NaN/INF spelled the XSD way. *)
let string_of_double f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    s

let string_of_atomic = function
  | A_int n -> string_of_int n
  | A_double f -> string_of_double f
  | A_string s | A_untyped s -> s
  | A_bool b -> if b then "true" else "false"

let atomic_type_name = function
  | A_int _ -> "xs:integer"
  | A_double _ -> "xs:double"
  | A_string _ -> "xs:string"
  | A_bool _ -> "xs:boolean"
  | A_untyped _ -> "xs:untypedAtomic"

let parse_double s =
  let s' = String.trim s in
  match s' with
  | "INF" -> Some Float.infinity
  | "-INF" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt s'

let double_of_atomic = function
  | A_int n -> float_of_int n
  | A_double f -> f
  | A_bool b -> if b then 1.0 else 0.0
  | A_string s | A_untyped s -> (
    match parse_double s with
    | Some f -> f
    | None -> Errors.raise_error Errors.forg0001 "cannot cast %S to xs:double" s)

let cast_to_int a =
  match a with
  | A_int n -> n
  | A_bool b -> if b then 1 else 0
  | A_double f ->
    if Float.is_nan f || Float.is_integer f = false then
      (* xs:integer() truncates toward zero per XQuery cast rules. *)
      if Float.is_nan f || Float.abs f = Float.infinity then
        Errors.raise_error Errors.foca0002 "cannot cast %s to xs:integer"
          (string_of_double f)
      else int_of_float (Float.trunc f)
    else int_of_float f
  | A_string s | A_untyped s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> Errors.raise_error Errors.forg0001 "cannot cast %S to xs:integer" s)

let cast_to_bool = function
  | A_bool b -> b
  | A_int n -> n <> 0
  | A_double f -> (not (Float.is_nan f)) && f <> 0.0
  | A_string s | A_untyped s -> (
    match String.trim s with
    | "true" | "1" -> true
    | "false" | "0" -> false
    | s -> Errors.raise_error Errors.forg0001 "cannot cast %S to xs:boolean" s)

let atomize_one op s =
  match atomize s with
  | [ a ] -> a
  | items ->
    Errors.raise_error Errors.xpty0004
      "%s requires a singleton sequence, got %d items" op (List.length items)

let effective_boolean_value = function
  | [] -> false
  | Node _ :: _ -> true
  | [ Atomic (A_bool b) ] -> b
  | [ Atomic (A_string s) ] | [ Atomic (A_untyped s) ] -> s <> ""
  | [ Atomic (A_int n) ] -> n <> 0
  | [ Atomic (A_double f) ] -> (not (Float.is_nan f)) && f <> 0.0
  | _ :: _ :: _ ->
    Errors.raise_error Errors.forg0006
      "effective boolean value of a multi-item atomic sequence"

let string_value = function
  | [] -> ""
  | [ Atomic a ] -> string_of_atomic a
  | [ Node n ] -> N.string_value n
  | s ->
    Errors.raise_error Errors.xpty0004 "fn:string expects at most one item, got %d"
      (List.length s)

let is_numeric = function A_int _ | A_double _ -> true | _ -> false

let compare_float a b =
  if Float.is_nan a || Float.is_nan b then None else Some (Float.compare a b)

(* Value comparison (eq/ne/lt/...): untyped behaves as string. *)
let value_compare a b =
  match (a, b) with
  | A_int x, A_int y -> Some (compare x y)
  | (A_int _ | A_double _), (A_int _ | A_double _) ->
    compare_float (double_of_atomic a) (double_of_atomic b)
  | (A_string x | A_untyped x), (A_string y | A_untyped y) -> Some (compare x y)
  | A_bool x, A_bool y -> Some (compare x y)
  | _ -> None

(* General comparison promotes untyped toward the other operand. *)
let general_compare_atoms a b =
  match (a, b) with
  | A_untyped x, other when is_numeric other ->
    (match parse_double x with
    | Some f -> compare_float f (double_of_atomic other)
    | None -> Errors.raise_error Errors.forg0001 "cannot cast %S to xs:double" x)
  | other, A_untyped y when is_numeric other ->
    (match parse_double y with
    | Some f -> compare_float (double_of_atomic other) f
    | None -> Errors.raise_error Errors.forg0001 "cannot cast %S to xs:double" y)
  | A_untyped x, A_bool y -> Some (compare (cast_to_bool (A_untyped x)) y)
  | A_bool x, A_untyped y -> Some (compare x (cast_to_bool (A_untyped y)))
  | _ -> value_compare a b

let atomic_equal a b =
  match (a, b) with
  | (A_int _ | A_double _), (A_int _ | A_double _) ->
    let x = double_of_atomic a and y = double_of_atomic b in
    (Float.is_nan x && Float.is_nan y) || x = y
  | _ -> ( match value_compare a b with Some 0 -> true | _ -> false)

let rec node_deep_equal a b =
  match (N.kind a, N.kind b) with
  | N.Element, N.Element ->
    N.name a = N.name b
    && attrs_equal (N.attributes a) (N.attributes b)
    && kids_equal (significant a) (significant b)
  | N.Attribute, N.Attribute -> N.name a = N.name b && N.string_value a = N.string_value b
  | N.Text, N.Text | N.Comment, N.Comment -> N.string_value a = N.string_value b
  | N.Processing_instruction, N.Processing_instruction ->
    N.pi_target a = N.pi_target b && N.string_value a = N.string_value b
  | N.Document, N.Document -> kids_equal (significant a) (significant b)
  | _ -> false

and significant n =
  List.filter (fun k -> not (N.kind k = N.Comment || N.kind k = N.Processing_instruction))
    (N.children n)

and attrs_equal xs ys =
  let key a = (N.name a, N.string_value a) in
  let sort l = List.sort compare (List.map key l) in
  sort xs = sort ys

and kids_equal xs ys =
  List.length xs = List.length ys && List.for_all2 node_deep_equal xs ys

let deep_equal s1 s2 =
  List.length s1 = List.length s2
  && List.for_all2
       (fun i1 i2 ->
         match (i1, i2) with
         | Atomic a, Atomic b -> atomic_equal a b
         | Node a, Node b -> node_deep_equal a b
         | _ -> false)
       s1 s2

let all_nodes s =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Node n :: rest -> go (n :: acc) rest
    | Atomic _ :: _ -> None
  in
  go [] s

(* Sort by the cached (root id, pre-order) key: the key is fetched once
   per node (amortized O(1) after a lazy renumbering), the sort compares
   integer pairs, and key equality is node identity, so dedup is a single
   adjacent-unique pass. O(n log n) total. *)
let document_order ns =
  match ns with
  | [] | [ _ ] -> ns
  | _ ->
    let keyed = List.map (fun n -> (N.doc_order_key n, n)) ns in
    let sorted =
      List.sort (fun ((ka : int * int), _) (kb, _) -> compare ka kb) keyed
    in
    let rec dedup = function
      | ((ka : int * int), _) :: (((kb, _) :: _) as rest) when ka = kb -> dedup rest
      | (_, n) :: rest -> n :: dedup rest
      | [] -> []
    in
    dedup sorted

(* The seed algorithm: path-walking comparator on every comparison and a
   [N.same]-based dedup. Kept as the slow path the benchmarks and the
   property-test oracle run against. *)
let document_order_seed ns =
  let sorted = List.sort N.compare_document_order_via_paths ns in
  let rec dedup = function
    | a :: b :: rest when N.same a b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(* Lazy-sequence judgements: the pipelined evaluator probes at most two
   items instead of materializing the operand. Mirrors
   [effective_boolean_value] case for case. *)
let effective_boolean_value_seq (s : item Seq.t) =
  match s () with
  | Seq.Nil -> false
  | Seq.Cons (Node _, _) -> true
  | Seq.Cons ((Atomic _ as first), rest) -> (
    match rest () with
    | Seq.Nil -> effective_boolean_value [ first ]
    | Seq.Cons _ ->
      Errors.raise_error Errors.forg0006
        "effective boolean value of a multi-item atomic sequence")

let atomize_item = function
  | Atomic a -> a
  | Node n -> A_untyped (N.string_value n)

let item_to_string = function
  | Atomic a -> string_of_atomic a
  | Node n -> Xml_base.Serialize.to_string n

let to_display_string s = String.concat " " (List.map item_to_string s)

let pp fmt s =
  Format.fprintf fmt "(%s)" (String.concat ", " (List.map item_to_string s))
