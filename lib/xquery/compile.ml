(* AST -> physical plan lowering.

   The compiler runs after the (optional) PR-2 optimizer, so it lowers the
   already-rewritten tree: hoisted invariants arrive as plain lets and the
   count()-comparison rewrites as exists/empty calls. What it adds on top:

   - variables become integer frame slots; only names free at the top
     level stay dynamic ([P_global]), preserving declaration-order
     semantics for externally-bound and declared globals;
   - call sites resolve once, at compile time: prolog functions to an
     index (later declaration of the same name/arity wins, matching the
     Hashtbl.replace registration order), builtins to their closure;
   - chains of path steps fuse into one [P_steps] pipeline with a single
     final document-order pass instead of one per step;
   - predicates that are pure node tests (step/path/filter chains — no
     positions, no atomics, no possible dynamic error) push down into the
     step walk;
   - single-binding FLWORs with no positional variable and no order-by
     lower to [P_for_loop], a tight loop over one mutated slot; its body
     is marked parallel-safe when it provably never calls fn:trace or
     fn:doc (the only effectful builtins), transitively through user
     functions;
   - exists/empty over a step pipeline become early-exit probes. *)

module A = Ast
module P = Plan

type cenv = {
  funcs : (string * int, int) Hashtbl.t; (* resolved final index *)
  fn_unsafe : bool array; (* per-function: may reach fn:trace / fn:doc *)
  stats : P.stats;
  mutable nslots : int; (* frame allocator for the current unit *)
}

let fresh cenv =
  let s = cenv.nslots in
  cenv.nslots <- s + 1;
  s

(* ------------------------------------------------------------------ *)
(* Effect analysis for parallel safety                                 *)
(* ------------------------------------------------------------------ *)

let rec iter_calls f (e : A.expr) =
  let go = iter_calls f in
  match e with
  | A.E_int _ | A.E_double _ | A.E_string _ | A.E_var _ | A.E_context_item
  | A.E_root | A.E_step _ ->
    ()
  | A.E_call (name, args) ->
    f name (List.length args);
    List.iter go args
  | A.E_seq es | A.E_doc es -> List.iter go es
  | A.E_range (a, b)
  | A.E_arith (_, a, b)
  | A.E_general_cmp (_, a, b)
  | A.E_value_cmp (_, a, b)
  | A.E_node_cmp (_, a, b)
  | A.E_and (a, b)
  | A.E_or (a, b)
  | A.E_set_op (_, a, b)
  | A.E_path (a, b)
  | A.E_filter (a, b) ->
    go a;
    go b
  | A.E_neg a
  | A.E_cast (_, a)
  | A.E_castable (_, a)
  | A.E_instance_of (a, _)
  | A.E_treat (a, _)
  | A.E_text a
  | A.E_comment_c a ->
    go a
  | A.E_if (c, t, f') ->
    go c;
    go t;
    go f'
  | A.E_quantified (_, bindings, body) ->
    List.iter (fun (_, e) -> go e) bindings;
    go body
  | A.E_typeswitch { operand; cases; default_var = _; default } ->
    go operand;
    List.iter (fun (c : A.ts_case) -> go c.case_return) cases;
    go default
  | A.E_elem (name, content) | A.E_attr (name, content) ->
    (match name with A.Computed_name e -> go e | A.Static_name _ -> ());
    List.iter go content
  | A.E_flwor { clauses; order_by; return } ->
    List.iter
      (function
        | A.For { source; _ } -> go source
        | A.Let { value; _ } -> go value
        | A.Where cond -> go cond)
      clauses;
    List.iter (fun (s : A.order_spec) -> go s.key) order_by;
    go return

let unsafe_builtin base = base = "trace" || base = "doc"

(* Does the expression construct any node (element, attribute, text,
   comment, document)? Constructed nodes carry fresh identity, so a
   function that can construct is not a pure value function — two calls
   with the same arguments must return distinct nodes — and the executor
   must not memoize it. *)
let rec has_constructor (e : A.expr) =
  let go = has_constructor in
  match e with
  | A.E_elem _ | A.E_attr _ | A.E_text _ | A.E_comment_c _ | A.E_doc _ -> true
  | A.E_int _ | A.E_double _ | A.E_string _ | A.E_var _ | A.E_context_item
  | A.E_root | A.E_step _ ->
    false
  | A.E_call (_, args) -> List.exists go args
  | A.E_seq es -> List.exists go es
  | A.E_range (a, b)
  | A.E_arith (_, a, b)
  | A.E_general_cmp (_, a, b)
  | A.E_value_cmp (_, a, b)
  | A.E_node_cmp (_, a, b)
  | A.E_and (a, b)
  | A.E_or (a, b)
  | A.E_set_op (_, a, b)
  | A.E_path (a, b)
  | A.E_filter (a, b) ->
    go a || go b
  | A.E_neg a | A.E_cast (_, a) | A.E_castable (_, a) | A.E_instance_of (a, _)
  | A.E_treat (a, _) ->
    go a
  | A.E_if (c, t, f') -> go c || go t || go f'
  | A.E_quantified (_, bindings, body) ->
    List.exists (fun (_, e) -> go e) bindings || go body
  | A.E_typeswitch { operand; cases; default_var = _; default } ->
    go operand
    || List.exists (fun (c : A.ts_case) -> go c.case_return) cases
    || go default
  | A.E_flwor { clauses; order_by; return } ->
    List.exists
      (function
        | A.For { source; _ } -> go source
        | A.Let { value; _ } -> go value
        | A.Where cond -> go cond)
      clauses
    || List.exists (fun (s : A.order_spec) -> go s.key) order_by
    || go return

(* A call is unsafe if it reaches fn:trace (mutates trace state) or
   fn:doc (consults a possibly stateful resolver); anything else either
   is pure or merely raises, and a raise from a parallel fragment is
   re-surfaced deterministically. *)
let expr_unsafe cenv (e : A.expr) : bool =
  let found = ref false in
  iter_calls
    (fun name arity ->
      let base = Context.normalize_fname name in
      match Hashtbl.find_opt cenv.funcs (base, arity) with
      | Some idx -> if cenv.fn_unsafe.(idx) then found := true
      | None -> if unsafe_builtin base then found := true)
    e;
  !found

(* ------------------------------------------------------------------ *)
(* Step-chain recognition                                              *)
(* ------------------------------------------------------------------ *)

(* A predicate is fusable into a step walk when it is a pure node
   pipeline: it can never yield an atomic (so it is an EBV/emptiness
   test, never positional), never observes the focus position, and never
   raises a dynamic error — so evaluating it per candidate node during
   the walk, in walk order, is indistinguishable from the interpreter's
   post-sort pass. *)
let rec is_node_pred (e : A.expr) =
  match e with
  | A.E_step _ | A.E_root | A.E_context_item -> true
  | A.E_path (a, b) | A.E_filter (a, b) -> is_node_pred a && is_node_pred b
  | _ -> false

(* The right-hand side of a path that is a single step, possibly wrapped
   in fusable predicates: b, b[c], b[c][d/e]. Positional or atomizing
   predicates keep their per-parent focus semantics and stay unfused. *)
let rec as_pred_step (e : A.expr) : (A.axis * A.node_test * A.expr list) option =
  match e with
  | A.E_step (axis, test) -> Some (axis, test, [])
  | A.E_filter (inner, pred) when is_node_pred pred -> (
    match as_pred_step inner with
    | Some (axis, test, preds) -> Some (axis, test, preds @ [ pred ])
    | None -> None)
  | _ -> None

(* Is a singleton base guaranteed to leave the pipeline output in
   document order, duplicate-free? Tracked as (sorted, independent):
   [independent] means no output node is an ancestor of another, which is
   what child/attribute expansion needs to preserve order. *)
let step_flags (sorted, indep) (axis : A.axis) =
  match axis with
  | A.Self -> (sorted, indep)
  | A.Child | A.Attribute_axis -> if sorted && indep then (true, true) else (false, false)
  | A.Descendant | A.Descendant_or_self ->
    if sorted && indep then (true, false) else (false, false)
  | _ -> (false, false)

let sorted_if_single_of (steps : P.step array) =
  fst
    (Array.fold_left (fun flags (s : P.step) -> step_flags flags s.axis) (true, true) steps)

(* Axes that can deliver the same node twice over a duplicate-free input
   (shared parents, overlapping subtrees, overlapping sibling tails).
   The executor re-sorts after these so chained walks stay near-linear. *)
let dup_creating (axis : A.axis) =
  match axis with
  | A.Child | A.Attribute_axis | A.Self -> false
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

type scope = (string * int) list

let rec comp cenv (scope : scope) (e : A.expr) : P.t =
  match e with
  | A.E_int n -> P.P_const (Value.of_int n)
  | A.E_double f -> P.P_const (Value.of_double f)
  | A.E_string s -> P.P_const (Value.of_string s)
  | A.E_var v -> (
    match List.assoc_opt v scope with
    | Some slot -> P.P_slot (slot, v)
    | None -> P.P_global v)
  | A.E_context_item -> P.P_context_item
  | A.E_root -> P.P_root
  | A.E_seq es -> P.P_seq (Array.of_list (List.map (comp cenv scope) es))
  | A.E_range (a, b) -> P.P_range (comp cenv scope a, comp cenv scope b)
  | A.E_arith (op, a, b) -> P.P_arith (op, comp cenv scope a, comp cenv scope b)
  | A.E_neg a -> P.P_neg (comp cenv scope a)
  | A.E_general_cmp (op, a, b) ->
    P.P_general_cmp (op, comp cenv scope a, comp cenv scope b)
  | A.E_value_cmp (op, a, b) -> P.P_value_cmp (op, comp cenv scope a, comp cenv scope b)
  | A.E_node_cmp (op, a, b) -> P.P_node_cmp (op, comp cenv scope a, comp cenv scope b)
  | A.E_and (a, b) -> P.P_and (comp cenv scope a, comp cenv scope b)
  | A.E_or (a, b) -> P.P_or (comp cenv scope a, comp cenv scope b)
  | A.E_set_op (op, a, b) -> P.P_set_op (op, comp cenv scope a, comp cenv scope b)
  | A.E_if (c, t, f) -> P.P_if (comp cenv scope c, comp cenv scope t, comp cenv scope f)
  | A.E_step (axis, test) ->
    (* A bare step outside a path keeps the interpreter's axis-walk
       order (reverse axes nearest-first) — only paths sort. *)
    let steps = [| { P.axis; test; preds = [||] } |] in
    P.P_steps
      { base = P.P_context_item; steps;
        sorted_if_single = sorted_if_single_of steps; raw = true }
  | A.E_path (a, rhs) -> (
    match as_pred_step rhs with
    | Some (axis, test, preds) ->
      let base = comp cenv scope a in
      let cpreds = Array.of_list (List.map (comp cenv scope) preds) in
      cenv.stats.P.preds_fused <- cenv.stats.P.preds_fused + Array.length cpreds;
      mk_steps cenv base { P.axis; test; preds = cpreds }
    | None -> (
      let ca = comp cenv scope a in
      match comp cenv scope rhs with
      | P.P_steps { base = P.P_context_item; steps; _ } ->
        (* a/(pipeline over the context item): splice the left side in as
           the pipeline base — one walk, one final sort, same node set as
           the per-item path evaluation. If the left side is itself a
           pipeline the step arrays concatenate. *)
        let base, steps =
          match ca with
          | P.P_steps { base = b0; steps = s0; _ } -> (b0, Array.append s0 steps)
          | _ -> (ca, steps)
        in
        cenv.stats.P.steps_fused <- cenv.stats.P.steps_fused + 1;
        P.P_steps
          { base; steps; sorted_if_single = sorted_if_single_of steps; raw = false }
      | crhs -> P.P_path (ca, crhs)))
  | A.E_filter (base, A.E_int k) -> P.P_filter_pos (comp cenv scope base, k)
  | A.E_filter (base, pred) -> (
    let cbase = comp cenv scope base in
    match cbase with
    | P.P_steps { base = b; steps; sorted_if_single; raw } when is_node_pred pred ->
      (* (…steps…)[node-pred]: fuse into the last step's walk. *)
      let cpred = comp cenv scope pred in
      cenv.stats.P.preds_fused <- cenv.stats.P.preds_fused + 1;
      let last = Array.length steps - 1 in
      let steps = Array.copy steps in
      steps.(last) <-
        { (steps.(last)) with P.preds = Array.append steps.(last).P.preds [| cpred |] };
      P.P_steps { base = b; steps; sorted_if_single; raw }
    | _ -> P.P_filter (cbase, comp cenv scope pred))
  | A.E_call (name, args) -> comp_call cenv scope name args
  | A.E_flwor f -> comp_flwor cenv scope f
  | A.E_quantified (q, bindings, body) ->
    let scope', rbinds =
      List.fold_left
        (fun (scope, acc) (var, src) ->
          let csrc = comp cenv scope src in
          let slot = fresh cenv in
          ((var, slot) :: scope, (slot, var, csrc) :: acc))
        (scope, []) bindings
    in
    P.P_quantified (q, Array.of_list (List.rev rbinds), comp cenv scope' body)
  | A.E_cast (t, a) -> P.P_cast (t, comp cenv scope a)
  | A.E_castable (t, a) -> P.P_castable (t, comp cenv scope a)
  | A.E_instance_of (a, ty) -> P.P_instance_of (comp cenv scope a, ty)
  | A.E_treat (a, ty) -> P.P_treat (comp cenv scope a, ty)
  | A.E_typeswitch { operand; cases; default_var; default } ->
    let coperand = comp cenv scope operand in
    let ccases =
      Array.of_list
        (List.map
           (fun (c : A.ts_case) ->
             match c.case_var with
             | Some cv ->
               let slot = fresh cenv in
               {
                 P.c_slot = Some slot;
                 c_var = Some cv;
                 c_type = c.case_type;
                 c_body = comp cenv ((cv, slot) :: scope) c.case_return;
               }
             | None ->
               {
                 P.c_slot = None;
                 c_var = None;
                 c_type = c.case_type;
                 c_body = comp cenv scope c.case_return;
               })
           cases)
    in
    let default_slot, default_var, cdefault =
      match default_var with
      | Some dv ->
        let slot = fresh cenv in
        (Some slot, Some dv, comp cenv ((dv, slot) :: scope) default)
      | None -> (None, None, comp cenv scope default)
    in
    P.P_typeswitch { operand = coperand; cases = ccases; default_slot; default_var; default = cdefault }
  | A.E_elem (name, content) ->
    P.P_elem (comp_name cenv scope name, Array.of_list (List.map (comp cenv scope) content))
  | A.E_attr (name, parts) ->
    P.P_attr
      ( comp_name cenv scope name,
        Array.of_list
          (List.map
             (function
               | A.E_string s -> P.PA_lit s (* literal AVT fragment *)
               | part -> P.PA_dyn (comp cenv scope part))
             parts) )
  | A.E_text a -> P.P_text (comp cenv scope a)
  | A.E_doc content -> P.P_doc (Array.of_list (List.map (comp cenv scope) content))
  | A.E_comment_c a -> P.P_comment (comp cenv scope a)

and comp_name cenv scope = function
  | A.Static_name n -> P.PN_static n
  | A.Computed_name e -> P.PN_computed (comp cenv scope e)

and mk_steps cenv base (step : P.step) : P.t =
  (* Path semantics: one final document-order pass, never raw — a raw
     (bare-step) base loses its flag here because the path's final sort
     makes the intermediate order unobservable. *)
  match base with
  | P.P_steps { base = b; steps; _ } ->
    cenv.stats.P.steps_fused <- cenv.stats.P.steps_fused + 1;
    let steps = Array.append steps [| step |] in
    P.P_steps
      { base = b; steps; sorted_if_single = sorted_if_single_of steps; raw = false }
  | _ ->
    let steps = [| step |] in
    P.P_steps
      { base; steps; sorted_if_single = sorted_if_single_of steps; raw = false }

and comp_call cenv scope name args : P.t =
  let arity = List.length args in
  let base = Context.normalize_fname name in
  let cargs () = Array.of_list (List.map (comp cenv scope) args) in
  match Hashtbl.find_opt cenv.funcs (base, arity) with
  | Some idx ->
    cenv.stats.P.calls_resolved <- cenv.stats.P.calls_resolved + 1;
    P.P_call_user (idx, name, cargs ())
  | None -> (
    match Functions.find name arity with
    | None -> P.P_call_unknown (name, arity)
    | Some f -> (
      (* exists/empty/boolean/not become plan operators; over a step
         pipeline the emptiness probes get an early-exit walk. Only
         genuine builtins land here — a prolog redefinition was caught
         above, mirroring the interpreter's lookup precedence. *)
      match (base, args) with
      | "exists", [ arg ] ->
        let p = comp cenv scope arg in
        let early = match p with P.P_steps _ -> true | _ -> false in
        if early then cenv.stats.P.early_exits <- cenv.stats.P.early_exits + 1;
        P.P_exists (p, early)
      | "empty", [ arg ] ->
        let p = comp cenv scope arg in
        let early = match p with P.P_steps _ -> true | _ -> false in
        if early then cenv.stats.P.early_exits <- cenv.stats.P.early_exits + 1;
        P.P_empty (p, early)
      | "boolean", [ arg ] -> P.P_ebv (comp cenv scope arg)
      | "not", [ arg ] -> P.P_not (comp cenv scope arg)
      | _ ->
        cenv.stats.P.calls_resolved <- cenv.stats.P.calls_resolved + 1;
        P.P_call_builtin (base, f, cargs ())))

and comp_flwor cenv scope ({ clauses; order_by; return } : A.flwor) : P.t =
  match (clauses, order_by) with
  | [ A.For { var; var_type; pos_var = None; source } ], [] ->
    (* The tight-loop form: one binding, no position, no sort — exactly
       the shape the docgen core's dispatch loop takes. *)
    let src = comp cenv scope source in
    let slot = fresh cenv in
    let body = comp cenv ((var, slot) :: scope) return in
    cenv.stats.P.loops_tightened <- cenv.stats.P.loops_tightened + 1;
    P.P_for_loop
      { slot; var; typ = var_type; src; body; par_safe = not (expr_unsafe cenv return) }
  | _ ->
    let scope_ref = ref scope in
    let cclauses =
      Array.of_list
        (List.map
           (fun clause ->
             match clause with
             | A.For { var; var_type; pos_var; source } ->
               let src = comp cenv !scope_ref source in
               let slot = fresh cenv in
               scope_ref := (var, slot) :: !scope_ref;
               let pos_slot =
                 match pos_var with
                 | Some pv ->
                   let ps = fresh cenv in
                   scope_ref := (pv, ps) :: !scope_ref;
                   Some ps
                 | None -> None
               in
               P.PC_for { slot; var; typ = var_type; pos_slot; pos_var; src }
             | A.Let { var; var_type; value } ->
               let v = comp cenv !scope_ref value in
               let slot = fresh cenv in
               scope_ref := (var, slot) :: !scope_ref;
               P.PC_let { slot; var; typ = var_type; value = v }
             | A.Where cond -> P.PC_where (comp cenv !scope_ref cond))
           clauses)
    in
    let fscope = !scope_ref in
    let corder =
      Array.of_list
        (List.map
           (fun (o : A.order_spec) ->
             {
               P.key = comp cenv fscope o.key;
               descending = o.descending;
               empty_greatest = o.empty_greatest;
             })
           order_by)
    in
    P.P_flwor (cclauses, corder, comp cenv fscope return)

(* ------------------------------------------------------------------ *)
(* Program lowering                                                    *)
(* ------------------------------------------------------------------ *)

let compile_program (prog : A.program) : P.program =
  let stats = P.new_stats () in
  let decls =
    List.filter_map
      (function
        | A.Declare_function { fname; params; return_type; body } ->
          Some (fname, params, return_type, body)
        | A.Declare_variable _ | A.Declare_namespace _ -> None)
      prog.A.prolog
  in
  let n = List.length decls in
  let funcs_tbl = Hashtbl.create (2 * n + 1) in
  List.iteri
    (fun i (fname, params, _, _) ->
      (* replace: the later declaration of a name/arity wins, as it does
         in the interpreter's Hashtbl registration *)
      Hashtbl.replace funcs_tbl (Context.normalize_fname fname, List.length params) i)
    decls;
  (* Fixpoint the trace/doc-reachability flags across the (resolved) call
     graph; n is tiny, so the quadratic loop is fine. *)
  let fn_unsafe = Array.make n false in
  let bodies = Array.of_list (List.map (fun (_, _, _, b) -> b) decls) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i body ->
        if not fn_unsafe.(i) then begin
          let u = ref false in
          iter_calls
            (fun name arity ->
              let base = Context.normalize_fname name in
              match Hashtbl.find_opt funcs_tbl (base, arity) with
              | Some j -> if fn_unsafe.(j) then u := true
              | None -> if unsafe_builtin base then u := true)
            body;
          if !u then begin
            fn_unsafe.(i) <- true;
            changed := true
          end
        end)
      bodies
  done;
  (* Same fixpoint for node construction: a function that (transitively)
     can construct nodes returns fresh identities, so only functions
     clean on BOTH axes — no trace/doc, no construction — are marked
     memoizable for the executor's per-run call cache. *)
  let fn_constructs = Array.map has_constructor bodies in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i body ->
        if not fn_constructs.(i) then begin
          let u = ref false in
          iter_calls
            (fun name arity ->
              let base = Context.normalize_fname name in
              match Hashtbl.find_opt funcs_tbl (base, arity) with
              | Some j -> if fn_constructs.(j) then u := true
              | None -> ())
            body;
          if !u then begin
            fn_constructs.(i) <- true;
            changed := true
          end
        end)
      bodies
  done;
  let cenv = { funcs = funcs_tbl; fn_unsafe; stats; nslots = 0 } in
  let funcs =
    Array.of_list
      (List.mapi
         (fun i (fname, params, return_type, body) ->
           let nparams = List.length params in
           cenv.nslots <- nparams;
           (* reversed so a later duplicate parameter name shadows an
              earlier one, like sequential bind_var did *)
           let scope = List.rev (List.mapi (fun i (p, _) -> (p, i)) params) in
           let body = comp cenv scope body in
           {
             P.fname;
             params = Array.of_list params;
             ret_type = return_type;
             frame_size = cenv.nslots;
             body;
             memoizable = (not fn_unsafe.(i)) && not fn_constructs.(i);
           })
         decls)
  in
  stats.P.funcs_memoized <-
    Array.fold_left (fun acc f -> if f.P.memoizable then acc + 1 else acc) 0 funcs;
  let globals =
    Array.of_list
      (List.filter_map
         (function
           | A.Declare_variable { vname; vtype; init } ->
             cenv.nslots <- 0;
             let p = comp cenv [] init in
             Some { P.gname = vname; gtype = vtype; gframe = cenv.nslots; init = p }
           | A.Declare_function _ | A.Declare_namespace _ -> None)
         prog.A.prolog)
  in
  cenv.nslots <- 0;
  let main = comp cenv [] prog.A.body in
  { P.funcs; globals; main_frame = cenv.nslots; main; pstats = stats }
