(** The public face of the XQuery engine: compile and run queries.

    Execution goes through one request shape, {!Exec_opts.t}, and one
    entry point, {!run}. The old labelled-argument entry points
    ({!execute}, {!eval_query}) remain as deprecated shims for one
    release and forward to {!run}. *)

module Exec_opts : sig
  (** How to execute: [Seed] pins every operation to the reference
      algorithms (benchmark baseline, property-test oracle); [Fast] is
      the PR-2 cached-key/lazy interpreter; [Plan] compiles to the
      physical plan and runs the plan executor. *)
  type mode = Seed | Fast | Plan

  (** Degradation level, threaded to the docgen layer: [Skeleton] asks
      generators for the cheap outline-only document. *)
  type level = Full | Skeleton

  type t = {
    mode : mode;
    limits : Context.limits option;
        (** resource budgets — pass a {e fresh} record per run *)
    level : level;
    explain : bool;  (** callers may render the chosen plan/AST *)
    context_item : Value.item option;
    vars : (string * Value.sequence) list;
    trace_out : (string -> unit) option;
    doc_resolver : (string -> Xml_base.Node.t option) option;
    pool : ((unit -> unit) array -> unit) option;
        (** runs task arrays for data-parallel plan fragments; [None]
            keeps execution sequential *)
  }

  val default : t
  (** [Fast], no limits, [Full], no context item or bindings. *)

  val make :
    ?mode:mode ->
    ?limits:Context.limits ->
    ?level:level ->
    ?explain:bool ->
    ?context_item:Value.item ->
    ?vars:(string * Value.sequence) list ->
    ?trace_out:(string -> unit) ->
    ?doc_resolver:(string -> Xml_base.Node.t option) ->
    ?pool:((unit -> unit) array -> unit) ->
    unit ->
    t

  val mode_name : mode -> string
  val mode_of_string : string -> (mode, string) result

  val ambient_mode : unit -> mode
  (** [Fast] or [Seed] per {!Context.fast_eval_default}, read at call
      time — what the legacy [?fast_eval] shims resolve to when the
      caller passed nothing. *)
end

type compiled = {
  program : Ast.program;
  compat : Context.compat;
  typed_mode : bool;
  opt_stats : Optimizer.stats option;  (** present when optimization ran *)
  mutable plan : Plan.program option;
      (** lazily-memoized physical plan; use {!plan_of} *)
}

val make_compiled :
  ?opt_stats:Optimizer.stats ->
  compat:Context.compat ->
  typed_mode:bool ->
  Ast.program ->
  compiled
(** Wrap an already-parsed program (no plan yet). *)

val compile :
  ?compat:Context.compat ->
  ?typed_mode:bool ->
  ?optimize:bool ->
  ?static_check:string list ->
  string ->
  compiled
(** Parse (and by default optimize) a query. [compat] defaults to
    {!Context.default_compat}; pass {!Context.galax_compat} for the
    paper-era behaviours. [static_check], when given, runs the static
    analyzer before anything else: unbound variables and unknown
    functions are reported at compile time, with the listed names treated
    as externally-bound variables. @raise Errors.Error on syntax or
    static errors. *)

val run : ?opts:Exec_opts.t -> compiled -> Value.sequence
(** Execute with the given options (default {!Exec_opts.default}).
    [Plan] mode lowers the program on first use and memoizes the plan on
    the [compiled] record, so repeated runs (service cache hits) skip
    compilation. Budget trips raise {!Errors.Resource_exhausted};
    [Stack_overflow]/[Out_of_memory] escaping execution are mapped into
    the same exception here. *)

val plan_of : compiled -> Plan.program
(** The memoized physical plan, lowering on first call. *)

val plan_cached : compiled -> bool
(** Whether {!plan_of} has already run — the service layer uses this to
    count plan-cache hits without forcing a compile. *)

val explain : compiled -> mode:Exec_opts.mode -> string
(** Human-readable account of what would run: the optimizer's rewrite
    stats, then the rendered physical plan ([Plan] mode) or the
    optimized source ([Seed]/[Fast]). *)

val execute :
  ?context_item:Value.item ->
  ?vars:(string * Value.sequence) list ->
  ?trace_out:(string -> unit) ->
  ?doc_resolver:(string -> Xml_base.Node.t option) ->
  ?fast_eval:bool ->
  ?limits:Context.limits ->
  compiled ->
  Value.sequence
(** Deprecated shim for {!run} (kept one release): [fast_eval] maps to
    [Seed]/[Fast] mode, defaulting to {!Exec_opts.ambient_mode}. *)

val eval_query :
  ?compat:Context.compat ->
  ?typed_mode:bool ->
  ?optimize:bool ->
  ?static_check:string list ->
  ?context_item:Value.item ->
  ?vars:(string * Value.sequence) list ->
  ?trace_out:(string -> unit) ->
  ?doc_resolver:(string -> Xml_base.Node.t option) ->
  ?fast_eval:bool ->
  ?limits:Context.limits ->
  string ->
  Value.sequence
(** Deprecated shim: one-shot compile + execute. *)

val query_doc :
  ?vars:(string * Value.sequence) list -> Xml_base.Node.t -> string -> Value.sequence
(** Convenience: run a query with the given node as context item. *)
