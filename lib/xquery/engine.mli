(** The public face of the XQuery engine: compile and run queries. *)

type compiled = {
  program : Ast.program;
  compat : Context.compat;
  typed_mode : bool;
  opt_stats : Optimizer.stats option; (** present when optimization ran *)
}

val compile :
  ?compat:Context.compat ->
  ?typed_mode:bool ->
  ?optimize:bool ->
  ?static_check:string list ->
  string ->
  compiled
(** Parse (and by default optimize) a query. [compat] defaults to
    {!Context.default_compat}; pass {!Context.galax_compat} for the
    paper-era behaviours. [static_check], when given, runs the static
    analyzer before anything else: unbound variables and unknown
    functions are reported at compile time, with the listed names treated
    as externally-bound variables. @raise Errors.Error on syntax or
    static errors. *)

val execute :
  ?context_item:Value.item ->
  ?vars:(string * Value.sequence) list ->
  ?trace_out:(string -> unit) ->
  ?doc_resolver:(string -> Xml_base.Node.t option) ->
  ?fast_eval:bool ->
  ?limits:Context.limits ->
  compiled ->
  Value.sequence
(** Run a compiled query. [vars] are bound as external global variables;
    [trace_out] receives fn:trace output (default stderr); [doc_resolver]
    backs fn:doc. [fast_eval] overrides {!Context.fast_eval_default} for
    this run: [false] pins the evaluator to the seed algorithms
    (benchmark baseline, property-test oracle). [limits] attaches
    resource budgets (fuel, recursion depth, node allocation, monotonic
    deadline) to this run — pass a {e fresh} record per run; the
    evaluator mutates it. Budget trips raise
    {!Errors.Resource_exhausted}; [Stack_overflow]/[Out_of_memory]
    escaping the evaluator are mapped into the same exception here. *)

val eval_query :
  ?compat:Context.compat ->
  ?typed_mode:bool ->
  ?optimize:bool ->
  ?static_check:string list ->
  ?context_item:Value.item ->
  ?vars:(string * Value.sequence) list ->
  ?trace_out:(string -> unit) ->
  ?doc_resolver:(string -> Xml_base.Node.t option) ->
  ?fast_eval:bool ->
  ?limits:Context.limits ->
  string ->
  Value.sequence
(** One-shot compile + execute. *)

val query_doc :
  ?vars:(string * Value.sequence) list -> Xml_base.Node.t -> string -> Value.sequence
(** Convenience: run a query with the given node as context item. *)
