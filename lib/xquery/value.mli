(** The XQuery data model: items and flat sequences.

    Everything in XQuery is a sequence; a single value and the singleton
    sequence containing it are indistinguishable. Sequences are flat: the
    only way to build one is {!seq}, which flattens, so nesting cannot be
    observed — [(1,(2,3,4),(),(5,((6,7))))] is [(1,2,3,4,5,6,7)]. This is
    the property the paper's "Data Structures and Abstractions" section
    turns on. *)

type atomic =
  | A_int of int
  | A_double of float
  | A_string of string
  | A_bool of bool
  | A_untyped of string
      (** xs:untypedAtomic — what atomizing a node in a schema-less
          document yields. Promotes to double in arithmetic and to the
          other operand's type in general comparisons. *)

type item = Atomic of atomic | Node of Xml_base.Node.t

type sequence = item list
(** Invariant: flat by construction; no sequence ever contains another. *)

val empty : sequence
val singleton : item -> sequence
val of_int : int -> sequence
val of_double : float -> sequence
val of_string : string -> sequence
val of_bool : bool -> sequence
val of_node : Xml_base.Node.t -> sequence
val of_nodes : Xml_base.Node.t list -> sequence

val seq : sequence list -> sequence
(** Sequence construction — flattening is inherent. *)

(** {1 Atomization and casts} *)

val atomize : sequence -> atomic list
(** Nodes are replaced by their typed value: untypedAtomic of the string
    value (we run schema-less, as the paper's project did). *)

val atomize_seq : item Seq.t -> atomic Seq.t
(** Lazy {!atomize}: one item forced per element demanded. *)

val atomize_item : item -> atomic

val atomize_one : string -> sequence -> atomic
(** Atomize and require exactly one atomic item; the string names the
    operation for the XPTY0004 message. *)

val string_of_atomic : atomic -> string
val double_of_atomic : atomic -> float
(** @raise Errors.Error FORG0001 when the lexical form is not numeric. *)

val atomic_type_name : atomic -> string
(** "xs:integer", "xs:double", "xs:string", "xs:boolean",
    "xs:untypedAtomic". *)

val cast_to_int : atomic -> int
val cast_to_bool : atomic -> bool
(** xs:boolean constructor semantics: "true"/"1" are true, "false"/"0"
    false; numerics by non-zero; @raise Errors.Error FORG0001 otherwise. *)

(** {1 Judgements} *)

val effective_boolean_value : sequence -> bool
(** () is false; a sequence whose first item is a node is true; singleton
    boolean/string/untyped/numeric by the usual rules;
    @raise Errors.Error FORG0006 on other sequences. *)

val effective_boolean_value_seq : item Seq.t -> bool
(** Same judgement over a lazy sequence: forces at most two items, so a
    pipelined producer (an axis walk, a FLWOR) stops early. *)

val string_value : sequence -> string
(** fn:string applied to at most one item; [""] for empty.
    @raise Errors.Error XPTY0004 on longer sequences. *)

val value_compare : atomic -> atomic -> int option
(** Comparison for the singleton operators [eq, ne, lt, le, gt, ge] and
    for order by. Untyped is compared as string (XPath 2.0 rule). [None]
    when the values are incomparable (e.g. string vs integer), which the
    caller turns into XPTY0004; NaN also yields [None] except for equality
    checks handled by the caller. *)

val general_compare_atoms : atomic -> atomic -> int option
(** Comparison rule for the general operators [=, !=, <, ...]: an untyped
    operand is promoted to the other operand's type (double against
    numerics, boolean against booleans, string otherwise). *)

val deep_equal : sequence -> sequence -> bool
(** fn:deep-equal with the default collation: pairwise; atomics by
    value-equal (untyped as string, NaN equal to NaN), nodes by recursive
    structural comparison (name, attributes as a set, children). *)

(** {1 Node sequences} *)

val all_nodes : sequence -> Xml_base.Node.t list option
(** [Some nodes] when every item is a node. *)

val document_order : Xml_base.Node.t list -> Xml_base.Node.t list
(** Sort into document order and remove duplicate identities. O(n log n):
    sorts by the cached {!Xml_base.Node.doc_order_key} and dedups with a
    single adjacent-unique pass. *)

val document_order_seed : Xml_base.Node.t list -> Xml_base.Node.t list
(** The seed implementation (path-walking comparator on every
    comparison). Same result as {!document_order}; kept as the slow path
    for benchmarks and the property-test oracle. *)

(** {1 Display} *)

val item_to_string : item -> string
(** Serialization for output: nodes via the XML serializer, atomics via
    their canonical lexical form. *)

val to_display_string : sequence -> string
(** Items joined by single spaces — how query results print. *)

val pp : Format.formatter -> sequence -> unit
