(** The dynamic evaluator. Most callers want {!Engine}; this module is
    the lower level used by the XSLT engine and tooling that manages its
    own contexts. *)

val eval : Context.dyn -> Ast.expr -> Value.sequence
(** Evaluate an expression in a dynamic context (variables, context
    item/position/size, function registry).
    @raise Errors.Error on dynamic errors. *)

val register_prolog : Context.env -> Ast.prolog_decl list -> unit
(** Install a prolog's function declarations into an environment. *)

val run_program :
  Context.env ->
  ?context_item:Value.item ->
  ?vars:(string * Value.sequence) list ->
  Ast.program ->
  Value.sequence
(** Register the prolog, evaluate global variable declarations in order,
    then evaluate the body. [vars] are external bindings visible to the
    globals and the body. *)

(** {1 Pieces exposed for reuse and testing} *)

val axis_nodes : Ast.axis -> Xml_base.Node.t -> Xml_base.Node.t list
(** Nodes on an axis in axis order (reverse axes nearest-first). *)

val node_test_matches : Ast.node_test -> Xml_base.Node.t -> bool

val content_nodes_of_sequence : Value.sequence -> Xml_base.Node.t list
(** Element-constructor content normalization: runs of adjacent atomics
    become single space-joined text nodes. *)

val assemble_element : Context.env -> string -> Xml_base.Node.t list -> Xml_base.Node.t
(** Build an element from normalized content nodes, applying the
    attribute folding rules (leading attributes, XQTY0024, the compat
    duplicate policy) and charging the node budget. Shared by the plan
    executor so construction semantics exist in exactly one place. *)

val charge_content : Context.limits -> Xml_base.Node.t list -> unit
(** Charge constructed content subtrees against the node budget (no-op
    when unlimited). *)

val arith : Ast.arith -> Value.atomic -> Value.atomic -> Value.sequence
(** Binary arithmetic on atomics with the numeric promotion and
    division-by-zero rules. *)

val apply_cast : Ast.cast_target -> Value.atomic -> Value.sequence

val atomic_pair_test :
  [ `General | `Value ] -> Ast.cmp -> Value.atomic -> Value.atomic -> bool
(** One comparison test with the NaN and incomparable-type rules; the
    existential wrapping is the caller's. *)
