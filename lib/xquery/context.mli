(** Static and dynamic evaluation context, plus the compatibility knobs
    that reproduce the Galax-era behaviours the paper reports. *)

module StringMap : Map.S with type key = string

type duplicate_attribute_policy =
  | Keep_last  (** the working-draft "only one should make it" reading *)
  | Keep_both  (** "though Galax did not honor this as of the time of writing" *)
  | Raise_error  (** the eventual REC behaviour: XQDY0025 *)

type compat = {
  galax_messages : bool;
      (** true: the "missing context item" error reads
          "Internal_Error: Variable '$glx:dot' not found." with no line
          number — the message the paper quotes *)
  duplicate_attributes : duplicate_attribute_policy;
  treat_trace_as_pure : bool;
      (** true: dead-code elimination silently deletes a dead
          [let $dummy := trace(...)] — the paper's debugging horror story *)
}

val default_compat : compat
val galax_compat : compat

type func =
  | Builtin of (dyn -> Value.sequence list -> Value.sequence)
  | User of {
      uparams : (string * Stype.t option) list;
      ureturn : Stype.t option;
      ubody : Ast.expr;
    }

and env = {
  functions : (string * int, func) Hashtbl.t;
  compat : compat;
  typed_mode : bool;  (** enforce [as] annotations on user function calls *)
  mutable trace_out : string -> unit;
  mutable trace_count : int;
  mutable doc_resolver : string -> Xml_base.Node.t option;
  mutable global_vars : Value.sequence StringMap.t;
  mutable fast_eval : bool;
      (** true: the evaluator may use the cached-key/lazy fast paths;
          false pins every operation to the seed algorithms (benchmark
          baseline, property-test oracle) *)
}

and dyn = {
  env : env;
  vars : Value.sequence StringMap.t;
  ctx_item : Value.item option;
  ctx_pos : int;  (** 1-based *)
  ctx_size : int;
}

val fast_eval_default : bool ref
(** Initial value of [env.fast_eval] for newly created environments
    (default [true]). Lets embedders — the docgen service, the benchmarks
    — flip whole runs without threading a parameter everywhere. *)

val make_env : ?compat:compat -> ?typed_mode:bool -> unit -> env
val make_dyn : env -> dyn
val bind_var : dyn -> string -> Value.sequence -> dyn
val lookup_var : dyn -> string -> Value.sequence option
val with_context : dyn -> Value.item -> int -> int -> dyn

val normalize_fname : string -> string
(** Strip an optional leading ["fn:"]. *)

val find_function : env -> string -> int -> func option
val register_function : env -> string -> int -> func -> unit

val context_node : dyn -> Xml_base.Node.t
(** @raise Errors.Error (XPTY0019/XPDY0002) when the context item is
    absent or not a node; the message depends on [compat]. *)

val context_item : dyn -> Value.item
(** @raise Errors.Error (XPDY0002) when the context item is undefined. *)
