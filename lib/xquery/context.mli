(** Static and dynamic evaluation context, plus the compatibility knobs
    that reproduce the Galax-era behaviours the paper reports. *)

module StringMap : Map.S with type key = string

type duplicate_attribute_policy =
  | Keep_last  (** the working-draft "only one should make it" reading *)
  | Keep_both  (** "though Galax did not honor this as of the time of writing" *)
  | Raise_error  (** the eventual REC behaviour: XQDY0025 *)

type compat = {
  galax_messages : bool;
      (** true: the "missing context item" error reads
          "Internal_Error: Variable '$glx:dot' not found." with no line
          number — the message the paper quotes *)
  duplicate_attributes : duplicate_attribute_policy;
  treat_trace_as_pure : bool;
      (** true: dead-code elimination silently deletes a dead
          [let $dummy := trace(...)] — the paper's debugging horror story *)
}

val default_compat : compat
val galax_compat : compat

(** {1 Resource limits}

    One mutable budget record per evaluation, threaded via [env.limits].
    The hot-path cost is {!tick}: a decrement and a comparison. Slow
    checks (fuel accounting, monotonic deadline read) run every ~1k
    steps. [max_int] in a budget field means unlimited. *)

type limits = {
  mutable credit : int;  (** steps left until the next slow check *)
  mutable batch : int;  (** steps granted at the last refill *)
  mutable spent : int;  (** steps accounted for at the last slow check *)
  fuel : int;  (** total step budget *)
  mutable depth : int;  (** current user-function call depth *)
  max_depth : int;
  mutable nodes : int;  (** nodes charged so far *)
  max_nodes : int;
  mutable deadline_ns : int;
      (** absolute monotonic deadline, {!Clock.now_ns} scale; mutable so
          an embedder can tighten a running evaluation's deadline (the
          server's graceful drain) — writes are picked up at the next
          slow check, within ~1k steps *)
}

val make_limits :
  ?fuel:int -> ?max_depth:int -> ?max_nodes:int -> ?deadline_ns:int -> unit -> limits
(** Fresh budget record. [deadline_ns] is an {e absolute} monotonic
    timestamp (compare [Clock.now_ns () + budget]). Omitted budgets are
    unlimited. *)

val unlimited : unit -> limits
(** Fresh record with every budget unlimited. *)

val is_unlimited : limits -> bool

val tick : limits -> unit
(** Charge one evaluation step.
    @raise Errors.Resource_exhausted when a budget trips. *)

val charge : limits -> int -> unit
(** Charge [n] evaluation steps at once (bulk operations: range
    materialization, long axis walks).
    @raise Errors.Resource_exhausted when a budget trips. *)

val check : limits -> unit
(** Force a slow check now (fuel + deadline), regardless of credit. Used
    at evaluation entry so an already-expired deadline trips before any
    work happens. @raise Errors.Resource_exhausted *)

val enter_call : limits -> unit
(** Enter a user-function call. @raise Errors.Resource_exhausted when
    [max_depth] is exceeded. *)

val exit_call : limits -> unit

val charge_nodes : limits -> int -> unit
(** Charge [n] constructed nodes against the allocation budget. Free when
    [max_nodes] is unlimited. @raise Errors.Resource_exhausted *)

type func =
  | Builtin of (dyn -> Value.sequence list -> Value.sequence)
  | User of {
      uparams : (string * Stype.t option) list;
      ureturn : Stype.t option;
      ubody : Ast.expr;
    }

and env = {
  functions : (string * int, func) Hashtbl.t;
  compat : compat;
  typed_mode : bool;  (** enforce [as] annotations on user function calls *)
  mutable trace_out : string -> unit;
  mutable trace_count : int;
  mutable doc_resolver : string -> Xml_base.Node.t option;
  mutable global_vars : Value.sequence StringMap.t;
  mutable fast_eval : bool;
      (** true: the evaluator may use the cached-key/lazy fast paths;
          false pins every operation to the seed algorithms (benchmark
          baseline, property-test oracle) *)
  mutable limits : limits;
      (** resource budgets for this evaluation; a fresh unlimited record
          per env, so concurrent evaluations never share counters *)
}

and dyn = {
  env : env;
  vars : Value.sequence StringMap.t;
  ctx_item : Value.item option;
  ctx_pos : int;  (** 1-based *)
  ctx_size : int;
}

val fast_eval_default : bool ref
(** Initial value of [env.fast_eval] for newly created environments
    (default [true]). Lets embedders — the docgen service, the benchmarks
    — flip whole runs without threading a parameter everywhere. *)

val make_env : ?compat:compat -> ?typed_mode:bool -> ?limits:limits -> unit -> env
val make_dyn : env -> dyn
val bind_var : dyn -> string -> Value.sequence -> dyn
val lookup_var : dyn -> string -> Value.sequence option
val with_context : dyn -> Value.item -> int -> int -> dyn

val normalize_fname : string -> string
(** Strip an optional leading ["fn:"]. *)

val find_function : env -> string -> int -> func option
val register_function : env -> string -> int -> func -> unit

val context_node : dyn -> Xml_base.Node.t
(** @raise Errors.Error (XPTY0019/XPDY0002) when the context item is
    absent or not a node; the message depends on [compat]. *)

val context_item : dyn -> Value.item
(** @raise Errors.Error (XPDY0002) when the context item is undefined. *)
