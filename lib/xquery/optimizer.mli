(** The rewriting optimizer: constant folding, if-simplification, static
    sequence flattening, dead-let elimination, count-comparison →
    exists/empty rewriting, and loop-invariant path hoisting out of
    FLWOR bodies.

    [treat_trace_as_pure] reproduces the 2004 Galax behaviour the paper's
    debugging section documents: a dead [let $dummy := trace(...)] is
    eliminated, and the tracing silently disappears with it. The [stats]
    record what was removed or rewritten, so harnesses can show exactly
    how many traces were lost and which fast-path rewrites fired. *)

type stats = {
  mutable lets_eliminated : int;
  mutable traces_eliminated : int;
  mutable constants_folded : int;
  mutable count_cmp_rewrites : int;
      (** [count(e) > 0]-style comparisons turned into exists/empty *)
  mutable paths_hoisted : int;
      (** loop-invariant paths lifted out of FLWOR bodies *)
}

val new_stats : unit -> stats

val pure : treat_trace_as_pure:bool -> Ast.expr -> bool
(** Conservative purity: may evaluating the expression be observed other
    than through its value (printing, raising)? *)

val optimize_expr : ?treat_trace_as_pure:bool -> Ast.expr -> Ast.expr * stats
val optimize_program : ?treat_trace_as_pure:bool -> Ast.program -> Ast.program * stats
