(** XQuery static and dynamic errors.

    Errors carry a W3C-style code (e.g. ["err:XPTY0004"]) and a message.
    [fn:error()] raises {!Error} with a user code. *)

exception Error of { code : string; message : string }

val raise_error : string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error "XPTY0004" fmt ...] raises {!Error} with the code
    prefixed by ["err:"]. *)

(** {1 Resource exhaustion}

    Raised when evaluation trips a budget from {!Context.limits}. Unlike
    {!Error}, these do not mean the query is wrong — only that it could
    not be completed within the resources granted. [Stack] and [Memory]
    are the runtime's own exhaustion signals ([Stack_overflow],
    [Out_of_memory]) mapped into the same taxonomy at the engine
    boundary. *)

type resource = Fuel | Depth | Nodes | Deadline | Stack | Memory

exception Resource_exhausted of { resource : resource; limit : int; used : int }
(** [limit] and [used] are in the resource's own unit: evaluation steps
    for [Fuel], call depth for [Depth], allocated nodes for [Nodes], and
    absolute monotonic nanoseconds for [Deadline]. For [Stack]/[Memory]
    both are 0 (the runtime does not report its own limits). *)

val exhaust : resource -> limit:int -> used:int -> 'a
(** Raise {!Resource_exhausted}. *)

val resource_name : resource -> string
(** Lowercase name: ["fuel"], ["depth"], ... *)

val resource_code : resource -> string
(** Structured code, e.g. ["resource:fuel"] — same namespace position as
    the ["err:*"] codes of {!Error}. *)

val resource_of_code : string -> resource option
(** Inverse of {!resource_code}. *)

val resource_message : resource -> limit:int -> used:int -> string
(** Human-readable one-liner for a budget trip. *)

val code_of : exn -> string option
(** The error code if the exception is an XQuery {!Error} or
    {!Resource_exhausted}. *)

(** Commonly used codes, so call sites cannot typo them. *)

val xpst0003 : string (* syntax *)
val xpst0008 : string (* undefined variable *)
val xpst0017 : string (* unknown function *)
val xpdy0002 : string (* context item undefined *)
val xpty0004 : string (* type error *)
val xpty0018 : string (* path mixes nodes and atomics *)
val xpty0019 : string (* path step on a non-node *)
val forg0001 : string (* invalid cast *)
val forg0006 : string (* invalid argument type / EBV *)
val foar0001 : string (* division by zero *)
val foca0002 : string (* invalid lexical value *)
val fons0004 : string (* unknown namespace *)
val xqty0024 : string (* attribute node after non-attribute content *)
val xqdy0025 : string (* duplicate attribute name *)
val foer0000 : string (* fn:error default *)
val fodc0002 : string (* document retrieval failed *)
val forx0002 : string (* invalid regular expression *)
