(** The built-in function library (F&O subset, ~75 entries): accessors,
    numerics (with the untyped-to-double promotions the spec requires of
    aggregates), strings (including regex via Re), sequences, node
    functions, [fn:doc] behind a resolver, and the two functions the
    paper's debugging section revolves around — [fn:error] and
    [fn:trace]. *)

val registry :
  (string * int * (Context.dyn -> Value.sequence list -> Value.sequence)) list
(** (name, arity, implementation) for every fixed-arity builtin. *)

val register_all : Context.env -> unit
(** Install the registry (plus variadic [fn:concat]) into an
    environment. *)

val find :
  string -> int -> (Context.dyn -> Value.sequence list -> Value.sequence) option
(** Resolve a builtin by (possibly [fn:]-prefixed) name and arity,
    including the variadic [fn:concat] range. Used by the plan compiler
    to bind call sites at compile time. *)
