(* The plan executor: a first-order interpreter over Plan.t whose inner
   loops run on flat frames (arrays of sequences indexed by slot) and
   node lists, with no AST, no string-keyed environments and no closure
   allocation per step. Semantics mirror Eval to the letter — the
   three-way plan=fast=seed oracle in the test suite holds it to that —
   and every operator still ticks the resource budget, so fuel, deadline,
   depth and node limits trip inside plan execution exactly as they do in
   the tree-walker.

   Parallel fragments: a [P_for_loop] whose body is compile-time
   parallel-safe and whose source is large may fan its iterations out
   over a caller-supplied pool. Each worker gets a copy of the frame and
   a fresh limits record sharing only the parent's deadline (fuel and
   node budgets must be unlimited for a loop to parallelize — per-worker
   fuel splitting would change which prefix executes). Chunks are fixed
   contiguous ranges joined in order and the lowest-indexed failure is
   re-raised, so results and errors are deterministic and identical to
   the sequential loop. *)

module N = Xml_base.Node
open Value
open Plan

let err = Errors.raise_error

(* Memo key for a pure-function call: atomics by value (doubles by bit
   pattern, so 0.0 and -0.0 — distinguishable through string() — never
   collide, and NaN hits itself), nodes by identity. *)
type mkey_item =
  | MK_int of int
  | MK_bits of int64
  | MK_string of string
  | MK_bool of bool
  | MK_untyped of string
  | MK_node of int

type mkey = mkey_item list list (* one inner list per argument *)

(* Don't build keys from huge argument sequences, don't cache huge
   results, and stop inserting once a function's table is full — the
   cache is an accelerator for small pure helpers (subtype tests, label
   lookups), not a general materialization store. *)
let memo_max_arg_items = 64
let memo_max_result_items = 4096
let memo_max_entries = 2048

type st = {
  env : Context.env;
  prog : Plan.program;
  pool : ((unit -> unit) array -> unit) option;
  in_par : bool; (* already inside a parallel fragment: don't nest *)
  memos : (mkey, sequence) Hashtbl.t option array;
      (* per-function call caches, created lazily per run; shared with
         parallel workers but only touched when [in_par] is false *)
}

let mkey_of_argv (argv : sequence list) : mkey option =
  let exception Too_big in
  let key_item = function
    | Atomic (A_int i) -> MK_int i
    | Atomic (A_double f) -> MK_bits (Int64.bits_of_float f)
    | Atomic (A_string s) -> MK_string s
    | Atomic (A_bool b) -> MK_bool b
    | Atomic (A_untyped s) -> MK_untyped s
    | Node n -> MK_node (N.id n)
  in
  try
    Some
      (List.map
         (fun arg ->
           if List.compare_length_with arg memo_max_arg_items > 0 then raise Too_big;
           List.map key_item arg)
         argv)
  with Too_big -> None

(* Minimum source size before a parallel-safe loop fans out; below this
   the spawn/join cost dominates. *)
let par_threshold = 512
let par_chunks = 8

let context_node st (cit : item option) : N.t =
  match cit with
  | Some (Node n) -> n
  | Some (Atomic _) -> err Errors.xpty0019 "the context item is not a node"
  | None ->
    if st.env.Context.compat.Context.galax_messages then
      err "XPDY0002" "Internal_Error: Variable '$glx:dot' not found."
    else err Errors.xpdy0002 "the context item is undefined"

let context_item st (cit : item option) : item =
  match cit with
  | Some i -> i
  | None ->
    if st.env.Context.compat.Context.galax_messages then
      err "XPDY0002" "Internal_Error: Variable '$glx:dot' not found."
    else err Errors.xpdy0002 "the context item is undefined"

let dyn_of st cit cpos csiz : Context.dyn =
  {
    (Context.make_dyn st.env) with
    Context.ctx_item = cit;
    ctx_pos = cpos;
    ctx_size = csiz;
  }

let is_nan_atom = function A_double f -> Float.is_nan f | _ -> false

let value_cmp_name = function
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Lt -> "lt"
  | Ast.Le -> "le"
  | Ast.Gt -> "gt"
  | Ast.Ge -> "ge"

(* Base items of a step pipeline must all be nodes; raise at the first
   atomic, in order, as the interpreter's per-item path walk does. *)
let nodes_of_base (s : sequence) : N.t list =
  List.map
    (function
      | Node n -> n
      | Atomic _ -> err Errors.xpty0019 "a path step was applied to a non-node")
    s

let rec exec (st : st) (frame : sequence array) (cit : item option) (cpos : int)
    (csiz : int) (p : Plan.t) : sequence =
  Context.tick st.env.Context.limits;
  match p with
  | P_const v -> v
  | P_slot (i, _) -> frame.(i)
  | P_global name -> (
    match Context.StringMap.find_opt name st.env.Context.global_vars with
    | Some v -> v
    | None -> err Errors.xpst0008 "undefined variable $%s" name)
  | P_context_item -> [ context_item st cit ]
  | P_root -> of_node (N.root (context_node st cit))
  | P_seq parts ->
    let rec go i =
      if i >= Array.length parts then []
      else
        let v = exec st frame cit cpos csiz parts.(i) in
        v @ go (i + 1)
    in
    go 0
  | P_range (e1, e2) -> (
    match
      (atomize (exec st frame cit cpos csiz e1), atomize (exec st frame cit cpos csiz e2))
    with
    | [], _ | _, [] -> []
    | [ a ], [ b ] ->
      let lo = cast_to_int a and hi = cast_to_int b in
      if lo > hi then []
      else begin
        let limits = st.env.Context.limits in
        List.init
          (hi - lo + 1)
          (fun i ->
            Context.tick limits;
            Atomic (A_int (lo + i)))
      end
    | _ -> err Errors.xpty0004 "'to' requires singleton operands")
  | P_arith (op, e1, e2) -> (
    match
      (atomize (exec st frame cit cpos csiz e1), atomize (exec st frame cit cpos csiz e2))
    with
    | [], _ | _, [] -> []
    | [ a ], [ b ] -> Eval.arith op a b
    | _ -> err Errors.xpty0004 "arithmetic requires singleton operands")
  | P_neg e -> (
    match atomize (exec st frame cit cpos csiz e) with
    | [] -> []
    | [ a ] -> (
      let a =
        match a with
        | A_int _ | A_double _ -> a
        | A_untyped s -> A_double (double_of_atomic (A_untyped s))
        | other ->
          err Errors.xpty0004 "%s: operand is not numeric (%s)" "unary -"
            (atomic_type_name other)
      in
      match a with
      | A_int n -> of_int (-n)
      | A_double f -> of_double (-.f)
      | _ -> assert false)
    | _ -> err Errors.xpty0004 "unary - requires a singleton operand")
  | P_general_cmp (op, e1, e2) ->
    let l1 = atomize (exec st frame cit cpos csiz e1) in
    let l2 = atomize (exec st frame cit cpos csiz e2) in
    of_bool
      (List.exists
         (fun a -> List.exists (fun b -> Eval.atomic_pair_test `General op a b) l2)
         l1)
  | P_value_cmp (op, e1, e2) -> (
    match
      (atomize (exec st frame cit cpos csiz e1), atomize (exec st frame cit cpos csiz e2))
    with
    | [], _ | _, [] -> []
    | [ a ], [ b ] -> of_bool (Eval.atomic_pair_test `Value op a b)
    | _ ->
      err Errors.xpty0004 "value comparison (%s) requires singleton operands"
        (value_cmp_name op))
  | P_node_cmp (op, e1, e2) -> (
    let name = match op with Ast.Is -> "is" | Ast.Precedes -> "<<" | Ast.Follows -> ">>" in
    let node_of e =
      match exec st frame cit cpos csiz e with
      | [] -> None
      | [ Node n ] -> Some n
      | _ -> err Errors.xpty0004 "%s requires single nodes" name
    in
    match (node_of e1, node_of e2) with
    | None, _ | _, None -> []
    | Some a, Some b -> (
      match op with
      | Ast.Is -> of_bool (N.same a b)
      | Ast.Precedes -> of_bool (N.compare_document_order a b < 0)
      | Ast.Follows -> of_bool (N.compare_document_order a b > 0)))
  | P_and (e1, e2) ->
    of_bool (ebv st frame cit cpos csiz e1 && ebv st frame cit cpos csiz e2)
  | P_or (e1, e2) ->
    of_bool (ebv st frame cit cpos csiz e1 || ebv st frame cit cpos csiz e2)
  | P_set_op (op, e1, e2) -> (
    let nodes e =
      match all_nodes (exec st frame cit cpos csiz e) with
      | Some ns -> ns
      | None -> err Errors.xpty0004 "set operation requires node sequences"
    in
    let l1 = nodes e1 in
    let l2 = nodes e2 in
    match op with
    | Ast.Union -> of_nodes (document_order (l1 @ l2))
    | Ast.Intersect | Ast.Except ->
      let tbl = Hashtbl.create ((2 * List.length l2) + 1) in
      List.iter (fun n -> Hashtbl.replace tbl (N.id n) ()) l2;
      let keep =
        match op with
        | Ast.Except -> fun n -> not (Hashtbl.mem tbl (N.id n))
        | _ -> fun n -> Hashtbl.mem tbl (N.id n)
      in
      of_nodes (document_order (List.filter keep l1)))
  | P_if (c, t, f) ->
    if ebv st frame cit cpos csiz c then exec st frame cit cpos csiz t
    else exec st frame cit cpos csiz f
  | P_steps sp -> run_steps st frame cit cpos csiz sp
  | P_path (e1, e2) -> (
    let base = exec st frame cit cpos csiz e1 in
    let size = List.length base in
    let results =
      List.concat
        (List.mapi
           (fun i item ->
             match item with
             | Node _ -> exec st frame (Some item) (i + 1) size e2
             | Atomic _ -> err Errors.xpty0019 "a path step was applied to a non-node")
           base)
    in
    match all_nodes results with
    | Some ns -> of_nodes (document_order ns)
    | None ->
      if List.for_all (function Atomic _ -> true | Node _ -> false) results then results
      else err Errors.xpty0018 "path result mixes nodes and atomic values")
  | P_filter_pos (base, k) -> (
    let items = exec st frame cit cpos csiz base in
    if k < 1 then []
    else match List.nth_opt items (k - 1) with Some it -> [ it ] | None -> [])
  | P_filter (base, pred) ->
    let items = exec st frame cit cpos csiz base in
    let size = List.length items in
    List.concat
      (List.mapi
         (fun i item ->
           let p = exec st frame (Some item) (i + 1) size pred in
           match p with
           | [ Atomic ((A_int _ | A_double _) as a) ] ->
             if double_of_atomic a = float_of_int (i + 1) then [ item ] else []
           | p -> if effective_boolean_value p then [ item ] else [])
         items)
  | P_exists (p, early) -> (
    match p with
    | P_steps sp when early -> of_bool (probe_pipeline st frame cit cpos csiz sp)
    | _ -> (
      match exec st frame cit cpos csiz p with [] -> of_bool false | _ -> of_bool true))
  | P_empty (p, early) -> (
    match p with
    | P_steps sp when early -> of_bool (not (probe_pipeline st frame cit cpos csiz sp))
    | _ -> (
      match exec st frame cit cpos csiz p with [] -> of_bool true | _ -> of_bool false))
  | P_ebv p -> of_bool (ebv st frame cit cpos csiz p)
  | P_not p -> of_bool (not (ebv st frame cit cpos csiz p))
  | P_call_builtin (_, f, args) ->
    f (dyn_of st cit cpos csiz) (eval_args st frame cit cpos csiz args)
  | P_call_user (idx, name, args) ->
    let f = st.prog.funcs.(idx) in
    let argv = eval_args st frame cit cpos csiz args in
    let memo =
      if f.memoizable && not st.in_par then
        match mkey_of_argv argv with
        | None -> None
        | Some key ->
          let tbl =
            match st.memos.(idx) with
            | Some tbl -> tbl
            | None ->
              let tbl = Hashtbl.create 64 in
              st.memos.(idx) <- Some tbl;
              tbl
          in
          Some (tbl, key)
      else None
    in
    (match memo with
    | Some (tbl, key) when Hashtbl.mem tbl key ->
      (* A hit still costs one fuel tick, so memo-heavy runs keep their
         deadline checks live and their fuel accounting monotone. *)
      Context.tick st.env.Context.limits;
      Hashtbl.find tbl key
    | _ ->
      let result = exec_user_call st idx name argv in
      (match memo with
      | Some (tbl, key)
        when Hashtbl.length tbl < memo_max_entries
             && List.compare_length_with result memo_max_result_items <= 0 ->
        Hashtbl.add tbl key result
      | _ -> ());
      result)
  | P_call_unknown (name, arity) -> err Errors.xpst0017 "unknown function %s/%d" name arity
  | P_flwor (clauses, order_by, ret) -> exec_flwor st frame cit cpos csiz clauses order_by ret
  | P_for_loop { slot; var; typ; src; body; par_safe } ->
    let items = exec st frame cit cpos csiz src in
    let n = List.length items in
    if
      par_safe && n >= par_threshold && st.pool <> None && (not st.in_par)
      && st.env.Context.limits.Context.fuel = max_int
      && st.env.Context.limits.Context.max_nodes = max_int
    then run_parallel st frame cit cpos csiz slot var typ items n body
    else begin
      let limits = st.env.Context.limits in
      let typed = st.env.Context.typed_mode in
      let racc = ref [] in
      List.iter
        (fun item ->
          Context.tick limits;
          (if typed then
             match typ with
             | Some ty when not (Stype.matches [ item ] ty) ->
               err Errors.xpty0004 "for $%s as %s: item does not match" var
                 (Stype.to_string ty)
             | _ -> ());
          frame.(slot) <- [ item ];
          racc := exec st frame cit cpos csiz body :: !racc)
        items;
      List.concat (List.rev !racc)
    end
  | P_quantified (q, bindings, body) ->
    of_bool (exec_quant st frame cit cpos csiz q bindings body 0)
  | P_cast (t, e) -> (
    match atomize (exec st frame cit cpos csiz e) with
    | [] -> []
    | [ a ] -> Eval.apply_cast t a
    | _ -> err Errors.xpty0004 "cast requires a singleton")
  | P_castable (t, e) -> (
    match atomize (exec st frame cit cpos csiz e) with
    | [ a ] ->
      of_bool
        (match Eval.apply_cast t a with _ -> true | exception Errors.Error _ -> false)
    | _ -> of_bool false)
  | P_instance_of (e, ty) -> of_bool (Stype.matches (exec st frame cit cpos csiz e) ty)
  | P_treat (e, ty) ->
    let v = exec st frame cit cpos csiz e in
    if Stype.matches v ty then v
    else err "XPDY0050" "treat as %s: value does not match" (Stype.to_string ty)
  | P_typeswitch { operand; cases; default_slot; default_var = _; default } ->
    let v = exec st frame cit cpos csiz operand in
    let rec pick i =
      if i >= Array.length cases then begin
        (match default_slot with Some s -> frame.(s) <- v | None -> ());
        exec st frame cit cpos csiz default
      end
      else if Stype.matches v cases.(i).c_type then begin
        (match cases.(i).c_slot with Some s -> frame.(s) <- v | None -> ());
        exec st frame cit cpos csiz cases.(i).c_body
      end
      else pick (i + 1)
    in
    pick 0
  | P_elem (name, content) ->
    let nm = exec_name st frame cit cpos csiz name in
    let content_nodes =
      List.concat_map
        (fun ce -> Eval.content_nodes_of_sequence (exec st frame cit cpos csiz ce))
        (Array.to_list content)
    in
    of_node (Eval.assemble_element st.env nm content_nodes)
  | P_attr (name, parts) ->
    let nm = exec_name st frame cit cpos csiz name in
    let value =
      String.concat ""
        (List.map
           (function
             | PA_lit s -> s
             | PA_dyn p ->
               String.concat " "
                 (List.map string_of_atomic (atomize (exec st frame cit cpos csiz p))))
           (Array.to_list parts))
    in
    of_node (N.attribute nm value)
  | P_text e -> (
    match exec st frame cit cpos csiz e with
    | [] -> []
    | s -> of_node (N.text (String.concat " " (List.map string_of_atomic (atomize s)))))
  | P_doc content ->
    let content_nodes =
      List.concat_map
        (fun ce -> Eval.content_nodes_of_sequence (exec st frame cit cpos csiz ce))
        (Array.to_list content)
    in
    Eval.charge_content st.env.Context.limits content_nodes;
    let kids =
      List.map
        (fun n ->
          if N.kind n = N.Attribute then
            err Errors.xpty0004 "attribute node at document top level"
          else N.copy n)
        content_nodes
    in
    of_node (N.document kids)
  | P_comment e -> of_node (N.comment (string_value (exec st frame cit cpos csiz e)))

and exec_name st frame cit cpos csiz = function
  | PN_static n -> n
  | PN_computed p -> string_value (exec st frame cit cpos csiz p)

and eval_args st frame cit cpos csiz (args : Plan.t array) : sequence list =
  (* explicit left-to-right, matching the interpreter's List.map *)
  let rec go i =
    if i >= Array.length args then []
    else
      let v = exec st frame cit cpos csiz args.(i) in
      v :: go (i + 1)
  in
  go 0

(* Effective boolean value of a plan. A step pipeline yields only nodes,
   where EBV is an emptiness test — use the early-exit probe. *)
and ebv st frame cit cpos csiz (p : Plan.t) : bool =
  match p with
  | P_steps sp -> probe_pipeline st frame cit cpos csiz sp
  | _ -> effective_boolean_value (exec st frame cit cpos csiz p)

(* ------------------------------------------------------------------ *)
(* Step pipelines                                                      *)
(* ------------------------------------------------------------------ *)

and preds_ok st frame (s : Plan.step) (m : N.t) : bool =
  let np = Array.length s.preds in
  np = 0
  ||
  let rec go i = i >= np || (ebv st frame (Some (Node m)) 1 1 s.preds.(i) && go (i + 1)) in
  go 0

and run_steps st frame cit cpos csiz { base; steps; sorted_if_single; raw } : sequence =
  let base_seq = exec st frame cit cpos csiz base in
  let nodes = nodes_of_base base_seq in
  let n0 = List.length nodes in
  if n0 = 0 then []
  else begin
    let limits = st.env.Context.limits in
    let cur = ref nodes in
    let count = ref n0 in
    Array.iter
      (fun (s : Plan.step) ->
        let racc = ref [] in
        let c = ref 0 in
        List.iter
          (fun n ->
            List.iter
              (fun m ->
                Context.tick limits;
                if Eval.node_test_matches s.test m && preds_ok st frame s m then begin
                  racc := m :: !racc;
                  incr c
                end)
              (Eval.axis_nodes s.axis n))
          !cur;
        let out = List.rev !racc in
        (* Re-sort+dedup mid-pipeline after axes that can duplicate, so a
           chain like //x//y stays near-linear instead of exploding. *)
        if Compile.dup_creating s.axis && !count > 1 then begin
          let sorted = document_order out in
          cur := sorted;
          count := List.length sorted
        end
        else begin
          cur := out;
          count := !c
        end)
      steps;
    let final =
      if raw || (sorted_if_single && n0 <= 1) then !cur else document_order !cur
    in
    of_nodes final
  end

(* Emptiness probe: walk the pipeline depth-first and stop at the first
   node that survives the whole chain. Over nodes EBV is exactly
   non-emptiness, and a pipeline can only raise budget trips, so the
   early exit is unobservable except as saved work. *)
and probe_pipeline st frame cit cpos csiz { base; steps; _ } : bool =
  let base_seq = exec st frame cit cpos csiz base in
  let nodes = nodes_of_base base_seq in
  let limits = st.env.Context.limits in
  let nsteps = Array.length steps in
  let rec from i n =
    if i >= nsteps then true
    else begin
      let s = steps.(i) in
      let try_node m =
        Context.tick limits;
        Eval.node_test_matches s.test m && preds_ok st frame s m && from (i + 1) m
      in
      let rec desc_exists n =
        List.exists (fun k -> try_desc k) (N.children n)
      and try_desc k = try_node k || desc_exists k in
      match s.axis with
      | Ast.Descendant -> desc_exists n
      | Ast.Descendant_or_self -> try_node n || desc_exists n
      | axis -> List.exists try_node (Eval.axis_nodes axis n)
    end
  in
  List.exists (fun n -> from 0 n) nodes

(* ------------------------------------------------------------------ *)
(* FLWOR                                                               *)
(* ------------------------------------------------------------------ *)

(* The general FLWOR mirrors the interpreter's breadth-first clause
   expansion — each clause maps over the full list of binding tuples
   before the next clause runs, so evaluation (and error) order is
   identical. Tuples are frame snapshots; For copies, Let mutates its
   own snapshot in place. *)
and exec_user_call st idx name argv : sequence =
  let f = st.prog.funcs.(idx) in
  let limits = st.env.Context.limits in
  Context.enter_call limits;
  let typed = st.env.Context.typed_mode in
  let nframe = Array.make f.frame_size [] in
  List.iteri
    (fun i arg ->
      let pname, ptype = f.params.(i) in
      (if typed then
         match ptype with
         | Some ty when not (Stype.matches arg ty) ->
           err Errors.xpty0004 "%s: argument $%s does not match %s" name pname
             (Stype.to_string ty)
         | _ -> ());
      nframe.(i) <- arg)
    argv;
  let result = exec st nframe None 0 0 f.body in
  (* No unwind on exception: a budget trip aborts the whole run. *)
  Context.exit_call limits;
  (if typed then
     match f.ret_type with
     | Some ty when not (Stype.matches result ty) ->
       err Errors.xpty0004 "%s: result does not match %s" name (Stype.to_string ty)
     | _ -> ());
  result

and exec_flwor st frame cit cpos csiz clauses order_by ret : sequence =
  let typed = st.env.Context.typed_mode in
  let frames =
    Array.fold_left
      (fun frames clause ->
        match clause with
        | PC_for { slot; var; typ; pos_slot; src; _ } ->
          List.concat_map
            (fun fr ->
              let items = exec st fr cit cpos csiz src in
              List.mapi
                (fun i item ->
                  (if typed then
                     match typ with
                     | Some ty when not (Stype.matches [ item ] ty) ->
                       err Errors.xpty0004 "for $%s as %s: item does not match" var
                         (Stype.to_string ty)
                     | _ -> ());
                  let fr' = Array.copy fr in
                  fr'.(slot) <- [ item ];
                  (match pos_slot with
                  | Some ps -> fr'.(ps) <- of_int (i + 1)
                  | None -> ());
                  fr')
                items)
            frames
        | PC_let { slot; var; typ; value } ->
          List.map
            (fun fr ->
              let v = exec st fr cit cpos csiz value in
              (if typed then
                 match typ with
                 | Some ty when not (Stype.matches v ty) ->
                   err Errors.xpty0004 "let $%s as %s: value does not match" var
                     (Stype.to_string ty)
                 | _ -> ());
              fr.(slot) <- v;
              fr)
            frames
        | PC_where cond -> List.filter (fun fr -> ebv st fr cit cpos csiz cond) frames)
      [ Array.copy frame ] clauses
  in
  let frames =
    if Array.length order_by = 0 then frames
    else begin
      let specs = Array.to_list order_by in
      let keyed =
        List.map
          (fun fr ->
            let keys =
              List.map
                (fun (o : porder) ->
                  match atomize (exec st fr cit cpos csiz o.key) with
                  | [] -> None
                  | [ a ] -> Some a
                  | _ -> err Errors.xpty0004 "order by key must be a singleton")
                specs
            in
            (keys, fr))
          frames
      in
      let compare_keys k1 k2 =
        let rec go specs k1 k2 =
          match (specs, k1, k2) with
          | [], [], [] -> 0
          | (spec : porder) :: specs, a :: k1, b :: k2 ->
            let c =
              match (a, b) with
              | None, None -> 0
              | None, Some _ -> if spec.empty_greatest then 1 else -1
              | Some _, None -> if spec.empty_greatest then -1 else 1
              | Some a, Some b -> (
                if is_nan_atom a && is_nan_atom b then 0
                else if is_nan_atom a then if spec.empty_greatest then 1 else -1
                else if is_nan_atom b then if spec.empty_greatest then -1 else 1
                else
                  match value_compare a b with
                  | Some c -> c
                  | None ->
                    err Errors.xpty0004 "order by keys of incomparable types (%s, %s)"
                      (atomic_type_name a) (atomic_type_name b))
            in
            if c <> 0 then if spec.descending then -c else c else go specs k1 k2
          | _ -> assert false
        in
        go specs k1 k2
      in
      List.stable_sort (fun (k1, _) (k2, _) -> compare_keys k1 k2) keyed |> List.map snd
    end
  in
  List.concat_map (fun fr -> exec st fr cit cpos csiz ret) frames

and exec_quant st frame cit cpos csiz q (bindings : (int * string * Plan.t) array) body i
    : bool =
  if i >= Array.length bindings then ebv st frame cit cpos csiz body
  else begin
    let slot, _, src = bindings.(i) in
    let items = exec st frame cit cpos csiz src in
    let test item =
      frame.(slot) <- [ item ];
      exec_quant st frame cit cpos csiz q bindings body (i + 1)
    in
    match q with
    | Ast.Some_q -> List.exists test items
    | Ast.Every_q -> List.for_all test items
  end

(* ------------------------------------------------------------------ *)
(* Parallel fragments                                                  *)
(* ------------------------------------------------------------------ *)

and run_parallel st frame cit cpos csiz slot var typ items n body : sequence =
  let pool = Option.get st.pool in
  let arr = Array.of_list items in
  let nchunks = min par_chunks n in
  let chunk = (n + nchunks - 1) / nchunks in
  let results : (sequence, exn) result array = Array.make nchunks (Ok []) in
  let parent = st.env.Context.limits in
  let typed = st.env.Context.typed_mode in
  let tasks =
    Array.init nchunks (fun ci () ->
        let lo = ci * chunk in
        let hi = min n ((ci + 1) * chunk) in
        let wlimits =
          Context.make_limits
            ~max_depth:parent.Context.max_depth
            ~deadline_ns:parent.Context.deadline_ns ()
        in
        wlimits.Context.depth <- parent.Context.depth;
        let wenv = { st.env with Context.limits = wlimits } in
        let wst = { st with env = wenv; in_par = true } in
        let wframe = Array.copy frame in
        try
          let racc = ref [] in
          for i = lo to hi - 1 do
            let item = arr.(i) in
            Context.tick wlimits;
            (if typed then
               match typ with
               | Some ty when not (Stype.matches [ item ] ty) ->
                 err Errors.xpty0004 "for $%s as %s: item does not match" var
                   (Stype.to_string ty)
               | _ -> ());
            wframe.(slot) <- [ item ];
            racc := exec wst wframe cit cpos csiz body :: !racc
          done;
          results.(ci) <- Ok (List.concat (List.rev !racc))
        with e -> results.(ci) <- Error e)
  in
  pool tasks;
  (* Lowest-index failure wins: that chunk contains the earliest item the
     sequential loop would have failed on. *)
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  Context.check parent;
  List.concat
    (Array.to_list (Array.map (function Ok l -> l | Error _ -> assert false) results))

(* ------------------------------------------------------------------ *)
(* Program entry                                                       *)
(* ------------------------------------------------------------------ *)

let run (env : Context.env) ?context_item ?(vars = []) ?pool (prog : Plan.program) :
    sequence =
  (* One slow check up front: an already-expired deadline trips before
     any work, as in Eval.run_program. *)
  Context.check env.Context.limits;
  env.Context.global_vars <-
    List.fold_left
      (fun acc (name, value) -> Context.StringMap.add name value acc)
      env.Context.global_vars vars;
  let st =
    {
      env;
      prog;
      pool;
      in_par = false;
      memos = Array.make (Array.length prog.funcs) None;
    }
  in
  let cit = context_item in
  let cpos, csiz = match cit with Some _ -> (1, 1) | None -> (0, 0) in
  Array.iter
    (fun (g : pglobal) ->
      let gframe = Array.make g.gframe [] in
      let value = exec st gframe cit cpos csiz g.init in
      (if env.Context.typed_mode then
         match g.gtype with
         | Some ty when not (Stype.matches value ty) ->
           err Errors.xpty0004 "global $%s does not match %s" g.gname (Stype.to_string ty)
         | _ -> ());
      env.Context.global_vars <- Context.StringMap.add g.gname value env.Context.global_vars)
    prog.globals;
  let frame = Array.make prog.main_frame [] in
  exec st frame cit cpos csiz prog.main
