(* A small rewriting optimizer in the spirit of the Galax of 2004:
   constant folding, if-simplification, and — the paper's debugging
   horror — dead-let elimination that, when [treat_trace_as_pure] is set,
   silently deletes [let $dummy := trace(...)] bindings and the tracing
   with them. *)

open Ast

type stats = {
  mutable lets_eliminated : int;
  mutable traces_eliminated : int;
  mutable constants_folded : int;
  mutable count_cmp_rewrites : int;
  mutable paths_hoisted : int;
}

let new_stats () =
  {
    lets_eliminated = 0;
    traces_eliminated = 0;
    constants_folded = 0;
    count_cmp_rewrites = 0;
    paths_hoisted = 0;
  }

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

let rec free_vars (e : expr) (acc : string list) : string list =
  match e with
  | E_int _ | E_double _ | E_string _ | E_context_item | E_root | E_step _ -> acc
  | E_var v -> v :: acc
  | E_seq es -> List.fold_left (fun acc e -> free_vars e acc) acc es
  | E_range (a, b)
  | E_arith (_, a, b)
  | E_general_cmp (_, a, b)
  | E_value_cmp (_, a, b)
  | E_node_cmp (_, a, b)
  | E_and (a, b)
  | E_or (a, b)
  | E_set_op (_, a, b)
  | E_path (a, b)
  | E_filter (a, b) ->
    free_vars b (free_vars a acc)
  | E_neg a | E_cast (_, a) | E_castable (_, a) | E_instance_of (a, _)
  | E_treat (a, _) | E_text a | E_comment_c a ->
    free_vars a acc
  | E_typeswitch { operand; cases; default_var = _; default } ->
    let acc = free_vars operand acc in
    let acc =
      List.fold_left (fun acc c -> free_vars c.case_return acc) acc cases
    in
    free_vars default acc
  | E_if (c, t, f) -> free_vars f (free_vars t (free_vars c acc))
  | E_call (_, args) -> List.fold_left (fun acc e -> free_vars e acc) acc args
  | E_elem (name, content) | E_attr (name, content) ->
    let acc = match name with Computed_name e -> free_vars e acc | Static_name _ -> acc in
    List.fold_left (fun acc e -> free_vars e acc) acc content
  | E_doc content -> List.fold_left (fun acc e -> free_vars e acc) acc content
  | E_quantified (_, bindings, body) ->
    (* Approximate: treats shadowed names as free, which only makes the
       optimizer more conservative. *)
    let acc = List.fold_left (fun acc (_, e) -> free_vars e acc) acc bindings in
    free_vars body acc
  | E_flwor { clauses; order_by; return } ->
    let acc =
      List.fold_left
        (fun acc c ->
          match c with
          | For { source; _ } -> free_vars source acc
          | Let { value; _ } -> free_vars value acc
          | Where cond -> free_vars cond acc)
        acc clauses
    in
    let acc = List.fold_left (fun acc spec -> free_vars spec.key acc) acc order_by in
    free_vars return acc

let uses_var v e = List.mem v (free_vars e [])

(* ------------------------------------------------------------------ *)
(* Purity                                                              *)
(* ------------------------------------------------------------------ *)

(* Can evaluating [e] be observed other than through its value? fn:error
   raises; fn:trace prints — unless the engine is told to treat it as
   pure, which is exactly the bug-by-design the paper hit. User functions
   are treated as opaque (impure) for safety, as are all other calls:
   builtins may raise on bad arguments, and eliminating a binding also
   eliminates its errors, which Galax was willing to do; we keep that
   behaviour only for calls known harmless. *)
let rec pure ~treat_trace_as_pure (e : expr) : bool =
  let p = pure ~treat_trace_as_pure in
  match e with
  | E_int _ | E_double _ | E_string _ | E_var _ | E_context_item | E_root | E_step _ -> true
  | E_seq es -> List.for_all p es
  | E_range (a, b) | E_path (a, b) | E_filter (a, b) | E_set_op (_, a, b) -> p a && p b
  | E_arith _ -> false (* may divide by zero *)
  | E_general_cmp (_, a, b) | E_value_cmp (_, a, b) | E_node_cmp (_, a, b) -> p a && p b
  | E_and (a, b) | E_or (a, b) -> p a && p b
  | E_neg a -> p a
  | E_if (c, t, f) -> p c && p t && p f
  | E_cast _ | E_castable _ | E_treat _ -> false (* may raise *)
  | E_typeswitch { operand; cases; default; _ } ->
    p operand && List.for_all (fun c -> p c.case_return) cases && p default
  | E_instance_of (a, _) -> p a
  | E_text a | E_comment_c a -> p a
  | E_elem (name, content) | E_attr (name, content) ->
    (match name with Computed_name e -> p e | Static_name _ -> true)
    && List.for_all p content
  | E_doc content -> List.for_all p content
  | E_call (name, args) -> (
    let base = Context.normalize_fname name in
    match base with
    | "trace" -> treat_trace_as_pure && List.for_all p args
    | "error" | "doc" -> false
    | "count" | "empty" | "exists" | "not" | "true" | "false" | "position" | "last"
    | "string" | "concat" | "string-join" | "string-length" | "normalize-space"
    | "upper-case" | "lower-case" | "contains" | "starts-with" | "ends-with"
    | "substring-before" | "substring-after" | "name" | "local-name" | "reverse"
    | "distinct-values" | "data" ->
      List.for_all p args
    | _ -> false)
  | E_quantified (_, bindings, body) -> List.for_all (fun (_, e) -> p e) bindings && p body
  | E_flwor { clauses; order_by; return } ->
    List.for_all
      (function
        | For { source; _ } -> p source
        | Let { value; _ } -> p value
        | Where cond -> p cond)
      clauses
    && List.for_all (fun spec -> p spec.key) order_by
    && p return

let is_trace_call = function
  | E_call (name, _) -> Context.normalize_fname name = "trace"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* count() comparison rewriting                                        *)
(* ------------------------------------------------------------------ *)

(* count(e) compared against a literal integer only asks whether e is
   empty: rewrite to exists/empty so the evaluator's lazy layer can stop
   at the first item instead of materializing and counting everything.
   count returns a singleton, so the existential general comparison and
   the value comparison coincide here. *)
let rewrite_count_cmp stats op a b =
  let count_arg = function
    | E_call (name, [ arg ]) when Context.normalize_fname name = "count" -> Some arg
    | _ -> None
  in
  let hit fname arg =
    stats.count_cmp_rewrites <- stats.count_cmp_rewrites + 1;
    Some (E_call (fname, [ arg ]))
  in
  match (count_arg a, b) with
  | Some arg, E_int n -> (
    match (op, n) with
    | (Gt, 0) | (Ge, 1) | (Ne, 0) -> hit "exists" arg
    | (Eq, 0) | (Lt, 1) | (Le, 0) -> hit "empty" arg
    | _ -> None)
  | _ -> (
    match (a, count_arg b) with
    | E_int n, Some arg -> (
      match (n, op) with
      | (0, Lt) | (1, Le) | (0, Ne) -> hit "exists" arg
      | (0, Eq) | (1, Gt) | (0, Ge) -> hit "empty" arg
      | _ -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Loop-invariant path hoisting                                        *)
(* ------------------------------------------------------------------ *)

let hoist_counter = ref 0

let binder_names_of_clauses clauses =
  List.concat_map
    (function
      | For { var; pos_var; _ } -> var :: Option.to_list pos_var
      | Let { var; _ } -> [ var ]
      | Where _ -> [])
    clauses

(* Replace maximal pure E_path subexpressions whose free variables avoid
   [bound] with fresh variables, recording the hoisted expressions in
   [acc] (deduplicated structurally, so two uses of the same path share
   one binding). The traversal only looks at positions whose context item
   equals the FLWOR's own: it descends into path/filter left-hand sides
   but never into a path's right-hand side or a predicate, where the
   focus varies per item. *)
let rec hoist_in acc ~treat_trace_as_pure ~bound (e : expr) : expr =
  let h = hoist_in acc ~treat_trace_as_pure ~bound in
  let invariant e =
    pure ~treat_trace_as_pure e
    && List.for_all (fun v -> not (List.mem v bound)) (free_vars e [])
  in
  match e with
  | E_path (a, b) when invariant e -> (
    match List.find_opt (fun (e', _) -> equal_expr e e') !acc with
    | Some (_, var) -> E_var var
    | None ->
      incr hoist_counter;
      let var = Printf.sprintf "hoisted#%d" !hoist_counter in
      acc := (E_path (a, b), var) :: !acc;
      E_var var)
  | E_int _ | E_double _ | E_string _ | E_var _ | E_context_item | E_root | E_step _ -> e
  | E_path (a, b) -> E_path (h a, b)
  | E_filter (a, b) -> E_filter (h a, b)
  | E_seq es -> E_seq (List.map h es)
  | E_range (a, b) -> E_range (h a, h b)
  | E_arith (op, a, b) -> E_arith (op, h a, h b)
  | E_neg a -> E_neg (h a)
  | E_general_cmp (op, a, b) -> E_general_cmp (op, h a, h b)
  | E_value_cmp (op, a, b) -> E_value_cmp (op, h a, h b)
  | E_node_cmp (op, a, b) -> E_node_cmp (op, h a, h b)
  | E_and (a, b) -> E_and (h a, h b)
  | E_or (a, b) -> E_or (h a, h b)
  | E_set_op (op, a, b) -> E_set_op (op, h a, h b)
  | E_if (c, t, f) -> E_if (h c, h t, h f)
  | E_call (name, args) -> E_call (name, List.map h args)
  | E_cast (t, a) -> E_cast (t, h a)
  | E_castable (t, a) -> E_castable (t, h a)
  | E_instance_of (a, ty) -> E_instance_of (h a, ty)
  | E_treat (a, ty) -> E_treat (h a, ty)
  | E_text a -> E_text (h a)
  | E_comment_c a -> E_comment_c (h a)
  | E_doc content -> E_doc (List.map h content)
  | E_elem (name, content) -> E_elem (hoist_name acc ~treat_trace_as_pure ~bound name, List.map h content)
  | E_attr (name, content) -> E_attr (hoist_name acc ~treat_trace_as_pure ~bound name, List.map h content)
  | E_quantified (q, bindings, body) ->
    let bindings = List.map (fun (v, e) -> (v, h e)) bindings in
    let bound = List.map fst bindings @ bound in
    E_quantified (q, bindings, hoist_in acc ~treat_trace_as_pure ~bound body)
  | E_typeswitch { operand; cases; default_var; default } ->
    let operand = h operand in
    let cases =
      List.map
        (fun c ->
          let bound = Option.to_list c.case_var @ bound in
          { c with case_return = hoist_in acc ~treat_trace_as_pure ~bound c.case_return })
        cases
    in
    let default =
      hoist_in acc ~treat_trace_as_pure ~bound:(Option.to_list default_var @ bound) default
    in
    E_typeswitch { operand; cases; default_var; default }
  | E_flwor { clauses; order_by; return } ->
    let inner_bound = binder_names_of_clauses clauses @ bound in
    let hi = hoist_in acc ~treat_trace_as_pure ~bound:inner_bound in
    let clauses =
      List.map
        (function
          | For f -> For { f with source = hi f.source }
          | Let l -> Let { l with value = hi l.value }
          | Where cond -> Where (hi cond))
        clauses
    in
    let order_by = List.map (fun s -> { s with key = hi s.key }) order_by in
    E_flwor { clauses; order_by; return = hi return }

and hoist_name acc ~treat_trace_as_pure ~bound = function
  | Static_name _ as n -> n
  | Computed_name e -> Computed_name (hoist_in acc ~treat_trace_as_pure ~bound e)

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

let rec rewrite stats ~treat_trace_as_pure (e : expr) : expr =
  let r = rewrite stats ~treat_trace_as_pure in
  match e with
  | E_int _ | E_double _ | E_string _ | E_var _ | E_context_item | E_root | E_step _ -> e
  | E_seq es -> (
    (* Statically flatten nested sequence constructors. *)
    let es = List.concat_map (fun e -> match r e with E_seq inner -> inner | e -> [ e ]) es in
    match es with [ single ] -> single | es -> E_seq es)
  | E_range (a, b) -> E_range (r a, r b)
  | E_arith (op, a, b) -> (
    let a = r a and b = r b in
    match (op, a, b) with
    | Add, E_int x, E_int y ->
      stats.constants_folded <- stats.constants_folded + 1;
      E_int (x + y)
    | Sub, E_int x, E_int y ->
      stats.constants_folded <- stats.constants_folded + 1;
      E_int (x - y)
    | Mul, E_int x, E_int y ->
      stats.constants_folded <- stats.constants_folded + 1;
      E_int (x * y)
    | _ -> E_arith (op, a, b))
  | E_neg a -> (
    match r a with
    | E_int n ->
      stats.constants_folded <- stats.constants_folded + 1;
      E_int (-n)
    | a -> E_neg a)
  | E_general_cmp (op, a, b) -> (
    let a = r a and b = r b in
    match rewrite_count_cmp stats op a b with
    | Some e -> e
    | None -> E_general_cmp (op, a, b))
  | E_value_cmp (op, a, b) -> (
    let a = r a and b = r b in
    match (a, b) with
    | E_int x, E_int y ->
      stats.constants_folded <- stats.constants_folded + 1;
      let c = compare x y in
      let holds =
        match op with Eq -> c = 0 | Ne -> c <> 0 | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
      in
      E_call ((if holds then "true" else "false"), [])
    | _ -> (
      match rewrite_count_cmp stats op a b with
      | Some e -> e
      | None -> E_value_cmp (op, a, b)))
  | E_node_cmp (op, a, b) -> E_node_cmp (op, r a, r b)
  | E_and (a, b) -> E_and (r a, r b)
  | E_or (a, b) -> E_or (r a, r b)
  | E_set_op (op, a, b) -> E_set_op (op, r a, r b)
  | E_if (c, t, f) -> (
    match r c with
    | E_call ("true", []) ->
      stats.constants_folded <- stats.constants_folded + 1;
      r t
    | E_call ("false", []) ->
      stats.constants_folded <- stats.constants_folded + 1;
      r f
    | c -> E_if (c, r t, r f))
  | E_quantified (q, bindings, body) ->
    E_quantified (q, List.map (fun (v, e) -> (v, r e)) bindings, r body)
  | E_path (a, b) -> E_path (r a, r b)
  | E_filter (a, b) -> E_filter (r a, r b)
  | E_call (name, args) -> E_call (name, List.map r args)
  | E_cast (t, a) -> E_cast (t, r a)
  | E_castable (t, a) -> E_castable (t, r a)
  | E_instance_of (a, ty) -> E_instance_of (r a, ty)
  | E_treat (a, ty) -> E_treat (r a, ty)
  | E_typeswitch { operand; cases; default_var; default } ->
    E_typeswitch
      {
        operand = r operand;
        cases = List.map (fun c -> { c with case_return = r c.case_return }) cases;
        default_var;
        default = r default;
      }
  | E_elem (name, content) ->
    E_elem (rewrite_name_spec r name, List.map r content)
  | E_attr (name, content) ->
    E_attr (rewrite_name_spec r name, List.map r content)
  | E_text a -> E_text (r a)
  | E_doc content -> E_doc (List.map r content)
  | E_comment_c a -> E_comment_c (r a)
  | E_flwor { clauses; order_by; return } ->
    let return = r return in
    let order_by = List.map (fun s -> { s with key = r s.key }) order_by in
    let clauses = List.map (rewrite_clause stats ~treat_trace_as_pure) clauses in
    (* Dead-let elimination, back to front: a let whose variable is unused
       downstream and whose right-hand side is pure disappears. With
       treat_trace_as_pure, trace() counts as pure — and vanishes. *)
    let rec prune = function
      | [] -> []
      | (Let { var; value; _ } as c) :: rest ->
        let rest = prune rest in
        let used_later =
          List.exists
            (function
              | For { source; _ } -> uses_var var source
              | Let { value; _ } -> uses_var var value
              | Where cond -> uses_var var cond)
            rest
          || List.exists (fun s -> uses_var var s.key) order_by
          || uses_var var return
        in
        if (not used_later) && pure ~treat_trace_as_pure value then begin
          stats.lets_eliminated <- stats.lets_eliminated + 1;
          if is_trace_call value then
            stats.traces_eliminated <- stats.traces_eliminated + 1;
          rest
        end
        else c :: rest
      | c :: rest -> c :: prune rest
    in
    let clauses = prune clauses in
    (* Loop-invariant path hoisting: a pure path in the return or a where
       condition that reads none of the FLWOR's own variables computes
       the same node set on every binding tuple. Evaluate it once, in a
       let prepended to the clause list. (Divergence from the naive
       evaluation order, in Galax's spirit: the path is evaluated even
       when the loop turns out to be empty.) *)
    let clauses, return =
      if not (List.exists (function For _ -> true | _ -> false) clauses) then
        (clauses, return)
      else begin
        let bound = binder_names_of_clauses clauses in
        let acc = ref [] in
        let return = hoist_in acc ~treat_trace_as_pure ~bound return in
        let clauses =
          List.map
            (function
              | Where cond -> Where (hoist_in acc ~treat_trace_as_pure ~bound cond)
              | c -> c)
            clauses
        in
        match !acc with
        | [] -> (clauses, return)
        | hoisted ->
          stats.paths_hoisted <- stats.paths_hoisted + List.length hoisted;
          let lets =
            List.rev_map
              (fun (e, var) -> Let { var; var_type = None; value = e })
              hoisted
          in
          (lets @ clauses, return)
      end
    in
    (* A FLWOR with no clauses left is just its return expression (order
       by over a single binding tuple is a no-op). *)
    if clauses = [] then return else E_flwor { clauses; order_by; return }

and rewrite_name_spec r = function
  | Static_name _ as n -> n
  | Computed_name e -> Computed_name (r e)

and rewrite_clause stats ~treat_trace_as_pure = function
  | For f -> For { f with source = rewrite stats ~treat_trace_as_pure f.source }
  | Let l -> Let { l with value = rewrite stats ~treat_trace_as_pure l.value }
  | Where cond -> Where (rewrite stats ~treat_trace_as_pure cond)

let optimize_expr ?(treat_trace_as_pure = false) e =
  let stats = new_stats () in
  let e = rewrite stats ~treat_trace_as_pure e in
  (e, stats)

let optimize_program ?(treat_trace_as_pure = false) (p : program) =
  let stats = new_stats () in
  let rewrite_decl = function
    | Declare_function f ->
      Declare_function { f with body = rewrite stats ~treat_trace_as_pure f.body }
    | Declare_variable v ->
      Declare_variable { v with init = rewrite stats ~treat_trace_as_pure v.init }
    | Declare_namespace _ as d -> d
  in
  let p =
    { prolog = List.map rewrite_decl p.prolog; body = rewrite stats ~treat_trace_as_pure p.body }
  in
  (p, stats)
