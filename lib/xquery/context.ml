(* Static and dynamic evaluation context, plus the compatibility knobs that
   reproduce the Galax-era behaviours the paper reports. *)

module StringMap = Map.Make (String)

type duplicate_attribute_policy =
  | Keep_last (* the working-draft "only one should make it" reading *)
  | Keep_both (* "though Galax did not honor this as of the time of writing" *)
  | Raise_error (* the eventual REC behaviour: XQDY0025 *)

type compat = {
  galax_messages : bool;
      (* true: a name used where a variable was plainly intended still
         evaluates as a child step, and the "missing context item" error
         reads "Internal_Error: Variable '$glx:dot' not found." with no
         line number — the message the paper quotes. *)
  duplicate_attributes : duplicate_attribute_policy;
  treat_trace_as_pure : bool;
      (* true: the optimizer's dead-code elimination deletes a dead
         [let $dummy := trace(...)], silently removing the tracing — the
         paper's debugging horror story. *)
}

let default_compat =
  { galax_messages = false; duplicate_attributes = Keep_last; treat_trace_as_pure = false }

let galax_compat =
  { galax_messages = true; duplicate_attributes = Keep_both; treat_trace_as_pure = true }

(* ------------------------------------------------------------------ *)
(* Resource limits                                                     *)
(* ------------------------------------------------------------------ *)

(* One mutable record per evaluation, threaded via [env]. The hot-path
   cost is [tick]: one decrement and one comparison per evaluation step.
   Everything slow (deadline clock read, fuel accounting) runs only when
   the credit counter underflows, every [check_interval] steps. [max_int]
   in any budget field means "unlimited". *)

type limits = {
  mutable credit : int; (* steps left until the next slow check *)
  mutable batch : int; (* steps granted at the last refill *)
  mutable spent : int; (* steps accounted for at the last slow check *)
  fuel : int; (* total step budget *)
  mutable depth : int; (* current user-function call depth *)
  max_depth : int;
  mutable nodes : int; (* nodes charged so far *)
  max_nodes : int;
  mutable deadline_ns : int;
      (* absolute monotonic deadline, Clock.now_ns scale. Mutable so an
         embedder (the HTTP server's graceful drain) can tighten it on a
         running evaluation from another domain; the slow check reads it
         every ~1k steps, so a cross-domain write lands within one check
         interval. Plain-int writes don't tear under the OCaml memory
         model, and monotonic tightening means a stale read only delays
         the trip by one interval. *)
}

let check_interval = 1024

let refill l =
  let remaining = l.fuel - l.spent in
  let batch = if remaining < check_interval then max 1 remaining else check_interval in
  l.batch <- batch;
  l.credit <- batch

let slow_check l =
  l.spent <- l.spent + (l.batch - l.credit);
  if l.spent > l.fuel then Errors.exhaust Errors.Fuel ~limit:l.fuel ~used:l.spent;
  if l.deadline_ns <> max_int then begin
    let now = Clock.now_ns () in
    if now > l.deadline_ns then Errors.exhaust Errors.Deadline ~limit:l.deadline_ns ~used:now
  end;
  refill l

let tick l =
  l.credit <- l.credit - 1;
  if l.credit <= 0 then slow_check l

let charge l n =
  if n > 0 then begin
    l.credit <- l.credit - n;
    if l.credit <= 0 then slow_check l
  end

let check l = slow_check l

let enter_call l =
  l.depth <- l.depth + 1;
  if l.depth > l.max_depth then Errors.exhaust Errors.Depth ~limit:l.max_depth ~used:l.depth

let exit_call l = l.depth <- l.depth - 1

let charge_nodes l n =
  if l.max_nodes <> max_int && n > 0 then begin
    l.nodes <- l.nodes + n;
    if l.nodes > l.max_nodes then
      Errors.exhaust Errors.Nodes ~limit:l.max_nodes ~used:l.nodes
  end

let make_limits ?(fuel = max_int) ?(max_depth = max_int) ?(max_nodes = max_int)
    ?(deadline_ns = max_int) () =
  let l =
    {
      credit = 0;
      batch = 0;
      spent = 0;
      fuel;
      depth = 0;
      max_depth;
      nodes = 0;
      max_nodes;
      deadline_ns;
    }
  in
  refill l;
  l

let unlimited () = make_limits ()
let is_unlimited l =
  l.fuel = max_int && l.max_depth = max_int && l.max_nodes = max_int
  && l.deadline_ns = max_int

type func =
  | Builtin of (dyn -> Value.sequence list -> Value.sequence)
  | User of {
      uparams : (string * Stype.t option) list;
      ureturn : Stype.t option;
      ubody : Ast.expr;
    }

and env = {
  functions : (string * int, func) Hashtbl.t;
  compat : compat;
  typed_mode : bool;
      (* enforce [as] annotations on user function calls and returns *)
  mutable trace_out : string -> unit;
  mutable trace_count : int;
  mutable doc_resolver : string -> Xml_base.Node.t option;
  mutable global_vars : Value.sequence StringMap.t;
  mutable fast_eval : bool;
      (* true: the evaluator may use the cached-key/lazy fast paths; false
         pins every operation to the seed algorithms (benchmark baseline,
         property-test oracle) *)
  mutable limits : limits;
      (* resource budgets for this evaluation; fresh unlimited record per
         env so concurrent evaluations never share counters *)
}

and dyn = {
  env : env;
  vars : Value.sequence StringMap.t;
  ctx_item : Value.item option;
  ctx_pos : int; (* 1-based *)
  ctx_size : int;
}

let fast_eval_default = ref true

let make_env ?(compat = default_compat) ?(typed_mode = false) ?limits () =
  {
    functions = Hashtbl.create 97;
    compat;
    typed_mode;
    trace_out = prerr_endline;
    trace_count = 0;
    doc_resolver = (fun _ -> None);
    global_vars = StringMap.empty;
    fast_eval = !fast_eval_default;
    limits = (match limits with Some l -> l | None -> unlimited ());
  }

let make_dyn env = { env; vars = StringMap.empty; ctx_item = None; ctx_pos = 0; ctx_size = 0 }

let bind_var dyn name value = { dyn with vars = StringMap.add name value dyn.vars }

let lookup_var dyn name =
  match StringMap.find_opt name dyn.vars with
  | Some v -> Some v
  | None -> StringMap.find_opt name dyn.env.global_vars

let with_context dyn item pos size = { dyn with ctx_item = Some item; ctx_pos = pos; ctx_size = size }

(* Function names: fn: prefix is optional, local: is conventional for user
   functions. Normalize lookups by stripping a leading "fn:". *)
let normalize_fname name =
  if String.length name > 3 && String.sub name 0 3 = "fn:" then
    String.sub name 3 (String.length name - 3)
  else name

let find_function env name arity =
  Hashtbl.find_opt env.functions (normalize_fname name, arity)

let register_function env name arity f = Hashtbl.replace env.functions (name, arity) f

let context_node dyn =
  match dyn.ctx_item with
  | Some (Value.Node n) -> n
  | Some (Value.Atomic _) ->
    Errors.raise_error Errors.xpty0019 "the context item is not a node"
  | None ->
    if dyn.env.compat.galax_messages then
      Errors.raise_error "XPDY0002" "Internal_Error: Variable '$glx:dot' not found."
    else Errors.raise_error Errors.xpdy0002 "the context item is undefined"

let context_item dyn =
  match dyn.ctx_item with
  | Some i -> i
  | None ->
    if dyn.env.compat.galax_messages then
      Errors.raise_error "XPDY0002" "Internal_Error: Variable '$glx:dot' not found."
    else Errors.raise_error Errors.xpdy0002 "the context item is undefined"
