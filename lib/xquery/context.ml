(* Static and dynamic evaluation context, plus the compatibility knobs that
   reproduce the Galax-era behaviours the paper reports. *)

module StringMap = Map.Make (String)

type duplicate_attribute_policy =
  | Keep_last (* the working-draft "only one should make it" reading *)
  | Keep_both (* "though Galax did not honor this as of the time of writing" *)
  | Raise_error (* the eventual REC behaviour: XQDY0025 *)

type compat = {
  galax_messages : bool;
      (* true: a name used where a variable was plainly intended still
         evaluates as a child step, and the "missing context item" error
         reads "Internal_Error: Variable '$glx:dot' not found." with no
         line number — the message the paper quotes. *)
  duplicate_attributes : duplicate_attribute_policy;
  treat_trace_as_pure : bool;
      (* true: the optimizer's dead-code elimination deletes a dead
         [let $dummy := trace(...)], silently removing the tracing — the
         paper's debugging horror story. *)
}

let default_compat =
  { galax_messages = false; duplicate_attributes = Keep_last; treat_trace_as_pure = false }

let galax_compat =
  { galax_messages = true; duplicate_attributes = Keep_both; treat_trace_as_pure = true }

type func =
  | Builtin of (dyn -> Value.sequence list -> Value.sequence)
  | User of {
      uparams : (string * Stype.t option) list;
      ureturn : Stype.t option;
      ubody : Ast.expr;
    }

and env = {
  functions : (string * int, func) Hashtbl.t;
  compat : compat;
  typed_mode : bool;
      (* enforce [as] annotations on user function calls and returns *)
  mutable trace_out : string -> unit;
  mutable trace_count : int;
  mutable doc_resolver : string -> Xml_base.Node.t option;
  mutable global_vars : Value.sequence StringMap.t;
  mutable fast_eval : bool;
      (* true: the evaluator may use the cached-key/lazy fast paths; false
         pins every operation to the seed algorithms (benchmark baseline,
         property-test oracle) *)
}

and dyn = {
  env : env;
  vars : Value.sequence StringMap.t;
  ctx_item : Value.item option;
  ctx_pos : int; (* 1-based *)
  ctx_size : int;
}

let fast_eval_default = ref true

let make_env ?(compat = default_compat) ?(typed_mode = false) () =
  {
    functions = Hashtbl.create 97;
    compat;
    typed_mode;
    trace_out = prerr_endline;
    trace_count = 0;
    doc_resolver = (fun _ -> None);
    global_vars = StringMap.empty;
    fast_eval = !fast_eval_default;
  }

let make_dyn env = { env; vars = StringMap.empty; ctx_item = None; ctx_pos = 0; ctx_size = 0 }

let bind_var dyn name value = { dyn with vars = StringMap.add name value dyn.vars }

let lookup_var dyn name =
  match StringMap.find_opt name dyn.vars with
  | Some v -> Some v
  | None -> StringMap.find_opt name dyn.env.global_vars

let with_context dyn item pos size = { dyn with ctx_item = Some item; ctx_pos = pos; ctx_size = size }

(* Function names: fn: prefix is optional, local: is conventional for user
   functions. Normalize lookups by stripping a leading "fn:". *)
let normalize_fname name =
  if String.length name > 3 && String.sub name 0 3 = "fn:" then
    String.sub name 3 (String.length name - 3)
  else name

let find_function env name arity =
  Hashtbl.find_opt env.functions (normalize_fname name, arity)

let register_function env name arity f = Hashtbl.replace env.functions (name, arity) f

let context_node dyn =
  match dyn.ctx_item with
  | Some (Value.Node n) -> n
  | Some (Value.Atomic _) ->
    Errors.raise_error Errors.xpty0019 "the context item is not a node"
  | None ->
    if dyn.env.compat.galax_messages then
      Errors.raise_error "XPDY0002" "Internal_Error: Variable '$glx:dot' not found."
    else Errors.raise_error Errors.xpdy0002 "the context item is undefined"

let context_item dyn =
  match dyn.ctx_item with
  | Some i -> i
  | None ->
    if dyn.env.compat.galax_messages then
      Errors.raise_error "XPDY0002" "Internal_Error: Variable '$glx:dot' not found."
    else Errors.raise_error Errors.xpdy0002 "the context item is undefined"
