(* The dynamic evaluator. *)

module N = Xml_base.Node
open Ast
open Value

let err = Errors.raise_error

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

(* Nodes delivered in axis order: forward axes in document order, reverse
   axes nearest-first, so positional predicates count the XPath way. *)
let axis_nodes axis (n : N.t) : N.t list =
  match axis with
  | Child -> N.children n
  | Descendant -> N.descendants n
  | Descendant_or_self -> N.descendant_or_self n
  | Self -> [ n ]
  | Parent -> ( match N.parent n with Some p -> [ p ] | None -> [])
  | Ancestor -> N.ancestors n
  | Ancestor_or_self -> n :: N.ancestors n
  | Following_sibling -> N.following_siblings n
  | Preceding_sibling -> N.preceding_siblings n
  | Following ->
    (* Nodes after n in document order, excluding descendants. The
       accumulator is kept reversed and flipped once at the end, so the
       climb is linear in the output instead of quadratic in the number
       of levels. *)
    let rec up n racc =
      let racc =
        List.fold_left
          (fun racc s -> List.rev_append (N.descendant_or_self s) racc)
          racc (N.following_siblings n)
      in
      match N.parent n with None -> List.rev racc | Some p -> up p racc
    in
    up n []
  | Preceding ->
    (* Nodes before n in document order, excluding ancestors; delivered
       in reverse document order. Same reversed-accumulator scheme. *)
    let rec up n racc =
      let racc =
        List.fold_left
          (fun racc s -> List.rev_append (List.rev (N.descendant_or_self s)) racc)
          racc (N.preceding_siblings n)
      in
      match N.parent n with None -> List.rev racc | Some p -> up p racc
    in
    up n []
  | Attribute_axis -> N.attributes n

let node_test_matches test (n : N.t) =
  match test with
  | Name_test name -> (
    match N.kind n with N.Element | N.Attribute -> N.name n = name | _ -> false)
  | Wildcard -> ( match N.kind n with N.Element | N.Attribute -> true | _ -> false)
  | Kind_node -> true
  | Kind_text -> N.kind n = N.Text
  | Kind_comment -> N.kind n = N.Comment
  | Kind_pi None -> N.kind n = N.Processing_instruction
  | Kind_pi (Some target) ->
    N.kind n = N.Processing_instruction && N.pi_target n = target
  | Kind_element None -> N.is_element n
  | Kind_element (Some name) -> N.is_element n && N.name n = name
  | Kind_attribute None -> N.is_attribute n
  | Kind_attribute (Some name) -> N.is_attribute n && N.name n = name
  | Kind_document -> N.kind n = N.Document

(* On non-attribute axes a plain name or wildcard selects elements only;
   on the attribute axis it selects attributes. The [node_test_matches]
   above already does the right thing because axis_nodes only delivers the
   right node kinds per axis. *)

(* ------------------------------------------------------------------ *)
(* Comparison helpers                                                  *)
(* ------------------------------------------------------------------ *)

let cmp_holds op (c : int) =
  match op with Eq -> c = 0 | Ne -> c <> 0 | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0

let is_nan_atom = function A_double f -> Float.is_nan f | _ -> false

let atomic_pair_test kind op a b =
  let compare_fn =
    match kind with `General -> general_compare_atoms | `Value -> value_compare
  in
  if is_nan_atom a || is_nan_atom b then
    (* NaN: all comparisons false except ne, which is true. *)
    match op with Ne -> true | Eq | Lt | Le | Gt | Ge -> false
  else
    match compare_fn a b with
    | Some c -> cmp_holds op c
    | None ->
      err Errors.xpty0004 "cannot compare %s with %s" (atomic_type_name a)
        (atomic_type_name b)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let numeric_atom op_name a =
  match a with
  | A_int _ | A_double _ -> a
  | A_untyped s -> A_double (double_of_atomic (A_untyped s))
  | other ->
    err Errors.xpty0004 "%s: operand is not numeric (%s)" op_name (atomic_type_name other)

let arith op a b =
  let name =
    match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Idiv -> "idiv" | Mod -> "mod"
  in
  let a = numeric_atom name a and b = numeric_atom name b in
  match (op, a, b) with
  | Add, A_int x, A_int y -> of_int (x + y)
  | Sub, A_int x, A_int y -> of_int (x - y)
  | Mul, A_int x, A_int y -> of_int (x * y)
  | Mod, A_int x, A_int y ->
    if y = 0 then err Errors.foar0001 "mod by zero" else of_int (x mod y)
  | Idiv, A_int x, A_int y ->
    (* OCaml division truncates toward zero, matching xs:integer idiv. *)
    if y = 0 then err Errors.foar0001 "idiv by zero" else of_int (x / y)
  | Idiv, _, _ ->
    let x = double_of_atomic a and y = double_of_atomic b in
    if y = 0.0 then err Errors.foar0001 "idiv by zero"
    else of_int (int_of_float (Float.trunc (x /. y)))
  | Div, A_int _, A_int 0 -> err Errors.foar0001 "division by zero"
  | _ ->
    let x = double_of_atomic a and y = double_of_atomic b in
    (match op with
    | Add -> of_double (x +. y)
    | Sub -> of_double (x -. y)
    | Mul -> of_double (x *. y)
    | Div -> of_double (x /. y)
    | Mod -> of_double (Float.rem x y)
    | Idiv -> assert false)

(* ------------------------------------------------------------------ *)
(* Casts                                                               *)
(* ------------------------------------------------------------------ *)

let apply_cast target a =
  match target with
  | To_int -> of_int (cast_to_int a)
  | To_double -> of_double (double_of_atomic a)
  | To_string -> of_string (string_of_atomic a)
  | To_bool -> of_bool (cast_to_bool a)

(* ------------------------------------------------------------------ *)
(* Element construction                                                *)
(* ------------------------------------------------------------------ *)

(* Convert one enclosed expression's value into content nodes: runs of
   adjacent atomic values become a single space-separated text node. *)
let content_nodes_of_sequence (s : sequence) : N.t list =
  let flush_atoms acc atoms =
    match atoms with
    | [] -> acc
    | atoms ->
      let text = String.concat " " (List.rev_map string_of_atomic atoms) in
      N.text text :: acc
  in
  let rec go acc atoms = function
    | [] -> List.rev (flush_atoms acc atoms)
    | Atomic a :: rest -> go acc (a :: atoms) rest
    | Node n :: rest -> go (n :: flush_atoms acc atoms) [] rest
  in
  go [] [] s

(* Assemble an element from its content node list, applying the attribute
   folding rules the paper documents: leading attribute nodes become
   attributes of the element; an attribute node after other content is an
   error (XQTY0024); duplicate names follow the compat policy. All nodes
   are copied — construction never captures existing nodes. *)
(* Charge constructed content against the node-allocation budget. The
   constructors below deep-copy every content node, so the real allocation
   is the total subtree size; counting it is O(size), the same order as
   the copy itself. Free when the budget is unlimited. *)
let charge_content (limits : Context.limits) (content : N.t list) =
  if limits.Context.max_nodes <> max_int then begin
    let count = ref 0 in
    List.iter (fun n -> N.iter (fun _ -> incr count) n) content;
    Context.charge_nodes limits !count
  end

let assemble_element (env : Context.env) name (content : N.t list) : N.t =
  charge_content env.Context.limits content;
  (* Attributes accumulate reversed (cons, not append) and are flipped
     once at the end — O(n) for n attributes instead of O(n²). *)
  let rattrs = ref [] in
  let kids = ref [] in
  let seen_content = ref false in
  let add_attr a =
    let aname = N.name a in
    let dup = List.exists (fun x -> N.name x = aname) !rattrs in
    if dup then
      match env.compat.duplicate_attributes with
      | Context.Keep_both -> rattrs := N.copy a :: !rattrs
      | Context.Keep_last ->
        rattrs := N.copy a :: List.filter (fun x -> N.name x <> aname) !rattrs
      | Context.Raise_error ->
        err Errors.xqdy0025 "duplicate attribute name %S in element constructor" aname
    else rattrs := N.copy a :: !rattrs
  in
  List.iter
    (fun n ->
      match N.kind n with
      | N.Attribute ->
        if !seen_content then
          err Errors.xqty0024
            "attribute node %S encountered after non-attribute content" (N.name n)
        else add_attr n
      | N.Document ->
        seen_content := true;
        List.iter (fun k -> kids := N.copy k :: !kids) (N.children n)
      | N.Text ->
        if N.string_value n <> "" then begin
          seen_content := true;
          kids := N.copy n :: !kids
        end
      | N.Element | N.Comment | N.Processing_instruction ->
        seen_content := true;
        kids := N.copy n :: !kids)
    content;
  (* Merge adjacent text nodes. *)
  let merged =
    List.fold_left
      (fun acc n ->
        match (acc, N.kind n) with
        | prev :: rest, N.Text when N.kind prev = N.Text ->
          N.text (N.string_value prev ^ N.string_value n) :: rest
        | _ -> n :: acc)
      [] (List.rev !kids)
  in
  N.element name ~attrs:(List.rev !rattrs) ~children:(List.rev merged)

(* ------------------------------------------------------------------ *)
(* Lazy axis walks                                                     *)
(* ------------------------------------------------------------------ *)

(* Pre-order descendants, one node forced at a time: each demanded
   element does O(1) work, so consumers that stop early (exists, EBV,
   "some … satisfies") never walk the rest of the subtree. Attributes are
   excluded, matching [N.descendants]. *)
let rec descendants_seq (n : N.t) : N.t Seq.t =
  Seq.concat_map (fun k -> Seq.cons k (descendants_seq k)) (List.to_seq (N.children n))

let axis_seq axis (n : N.t) : N.t Seq.t =
  match axis with
  | Descendant -> descendants_seq n
  | Descendant_or_self -> Seq.cons n (descendants_seq n)
  | _ -> List.to_seq (axis_nodes axis n)

(* Does [e] syntactically call position() or last()? The lazy pipeline
   does not maintain a correct focus position/size, so any step whose
   right-hand side might observe them must fall back to the eager
   evaluator. Over-approximates (a call inside a nested predicate counts
   even though the predicate rebinds the focus), which only costs
   laziness, never correctness. *)
let rec uses_position_or_last (e : expr) : bool =
  let u = uses_position_or_last in
  match e with
  | E_int _ | E_double _ | E_string _ | E_var _ | E_context_item | E_root | E_step _ ->
    false
  | E_call (name, args) -> (
    match Context.normalize_fname name with
    | "position" | "last" -> true
    | _ -> List.exists u args)
  | E_seq es | E_doc es -> List.exists u es
  | E_range (a, b)
  | E_arith (_, a, b)
  | E_general_cmp (_, a, b)
  | E_value_cmp (_, a, b)
  | E_node_cmp (_, a, b)
  | E_and (a, b)
  | E_or (a, b)
  | E_set_op (_, a, b)
  | E_path (a, b)
  | E_filter (a, b) ->
    u a || u b
  | E_neg a | E_cast (_, a) | E_castable (_, a) | E_instance_of (a, _)
  | E_treat (a, _) | E_text a | E_comment_c a ->
    u a
  | E_if (c, t, f) -> u c || u t || u f
  | E_quantified (_, bindings, body) ->
    List.exists (fun (_, e) -> u e) bindings || u body
  | E_typeswitch { operand; cases; default_var = _; default } ->
    u operand || List.exists (fun c -> u c.case_return) cases || u default
  | E_elem (name, content) | E_attr (name, content) ->
    (match name with Computed_name e -> u e | Static_name _ -> false)
    || List.exists u content
  | E_flwor { clauses; order_by; return } ->
    List.exists
      (function
        | For { source; _ } -> u source
        | Let { value; _ } -> u value
        | Where cond -> u cond)
      clauses
    || List.exists (fun s -> u s.key) order_by
    || u return

(* Syntactic guarantee that every item [e] can ever produce is a node.
   Two decisions hang off this: whether the lazy layer's skipped per-step
   dedup is unobservable through EBV (over nodes, EBV is an emptiness
   test, so duplicates cannot turn a value into a FORG0006), and whether
   a predicate streamed by [eval_lazy] is always an EBV predicate — a
   node-only predicate can never evaluate to the numeric singleton that
   would make it positional. Conservative: [false] means "don't know". *)
let rec yields_nodes_only (e : expr) : bool =
  match e with
  | E_step _ | E_root | E_set_op _
  | E_elem _ | E_attr _ | E_text _ | E_doc _ | E_comment_c _ ->
    true
  | E_path (_, b) | E_filter (b, _) -> yields_nodes_only b
  | E_seq es -> List.for_all yields_nodes_only es
  | E_if (_, t, f) -> yields_nodes_only t && yields_nodes_only f
  | E_flwor { return; _ } -> yields_nodes_only return
  | _ -> false

(* Is the lazy stream for [e] guaranteed to give the same EBV as the
   eager evaluator? The lazy pipeline skips the per-step document-order
   dedup, so a path whose final step atomizes duplicate intermediate
   nodes (//a//b/name() over nested <a>s) can present two equal atomics
   where the eager evaluator saw one — raising FORG0006 instead of
   returning a value. Node-only streams are immune, and ranges stream
   exactly the items the eager evaluator would build. Everything else
   takes the eager path. *)
let rec ebv_lazy_safe (e : expr) : bool =
  match e with
  | E_range _ -> true
  | E_if (_, t, f) -> ebv_lazy_safe t && ebv_lazy_safe f
  | _ -> yields_nodes_only e

(* Routing an expression through the lazy layer costs a closure per
   combinator per item, which only pays for itself when short-circuiting
   can skip real work. [lazy_pays] is the cheap syntactic test for that:
   subtree walks, numeric ranges and FLWOR pipelines can be cut short
   mid-stream; child/attribute steps over already-materialized lists
   cannot, and for those the eager evaluator's plain lists win. It must
   only say yes when [eval_lazy] genuinely streams — a filter is
   streamable exactly when its predicate is a pure EBV test (node-only,
   no position()/last()), the same guard [eval_lazy] applies. *)
let rec lazy_pays (e : expr) : bool =
  match e with
  | E_step ((Descendant | Descendant_or_self), _) -> true
  | E_step _ -> false
  | E_path (a, b) | E_seq [ a; b ] -> lazy_pays a || lazy_pays b
  | E_seq es -> List.exists lazy_pays es
  | E_if (_, t, f) -> lazy_pays t || lazy_pays f
  | E_filter (b, pred) ->
    lazy_pays b && yields_nodes_only pred && not (uses_position_or_last pred)
  | E_range _ | E_flwor _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

let rec eval (dyn : Context.dyn) (e : expr) : sequence =
  (* One budget tick per evaluation step: a decrement and a compare on
     the hot path; fuel/deadline accounting runs every ~1k steps. *)
  Context.tick dyn.Context.env.Context.limits;
  match e with
  | E_int n -> of_int n
  | E_double f -> of_double f
  | E_string s -> of_string s
  | E_var v -> (
    match Context.lookup_var dyn v with
    | Some value -> value
    | None -> err Errors.xpst0008 "undefined variable $%s" v)
  | E_context_item -> [ Context.context_item dyn ]
  | E_seq es -> seq (List.map (eval dyn) es)
  | E_range (e1, e2) -> (
    match (atomize (eval dyn e1), atomize (eval dyn e2)) with
    | [], _ | _, [] -> []
    | [ a ], [ b ] ->
      let lo = cast_to_int a and hi = cast_to_int b in
      if lo > hi then []
      else begin
        (* Tick per item rather than charging hi-lo+1 up front: the
           fuel accounting is the same, but a deadline can preempt the
           materialization itself instead of waiting out a multi-second
           allocation of a huge range. *)
        let limits = dyn.Context.env.Context.limits in
        List.init
          (hi - lo + 1)
          (fun i ->
            Context.tick limits;
            Atomic (A_int (lo + i)))
      end
    | _ -> err Errors.xpty0004 "'to' requires singleton operands")
  | E_arith (op, e1, e2) -> (
    match (atomize (eval dyn e1), atomize (eval dyn e2)) with
    | [], _ | _, [] -> []
    | [ a ], [ b ] -> arith op a b
    | _ -> err Errors.xpty0004 "arithmetic requires singleton operands")
  | E_neg e -> (
    match atomize (eval dyn e) with
    | [] -> []
    | [ a ] -> (
      match numeric_atom "unary -" a with
      | A_int n -> of_int (-n)
      | A_double f -> of_double (-.f)
      | _ -> assert false)
    | _ -> err Errors.xpty0004 "unary - requires a singleton operand")
  | E_general_cmp (op, e1, e2) ->
    (* The paper's quirk #4: = is an existential comparison.
       1 = (1,2,3) holds; (1,2,3) = 3 holds; 1 = 3 does not. *)
    if dyn.Context.env.Context.fast_eval && lazy_pays e1 then
      (* Existential semantics invite early exit: materialize the right
         operand once, then scan the left lazily and stop at the first
         witnessing pair. *)
      let l2 = atomize (eval dyn e2) in
      of_bool
        (Seq.exists
           (fun a -> List.exists (fun b -> atomic_pair_test `General op a b) l2)
           (atomize_seq (eval_lazy dyn e1)))
    else
      let l1 = atomize (eval dyn e1) and l2 = atomize (eval dyn e2) in
      of_bool
        (List.exists (fun a -> List.exists (fun b -> atomic_pair_test `General op a b) l2) l1)
  | E_value_cmp (op, e1, e2) -> (
    match (atomize (eval dyn e1), atomize (eval dyn e2)) with
    | [], _ | _, [] -> []
    | [ a ], [ b ] -> of_bool (atomic_pair_test `Value op a b)
    | _ ->
      err Errors.xpty0004 "value comparison (%s) requires singleton operands"
        (match op with Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"))
  | E_node_cmp (op, e1, e2) -> (
    let node_of name e =
      match eval dyn e with
      | [] -> None
      | [ Node n ] -> Some n
      | _ -> err Errors.xpty0004 "%s requires single nodes" name
    in
    let name = match op with Is -> "is" | Precedes -> "<<" | Follows -> ">>" in
    match (node_of name e1, node_of name e2) with
    | None, _ | _, None -> []
    | Some a, Some b -> (
      match op with
      | Is -> of_bool (N.same a b)
      | Precedes -> of_bool (N.compare_document_order a b < 0)
      | Follows -> of_bool (N.compare_document_order a b > 0)))
  | E_and (e1, e2) -> of_bool (ebv_expr dyn e1 && ebv_expr dyn e2)
  | E_or (e1, e2) -> of_bool (ebv_expr dyn e1 || ebv_expr dyn e2)
  | E_set_op (op, e1, e2) ->
    let nodes name e =
      match all_nodes (eval dyn e) with
      | Some ns -> ns
      | None -> err Errors.xpty0004 "%s requires node sequences" name
    in
    let l1 = nodes "set operation" e1 and l2 = nodes "set operation" e2 in
    if dyn.Context.env.Context.fast_eval then begin
      (* Membership through an id-keyed hash set — O(n + m) — and the
         key-sorted document_order: O(n log n) overall, against the
         seed's O(n·m) pairwise [N.same] scans and path-walking sort. *)
      match op with
      | Union -> of_nodes (document_order (l1 @ l2))
      | Intersect | Except ->
        let tbl = Hashtbl.create (2 * List.length l2 + 1) in
        List.iter (fun n -> Hashtbl.replace tbl (N.id n) ()) l2;
        let keep =
          match op with
          | Except -> fun n -> not (Hashtbl.mem tbl (N.id n))
          | _ -> fun n -> Hashtbl.mem tbl (N.id n)
        in
        of_nodes (document_order (List.filter keep l1))
    end
    else begin
      let mem n l = List.exists (N.same n) l in
      match op with
      | Union -> of_nodes (document_order_seed (l1 @ l2))
      | Intersect -> of_nodes (document_order_seed (List.filter (fun n -> mem n l2) l1))
      | Except -> of_nodes (document_order_seed (List.filter (fun n -> not (mem n l2)) l1))
    end
  | E_if (c, t, f) -> if ebv_expr dyn c then eval dyn t else eval dyn f
  | E_flwor f -> eval_flwor dyn f
  | E_quantified (q, bindings, body) -> of_bool (eval_quantified dyn q bindings body)
  | E_path (e1, e2) ->
    let base = eval dyn e1 in
    let size = List.length base in
    let results =
      List.concat
        (List.mapi
           (fun i item ->
             match item with
             | Node _ -> eval (Context.with_context dyn item (i + 1) size) e2
             | Atomic _ -> err Errors.xpty0019 "a path step was applied to a non-node")
           base)
    in
    (match all_nodes results with
    | Some ns ->
      of_nodes
        (if dyn.Context.env.Context.fast_eval then document_order ns
         else document_order_seed ns)
    | None ->
      if List.for_all (function Atomic _ -> true | Node _ -> false) results then results
      else err Errors.xpty0018 "path result mixes nodes and atomic values")
  | E_root -> of_node (N.root (Context.context_node dyn))
  | E_step (axis, test) ->
    let n = Context.context_node dyn in
    of_nodes (List.filter (node_test_matches test) (axis_nodes axis n))
  | E_filter (base, E_int k) when dyn.Context.env.Context.fast_eval ->
    (* A literal positional predicate — e[3] — selects by index; no focus
       needs to be bound and no predicate evaluated per item. *)
    let items = eval dyn base in
    if k < 1 then []
    else ( match List.nth_opt items (k - 1) with Some it -> [ it ] | None -> [])
  | E_filter (base, pred) ->
    let items = eval dyn base in
    let size = List.length items in
    List.concat
      (List.mapi
         (fun i item ->
           let d = Context.with_context dyn item (i + 1) size in
           let p = eval d pred in
           match p with
           | [ Atomic ((A_int _ | A_double _) as a) ] ->
             if double_of_atomic a = float_of_int (i + 1) then [ item ] else []
           | p -> if effective_boolean_value p then [ item ] else [])
         items)
  | E_call (name, arg_exprs) -> eval_call dyn name arg_exprs
  | E_cast (target, e) -> (
    match atomize (eval dyn e) with
    | [] -> []
    | [ a ] -> apply_cast target a
    | _ -> err Errors.xpty0004 "cast requires a singleton")
  | E_castable (target, e) -> (
    match atomize (eval dyn e) with
    | [ a ] -> of_bool (match apply_cast target a with _ -> true | exception Errors.Error _ -> false)
    | _ -> of_bool false)
  | E_instance_of (e, ty) -> of_bool (Stype.matches (eval dyn e) ty)
  | E_treat (e, ty) ->
    let v = eval dyn e in
    if Stype.matches v ty then v
    else
      err "XPDY0050" "treat as %s: value does not match" (Stype.to_string ty)
  | E_typeswitch { operand; cases; default_var; default } -> (
    let v = eval dyn operand in
    let rec pick = function
      | [] ->
        let dyn =
          match default_var with
          | Some dv -> Context.bind_var dyn dv v
          | None -> dyn
        in
        eval dyn default
      | { case_var; case_type; case_return } :: rest ->
        if Stype.matches v case_type then
          let dyn =
            match case_var with Some cv -> Context.bind_var dyn cv v | None -> dyn
          in
          eval dyn case_return
        else pick rest
    in
    pick cases)
  | E_elem (name_spec, content) ->
    let name = eval_name dyn name_spec in
    let content_nodes =
      List.concat_map (fun ce -> content_nodes_of_sequence (eval dyn ce)) content
    in
    of_node (assemble_element dyn.env name content_nodes)
  | E_attr (name_spec, parts) ->
    let name = eval_name dyn name_spec in
    let value =
      String.concat ""
        (List.map
           (function
             | E_string s -> s (* literal AVT fragment *)
             | part ->
               String.concat " " (List.map string_of_atomic (atomize (eval dyn part))))
           parts)
    in
    of_node (N.attribute name value)
  | E_text e -> (
    match eval dyn e with
    | [] -> []
    | s -> of_node (N.text (String.concat " " (List.map string_of_atomic (atomize s)))))
  | E_doc content ->
    let content_nodes =
      List.concat_map (fun ce -> content_nodes_of_sequence (eval dyn ce)) content
    in
    (* Wrap via a scratch element to reuse folding (attributes are illegal
       at document top level). *)
    charge_content dyn.Context.env.Context.limits content_nodes;
    let kids =
      List.map
        (fun n ->
          if N.kind n = N.Attribute then
            err Errors.xpty0004 "attribute node at document top level"
          else N.copy n)
        content_nodes
    in
    of_node (N.document kids)
  | E_comment_c e -> of_node (N.comment (string_value (eval dyn e)))

and eval_name dyn = function
  | Static_name n -> n
  | Computed_name e -> string_value (eval dyn e)

and eval_flwor dyn { clauses; order_by; return } =
  let envs =
    List.fold_left
      (fun envs clause ->
        match clause with
        | For { var; var_type; pos_var; source } ->
          List.concat_map
            (fun (d : Context.dyn) ->
              let items = eval d source in
              List.mapi
                (fun i item ->
                  (if d.Context.env.Context.typed_mode then
                     match var_type with
                     | Some ty when not (Stype.matches [ item ] ty) ->
                       err Errors.xpty0004 "for $%s as %s: item does not match" var
                         (Stype.to_string ty)
                     | _ -> ());
                  let d = Context.bind_var d var [ item ] in
                  match pos_var with
                  | Some pv -> Context.bind_var d pv (of_int (i + 1))
                  | None -> d)
                items)
            envs
        | Let { var; var_type; value } ->
          List.map
            (fun (d : Context.dyn) ->
              let v = eval d value in
              (if d.Context.env.Context.typed_mode then
                 match var_type with
                 | Some ty when not (Stype.matches v ty) ->
                   err Errors.xpty0004 "let $%s as %s: value does not match" var
                     (Stype.to_string ty)
                 | _ -> ());
              Context.bind_var d var v)
            envs
        | Where cond -> List.filter (fun d -> ebv_expr d cond) envs)
      [ dyn ] clauses
  in
  let envs =
    if order_by = [] then envs
    else begin
      let keyed =
        List.map
          (fun d ->
            let keys =
              List.map
                (fun spec ->
                  match atomize (eval d spec.key) with
                  | [] -> None
                  | [ a ] -> Some a
                  | _ -> err Errors.xpty0004 "order by key must be a singleton")
                order_by
            in
            (keys, d))
          envs
      in
      let compare_keys k1 k2 =
        let rec go specs k1 k2 =
          match (specs, k1, k2) with
          | [], [], [] -> 0
          | spec :: specs, a :: k1, b :: k2 ->
            let c =
              match (a, b) with
              | None, None -> 0
              | None, Some _ -> if spec.empty_greatest then 1 else -1
              | Some _, None -> if spec.empty_greatest then -1 else 1
              | Some a, Some b -> (
                if is_nan_atom a && is_nan_atom b then 0
                else if is_nan_atom a then if spec.empty_greatest then 1 else -1
                else if is_nan_atom b then if spec.empty_greatest then -1 else 1
                else
                  match value_compare a b with
                  | Some c -> c
                  | None ->
                    err Errors.xpty0004 "order by keys of incomparable types (%s, %s)"
                      (atomic_type_name a) (atomic_type_name b))
            in
            if c <> 0 then if spec.descending then -c else c else go specs k1 k2
          | _ -> assert false
        in
        go order_by k1 k2
      in
      List.stable_sort (fun (k1, _) (k2, _) -> compare_keys k1 k2) keyed
      |> List.map snd
    end
  in
  List.concat_map (fun d -> eval d return) envs

and eval_quantified dyn q bindings body =
  match bindings with
  | [] -> ebv_expr dyn body
  | (var, source) :: rest ->
    let test item = eval_quantified (Context.bind_var dyn var [ item ]) q rest body in
    if dyn.Context.env.Context.fast_eval && lazy_pays source then
      (* The source streams: the first witness (some) or counterexample
         (every) stops both the scan and the source's own axis walks. *)
      let items = eval_lazy dyn source in
      match q with
      | Some_q -> Seq.exists test items
      | Every_q -> Seq.for_all test items
    else
      let items = eval dyn source in
      (match q with
      | Some_q -> List.exists test items
      | Every_q -> List.for_all test items)

and eval_call dyn name arg_exprs =
  let arity = List.length arg_exprs in
  match Context.find_function dyn.env name arity with
  | Some (Context.Builtin f) -> (
    (* Emptiness and EBV probes short-circuit through the lazy layer
       instead of materializing their argument. Only functions actually
       registered as builtins are intercepted, so a user redefinition
       still wins the [find_function] lookup above. *)
    match (Context.normalize_fname name, arg_exprs) with
    | "exists", [ arg ] when dyn.Context.env.Context.fast_eval && lazy_pays arg ->
      of_bool (not (Seq.is_empty (eval_lazy dyn arg)))
    | "empty", [ arg ] when dyn.Context.env.Context.fast_eval && lazy_pays arg ->
      of_bool (Seq.is_empty (eval_lazy dyn arg))
    | "boolean", [ arg ] when dyn.Context.env.Context.fast_eval ->
      of_bool (ebv_expr dyn arg)
    | "not", [ arg ] when dyn.Context.env.Context.fast_eval ->
      of_bool (not (ebv_expr dyn arg))
    | _ -> f dyn (List.map (eval dyn) arg_exprs))
  | Some (Context.User { uparams; ureturn; ubody }) ->
    let args = List.map (eval dyn) arg_exprs in
    let limits = dyn.Context.env.Context.limits in
    Context.enter_call limits;
    let typed = dyn.env.typed_mode in
    let body_dyn =
      List.fold_left2
        (fun d (pname, ptype) arg ->
          (if typed then
             match ptype with
             | Some ty when not (Stype.matches arg ty) ->
               err Errors.xpty0004 "%s: argument $%s does not match %s" name pname
                 (Stype.to_string ty)
             | _ -> ());
          Context.bind_var d pname arg)
        {
          dyn with
          Context.vars = Context.StringMap.empty;
          ctx_item = None;
          ctx_pos = 0;
          ctx_size = 0;
        }
        uparams args
    in
    let result = eval body_dyn ubody in
    (* No unwind on exception: a budget trip aborts the whole evaluation
       and the limits record dies with the env. *)
    Context.exit_call limits;
    (if typed then
       match ureturn with
       | Some ty when not (Stype.matches result ty) ->
         err Errors.xpty0004 "%s: result does not match %s" name (Stype.to_string ty)
       | _ -> ());
    result
  | None ->
    err Errors.xpst0017 "unknown function %s/%d" name arity

(* Effective boolean value of an expression: through the lazy layer when
   the environment allows it (at most two items forced) AND the stream is
   guaranteed to agree with the eager EBV ([ebv_lazy_safe] — streams that
   can surface duplicate atomics must materialize), else by materializing
   — the seed behaviour. *)
and ebv_expr dyn e =
  if dyn.Context.env.Context.fast_eval && lazy_pays e && ebv_lazy_safe e then
    effective_boolean_value_seq (eval_lazy dyn e)
  else effective_boolean_value (eval dyn e)

(* The lazy sequence layer. [eval_lazy dyn e] produces the items of [e]
   on demand; forcing the whole thing agrees with [eval] up to document
   order and duplicates on path results, so it is only used where neither
   is observable: emptiness probes (fn:exists/fn:empty), quantifier
   sources and the left side of an existential general comparison (both
   insensitive to order and multiplicity), and EBV — where multiplicity
   IS observable for atomic items (two equal atomics raise FORG0006 where
   one is a value), so [ebv_expr] additionally requires [ebv_lazy_safe]
   before streaming. Laziness also means a short-circuiting consumer can
   skip errors the eager evaluator would have raised from later items
   (including the XPTY0018 mixed-path-result check) — the
   evaluation-order latitude XQuery explicitly grants. *)
and eval_lazy (dyn : Context.dyn) (e : expr) : item Seq.t =
  match e with
  | E_seq es -> Seq.concat_map (fun e -> eval_lazy dyn e) (List.to_seq es)
  | E_if (c, t, f) -> if ebv_expr dyn c then eval_lazy dyn t else eval_lazy dyn f
  | E_step (axis, test) ->
    (* The lazy walk does O(1) work per demanded node and can be driven
       unboundedly by a streaming consumer, so each delivered node pays a
       tick here — the eager arm's per-[eval] tick never runs. *)
    let limits = dyn.Context.env.Context.limits in
    let n = Context.context_node dyn in
    Seq.map
      (fun n ->
        Context.tick limits;
        Node n)
      (Seq.filter (node_test_matches test) (axis_seq axis n))
  | E_path (e1, e2) when not (uses_position_or_last e2) ->
    (* Streams nodes as the axes deliver them — unordered and
       un-deduplicated relative to [eval]'s sorted result, which the
       consumers above cannot observe. *)
    Seq.concat_map
      (fun item ->
        match item with
        | Node _ -> eval_lazy (Context.with_context dyn item 1 1) e2
        | Atomic _ -> err Errors.xpty0019 "a path step was applied to a non-node")
      (eval_lazy dyn e1)
  | E_filter (base, pred)
    when yields_nodes_only pred && not (uses_position_or_last pred) ->
    (* A node-only predicate is a pure EBV (emptiness) test: it can never
       produce the numeric singleton that positional selection keys on,
       and by the position/last guard it cannot observe the focus
       position or size either — so items stream through one at a time
       with a dummy focus. Anything else (numeric literals, atomizing
       predicates) falls to the materializing arm below, and [lazy_pays]
       mirrors this guard so callers don't route such filters here. *)
    Seq.filter
      (fun item ->
        let d = Context.with_context dyn item 1 1 in
        ebv_expr d pred)
      (eval_lazy dyn base)
  | E_range (e1, e2) -> (
    match (atomize (eval dyn e1), atomize (eval dyn e2)) with
    | [], _ | _, [] -> Seq.empty
    | [ a ], [ b ] ->
      let lo = cast_to_int a and hi = cast_to_int b in
      let limits = dyn.Context.env.Context.limits in
      if lo > hi then Seq.empty
      else
        Seq.init (hi - lo + 1) (fun i ->
            Context.tick limits;
            Atomic (A_int (lo + i)))
    | _ -> err Errors.xpty0004 "'to' requires singleton operands")
  | E_flwor { clauses; order_by = []; return } ->
    (* An unordered FLWOR pipelines: each binding tuple flows through the
       clause chain as the consumer demands output items. *)
    let dyns =
      List.fold_left
        (fun (dyns : Context.dyn Seq.t) clause ->
          match clause with
          | For { var; var_type; pos_var; source } ->
            Seq.concat_map
              (fun (d : Context.dyn) ->
                (* A positional variable observes the source's exact
                   order and multiplicity, so it pins the source to the
                   eager evaluator; a plain for streams. *)
                let items =
                  match pos_var with
                  | Some _ -> List.to_seq (eval d source)
                  | None -> eval_lazy d source
                in
                Seq.mapi
                  (fun i item ->
                    (if d.Context.env.Context.typed_mode then
                       match var_type with
                       | Some ty when not (Stype.matches [ item ] ty) ->
                         err Errors.xpty0004 "for $%s as %s: item does not match" var
                           (Stype.to_string ty)
                       | _ -> ());
                    let d = Context.bind_var d var [ item ] in
                    match pos_var with
                    | Some pv -> Context.bind_var d pv (of_int (i + 1))
                    | None -> d)
                  items)
              dyns
          | Let { var; var_type; value } ->
            Seq.map
              (fun (d : Context.dyn) ->
                let v = eval d value in
                (if d.Context.env.Context.typed_mode then
                   match var_type with
                   | Some ty when not (Stype.matches v ty) ->
                     err Errors.xpty0004 "let $%s as %s: value does not match" var
                       (Stype.to_string ty)
                   | _ -> ());
                Context.bind_var d var v)
              dyns
          | Where cond -> Seq.filter (fun d -> ebv_expr d cond) dyns)
        (Seq.return dyn) clauses
    in
    Seq.concat_map (fun d -> eval_lazy d return) dyns
  | e -> List.to_seq (eval dyn e)

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let register_prolog (env : Context.env) (prolog : prolog_decl list) =
  List.iter
    (function
      | Declare_function { fname; params; return_type; body } ->
        Context.register_function env
          (Context.normalize_fname fname)
          (List.length params)
          (Context.User { uparams = params; ureturn = return_type; ubody = body })
      | Declare_variable _ | Declare_namespace _ -> ())
    prolog

let run_program (env : Context.env) ?context_item ?(vars = []) (prog : program) : sequence =
  (* Force one slow check up front so an already-expired deadline trips
     before any work, however small the program. *)
  Context.check env.Context.limits;
  register_prolog env prog.prolog;
  let base_dyn =
    let d = Context.make_dyn env in
    match context_item with
    | Some item -> { d with Context.ctx_item = Some item; ctx_pos = 1; ctx_size = 1 }
    | None -> d
  in
  env.global_vars <-
    List.fold_left
      (fun acc (name, value) -> Context.StringMap.add name value acc)
      env.global_vars vars;
  List.iter
    (function
      | Declare_variable { vname; vtype; init } ->
        let value = eval base_dyn init in
        (if env.typed_mode then
           match vtype with
           | Some ty when not (Stype.matches value ty) ->
             err Errors.xpty0004 "global $%s does not match %s" vname (Stype.to_string ty)
           | _ -> ());
        env.global_vars <- Context.StringMap.add vname value env.global_vars
      | Declare_function _ | Declare_namespace _ -> ())
    prog.prolog;
  eval base_dyn prog.body
