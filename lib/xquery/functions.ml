(* The built-in function library. Each builtin receives the dynamic context
   (for position()/last()/zero-argument forms) and its already-evaluated
   arguments. *)

module N = Xml_base.Node
open Value

let err = Errors.raise_error

(* Builtins that build output proportional to their input in one call —
   string concatenation, tokenizing, codepoint expansion — charge fuel
   for that work here; the per-[eval] tick alone would let a doubling
   recursion grow strings exponentially on a linear step count. The /64
   scales bytes to roughly "evaluation steps". *)
let charge_bytes (dyn : Context.dyn) n =
  Context.charge dyn.Context.env.Context.limits ((n / 64) + 1)

let one_string name = function
  | [] -> ""
  | [ it ] -> (
    match it with
    | Atomic a -> string_of_atomic a
    | Node n -> N.string_value n)
  | s -> err Errors.xpty0004 "%s expects at most one item, got %d" name (List.length s)

let one_double name s =
  match atomize s with
  | [ a ] -> double_of_atomic a
  | other -> err Errors.xpty0004 "%s expects one numeric item, got %d" name (List.length other)

let opt_node name = function
  | [] -> None
  | [ Node n ] -> Some n
  | [ Atomic _ ] -> err Errors.xpty0004 "%s expects a node" name
  | _ -> err Errors.xpty0004 "%s expects at most one node" name

let ctx_or_arg (dyn : Context.dyn) args =
  match args with [] -> [ Context.context_item dyn ] | [ a ] -> a | _ -> assert false

(* ---------------------------------------------------------------- *)
(* Numeric                                                           *)
(* ---------------------------------------------------------------- *)

let numeric_unary name f g _dyn args =
  match atomize (List.hd args) with
  | [] -> []
  | [ A_int n ] -> of_int (f n)
  | [ a ] -> of_double (g (double_of_atomic a))
  | _ -> err Errors.xpty0004 "%s expects a single number" name

let fn_abs = numeric_unary "fn:abs" abs Float.abs
let fn_ceiling = numeric_unary "fn:ceiling" (fun n -> n) Float.ceil
let fn_floor = numeric_unary "fn:floor" (fun n -> n) Float.floor

let fn_round =
  numeric_unary "fn:round" (fun n -> n) (fun f -> Float.floor (f +. 0.5))

let fn_compare _dyn args =
  match args with
  | [ a; b ] -> (
    match (atomize a, atomize b) with
    | [], _ | _, [] -> []
    | [ x ], [ y ] -> (
      match value_compare x y with
      | Some c -> of_int (compare c 0)
      | None ->
        err Errors.xpty0004 "fn:compare: incomparable types %s and %s"
          (atomic_type_name x) (atomic_type_name y))
    | _ -> err Errors.xpty0004 "fn:compare expects singletons")
  | _ -> assert false

(* Banker's rounding, per F&O. *)
let round_half_even f =
  let fl = Float.floor f in
  let frac = f -. fl in
  if frac > 0.5 then fl +. 1.0
  else if frac < 0.5 then fl
  else if Float.rem fl 2.0 = 0.0 then fl
  else fl +. 1.0

let fn_round_half_to_even =
  numeric_unary "fn:round-half-to-even" (fun n -> n) round_half_even

let fn_number dyn args =
  let s = ctx_or_arg dyn args in
  match atomize s with
  | [ a ] -> (
    match a with
    | A_int n -> of_double (float_of_int n)
    | _ -> (
      try of_double (double_of_atomic a) with Errors.Error _ -> of_double Float.nan))
  | _ -> of_double Float.nan

let fold_numeric name s =
  List.map
    (fun a ->
      match a with
      | A_int _ | A_double _ -> a
      | A_untyped u -> A_double (double_of_atomic (A_untyped u))
      | other ->
        err Errors.forg0006 "%s: non-numeric value %s" name (string_of_atomic other))
    (atomize s)

let all_ints = List.for_all (function A_int _ -> true | _ -> false)

let fn_sum _dyn args =
  let zero = match args with [ _; z ] -> atomize z | _ -> [ A_int 0 ] in
  match fold_numeric "fn:sum" (List.hd args) with
  | [] -> List.map (fun a -> Atomic a) zero
  | nums when all_ints nums ->
    of_int (List.fold_left (fun acc a -> acc + cast_to_int a) 0 nums)
  | nums -> of_double (List.fold_left (fun acc a -> acc +. double_of_atomic a) 0.0 nums)

let fn_avg _dyn args =
  match fold_numeric "fn:avg" (List.hd args) with
  | [] -> []
  | nums ->
    let total = List.fold_left (fun acc a -> acc +. double_of_atomic a) 0.0 nums in
    of_double (total /. float_of_int (List.length nums))

let extremum name keep _dyn args =
  (* F&O: untypedAtomic operands of fn:min/fn:max are cast to xs:double. *)
  let promote = function
    | A_untyped u -> A_double (double_of_atomic (A_untyped u))
    | a -> a
  in
  match List.map promote (atomize (List.hd args)) with
  | [] -> []
  | first :: rest ->
    let best =
      List.fold_left
        (fun best a ->
          match general_compare_atoms a best with
          | Some c -> if keep c then a else best
          | None -> err Errors.forg0006 "%s: values are not comparable" name)
        first rest
    in
    [ Atomic best ]

let fn_max = extremum "fn:max" (fun c -> c > 0)
let fn_min = extremum "fn:min" (fun c -> c < 0)
let fn_count _dyn args = of_int (List.length (List.hd args))

(* ---------------------------------------------------------------- *)
(* Strings                                                           *)
(* ---------------------------------------------------------------- *)

let fn_string dyn args = of_string (one_string "fn:string" (ctx_or_arg dyn args))

let fn_concat dyn args =
  let s = String.concat "" (List.map (one_string "fn:concat") args) in
  charge_bytes dyn (String.length s);
  of_string s

let fn_string_join dyn args =
  match args with
  | [ items; sep ] ->
    let sep = one_string "fn:string-join" sep in
    let s = String.concat sep (List.map string_of_atomic (atomize items)) in
    charge_bytes dyn (String.length s);
    of_string s
  | _ -> assert false

let fn_substring _dyn args =
  match args with
  | src :: start :: rest ->
    let s = one_string "fn:substring" src in
    let start = one_double "fn:substring" start in
    let len =
      match rest with
      | [] -> Float.infinity
      | [ l ] -> one_double "fn:substring" l
      | _ -> assert false
    in
    (* XPath semantics: 1-based, rounding, positions p with
       round(start) <= p < round(start) + round(len). *)
    let n = String.length s in
    let r x = Float.floor (x +. 0.5) in
    let lo = r start in
    let hi = if len = Float.infinity then Float.infinity else lo +. r len in
    let buf = Buffer.create n in
    String.iteri
      (fun i c ->
        let p = float_of_int (i + 1) in
        if p >= lo && p < hi then Buffer.add_char buf c)
      s;
    of_string (Buffer.contents buf)
  | _ -> assert false

let fn_string_length dyn args =
  of_int (String.length (one_string "fn:string-length" (ctx_or_arg dyn args)))

let normalize_space_str s =
  let words =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s)
    |> List.filter (fun w -> w <> "")
  in
  String.concat " " words

let fn_normalize_space dyn args =
  of_string (normalize_space_str (one_string "fn:normalize-space" (ctx_or_arg dyn args)))

let fn_upper_case _dyn args =
  of_string (String.uppercase_ascii (one_string "fn:upper-case" (List.hd args)))

let fn_lower_case _dyn args =
  of_string (String.lowercase_ascii (one_string "fn:lower-case" (List.hd args)))

let fn_translate _dyn args =
  match args with
  | [ src; from_s; to_s ] ->
    let s = one_string "fn:translate" src in
    let from_s = one_string "fn:translate" from_s in
    let to_s = one_string "fn:translate" to_s in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt from_s c with
        | None -> Buffer.add_char buf c
        | Some i -> if i < String.length to_s then Buffer.add_char buf to_s.[i])
      s;
    of_string (Buffer.contents buf)
  | _ -> assert false

let contains_sub ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0

let fn_contains _dyn args =
  match args with
  | [ hay; needle ] ->
    of_bool
      (contains_sub
         ~needle:(one_string "fn:contains" needle)
         (one_string "fn:contains" hay))
  | _ -> assert false

let fn_starts_with _dyn args =
  match args with
  | [ hay; pre ] ->
    let hay = one_string "fn:starts-with" hay and pre = one_string "fn:starts-with" pre in
    of_bool
      (String.length pre <= String.length hay
      && String.sub hay 0 (String.length pre) = pre)
  | _ -> assert false

let fn_ends_with _dyn args =
  match args with
  | [ hay; suf ] ->
    let hay = one_string "fn:ends-with" hay and suf = one_string "fn:ends-with" suf in
    let hl = String.length hay and sl = String.length suf in
    of_bool (sl <= hl && String.sub hay (hl - sl) sl = suf)
  | _ -> assert false

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None else if String.sub hay i nl = needle then Some i else go (i + 1)
  in
  go 0

let fn_substring_before _dyn args =
  match args with
  | [ hay; needle ] ->
    let hay = one_string "fn:substring-before" hay in
    let needle = one_string "fn:substring-before" needle in
    (match find_sub hay needle with
    | Some i when needle <> "" -> of_string (String.sub hay 0 i)
    | _ -> of_string "")
  | _ -> assert false

let fn_substring_after _dyn args =
  match args with
  | [ hay; needle ] ->
    let hay = one_string "fn:substring-after" hay in
    let needle = one_string "fn:substring-after" needle in
    if needle = "" then of_string hay
    else (
      match find_sub hay needle with
      | Some i ->
        let start = i + String.length needle in
        of_string (String.sub hay start (String.length hay - start))
      | None -> of_string "")
  | _ -> assert false

let fn_string_to_codepoints dyn args =
  let s = one_string "fn:string-to-codepoints" (List.hd args) in
  (* One item per byte: charge like a range materialization. *)
  Context.charge dyn.Context.env.Context.limits (String.length s);
  List.init (String.length s) (fun i -> Atomic (A_int (Char.code s.[i])))

let fn_codepoints_to_string _dyn args =
  let codes = atomize (List.hd args) in
  let buf = Buffer.create (List.length codes) in
  List.iter
    (fun a ->
      let c = cast_to_int a in
      if c < 0 || c > 255 then
        err Errors.foca0002 "fn:codepoints-to-string: codepoint %d out of byte range" c
      else Buffer.add_char buf (Char.chr c))
    codes;
  of_string (Buffer.contents buf)

(* Regular expressions, via the Re library with PCRE syntax — a practical
   stand-in for XML Schema regexes. *)
let compile_regex name pattern flags =
  let opts = if String.contains flags 'i' then [ `CASELESS ] else [] in
  try Re.Pcre.re ~flags:opts pattern |> Re.compile
  with _ -> err Errors.forx0002 "%s: invalid regular expression %S" name pattern

let regex_args name args =
  match args with
  | [ input; pattern ] ->
    (one_string name input, one_string name pattern, "")
  | [ input; pattern; flags ] ->
    (one_string name input, one_string name pattern, one_string name flags)
  | _ -> assert false

let fn_matches _dyn args =
  let input, pattern, flags = regex_args "fn:matches" args in
  of_bool (Re.execp (compile_regex "fn:matches" pattern flags) input)

let fn_replace dyn args =
  match args with
  | input :: pattern :: repl :: rest ->
    let name = "fn:replace" in
    let input = one_string name input in
    charge_bytes dyn (String.length input);
    let pattern = one_string name pattern in
    let repl = one_string name repl in
    let flags = match rest with [ f ] -> one_string name f | _ -> "" in
    let re = compile_regex name pattern flags in
    (* XPath replacement templates use $N for groups and \$ to escape. *)
    let expand groups =
      let buf = Buffer.create (String.length repl) in
      let i = ref 0 in
      let len = String.length repl in
      while !i < len do
        let c = repl.[!i] in
        if c = '\\' && !i + 1 < len then begin
          Buffer.add_char buf repl.[!i + 1];
          i := !i + 2
        end
        else if c = '$' && !i + 1 < len && repl.[!i + 1] >= '0' && repl.[!i + 1] <= '9'
        then begin
          let g = Char.code repl.[!i + 1] - Char.code '0' in
          (try Buffer.add_string buf (Re.Group.get groups g) with Not_found -> ());
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      Buffer.contents buf
    in
    of_string (Re.replace re ~f:expand input)
  | _ -> assert false

(* XPath tokenize keeps empty fields (",a,," has four tokens); scan for
   non-empty matches manually so adjacent separators yield empties. *)
let fn_tokenize dyn args =
  let input, pattern, flags = regex_args "fn:tokenize" args in
  charge_bytes dyn (String.length input);
  let re = compile_regex "fn:tokenize" pattern flags in
  if input = "" then []
  else begin
    let toks = ref [] in
    let pos = ref 0 in
    let len = String.length input in
    let continue = ref true in
    while !continue do
      match Re.exec_opt ~pos:!pos re input with
      | Some g when Re.Group.stop g 0 > Re.Group.start g 0 ->
        toks := String.sub input !pos (Re.Group.start g 0 - !pos) :: !toks;
        pos := Re.Group.stop g 0
      | _ ->
        toks := String.sub input !pos (len - !pos) :: !toks;
        continue := false
    done;
    List.rev_map (fun s -> Atomic (A_string s)) !toks
  end

(* ---------------------------------------------------------------- *)
(* Booleans                                                          *)
(* ---------------------------------------------------------------- *)

let fn_not _dyn args = of_bool (not (effective_boolean_value (List.hd args)))
let fn_true _dyn _args = of_bool true
let fn_false _dyn _args = of_bool false
let fn_boolean _dyn args = of_bool (effective_boolean_value (List.hd args))

(* ---------------------------------------------------------------- *)
(* Sequences                                                         *)
(* ---------------------------------------------------------------- *)

let fn_empty _dyn args = of_bool (List.hd args = [])
let fn_exists _dyn args = of_bool (List.hd args <> [])

let is_nan_atomic = function A_double f -> Float.is_nan f | _ -> false

(* Hash keys for distinct-values, valid only within one homogeneous
   comparison class: across classes general_compare_atoms is not
   transitive (untyped "1" equals both the integer 1 and the string "1",
   which are not equal to each other), so hashing would conflate or split
   values the pairwise scan distinguishes. *)
type dv_key = K_num of int64 | K_int of int | K_str of string | K_bool of bool

let dv_class = function
  | A_int _ | A_double _ -> `Num
  | A_string _ | A_untyped _ -> `Str
  | A_bool _ -> `Bool

(* Ints with |n| ≤ 2^53 convert to double exactly; beyond that the
   conversion conflates neighbours, while the pairwise scan compares
   int/int exactly. *)
let dv_int_exact n = n >= -(1 lsl 53) && n <= 1 lsl 53

let dv_key = function
  (* A big integer keeps its exact value as the key: the pairwise scan
     compares int/int exactly, so two ints that only collide after
     rounding to double must stay distinct. The fast path below only
     hashes such ints when the sequence holds no doubles, so the split
     key space (K_int vs K_num) can never separate values the scan's
     int/double double-conversion comparison would merge. *)
  | A_int n when not (dv_int_exact n) -> K_int n
  | (A_int _ | A_double _) as a ->
    let f = double_of_atomic a in
    (* -0.0 = 0.0 and all NaNs are one value for fn:distinct-values. *)
    let f = if f = 0.0 then 0.0 else if Float.is_nan f then Float.nan else f in
    K_num (Int64.bits_of_float f)
  | A_string s | A_untyped s -> K_str s
  | A_bool b -> K_bool b

let fn_distinct_values dyn args =
  let atoms = atomize (List.hd args) in
  let homogeneous =
    match atoms with
    | [] -> true
    | a :: rest ->
      let c = dv_class a in
      List.for_all (fun b -> dv_class b = c) rest
  in
  (* Within the numeric class the scan's int/double comparison goes
     through double conversion, which the bit-pattern key mirrors only
     for exactly representable ints; doubles mixed with bigger ints keep
     the scan. *)
  let hashable =
    homogeneous
    && (match atoms with
       | a :: _ when dv_class a = `Num ->
         List.for_all (function A_int n -> dv_int_exact n | _ -> true) atoms
         || not (List.exists (function A_double _ -> true | _ -> false) atoms)
       | _ -> true)
  in
  if dyn.Context.env.Context.fast_eval && hashable then begin
    (* One comparison class: equality coincides with key equality, so a
       hash set gives O(n) in place of the seed's O(n²) pairwise scan.
       First occurrence wins, as in the seed. *)
    let tbl = Hashtbl.create (2 * List.length atoms + 1) in
    List.filter_map
      (fun a ->
        let k = dv_key a in
        if Hashtbl.mem tbl k then None
        else begin
          Hashtbl.replace tbl k ();
          Some (Atomic a)
        end)
      atoms
  end
  else begin
    let seen = ref [] in
    let same a b =
      (is_nan_atomic a && is_nan_atomic b)
      || (match general_compare_atoms a b with Some 0 -> true | _ -> false)
    in
    let keep a =
      if List.exists (same a) !seen then false
      else begin
        seen := a :: !seen;
        true
      end
    in
    List.filter_map (fun a -> if keep a then Some (Atomic a) else None) atoms
  end

let fn_reverse _dyn args = List.rev (List.hd args)

let fn_insert_before _dyn args =
  match args with
  | [ target; pos; inserts ] ->
    let p = max 1 (cast_to_int (atomize_one "fn:insert-before" pos)) in
    let rec go i = function
      | [] -> inserts
      | x :: rest when i = p -> inserts @ (x :: rest)
      | x :: rest -> x :: go (i + 1) rest
    in
    go 1 target
  | _ -> assert false

let fn_remove _dyn args =
  match args with
  | [ target; pos ] ->
    let p = cast_to_int (atomize_one "fn:remove" pos) in
    List.filteri (fun i _ -> i + 1 <> p) target
  | _ -> assert false

let fn_subsequence _dyn args =
  match args with
  | source :: start :: rest ->
    let start = one_double "fn:subsequence" start in
    let len =
      match rest with [] -> Float.infinity | [ l ] -> one_double "fn:subsequence" l | _ -> assert false
    in
    let r x = Float.floor (x +. 0.5) in
    let lo = r start in
    let hi = if len = Float.infinity then Float.infinity else lo +. r len in
    List.filteri
      (fun i _ ->
        let p = float_of_int (i + 1) in
        p >= lo && p < hi)
      source
  | _ -> assert false

let fn_index_of _dyn args =
  match args with
  | [ source; search ] ->
    let target = atomize_one "fn:index-of" search in
    List.concat
      (List.mapi
         (fun i a ->
           match general_compare_atoms a target with
           | Some 0 -> [ Atomic (A_int (i + 1)) ]
           | _ -> [])
         (atomize source))
  | _ -> assert false

let fn_zero_or_one _dyn args =
  match List.hd args with
  | ([] | [ _ ]) as s -> s
  | s -> err Errors.forg0006 "fn:zero-or-one: got %d items" (List.length s)

let fn_one_or_more _dyn args =
  match List.hd args with
  | [] -> err Errors.forg0006 "fn:one-or-more: got an empty sequence"
  | s -> s

let fn_exactly_one _dyn args =
  match List.hd args with
  | [ _ ] as s -> s
  | s -> err Errors.forg0006 "fn:exactly-one: got %d items" (List.length s)

let fn_deep_equal _dyn args =
  match args with
  | [ a; b ] -> of_bool (deep_equal a b)
  | _ -> assert false

let fn_unordered _dyn args = List.hd args

(* ---------------------------------------------------------------- *)
(* Context                                                           *)
(* ---------------------------------------------------------------- *)

let fn_position (dyn : Context.dyn) _args =
  if dyn.ctx_pos = 0 then err Errors.xpdy0002 "fn:position: no context item" else of_int dyn.ctx_pos

let fn_last (dyn : Context.dyn) _args =
  if dyn.ctx_pos = 0 then err Errors.xpdy0002 "fn:last: no context item" else of_int dyn.ctx_size

(* ---------------------------------------------------------------- *)
(* Nodes                                                             *)
(* ---------------------------------------------------------------- *)

let fn_name dyn args =
  match opt_node "fn:name" (ctx_or_arg dyn args) with
  | None -> of_string ""
  | Some n -> (
    match N.kind n with
    | N.Element | N.Attribute -> of_string (N.name n)
    | N.Processing_instruction -> of_string (N.pi_target n)
    | _ -> of_string "")

let fn_local_name dyn args =
  match fn_name dyn args with
  | [ Atomic (A_string s) ] ->
    let local =
      match String.rindex_opt s ':' with
      | Some i -> String.sub s (i + 1) (String.length s - i - 1)
      | None -> s
    in
    of_string local
  | other -> other

let fn_node_name dyn args =
  match opt_node "fn:node-name" (ctx_or_arg dyn args) with
  | None -> []
  | Some n -> (
    match N.kind n with
    | N.Element | N.Attribute -> of_string (N.name n)
    | _ -> [])

let fn_root dyn args =
  match opt_node "fn:root" (ctx_or_arg dyn args) with
  | None -> []
  | Some n -> of_node (N.root n)

let fn_data _dyn args = List.map (fun a -> Atomic a) (atomize (List.hd args))

let fn_doc (dyn : Context.dyn) args =
  match List.hd args with
  | [] -> []
  | s -> (
    let uri = one_string "fn:doc" s in
    match dyn.env.doc_resolver uri with
    | Some doc -> of_node doc
    | None -> err Errors.fodc0002 "fn:doc: cannot retrieve %S" uri)

(* ---------------------------------------------------------------- *)
(* Diagnostics: the two functions the paper's debugging section is    *)
(* about.                                                            *)
(* ---------------------------------------------------------------- *)

let fn_error _dyn args =
  match args with
  | [] -> err Errors.foer0000 "fn:error"
  | [ code ] -> err Errors.foer0000 "%s" (one_string "fn:error" code)
  | [ code; message ] ->
    let code = match code with [] -> Errors.foer0000 | s -> one_string "fn:error" s in
    raise
      (Errors.Error { code = "err:" ^ code; message = one_string "fn:error" message })
  | _ -> assert false

let fn_trace (dyn : Context.dyn) args =
  match args with
  | [ value; label ] ->
    let label = one_string "fn:trace" label in
    dyn.env.trace_count <- dyn.env.trace_count + 1;
    dyn.env.trace_out (Printf.sprintf "%s %s" label (to_display_string value));
    value
  | _ -> assert false

(* ---------------------------------------------------------------- *)
(* Constructor functions (casts)                                     *)
(* ---------------------------------------------------------------- *)

let cast_fn name conv _dyn args =
  match atomize (List.hd args) with
  | [] -> []
  | [ a ] -> conv a
  | _ -> err Errors.xpty0004 "%s expects a single value" name

let registry : (string * int * (Context.dyn -> Value.sequence list -> Value.sequence)) list =
  [
    ("abs", 1, fn_abs);
    ("ceiling", 1, fn_ceiling);
    ("floor", 1, fn_floor);
    ("round", 1, fn_round);
    ("round-half-to-even", 1, fn_round_half_to_even);
    ("compare", 2, fn_compare);
    ("number", 0, fn_number);
    ("number", 1, fn_number);
    ("sum", 1, fn_sum);
    ("sum", 2, fn_sum);
    ("avg", 1, fn_avg);
    ("max", 1, fn_max);
    ("min", 1, fn_min);
    ("count", 1, fn_count);
    ("string", 0, fn_string);
    ("string", 1, fn_string);
    ("string-join", 2, fn_string_join);
    ("substring", 2, fn_substring);
    ("substring", 3, fn_substring);
    ("string-length", 0, fn_string_length);
    ("string-length", 1, fn_string_length);
    ("normalize-space", 0, fn_normalize_space);
    ("normalize-space", 1, fn_normalize_space);
    ("upper-case", 1, fn_upper_case);
    ("lower-case", 1, fn_lower_case);
    ("translate", 3, fn_translate);
    ("contains", 2, fn_contains);
    ("starts-with", 2, fn_starts_with);
    ("ends-with", 2, fn_ends_with);
    ("substring-before", 2, fn_substring_before);
    ("substring-after", 2, fn_substring_after);
    ("string-to-codepoints", 1, fn_string_to_codepoints);
    ("codepoints-to-string", 1, fn_codepoints_to_string);
    ("matches", 2, fn_matches);
    ("matches", 3, fn_matches);
    ("replace", 3, fn_replace);
    ("replace", 4, fn_replace);
    ("tokenize", 2, fn_tokenize);
    ("tokenize", 3, fn_tokenize);
    ("not", 1, fn_not);
    ("true", 0, fn_true);
    ("false", 0, fn_false);
    ("boolean", 1, fn_boolean);
    ("empty", 1, fn_empty);
    ("exists", 1, fn_exists);
    ("distinct-values", 1, fn_distinct_values);
    ("reverse", 1, fn_reverse);
    ("insert-before", 3, fn_insert_before);
    ("remove", 2, fn_remove);
    ("subsequence", 2, fn_subsequence);
    ("subsequence", 3, fn_subsequence);
    ("index-of", 2, fn_index_of);
    ("zero-or-one", 1, fn_zero_or_one);
    ("one-or-more", 1, fn_one_or_more);
    ("exactly-one", 1, fn_exactly_one);
    ("deep-equal", 2, fn_deep_equal);
    ("unordered", 1, fn_unordered);
    ("position", 0, fn_position);
    ("last", 0, fn_last);
    ("name", 0, fn_name);
    ("name", 1, fn_name);
    ("local-name", 0, fn_local_name);
    ("local-name", 1, fn_local_name);
    ("node-name", 1, fn_node_name);
    ("root", 0, fn_root);
    ("root", 1, fn_root);
    ("data", 1, fn_data);
    ("doc", 1, fn_doc);
    ("error", 0, fn_error);
    ("error", 1, fn_error);
    ("error", 2, fn_error);
    ("trace", 2, fn_trace);
    ("xs:integer", 1, cast_fn "xs:integer" (fun a -> of_int (cast_to_int a)));
    ("xs:string", 1, cast_fn "xs:string" (fun a -> of_string (string_of_atomic a)));
    ("xs:double", 1, cast_fn "xs:double" (fun a -> of_double (double_of_atomic a)));
    ("xs:boolean", 1, cast_fn "xs:boolean" (fun a -> of_bool (cast_to_bool a)));
  ]

let register_all (env : Context.env) =
  List.iter
    (fun (name, arity, f) -> Context.register_function env name arity (Context.Builtin f))
    registry;
  (* fn:concat is variadic: register a practical range of arities. *)
  for arity = 2 to 16 do
    Context.register_function env "concat" arity (Context.Builtin fn_concat)
  done

(* Compile-time resolution for the plan compiler: map a call site to the
   builtin's closure once, instead of a hash lookup per execution. *)
let table =
  lazy
    (let tbl = Hashtbl.create 128 in
     List.iter (fun (name, arity, f) -> Hashtbl.replace tbl (name, arity) f) registry;
     for arity = 2 to 16 do
       Hashtbl.replace tbl ("concat", arity) fn_concat
     done;
     tbl)

let find name arity =
  Hashtbl.find_opt (Lazy.force table) (Context.normalize_fname name, arity)
