module Exec_opts = struct
  type mode = Seed | Fast | Plan
  type level = Full | Skeleton

  type t = {
    mode : mode;
    limits : Context.limits option;
    level : level;
    explain : bool;
    context_item : Value.item option;
    vars : (string * Value.sequence) list;
    trace_out : (string -> unit) option;
    doc_resolver : (string -> Xml_base.Node.t option) option;
    pool : ((unit -> unit) array -> unit) option;
  }

  let default =
    {
      mode = Fast;
      limits = None;
      level = Full;
      explain = false;
      context_item = None;
      vars = [];
      trace_out = None;
      doc_resolver = None;
      pool = None;
    }

  let make ?(mode = Fast) ?limits ?(level = Full) ?(explain = false) ?context_item
      ?(vars = []) ?trace_out ?doc_resolver ?pool () =
    { mode; limits; level; explain; context_item; vars; trace_out; doc_resolver; pool }

  let mode_name = function Seed -> "seed" | Fast -> "fast" | Plan -> "plan"

  let mode_of_string = function
    | "seed" -> Ok Seed
    | "fast" -> Ok Fast
    | "plan" -> Ok Plan
    | s -> Error (Printf.sprintf "unknown mode %S (expected seed|fast|plan)" s)

  (* The mode the legacy [?fast_eval] entry points resolve to when the
     caller passed nothing: the ambient default flag, read at call time
     so scoped flips of [Context.fast_eval_default] keep working. *)
  let ambient_mode () = if !Context.fast_eval_default then Fast else Seed
end

type compiled = {
  program : Ast.program;
  compat : Context.compat;
  typed_mode : bool;
  opt_stats : Optimizer.stats option;
  mutable plan : Plan.program option;
      (* memoized lowering; depends only on [program], so racing
         domain-local compilations at worst duplicate work *)
}

let make_compiled ?opt_stats ~compat ~typed_mode program =
  { program; compat; typed_mode; opt_stats; plan = None }

let compile ?(compat = Context.default_compat) ?(typed_mode = false) ?(optimize = true)
    ?static_check src =
  let program = Parser.parse_program src in
  (match static_check with
  | Some external_vars -> Static_check.check_program ~external_vars program
  | None -> ());
  if optimize then
    let program, stats =
      Optimizer.optimize_program ~treat_trace_as_pure:compat.Context.treat_trace_as_pure
        program
    in
    make_compiled ~opt_stats:stats ~compat ~typed_mode program
  else make_compiled ~compat ~typed_mode program

let plan_cached compiled = compiled.plan <> None

let plan_of compiled =
  match compiled.plan with
  | Some p -> p
  | None ->
    let p = Compile.compile_program compiled.program in
    compiled.plan <- Some p;
    p

let explain compiled ~(mode : Exec_opts.mode) =
  let b = Buffer.create 1024 in
  (match compiled.opt_stats with
  | Some s ->
    Buffer.add_string b
      (Printf.sprintf
         "(: optimizer: %d lets eliminated, %d traces eliminated, %d constants folded, \
          %d count rewrites, %d paths hoisted :)\n"
         s.Optimizer.lets_eliminated s.Optimizer.traces_eliminated
         s.Optimizer.constants_folded s.Optimizer.count_cmp_rewrites
         s.Optimizer.paths_hoisted)
  | None -> Buffer.add_string b "(: optimizer: off :)\n");
  (match mode with
  | Exec_opts.Plan -> Buffer.add_string b (Plan.render_program (plan_of compiled))
  | Exec_opts.Seed | Exec_opts.Fast ->
    Buffer.add_string b (Unparse.program compiled.program));
  Buffer.contents b

(* The unified entry point: one options record, three execution modes. *)
let run ?(opts = Exec_opts.default) compiled =
  let env =
    Context.make_env ~compat:compiled.compat ~typed_mode:compiled.typed_mode
      ?limits:opts.Exec_opts.limits ()
  in
  (match opts.Exec_opts.trace_out with Some f -> env.Context.trace_out <- f | None -> ());
  (match opts.Exec_opts.doc_resolver with
  | Some f -> env.Context.doc_resolver <- f
  | None -> ());
  (* The runtime's own exhaustion signals join the resource taxonomy here:
     an unbounded recursion that beats the fuel counter to the stack limit
     still surfaces as a structured budget trip, not a stringly
     Printexc.to_string. *)
  try
    match opts.Exec_opts.mode with
    | Exec_opts.Plan ->
      (* Plan-resolved builtins that branch on [fast_eval] (set algebra,
         distinct-values) may use the fast, result-identical algorithms. *)
      env.Context.fast_eval <- true;
      let plan = plan_of compiled in
      Plan_exec.run env ?context_item:opts.Exec_opts.context_item
        ~vars:opts.Exec_opts.vars ?pool:opts.Exec_opts.pool plan
    | (Exec_opts.Seed | Exec_opts.Fast) as m ->
      env.Context.fast_eval <- (m = Exec_opts.Fast);
      Functions.register_all env;
      Eval.run_program env ?context_item:opts.Exec_opts.context_item
        ~vars:opts.Exec_opts.vars compiled.program
  with
  | Stack_overflow -> Errors.exhaust Errors.Stack ~limit:0 ~used:0
  | Out_of_memory -> Errors.exhaust Errors.Memory ~limit:0 ~used:0

(* ------------------------------------------------------------------ *)
(* Deprecated shims (one release): the labelled-argument entry points.  *)
(* New code should build an [Exec_opts.t] and call [run].               *)
(* ------------------------------------------------------------------ *)

let opts_of_legacy ?context_item ?(vars = []) ?trace_out ?doc_resolver ?fast_eval ?limits
    () =
  let mode =
    match fast_eval with
    | Some true -> Exec_opts.Fast
    | Some false -> Exec_opts.Seed
    | None -> Exec_opts.ambient_mode ()
  in
  {
    Exec_opts.default with
    Exec_opts.mode;
    limits;
    context_item;
    vars;
    trace_out;
    doc_resolver;
  }

let execute ?context_item ?vars ?trace_out ?doc_resolver ?fast_eval ?limits compiled =
  run
    ~opts:
      (opts_of_legacy ?context_item ?vars ?trace_out ?doc_resolver ?fast_eval ?limits ())
    compiled

let eval_query ?compat ?typed_mode ?optimize ?static_check ?context_item ?vars ?trace_out
    ?doc_resolver ?fast_eval ?limits src =
  execute ?context_item ?vars ?trace_out ?doc_resolver ?fast_eval ?limits
    (compile ?compat ?typed_mode ?optimize ?static_check src)

let query_doc ?vars doc src =
  eval_query ~context_item:(Value.Node doc) ?vars src
