type compiled = {
  program : Ast.program;
  compat : Context.compat;
  typed_mode : bool;
  opt_stats : Optimizer.stats option;
}

let compile ?(compat = Context.default_compat) ?(typed_mode = false) ?(optimize = true)
    ?static_check src =
  let program = Parser.parse_program src in
  (match static_check with
  | Some external_vars -> Static_check.check_program ~external_vars program
  | None -> ());
  if optimize then
    let program, stats =
      Optimizer.optimize_program ~treat_trace_as_pure:compat.Context.treat_trace_as_pure
        program
    in
    { program; compat; typed_mode; opt_stats = Some stats }
  else { program; compat; typed_mode; opt_stats = None }

let execute ?context_item ?(vars = []) ?trace_out ?doc_resolver ?fast_eval ?limits
    compiled =
  let env =
    Context.make_env ~compat:compiled.compat ~typed_mode:compiled.typed_mode ?limits ()
  in
  Functions.register_all env;
  (match trace_out with Some f -> env.Context.trace_out <- f | None -> ());
  (match doc_resolver with Some f -> env.Context.doc_resolver <- f | None -> ());
  (match fast_eval with Some b -> env.Context.fast_eval <- b | None -> ());
  (* The runtime's own exhaustion signals join the resource taxonomy here:
     an unbounded recursion that beats the fuel counter to the stack limit
     still surfaces as a structured budget trip, not a stringly
     Printexc.to_string. *)
  try Eval.run_program env ?context_item ~vars compiled.program with
  | Stack_overflow -> Errors.exhaust Errors.Stack ~limit:0 ~used:0
  | Out_of_memory -> Errors.exhaust Errors.Memory ~limit:0 ~used:0

let eval_query ?compat ?typed_mode ?optimize ?static_check ?context_item ?vars ?trace_out
    ?doc_resolver ?fast_eval ?limits src =
  execute ?context_item ?vars ?trace_out ?doc_resolver ?fast_eval ?limits
    (compile ?compat ?typed_mode ?optimize ?static_check src)

let query_doc ?vars doc src =
  eval_query ~context_item:(Value.Node doc) ?vars src
