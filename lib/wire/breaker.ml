(* Per-shard circuit breaker: Closed / Open / Half-open.

   The shard failover loop is reactive — a request must die on a bad
   shard before routing walks to a ring successor. The breaker makes
   the lesson stick: enough consecutive failures (or a high enough
   timeout fraction over the recent window) open the circuit, and the
   router then skips the shard *before* spending a request on it. After
   a cooldown the breaker admits exactly one probe (half-open); only a
   proven success closes it again — a probe failure re-opens and the
   cooldown restarts.

   Deliberately clock-explicit ([~now] everywhere) and free of any
   thread machinery beyond one mutex, so the state machine unit-tests
   without a cluster and without sleeping. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (* consecutive failures that trip Closed -> Open *)
  timeout_rate_threshold : float;  (* timeout fraction over the window that trips *)
  window : int;  (* recent outcomes considered for the timeout rate *)
  cooldown_s : float;  (* Open dwell before a probe is admitted *)
}

let default_config =
  { failure_threshold = 5; timeout_rate_threshold = 0.5; window = 20; cooldown_s = 1. }

type t = {
  cfg : config;
  mutex : Mutex.t;
  mutable st : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_inflight : bool;
  (* Ring of recent outcomes: true = the failure was a timeout. Sized
     [window]; [filled] counts valid entries until the ring wraps. *)
  outcomes : bool array;
  mutable next : int;
  mutable filled : int;
  mutable trips : int;  (* Closed/Half_open -> Open transitions, for the gauge story *)
}

let create ?(config = default_config) () =
  {
    cfg = { config with window = max 1 config.window };
    mutex = Mutex.create ();
    st = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    probe_inflight = false;
    outcomes = Array.make (max 1 config.window) false;
    next = 0;
    filled = 0;
    trips = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_outcome t ~timeout =
  t.outcomes.(t.next) <- timeout;
  t.next <- (t.next + 1) mod Array.length t.outcomes;
  if t.filled < Array.length t.outcomes then t.filled <- t.filled + 1

let timeout_rate t =
  if t.filled = 0 then 0.
  else begin
    let timeouts = ref 0 in
    for i = 0 to t.filled - 1 do
      if t.outcomes.(i) then incr timeouts
    done;
    float_of_int !timeouts /. float_of_int t.filled
  end

let trip t ~now =
  t.st <- Open;
  t.opened_at <- now;
  t.probe_inflight <- false;
  t.trips <- t.trips + 1

let state t = locked t (fun () -> t.st)
let trips t = locked t (fun () -> t.trips)

(* 0 / 1 / 2 for the Prometheus gauge. *)
let state_code t =
  locked t (fun () -> match t.st with Closed -> 0 | Open -> 1 | Half_open -> 2)

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

(* Routing must avoid the shard: Open inside its cooldown, or a probe
   already holds the half-open slot. Open *past* its cooldown is not
   blocked — the shard is eligible again, pending {!try_probe}. *)
let blocked t ~now =
  locked t (fun () ->
      match t.st with
      | Closed -> false
      | Open -> now -. t.opened_at < t.cfg.cooldown_s
      | Half_open -> t.probe_inflight)

(* Claim the right to send one request. Closed admits freely. Open past
   cooldown converts to Half_open and hands this caller the single
   probe slot; a second caller gets [false] until the probe resolves. *)
let try_probe t ~now =
  locked t (fun () ->
      match t.st with
      | Closed -> true
      | Open when now -. t.opened_at >= t.cfg.cooldown_s ->
        t.st <- Half_open;
        t.probe_inflight <- true;
        true
      | Open -> false
      | Half_open when not t.probe_inflight ->
        t.probe_inflight <- true;
        true
      | Half_open -> false)

let record_success t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      push_outcome t ~timeout:false;
      match t.st with
      | Half_open | Open ->
        (* The half-open probe (or a straggler that beat the trip)
           proved the shard does real work: close and forget the
           window — old timeouts must not instantly re-trip. *)
        t.st <- Closed;
        t.probe_inflight <- false;
        t.filled <- 0;
        t.next <- 0
      | Closed -> ())

let record_failure t ?(timeout = false) ~now () =
  locked t (fun () ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      push_outcome t ~timeout;
      match t.st with
      | Half_open -> trip t ~now (* the probe failed: re-open, cooldown restarts *)
      | Closed ->
        if
          t.consecutive_failures >= t.cfg.failure_threshold
          || (t.filled >= Array.length t.outcomes
             && timeout_rate t >= t.cfg.timeout_rate_threshold)
        then trip t ~now
      | Open -> ())

(* Force-open without waiting for failures — the supervisor uses this
   when it *knows* the backend died (reaped the corpse), so routing
   stops immediately and recovery goes through the probe discipline. *)
let force_open t ~now = locked t (fun () -> trip t ~now)
