(* Deterministic chaos for the shard transport.

   Production failover is untestable if the network faults themselves
   are flaky, so — exactly like the service layer's [Fault] injector —
   every decision here is a pure function of (seed, fault kind, shard,
   frame sequence number): the same seeded config replays the same
   fault schedule in the same places, run after run. The decision hash
   is Digest (MD5), not for security, just for cheap well-mixed bits.

   No proxy process: the front's shard [call] path consults [decide]
   once per data-plane frame and enacts the verdict itself on the real
   socket — a delayed frame really arrives late, a truncated frame
   really leaves the backend holding a half-read, a corrupted frame
   really fails the CRC on the far side. Control frames (ping, metrics,
   drain) and health probes are exempt so the supervisor's view of the
   world stays truthful; the data plane is where the defenses under
   test (CRC + nack, breakers, hedges, failover) live.

   Note on sequence numbers: the per-shard frame counter makes the
   *schedule* (seq -> action) byte-identical across runs for one seed.
   Which request draws which sequence number still depends on thread
   interleaving — determinism of the fault plan, not of the race. *)

type action =
  | Pass
  | Delay of float  (* seconds added before the frame is sent *)
  | Drop  (* the frame never leaves; the sender waits out its timeout *)
  | Truncate  (* half the frame is sent, then the connection dies *)
  | Corrupt  (* one payload byte flipped; the CRC trailer is left stale *)
  | Duplicate  (* the frame is delivered twice *)
  | Stall of float  (* seconds the frame hangs mid-flight before arriving *)

type config = {
  seed : int;
  delay_rate : float;
  delay_s : float;  (* max added latency; the actual delay is jittered *)
  drop_rate : float;
  truncate_rate : float;
  corrupt_rate : float;
  duplicate_rate : float;
  stall_rate : float;
  stall_s : float;
}

let none =
  {
    seed = 0;
    delay_rate = 0.;
    delay_s = 0.005;
    drop_rate = 0.;
    truncate_rate = 0.;
    corrupt_rate = 0.;
    duplicate_rate = 0.;
    stall_rate = 0.;
    stall_s = 0.5;
  }

(* The standard mixed schedule behind [--chaos SEED]: every fault kind
   live at a rate failover should absorb, stalls long enough to trip
   hedges but not the call timeout. *)
let of_seed seed =
  {
    seed;
    delay_rate = 0.10;
    delay_s = 0.005;
    drop_rate = 0.02;
    truncate_rate = 0.02;
    corrupt_rate = 0.05;
    duplicate_rate = 0.03;
    stall_rate = 0.04;
    stall_s = 0.5;
  }

let enabled c =
  c.delay_rate > 0. || c.drop_rate > 0. || c.truncate_rate > 0.
  || c.corrupt_rate > 0. || c.duplicate_rate > 0. || c.stall_rate > 0.

(* 28 bits of a digest as a uniform draw in [0, 1). *)
let uniform ~seed ~tag ~shard ~seq =
  let h =
    Digest.to_hex (Digest.string (Printf.sprintf "%d|%s|%d|%d" seed tag shard seq))
  in
  float_of_int (int_of_string ("0x" ^ String.sub h 0 7)) /. float_of_int 0x10000000

let fires c rate ~tag ~shard ~seq =
  if rate <= 0. then false
  else rate >= 1. || uniform ~seed:c.seed ~tag ~shard ~seq < rate

(* Fixed evaluation order so one frame draws at most one fault; the
   destructive kinds get first claim. *)
let decide c ~shard ~seq =
  if not (enabled c) then Pass
  else if fires c c.drop_rate ~tag:"drop" ~shard ~seq then Drop
  else if fires c c.truncate_rate ~tag:"truncate" ~shard ~seq then Truncate
  else if fires c c.corrupt_rate ~tag:"corrupt" ~shard ~seq then Corrupt
  else if fires c c.stall_rate ~tag:"stall" ~shard ~seq then
    Stall (c.stall_s *. (0.5 +. (0.5 *. uniform ~seed:c.seed ~tag:"stall-jitter" ~shard ~seq)))
  else if fires c c.duplicate_rate ~tag:"duplicate" ~shard ~seq then Duplicate
  else if fires c c.delay_rate ~tag:"delay" ~shard ~seq then
    Delay (c.delay_s *. uniform ~seed:c.seed ~tag:"delay-jitter" ~shard ~seq)
  else Pass

(* Which payload byte a Corrupt verdict flips, as an offset into the
   payload — deterministic per (shard, seq) like everything else. *)
let corrupt_offset c ~shard ~seq ~len =
  if len <= 0 then 0
  else
    int_of_float (uniform ~seed:c.seed ~tag:"corrupt-at" ~shard ~seq *. float_of_int len)
    mod len

(* The full fault plan for one shard's first [n] frames — the
   reproducibility contract made inspectable (and testable: same seed,
   same list, byte for byte). *)
let schedule c ~shard n = List.init n (fun seq -> decide c ~shard ~seq)

let action_name = function
  | Pass -> "pass"
  | Delay _ -> "delay"
  | Drop -> "drop"
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"
  | Duplicate -> "duplicate"
  | Stall _ -> "stall"
