(** Length-prefixed binary framing with a CRC32 integrity trailer —
    the shard transport's wire layer, factored out of [Shard] so the
    chaos plane and the workload recorder share one codec.

    Version 2 frame: [u32 length, u8 version, payload, u32 crc32] where
    [length] counts version byte + payload + trailer. Corruption of the
    payload is {e detected} (raises {!Crc_mismatch}) rather than parsed;
    the frame boundary survives, so a receiver can answer a structured
    {!nack} on the same connection instead of desyncing. *)

(** {1 Payload codec} *)

exception Protocol_error of string

val perr : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Protocol_error} with a formatted message. *)

val add_u8 : Buffer.t -> int -> unit
val add_u16 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit

val add_lp : Buffer.t -> string -> unit
(** Length-prefixed string: [u32 length] + bytes. *)

val get_u8 : string -> int ref -> int
val get_u16 : string -> int ref -> int
val get_u32 : string -> int ref -> int
val get_lp : string -> int ref -> string

val crc32 : string -> int
(** IEEE 802.3 CRC32 of the whole string, as a non-negative int. *)

(** {1 Socket IO} *)

exception Crc_mismatch
(** A received frame's trailer does not match its payload: the bytes
    were damaged in flight. The stream is still framed (the length
    header was read before the damage was detected). *)

exception Nacked of string
(** Raised by callers that treat a {!nack} reply as a failure; never
    raised inside this module. *)

val version : int
val max_frame_bytes : int

val payload_offset : int
(** Byte offset of the payload inside {!encode}'s result. *)

val send_all : Unix.file_descr -> string -> unit
(** Write the whole string; raises {!Protocol_error} on a short write. *)

val encode : string -> string
(** The complete wire frame (header + version + payload + trailer) as
    one string — for layers (chaos) that must hold the raw bytes. *)

val send_frame : Unix.file_descr -> string -> unit
(** Frame and send one payload. *)

val recv_exact : ?retry_again:(unit -> bool) -> Unix.file_descr -> int -> string
(** Read exactly [n] bytes. [End_of_file] on EOF; EAGAIN from the
    socket receive timeout propagates unless [retry_again ()] says to
    keep waiting (the backend's drain poll). *)

val recv_frame : ?retry_again:(unit -> bool) -> Unix.file_descr -> string
(** Receive one frame and return its payload. Raises {!Protocol_error}
    on a bad length or version, {!Crc_mismatch} on a bad trailer. *)

(** {1 Structured nack} *)

val nack : string -> string
(** Payload answering a damaged frame: ['N'] + length-prefixed reason. *)

val nack_reason : string -> string option
(** [Some reason] when the payload is a nack. *)
