(* Length-prefixed binary framing for the shard transport, with an
   integrity trailer.

   Version 2 wire format (one frame per message):

     frame = u32 length, u8 version, payload bytes, u32 crc32(payload)

   where [length] counts everything after itself (version byte +
   payload + trailer). The CRC turns a hostile or flaky byte stream
   from a silent-parse hazard into a *detected* fault: a receiver that
   sees a trailer mismatch raises {!Crc_mismatch} — the frame boundary
   itself is intact (the length field framed the read), so a backend
   can answer a structured nack on the same connection instead of
   desyncing, and a front can map the corruption to failover.

   The codec helpers (u8/u16/u32/length-prefixed string) are shared by
   every payload format that crosses this transport — the shard
   generate op, and the workload recorder's capture files. *)

(* ------------------------------------------------------------------ *)
(* Payload codec                                                       *)
(* ------------------------------------------------------------------ *)

let add_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let add_u16 b n =
  add_u8 b (n lsr 8);
  add_u8 b n

let add_u32 b n =
  add_u16 b (n lsr 16);
  add_u16 b n

let add_lp b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

exception Protocol_error of string

let perr fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

let get_u8 s pos =
  if !pos >= String.length s then perr "truncated frame";
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_u16 s pos =
  let hi = get_u8 s pos in
  (hi lsl 8) lor get_u8 s pos

let get_u32 s pos =
  let hi = get_u16 s pos in
  (hi lsl 16) lor get_u16 s pos

let get_lp s pos =
  let n = get_u32 s pos in
  if !pos + n > String.length s then perr "truncated string field";
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, table-driven)                                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Socket IO                                                           *)
(* ------------------------------------------------------------------ *)

exception Crc_mismatch
exception Nacked of string

let version = 2
let max_frame_bytes = 64 * 1024 * 1024

let send_all fd s =
  (* unsafe_of_string is sound here: write only reads the buffer, and
     frames run to hundreds of kilobytes — a defensive copy per send is
     measurable GC pressure on the per-request path. *)
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then begin
      let n = Unix.write fd b off (Bytes.length b - off) in
      if n <= 0 then perr "short write";
      go (off + n)
    end
  in
  go 0

(* The whole frame as one string — used by the chaos layer, which needs
   the wire bytes in hand to corrupt or truncate them. The normal send
   path avoids this copy. *)
let encode payload =
  let b = Buffer.create (String.length payload + 9) in
  add_u32 b (String.length payload + 5);
  add_u8 b version;
  Buffer.add_string b payload;
  add_u32 b (crc32 payload);
  Buffer.contents b

(* First payload byte of an encoded frame (the op), for layers that
   filter on it without re-parsing. *)
let payload_offset = 5

let send_frame fd payload =
  (* Header and trailer are small scratch; the payload goes out as its
     own write rather than one concatenated copy — UDS has no Nagle,
     and the reader length-prefixes its recvs anyway. *)
  let hdr = Buffer.create 5 in
  add_u32 hdr (String.length payload + 5);
  add_u8 hdr version;
  send_all fd (Buffer.contents hdr);
  send_all fd payload;
  let tr = Buffer.create 4 in
  add_u32 tr (crc32 payload);
  send_all fd (Buffer.contents tr)

(* Blocking exact read. EAGAIN/EWOULDBLOCK from the socket receive
   timeout raises by default — on the front side that timeout IS the
   call deadline, and a wedged-but-alive backend must surface as a
   failure (mark unhealthy, fail over), not block a worker domain
   forever. [retry_again] opts back into retrying: the backend uses it
   to poll its drain flag between frames. *)
let recv_exact ?(retry_again = fun () -> false) fd n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.unsafe_to_string b
    else
      match Unix.recv fd b off (n - off) [] with
      | 0 -> raise End_of_file
      | r -> go (off + r)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when retry_again () ->
        go off
  in
  go 0

let recv_frame ?retry_again fd =
  let len = get_u32 (recv_exact ?retry_again fd 4) (ref 0) in
  if len > max_frame_bytes then perr "frame of %d bytes exceeds the limit" len;
  if len < 5 then perr "frame of %d bytes too short for version and crc" len;
  let rest = recv_exact ?retry_again fd len in
  let ver = Char.code rest.[0] in
  if ver <> version then perr "unsupported frame version %d" ver;
  let payload = String.sub rest 1 (len - 5) in
  let crc = get_u32 rest (ref (len - 4)) in
  if crc <> crc32 payload then raise Crc_mismatch;
  payload

(* ------------------------------------------------------------------ *)
(* Structured nack                                                     *)
(* ------------------------------------------------------------------ *)

(* 'N' + length-prefixed reason. A receiver that detects a bad trailer
   answers this instead of closing: the stream is still framed, the
   sender learns its frame was damaged in flight, and the connection
   survives for the next (hopefully undamaged) exchange — though a
   prudent sender retires it anyway. *)
let nack reason =
  let b = Buffer.create (String.length reason + 8) in
  Buffer.add_char b 'N';
  add_lp b reason;
  Buffer.contents b

let nack_reason payload =
  if String.length payload > 0 && payload.[0] = 'N' then
    let pos = ref 1 in
    match get_lp payload pos with
    | reason -> Some reason
    | exception Protocol_error _ -> Some ""
  else None
