(** Per-shard circuit breaker: Closed / Open / Half-open.

    Trips on consecutive failures or on the timeout fraction over a
    recent-outcome window; after a cooldown admits exactly one
    half-open probe, and only a proven success closes the circuit (a
    probe failure re-opens it and the cooldown restarts). Clock-
    explicit and thread-safe; unit-testable without sleeping. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
      (** consecutive failures that trip Closed → Open *)
  timeout_rate_threshold : float;
      (** timeout fraction over a full window that trips Closed → Open *)
  window : int;  (** recent outcomes considered for the timeout rate *)
  cooldown_s : float;  (** Open dwell before a probe is admitted *)
}

val default_config : config
(** 5 consecutive failures, 50% timeouts over 20 outcomes, 1 s cooldown. *)

type t

val create : ?config:config -> unit -> t
val state : t -> state

val state_code : t -> int
(** 0 = Closed, 1 = Open, 2 = Half-open — the Prometheus gauge value. *)

val state_name : state -> string

val trips : t -> int
(** Times the circuit opened (from Closed or a failed probe). *)

val blocked : t -> now:float -> bool
(** Routing must skip the shard: Open inside its cooldown, or the
    half-open probe slot is already taken. Read-only. *)

val try_probe : t -> now:float -> bool
(** Claim the right to send one request. [true] always when Closed;
    when Open past its cooldown, converts to Half-open and hands the
    caller the single probe slot; [false] while another probe is in
    flight or the cooldown still runs. *)

val record_success : t -> unit
(** A request (or the half-open probe) completed: reset the
    consecutive-failure count; close the circuit if it was Open or
    Half-open, clearing the outcome window. *)

val record_failure : t -> ?timeout:bool -> now:float -> unit -> unit
(** A request failed ([timeout] marks deadline-style failures for the
    rate threshold). Trips the circuit when a threshold is crossed;
    a Half-open probe failure re-opens immediately. *)

val force_open : t -> now:float -> unit
(** Open without counting failures — for a supervisor that knows the
    backend is dead (reaped its corpse). *)
