(** Deterministic fault injection for the shard transport.

    A seeded, schedule-driven chaos plane in the spirit of the service
    layer's [Fault] injector: every verdict is a pure function of
    (seed, fault kind, shard id, per-shard frame sequence number), so
    one seed replays one byte-identical fault schedule, run after run.
    The shard [call] path consults {!decide} per data-plane frame and
    enacts the verdict on the real socket — control frames and health
    probes are exempt. *)

type action =
  | Pass
  | Delay of float  (** seconds added before the frame is sent *)
  | Drop  (** the frame never leaves; the sender waits out its timeout *)
  | Truncate  (** half the frame is sent, then the connection dies *)
  | Corrupt  (** one payload byte flipped; the CRC trailer left stale *)
  | Duplicate  (** the frame is delivered twice *)
  | Stall of float  (** seconds the frame hangs before arriving *)

type config = {
  seed : int;
  delay_rate : float;
  delay_s : float;
  drop_rate : float;
  truncate_rate : float;
  corrupt_rate : float;
  duplicate_rate : float;
  stall_rate : float;
  stall_s : float;
}

val none : config
(** All rates zero: {!decide} always answers [Pass]. *)

val of_seed : int -> config
(** The standard mixed schedule behind [--chaos SEED]: 10% small
    delays, 2% drops, 2% truncations, 5% corruption, 3% duplicates,
    4% stalls of up to 500 ms. *)

val enabled : config -> bool

val decide : config -> shard:int -> seq:int -> action
(** The verdict for frame [seq] to [shard] — pure and reproducible. *)

val corrupt_offset : config -> shard:int -> seq:int -> len:int -> int
(** Which payload byte a [Corrupt] verdict flips. *)

val schedule : config -> shard:int -> int -> action list
(** The fault plan for one shard's first [n] frames: the
    reproducibility contract made inspectable. *)

val uniform : seed:int -> tag:string -> shard:int -> seq:int -> float
(** The underlying deterministic draw in [0, 1). *)

val action_name : action -> string
