(** One-stop public API for the Lopsided Little Languages reproduction.

    {1 What this library is}

    A from-scratch OCaml reproduction of the systems in Bard Bloom's
    "Lopsided Little Languages: Experience with XQuery in a Document
    Generation Subsystem" (SIGMOD Record, 2005):

    - {!Xml}: an XML substrate with node identity, document order, and
      in-place mutation (the host-engine side needs it).
    - {!Xq}: an XQuery-subset engine with the exact semantics the paper
      reports on — flat sequences, attribute folding, existential [=],
      and an optimizer whose dead-code elimination can silently delete
      [trace()] calls ({!Xq.Context.galax_compat}).
    - {!Awb}: the Architect's Workbench substrate — metamodel, annotated
      multigraph model, advisory validation, XML export.
    - {!Query}: the AWB query calculus with two implementations (native
      and compiled-to-XQuery) that must agree.
    - {!Docgen}: the document generator three ways — the functional
      XQuery-style engine, the host-style rewrite, and a genuine XQuery
      core run by {!Xq} — all behind one dispatcher,
      [Docgen.generate ~engine:(`Host | `Functional | `Xq)].
    - {!Service}: the production layer — compiled-artifact LRU caches,
      multi-domain batch generation with work stealing, deadlines, and
      counters.
    - {!Xq_utils}: the project's XQuery utility library (string sets,
      trimming, binary search, trigonometry) in actual XQuery.

    {1 Quickstart}

    {[
      let model = Lopsided.Awb.Samples.banking_model () in
      let template =
        Lopsided.Xml.Parser.parse_string
          "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"
      in
      let result = Lopsided.Docgen.generate ~engine:`Host model ~template in
      print_endline (Lopsided.Xml.Serialize.to_string result.Lopsided.Docgen.Spec.document)
    ]} *)

module Xml = Xml_base
module Xq = Xquery
module Awb = Awb
module Query = Awb_query
module Docgen = Docgen
module Service = Service
module Xq_utils = Xqlib.Xq_utils
module Xslt = Xslt
module Paper_tables = Paper_tables

(** Re-exported engine dispatch, so [Lopsided.generate ~engine:...] works
    without reaching into {!Docgen}. *)
let generate = Docgen.generate

let engine_of_string = Docgen.engine_of_string
let engine_name = Docgen.engine_name
let all_engines = Docgen.all_engines

(** Run an XQuery query over an XML string and return the printed result
    — the two-line hello world. *)
let xquery_string ~xml ~query =
  let doc = Xml_base.Parser.parse_string xml in
  Xquery.Value.to_display_string
    (Xquery.Engine.eval_query ~context_item:(Xquery.Value.Node doc) query)

(** What a successful {!generate_document} returns. *)
type generated = { document : string; problems : string list }

(** Generate a document from template + model XML strings; the engine is
    selectable and every failure (template parse, model import,
    generation) comes back as [Error message] instead of an exception or
    a [<generation-failed>] document to fish out. One-off convenience —
    services should hold a {!Service.t} and reuse its caches. *)
let generate_document ?(engine = `Host) ~metamodel ~model_xml ~template_xml () :
    (generated, string) result =
  let svc = Service.create ~config:{ Service.default_config with cache_capacity = 0 } () in
  let req =
    Service.request ~engine ~id:"generate_document"
      ~template:(Service.Template_xml template_xml)
      ~model:(Service.Model_xml { metamodel; xml = model_xml })
      ()
  in
  match (Service.run svc req).Service.result with
  | Ok out -> Ok { document = out.Service.document; problems = out.Service.problems }
  | Error e -> Error (Service.error_to_string e)
