type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

type t = {
  id : int;
  mutable parent : t option;
  mutable ord : int;
      (* cached pre-order position within the tree; valid only while the
         tree root's [ord_valid] is set *)
  ord_valid : bool Atomic.t;
      (* meaningful on roots only: the numbering below is current. Atomic
         because trees are shared read-only across OCaml 5 domains (the
         service layer's artifact caches) while the numbering itself is
         computed lazily: the store of [true] after the [ord] writes in
         [renumber] is the release that publishes them, and the load in
         [doc_order_key]/[compare_document_order] is the matching
         acquire. Concurrent renumbers of the same unmutated tree write
         identical values, so racing readers still observe correct
         positions. *)
  body : body;
}

and body =
  | Bdoc of { mutable dkids : t list }
  | Belem of { ename : string; mutable eattrs : t list; mutable ekids : t list }
  | Battr of { aname : string; mutable avalue : string }
  | Btext of { mutable tvalue : string }
  | Bcomment of string
  | Bpi of { target : string; content : string }

(* Atomic: nodes are allocated concurrently once the service layer fans
   generation across domains, and ids must stay unique within any tree a
   single domain builds ([same] is id equality). *)
let counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add counter 1 + 1

let mk body =
  { id = fresh_id (); parent = None; ord = 0; ord_valid = Atomic.make false; body }

let rec root n = match n.parent with None -> n | Some p -> root p

(* Any structural change makes the tree's cached pre-order numbering
   stale. The flag lives on the root; climbing there is O(depth) with no
   allocation, negligible next to the mutation itself. *)
let invalidate_order n = Atomic.set (root n).ord_valid false

let adopt parent child =
  match child.parent with
  | Some _ ->
    invalid_arg "Xml_base.Node: node already has a parent (detach or copy it first)"
  | None ->
    child.parent <- Some parent;
    (* The child may carry a stale root flag from a life as its own tree. *)
    Atomic.set child.ord_valid false;
    invalidate_order parent

let document kids =
  let d = mk (Bdoc { dkids = kids }) in
  List.iter (adopt d) kids;
  d

let element ?(attrs = []) ?(children = []) ename =
  let e = mk (Belem { ename; eattrs = attrs; ekids = children }) in
  List.iter (adopt e) attrs;
  List.iter (adopt e) children;
  e

let attribute aname avalue = mk (Battr { aname; avalue })
let text tvalue = mk (Btext { tvalue })
let comment c = mk (Bcomment c)
let pi ~target content = mk (Bpi { target; content })

let id n = n.id

let kind n =
  match n.body with
  | Bdoc _ -> Document
  | Belem _ -> Element
  | Battr _ -> Attribute
  | Btext _ -> Text
  | Bcomment _ -> Comment
  | Bpi _ -> Processing_instruction

let is_element n = match n.body with Belem _ -> true | _ -> false
let is_attribute n = match n.body with Battr _ -> true | _ -> false
let is_text n = match n.body with Btext _ -> true | _ -> false
let same a b = a.id = b.id

let name n =
  match n.body with
  | Belem e -> e.ename
  | Battr a -> a.aname
  | Bdoc _ | Btext _ | Bcomment _ | Bpi _ ->
    invalid_arg "Xml_base.Node.name: not an element or attribute"

let pi_target n =
  match n.body with
  | Bpi p -> p.target
  | _ -> invalid_arg "Xml_base.Node.pi_target: not a processing instruction"

let parent n = n.parent

let children n =
  match n.body with
  | Bdoc d -> d.dkids
  | Belem e -> e.ekids
  | Battr _ | Btext _ | Bcomment _ | Bpi _ -> []

let attributes n = match n.body with Belem e -> e.eattrs | _ -> []

let attr n aname =
  let matches a = match a.body with Battr r -> r.aname = aname | _ -> false in
  match List.find_opt matches (attributes n) with
  | Some { body = Battr r; _ } -> Some r.avalue
  | _ -> None

let string_value n =
  match n.body with
  | Battr a -> a.avalue
  | Btext t -> t.tvalue
  | Bcomment c -> c
  | Bpi p -> p.content
  | Bdoc _ | Belem _ ->
    let buf = Buffer.create 64 in
    let rec go n =
      match n.body with
      | Btext t -> Buffer.add_string buf t.tvalue
      | Bdoc _ | Belem _ -> List.iter go (children n)
      | Battr _ | Bcomment _ | Bpi _ -> ()
    in
    go n;
    Buffer.contents buf

let descendants n =
  let rec go acc n = List.fold_left (fun acc k -> go (k :: acc) k) acc (children n) in
  List.rev (go [] n)

let descendant_or_self n = n :: descendants n

let ancestors n =
  let rec go acc n = match n.parent with None -> List.rev acc | Some p -> go (p :: acc) p in
  go [] n

(* Position of [n] among its parent's children (attributes handled
   separately); used for document-order comparison. *)
let sibling_split n =
  match n.parent with
  | None -> None
  | Some p ->
    let rec split before = function
      | [] -> None
      | k :: rest -> if same k n then Some (before, rest) else split (k :: before) rest
    in
    (match split [] (children p) with
    | Some (before, after) -> Some (p, List.rev before, after)
    | None -> None)

let following_siblings n =
  match sibling_split n with Some (_, _, after) -> after | None -> []

let preceding_siblings n =
  match sibling_split n with Some (_, before, _) -> List.rev before | None -> []

(* ------------------------------------------------------------------ *)
(* Document order                                                      *)
(* ------------------------------------------------------------------ *)

(* Fast path: a lazily computed pre-order numbering per tree. Each node
   caches its position ([ord]); the root's [ord_valid] says whether the
   numbering is current. Mutations flip the flag; the next comparison or
   key request renumbers the whole tree once, O(n), making every
   subsequent comparison O(1). Attributes are numbered right after their
   owner element and before its children — the order the path-based
   comparison below encodes.

   Concurrency: the final [Atomic.set] publishes the plain [ord] writes
   to any domain whose [Atomic.get] observes [true] (see the field
   comment on [ord_valid]). Mutating a tree concurrently with reads is a
   race as it always was — shared trees must stay read-only. *)
let renumber r =
  let next = ref 0 in
  let rec go n =
    n.ord <- !next;
    incr next;
    List.iter
      (fun a ->
        a.ord <- !next;
        incr next)
      (attributes n);
    List.iter go (children n)
  in
  go r;
  Atomic.set r.ord_valid true

let prepare_document_order n =
  let r = root n in
  if not (Atomic.get r.ord_valid) then renumber r

let doc_order_key n =
  let r = root n in
  if not (Atomic.get r.ord_valid) then renumber r;
  (r.id, n.ord)

let compare_document_order a b =
  if a.id = b.id then 0
  else
    let ra = root a and rb = root b in
    if not (same ra rb) then compare ra.id rb.id
    else begin
      if not (Atomic.get ra.ord_valid) then renumber ra;
      compare a.ord b.ord
    end

(* Reference path: compare root paths. Kept as the seed-semantics slow
   comparator for benchmarking and as the property-test oracle. The path
   records, at each tree level, the position of the step child;
   attributes of an element sort after the element itself and before its
   children, so an attribute's position is encoded as (0, attr index)
   against children at (1, child index). *)
let path_to_root n =
  let index_in lst x =
    let rec go i = function
      | [] -> None
      | k :: rest -> if same k x then Some i else go (i + 1) rest
    in
    go 0 lst
  in
  let rec go acc n =
    match n.parent with
    | None -> (n, acc)
    | Some p ->
      let step =
        match index_in (children p) n with
        | Some i -> (1, i)
        | None -> (
          match index_in (attributes p) n with
          | Some i -> (0, i)
          | None -> invalid_arg "Xml_base.Node: inconsistent parent link")
      in
      go (step :: acc) p
  in
  go [] n

let compare_document_order_via_paths a b =
  if same a b then 0
  else
    let ra, pa = path_to_root a in
    let rb, pb = path_to_root b in
    if not (same ra rb) then compare ra.id rb.id
    else
      let rec cmp pa pb =
        match (pa, pb) with
        | [], [] -> 0
        | [], _ -> -1 (* ancestor precedes descendant *)
        | _, [] -> 1
        | sa :: ra, sb :: rb ->
          let c = compare (sa : int * int) sb in
          if c <> 0 then c else cmp ra rb
      in
      cmp pa pb

(* Detach for replacement: the node becomes a root of its own tree, so
   its stale root flag must be cleared alongside the parent link. *)
let unlink k =
  k.parent <- None;
  Atomic.set k.ord_valid false

let set_children n kids =
  invalidate_order n;
  match n.body with
  | Bdoc d ->
    List.iter unlink d.dkids;
    List.iter (adopt n) kids;
    d.dkids <- kids
  | Belem e ->
    List.iter unlink e.ekids;
    List.iter (adopt n) kids;
    e.ekids <- kids
  | Battr _ | Btext _ | Bcomment _ | Bpi _ ->
    invalid_arg "Xml_base.Node.set_children: leaf node"

let append_child n k =
  match n.body with
  | Bdoc d ->
    adopt n k;
    d.dkids <- d.dkids @ [ k ]
  | Belem e ->
    adopt n k;
    e.ekids <- e.ekids @ [ k ]
  | Battr _ | Btext _ | Bcomment _ | Bpi _ ->
    invalid_arg "Xml_base.Node.append_child: leaf node"

let splice_at i replacement kids =
  List.concat (List.mapi (fun j k -> if j = i then replacement k else [ k ]) kids)

let insert_child n i k =
  let kids = children n in
  if i < 0 || i > List.length kids then invalid_arg "Xml_base.Node.insert_child: index";
  let rec go j = function
    | rest when j = i -> k :: rest
    | [] -> [ k ]
    | x :: rest -> x :: go (j + 1) rest
  in
  set_children n (go 0 kids)

let replace_child n ~old replacement =
  let kids = children n in
  let rec idx i = function
    | [] -> invalid_arg "Xml_base.Node.replace_child: not a child"
    | k :: rest -> if same k old then i else idx (i + 1) rest
  in
  let i = idx 0 kids in
  set_children n (splice_at i (fun _ -> replacement) kids)

let remove_child n k = replace_child n ~old:k []

let detach n =
  match n.parent with
  | None -> ()
  | Some p -> (
    match n.body with
    | Battr _ -> (
      match p.body with
      | Belem e ->
        invalidate_order p;
        e.eattrs <- List.filter (fun a -> not (same a n)) e.eattrs;
        unlink n
      | _ -> invalid_arg "Xml_base.Node.detach: attribute of a non-element")
    | _ -> remove_child p n)

let set_attribute n aname avalue =
  match n.body with
  | Belem e -> (
    let existing =
      List.find_opt (fun a -> match a.body with Battr r -> r.aname = aname | _ -> false) e.eattrs
    in
    match existing with
    | Some { body = Battr r; _ } -> r.avalue <- avalue
    | _ ->
      let a = attribute aname avalue in
      adopt n a;
      e.eattrs <- e.eattrs @ [ a ])
  | _ -> invalid_arg "Xml_base.Node.set_attribute: not an element"

let remove_attribute n aname =
  match n.body with
  | Belem e ->
    invalidate_order n;
    e.eattrs <-
      List.filter
        (fun a ->
          match a.body with
          | Battr r when r.aname = aname ->
            unlink a;
            false
          | _ -> true)
        e.eattrs
  | _ -> invalid_arg "Xml_base.Node.remove_attribute: not an element"

let set_text n v =
  match n.body with
  | Btext t -> t.tvalue <- v
  | Battr a -> a.avalue <- v
  | _ -> invalid_arg "Xml_base.Node.set_text: not a text or attribute node"

let rec copy n =
  match n.body with
  | Bdoc d -> document (List.map copy d.dkids)
  | Belem e -> element ~attrs:(List.map copy e.eattrs) ~children:(List.map copy e.ekids) e.ename
  | Battr a -> attribute a.aname a.avalue
  | Btext t -> text t.tvalue
  | Bcomment c -> comment c
  | Bpi p -> pi ~target:p.target p.content

let rec iter f n =
  f n;
  List.iter f (attributes n);
  List.iter (iter f) (children n)

let find_all pred n =
  let acc = ref [] in
  iter (fun x -> if pred x then acc := x :: !acc) n;
  List.rev !acc

let child_elements n = List.filter is_element (children n)

let child_element n ename =
  List.find_opt (fun k -> is_element k && name k = ename) (children n)

let child_elements_named n ename =
  List.filter (fun k -> is_element k && name k = ename) (children n)

let rec pp fmt n =
  match n.body with
  | Bdoc d -> Format.fprintf fmt "@[<v2>document:@,%a@]" (Format.pp_print_list pp) d.dkids
  | Belem e ->
    Format.fprintf fmt "@[<v2><%s%a>%a@]" e.ename
      (fun fmt -> List.iter (fun a -> Format.fprintf fmt " %a" pp a))
      e.eattrs
      (fun fmt -> List.iter (fun k -> Format.fprintf fmt "@,%a" pp k))
      e.ekids
  | Battr a -> Format.fprintf fmt "%s=%S" a.aname a.avalue
  | Btext t -> Format.fprintf fmt "%S" t.tvalue
  | Bcomment c -> Format.fprintf fmt "<!--%s-->" c
  | Bpi p -> Format.fprintf fmt "<?%s %s?>" p.target p.content
