(** XML tree nodes with identity, parent links, and document order.

    This is the node substrate shared by the XML parser, the XQuery data
    model, and the document generator. Nodes are identified by a unique
    integer id assigned at creation; parent links are maintained by the
    construction and mutation functions below. *)

type t

type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

(** {1 Construction}

    Constructors attach the given children/attributes and set their parent
    pointers. A node can have at most one parent; attaching a node that
    already has a parent raises [Invalid_argument] (detach or copy first). *)

val document : t list -> t
val element : ?attrs:t list -> ?children:t list -> string -> t
val attribute : string -> string -> t
val text : string -> t
val comment : string -> t
val pi : target:string -> string -> t

(** {1 Identity and classification} *)

val id : t -> int
(** Unique creation-order id. Equality of ids is node identity. *)

val kind : t -> kind
val is_element : t -> bool
val is_attribute : t -> bool
val is_text : t -> bool
val same : t -> t -> bool
(** Node identity. *)

val compare_document_order : t -> t -> int
(** Total order: within one tree, document order (attributes come after
    their owner element and before its children, in attribute list order);
    across trees, ordered by the roots' creation ids. Amortized O(1): the
    comparison reads a cached pre-order key, renumbering the tree lazily
    after structural mutations. *)

val doc_order_key : t -> int * int
(** [(root id, pre-order position)] — sorting node lists by this key is
    exactly document order, and key equality is node identity. The key is
    computed lazily per tree and invalidated by structural mutation, so it
    is only stable until the next mutation of the node's tree. *)

val prepare_document_order : t -> unit
(** Eagerly compute the cached document-order numbering for [t]'s whole
    tree (a no-op when already current). Call before publishing a tree
    that multiple domains will query read-only: readers then find the
    numbering warm instead of each lazily rebuilding it. Lazy rebuilds
    are still safe — the valid flag is an atomic whose store publishes
    the numbering — but eager preparation avoids the duplicated work. *)

val compare_document_order_via_paths : t -> t -> int
(** The reference comparator: walks root paths on every call (O(depth ×
    fan-out) per comparison, no caching). Same total order as
    {!compare_document_order}; kept for benchmarking and as the
    property-test oracle for the cached keys. *)

(** {1 Accessors} *)

val name : t -> string
(** Element tag name or attribute name. @raise Invalid_argument otherwise *)

val pi_target : t -> string
(** @raise Invalid_argument on non-PI nodes *)

val parent : t -> t option
val root : t -> t
val children : t -> t list
(** Child nodes of a document or element; [[]] for other kinds.
    Attributes are not children. *)

val attributes : t -> t list
(** Attribute nodes of an element; [[]] for other kinds. *)

val attr : t -> string -> string option
(** [attr e name] is the value of [e]'s attribute [name], if present. *)

val string_value : t -> string
(** XPath string value: concatenated descendant text for documents and
    elements; the value for attributes and text; content for comments and
    PIs. *)

val descendants : t -> t list
(** Descendants in document order, not including [t] itself and not
    including attribute nodes. *)

val descendant_or_self : t -> t list
val ancestors : t -> t list
(** Nearest first. *)

val following_siblings : t -> t list
val preceding_siblings : t -> t list
(** Nearest first (reverse document order), as XPath's preceding-sibling
    axis delivers them. *)

(** {1 Mutation}

    Used by the host-style document generator for in-place patching. *)

val set_children : t -> t list -> unit
(** Replace all children. Old children are detached; new ones must be
    parentless. @raise Invalid_argument on leaf kinds. *)

val append_child : t -> t -> unit
val insert_child : t -> int -> t -> unit
(** [insert_child p i c] inserts [c] before position [i] of [p]'s
    children. *)

val replace_child : t -> old:t -> t list -> unit
(** Replace one child with a (possibly empty) list of nodes. *)

val remove_child : t -> t -> unit
val detach : t -> unit
(** Remove [t] from its parent, if any. *)

val set_attribute : t -> string -> string -> unit
(** Add or overwrite an attribute on an element. *)

val remove_attribute : t -> string -> unit
val set_text : t -> string -> unit
(** @raise Invalid_argument if the node is not a text or attribute node. *)

val copy : t -> t
(** Deep copy with fresh ids and no parent. *)

(** {1 Traversal helpers} *)

val iter : (t -> unit) -> t -> unit
(** Pre-order over self + descendants (attributes visited after their
    element, before its children). *)

val find_all : (t -> bool) -> t -> t list
(** Matching descendants-or-self in document order (attributes included). *)

val child_elements : t -> t list
val child_element : t -> string -> t option
(** First child element with the given name. *)

val child_elements_named : t -> string -> t list

val pp : Format.formatter -> t -> unit
(** Debug printer (structure, not serialization). *)
