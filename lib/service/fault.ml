(* Deterministic fault injection for the service layer.

   Production fault tolerance is untestable if the faults themselves are
   flaky, so every injection decision here is a pure function of
   (seed, fault kind, request key, attempt number): the same seeded
   config replays the same faults in the same places, run after run,
   regardless of domain scheduling. The decision hash is Digest (MD5) —
   not for security, just for a cheap, stable, well-mixed 128 bits.

   Injection does not fake outcomes; it tightens real budgets. A
   "deadline overrun" forces the request's monotonic deadline into the
   past so the evaluator's own amortized check trips it; a "fuel
   exhaustion" collapses the step budget to a sliver. The code paths
   exercised are exactly the production ones. Only the two failure modes
   with no budget to tighten — transient generation failures and
   fast-path internal faults — are raised directly, as the exceptions
   below. *)

type kind = Deadline | Fuel | Transient | Fast_path | Crash

let kind_name = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Transient -> "transient"
  | Fast_path -> "fast-path"
  | Crash -> "crash"

type config = {
  seed : int;
  deadline_rate : float;
  fuel_rate : float;
  transient_rate : float;
  transient_attempts : int;
  fast_fault_rate : float;
  crash_rate : float;
  mutable load_signal : float option;
      (* overrides the brownout controller's composite load signal; the
         one mutable field, so tests can step a live server through mode
         transitions deterministically *)
}

let none =
  {
    seed = 0;
    deadline_rate = 0.;
    fuel_rate = 0.;
    transient_rate = 0.;
    transient_attempts = 2;
    fast_fault_rate = 0.;
    crash_rate = 0.;
    load_signal = None;
  }

exception Transient of string
exception Fast_path_fault of string
exception Crashed of string

let rate config = function
  | Deadline -> config.deadline_rate
  | Fuel -> config.fuel_rate
  | Transient -> config.transient_rate
  | Fast_path -> config.fast_fault_rate
  | Crash -> config.crash_rate

(* 28 bits of a digest as a uniform draw in [0, 1). *)
let uniform ~seed ~tag ~key ~attempt =
  let h =
    Digest.to_hex (Digest.string (Printf.sprintf "%d|%s|%s|%d" seed tag key attempt))
  in
  float_of_int (int_of_string ("0x" ^ String.sub h 0 7)) /. float_of_int 0x10000000

let draw config kind ~key ~attempt =
  uniform ~seed:config.seed ~tag:(kind_name kind) ~key ~attempt

let fires config kind ~key ~attempt =
  let r = rate config kind in
  if r <= 0. then false else r >= 1. || draw config kind ~key ~attempt < r

let jitter ~seed ~key ~attempt = uniform ~seed ~tag:"jitter" ~key ~attempt
