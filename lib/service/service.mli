(** The request/response document-generation service.

    Wraps the unified docgen engine API ({!Docgen.generate}) in a
    production shape: size-bounded LRU caches for compiled artifacts
    (parsed templates, imported models, compiled XQuery programs) keyed
    by content hash and shared across domains behind one mutex; batch
    fan-out over OCaml 5 domains with work stealing ({!Pool}); per-request
    deadlines; and an error-isolating result type so one failing template
    cannot take down a batch. Counters expose cache behaviour and
    per-phase timings to the bench harness (experiment E8).

    Requests are resource-governed: the request deadline (and any
    configured fuel / recursion-depth / node budgets) is wired into the
    evaluator's own {!Xquery.Context.limits}, so a runaway query is
    preempted mid-walk on both evaluators, not just noticed between
    phases. Declared-transient failures retry with exponential backoff,
    fast-evaluator faults degrade to one seed-evaluator re-run, and a
    template that keeps failing is quarantined behind a content-hash
    circuit breaker for a cooldown. {!Fault} injects all four failure
    modes deterministically. *)

module Lru = Lru
(** The size-bounded LRU the caches are built on. *)

module Pool = Pool
(** The work-stealing domain pool batches run on. *)

module Fault = Fault
(** Deterministic fault injection (tests and chaos drills). *)

(** {1 Requests} *)

type template_source =
  | Template_xml of string
      (** parsed + whitespace-stripped once, cached by content hash *)
  | Template_node of Xml_base.Node.t  (** pre-parsed; bypasses the cache *)

type model_source =
  | Model_xml of { metamodel : Awb.Metamodel.t; xml : string }
      (** imported once per (metamodel, content) pair, cached *)
  | Model_value of Awb.Model.t  (** pre-built; bypasses the cache *)

type request = {
  id : string;  (** echoed back in the response *)
  template : template_source;
  model : model_source;
  engine : Docgen.engine;
  backend : Docgen.Spec.query_backend option;
  deadline : float option;  (** seconds from submission; overrides the config *)
  level : Docgen.Spec.level;
      (** degradation level handed to the engine; [Skeleton] skips the
          enrichment phases (brownout mode) *)
}

val request :
  ?engine:Docgen.engine ->
  ?backend:Docgen.Spec.query_backend ->
  ?deadline:float ->
  ?level:Docgen.Spec.level ->
  id:string ->
  template:template_source ->
  model:model_source ->
  unit ->
  request
(** Convenience constructor; [engine] defaults to [`Host], [level] to
    [Full]. *)

(** {1 Responses} *)

type error =
  | Template_error of string  (** template failed to parse *)
  | Model_error of string  (** model XML failed to parse or import *)
  | Generation_failed of { code : string; message : string; location : string }
      (** the engine reported a generation error; [code] is the
          structured error code (["err:XPTY0004"], ["transient"], ...)
          when one exists, [""] otherwise *)
  | Resource_exhausted of { resource : Xquery.Errors.resource; message : string }
      (** a fuel / depth / node / stack / memory budget tripped
          mid-generation (deadline trips surface as
          {!Deadline_exceeded}) *)
  | Deadline_exceeded of { elapsed_s : float; deadline_s : float }
  | Quarantined of { template : string; retry_after_s : float }
      (** the template's circuit breaker is open; [template] is its
          content hash *)
  | Internal_error of string  (** anything else; never kills the batch *)

val error_to_string : error -> string

type timings = {
  template_s : float;
  model_s : float;
  generate_s : float;
  serialize_s : float;
  total_s : float;
}

type output = {
  document : string;  (** the serialized document *)
  problems : string list;
  stats : Docgen.Spec.stats;
  engine_used : Docgen.engine;
  timings : timings;
}

type response = { request_id : string; result : (output, error) result }

(** {1 The service} *)

type config = {
  domains : int;  (** default width of {!run_batch}; 1 = serial *)
  mode : Xquery.Engine.Exec_opts.mode;
      (** execution mode for XQuery-backed work: [Fast] (default) or
          [Plan] for the compile-to-plan executor; [Seed] pins the
          reference algorithms. With [Plan] and [domains > 1], large
          plan loop fragments fan out across the domain pool. A
          fast-path fault still degrades the failing request to one
          [Seed] re-run, whatever the configured mode. *)
  cache_capacity : int;  (** entries per artifact cache; 0 disables caching *)
  default_deadline : float option;  (** seconds; a per-request deadline wins *)
  fuel : int option;  (** evaluator step budget per generation attempt *)
  max_depth : int option;  (** user-function recursion depth budget *)
  max_nodes : int option;  (** constructed-node budget per attempt *)
  retries : int;  (** extra attempts for declared-transient failures *)
  backoff_s : float;
      (** base of the exponential backoff between retries; one sleep is
          [min (backoff_s * 2^attempt) backoff_cap_s], scaled by a
          deterministic decorrelated jitter in [0.5, 1] so bursts of
          failures don't retry in lockstep *)
  backoff_cap_s : float;  (** ceiling of a single backoff sleep, seconds *)
  quarantine_after : int;
      (** consecutive generation failures that open a template's circuit
          breaker; 0 disables quarantine *)
  quarantine_cooldown_s : float;
      (** how long an open breaker rejects the template before the next
          request closes it again *)
  result_cache_cap : int;
      (** completed generations kept for stale-while-revalidate serving
          (see {!lookup_result}); 0 disables the result cache *)
  fault : Fault.config option;  (** deterministic fault injection; [None] in production *)
}

val default_config : config
(** Domains 1, cache capacity 128, no deadline, unlimited budgets,
    2 retries with 1 ms base backoff capped at 250 ms, quarantine
    disabled, result cache disabled, no fault injection. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val run : t -> request -> response
(** Serve one request on the calling domain. *)

val run_batch : ?domains:int -> t -> request list -> response list
(** Serve a batch, fanned across domains (default [config.domains]) with
    work stealing. Responses come back in request order, and outputs are
    byte-identical to a serial run of the same batch. Every failure is
    confined to its own response. *)

val compile_query : t -> string -> (Xquery.Engine.compiled, string) result
(** Compile an XQuery program through the artifact cache: repeated
    compilations of the same source are served from memory. *)

val run_query :
  t ->
  ?compat:Xquery.Context.compat ->
  ?typed_mode:bool ->
  ?optimize:bool ->
  ?context_item:Xquery.Value.item ->
  ?vars:(string * Xquery.Value.sequence) list ->
  ?mode:Xquery.Engine.Exec_opts.mode ->
  ?doc_resolver:(string -> Xml_base.Node.t option) ->
  string ->
  (Xquery.Value.sequence, error) result
(** Run a bare XQuery query with the service's full machinery: the
    compiled-query cache (keyed by source hash {e and} the compile
    flags), the configured resource budgets and deadline wired into the
    evaluator, in-flight registration (so {!preempt_inflight} reaches
    it), per-query-hash quarantine, and one seed-evaluator re-run on an
    internal fault. [mode] overrides the configured execution mode for
    this call; [Plan] runs count against the [plan_*] counters.
    [doc_resolver] answers [doc()]/[fn:doc] calls (the server wires the
    persistent collection store in here). This is the shell's ([xqsh])
    path into the engine. *)

(** {1 XSLT stylesheets} *)

val compile_stylesheet : t -> string -> (Xslt.stylesheet, error) result
(** Compile a stylesheet through its own content-hash-keyed artifact
    cache. Parse and compilation failures come back as
    [Template_error]. *)

val apply_stylesheet :
  t -> stylesheet_xml:string -> Xml_base.Node.t -> (Xml_base.Node.t list, error) result
(** Compile (through the cache) and apply a stylesheet to a source tree.
    Quarantine applies per stylesheet content hash; the configured
    default deadline is enforced coarsely (checked after the transform —
    the XSLT engine has no mid-walk budget hook). This is [xsltproc]'s
    path into the transform engine. *)

(** {1 Drain hook}

    Every generation attempt registers its {!Xquery.Context.limits}
    record while it runs. A draining front end (the HTTP server on
    SIGTERM) uses {!preempt_inflight} to tighten all of their deadlines
    at once: each running evaluation then trips [resource:deadline] at
    its next amortized check and surfaces a structured
    {!error.Deadline_exceeded}, instead of being killed mid-mutation. *)

val preempt_inflight : t -> deadline_ns:int -> int
(** Tighten every in-flight evaluation's deadline to at most
    [deadline_ns] (absolute, {!Clock.now_ns} scale). Returns how many
    evaluations were tightened; already-tighter deadlines are left
    alone. The deadline is {e sticky}: attempts that register after this
    call — including ones already dequeued by a server worker when the
    drain began — are tightened at registration, so no evaluation can
    slip past a drain with an unbounded deadline. Repeated calls keep
    the tightest deadline given so far. *)

val inflight_count : t -> int
(** Generation attempts currently running (gauge). *)

val quarantine_remaining : t -> template_xml:string -> float option
(** [Some seconds] while [template_xml]'s circuit breaker is open — the
    remaining cooldown — or [None] when the template may run. A [Some]
    answer counts as a quarantine rejection, like the in-request check:
    the HTTP front end uses this to answer [429] at admission time
    without spending a queue slot or a worker on a known-bad template.
    Does not close an expired breaker (the next real request does). *)

(** {1 Stale-while-revalidate result cache}

    When [config.result_cache_cap > 0], every completed Full-level
    generation of an XML-sourced (template, model, engine, backend)
    combination is cached by content hash. A degraded front end can then
    answer a repeat request instantly from the cache — stale, but a real
    document — while a background refresh regenerates it. Skeleton
    results and pre-parsed [Template_node] requests are never cached. *)

val lookup_result : t -> request -> (output * float) option
(** The cached output for this request's (template, model, engine,
    backend) key, with its age in seconds — or [None] on a miss (or when
    the cache is disabled). Counts a result-cache hit or miss. *)

val claim_refresh : t -> request -> bool
(** First-claim-wins dedup for background refreshes: [true] means the
    caller should enqueue a low-priority regeneration for this request;
    [false] means a refresh was already claimed recently (or nothing is
    cached under the key). A successful regeneration through {!run}
    replaces the entry and resets the claim; claims also lapse on their
    own after a cooldown so a dead refresher cannot wedge the entry. *)

(** {1 Introspection} *)

type counters = {
  requests : int;
  succeeded : int;
  failed : int;
  deadline_failures : int;
  resource_failures : int;  (** non-deadline budget trips *)
  retries : int;  (** transient-failure retries performed *)
  fast_fallbacks : int;  (** fast-evaluator faults degraded to the seed evaluator *)
  quarantine_trips : int;  (** circuit breakers opened *)
  quarantine_rejections : int;  (** requests refused while a breaker was open *)
  quarantine_releases : int;  (** breakers closed again after cooldown *)
  batches : int;
  steals : int;  (** work-stealing steals across all batches *)
  template_hits : int;
  template_misses : int;
  model_hits : int;
  model_misses : int;
  query_hits : int;
  query_misses : int;
  stylesheet_hits : int;  (** compiled-stylesheet cache hits *)
  stylesheet_misses : int;
  result_hits : int;  (** stale-while-revalidate result cache hits *)
  result_misses : int;
  result_stores : int;  (** completed generations stored in the result cache *)
  plan_compiles : int;  (** physical plans lowered (plan-cache misses) *)
  plan_hits : int;  (** Plan-mode runs served by an already-lowered plan *)
  plan_execs : int;  (** plan-executor runs started *)
  plan_parallel_fragments : int;
      (** plan loop fragments fanned out across the domain pool *)
  evictions : int;  (** summed over the five caches *)
  opt_lets_eliminated : int;
      (** optimizer pass hits, accumulated when a query-cache miss
          compiles a program (cache hits re-use the optimized program and
          add nothing) *)
  opt_constants_folded : int;
  opt_count_rewrites : int;  (** [count(e) > 0] → exists/empty rewrites *)
  opt_paths_hoisted : int;  (** loop-invariant paths lifted out of FLWORs *)
  template_s : float;  (** accumulated per-phase wall time, seconds *)
  model_s : float;
  generate_s : float;
  serialize_s : float;
}

val counters : t -> counters
val reset_counters : t -> unit
val clear_caches : t -> unit

val reload : t -> unit
(** Zero-downtime reload: {!clear_caches} plus closing every quarantine
    circuit breaker, so the next request recompiles templates from their
    current sources with a clean failure history. The HTTP front end
    wires this to [SIGHUP] in single-process mode. *)

val pp_counters : Format.formatter -> counters -> unit

val counters_to_prometheus : ?labels:(string * string) list -> counters -> string
(** Prometheus text exposition (format 0.0.4) of every counter: a
    [# HELP] line, a [# TYPE] line, and one sample per metric, named
    [lopsided_service_*]. [labels] (e.g. [("shard", "2")] on a sharded
    backend) are appended to every sample line but not to HELP/TYPE, so
    several shards' expositions concatenate cleanly after metadata
    dedup. Every emitted name passes through {!sanitize_metric_name}.
    Served by the HTTP server's [/metrics] (which appends its own
    [lopsided_server_*] family) and printed by [awbserve --metrics]. *)

val sanitize_metric_name : string -> string
(** Map every character outside [[a-zA-Z0-9_:]] to ['_'] — one hostile
    metric name must degrade to underscores, not corrupt the whole
    exposition for every scraper. *)
