(* A size-bounded LRU keyed by string, with hit/miss/eviction counters.
   Hashtbl + intrusive doubly-linked recency list: O(1) find, add, and
   eviction. Not itself thread-safe — the service guards every cache
   behind one mutex, which also supplies the happens-before edge that
   publishes cached trees to other domains. *)

type 'a entry = {
  key : string;
  value : 'a;
  mutable prev : 'a entry option; (* towards most-recently-used *)
  mutable next : 'a entry option; (* towards least-recently-used *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable mru : 'a entry option;
  mutable lru : 'a entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    tbl = Hashtbl.create (max 16 capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some old -> old.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e ->
    t.hits <- t.hits + 1;
    unlink t e;
    push_front t e;
    Some e.value

(* Membership without touching recency or counters (tests use it). *)
let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.tbl e.key;
    t.evictions <- t.evictions + 1

let add t key value =
  if t.capacity = 0 then ()
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old ->
      unlink t old;
      Hashtbl.remove t.tbl key
    | None -> ());
    let e = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key e;
    push_front t e;
    while Hashtbl.length t.tbl > t.capacity do
      evict_lru t
    done
  end

let clear t =
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
