(** Size-bounded LRU cache keyed by string, with hit/miss/eviction
    counters. O(1) operations; NOT thread-safe on its own — callers
    (the service) serialize access behind a mutex. A capacity of 0 makes
    {!add} a no-op, turning the cache off. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument on a negative capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used and counts a hit or a miss. *)

val mem : 'a t -> string -> bool
(** Membership probe; touches neither recency nor the counters. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace; evicts least-recently-used entries past capacity. *)

val clear : 'a t -> unit
(** Drop all entries (counters survive; see {!reset_counters}). *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
val reset_counters : 'a t -> unit
