(** Batch execution across OCaml 5 domains with a work-stealing queue.

    [run ~domains tasks] evaluates every thunk, fanning them over at most
    [domains] domains (the calling domain is one of the workers). Each
    worker pops from its own deque and steals from the back of a victim's
    when dry. Order of results matches the order of [tasks]; a raising
    task yields [Error exn] in its slot without disturbing the rest of
    the batch. [domains <= 1] (or a single task) runs everything in the
    calling domain. *)

type stats = {
  mutable executed : int array;  (** tasks completed per worker *)
  mutable steals : int;  (** successful steals across the batch *)
}

val run : ?domains:int -> (unit -> 'a) array -> ('a, exn) result array * stats

val run_exn : ?domains:int -> (unit -> 'a) array -> 'a array * stats
(** Like {!run} but re-raises the first captured exception, in the
    calling domain. *)
