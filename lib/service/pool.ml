(* A batch-scoped pool of OCaml 5 domains with work stealing.

   Tasks are indices into an array of thunks. Each worker owns a deque:
   it pops from the front of its own, and steals from the BACK of a
   victim's when its own runs dry — classic work-stealing shape, here
   with a mutex per deque rather than a lock-free Chase-Lev deque; the
   units of work (whole document generations) are far too coarse for
   deque overhead to matter.

   Results land in one shared array, each slot written by exactly one
   worker before the join; Domain.join publishes them to the caller.
   A raising task does not kill its worker: the exception is captured
   in the slot and re-raised in the calling domain after the join, so
   the rest of the batch still completes. *)

type deque = { mutex : Mutex.t; mutable items : int list }

let pop_own dq =
  Mutex.lock dq.mutex;
  let r =
    match dq.items with
    | [] -> None
    | i :: rest ->
      dq.items <- rest;
      Some i
  in
  Mutex.unlock dq.mutex;
  r

let steal_back dq =
  Mutex.lock dq.mutex;
  let r =
    match List.rev dq.items with
    | [] -> None
    | last :: rev_rest ->
      dq.items <- List.rev rev_rest;
      Some last
  in
  Mutex.unlock dq.mutex;
  r

(* Counters the bench reads to see stealing actually happen. *)
type stats = { mutable executed : int array; mutable steals : int }

let run ?(domains = 1) (tasks : (unit -> 'a) array) : ('a, exn) result array * stats =
  let n = Array.length tasks in
  let nworkers = max 1 (min domains (max 1 n)) in
  let results : ('a, exn) result option array = Array.make n None in
  let stats = { executed = Array.make nworkers 0; steals = 0 } in
  let steal_count = Atomic.make 0 in
  if nworkers = 1 then begin
    (* Same code path shape as the parallel case, minus the domains: the
       serial-vs-parallel byte-identical oracle depends on nothing else
       differing. *)
    Array.iteri
      (fun i task ->
        results.(i) <- Some (try Ok (task ()) with e -> Error e);
        stats.executed.(0) <- stats.executed.(0) + 1)
      tasks
  end
  else begin
    let deques =
      Array.init nworkers (fun _ -> { mutex = Mutex.create (); items = [] })
    in
    (* Deal tasks round-robin so every worker starts with a share. *)
    for i = n - 1 downto 0 do
      let w = i mod nworkers in
      deques.(w).items <- i :: deques.(w).items
    done;
    let executed = Array.make nworkers 0 in
    let worker w () =
      let rec next_task victim =
        match pop_own deques.(w) with
        | Some i -> Some i
        | None ->
          (* Own deque dry: sweep the others once for something to steal;
             give up when a full sweep finds every deque empty. *)
          if victim >= nworkers then None
          else
            let v = (w + 1 + victim) mod nworkers in
            if v = w then next_task (victim + 1)
            else (
              match steal_back deques.(v) with
              | Some i ->
                Atomic.incr steal_count;
                Some i
              | None -> next_task (victim + 1))
      in
      let rec loop () =
        match next_task 0 with
        | None -> ()
        | Some i ->
          results.(i) <- Some (try Ok (tasks.(i) ()) with e -> Error e);
          executed.(w) <- executed.(w) + 1;
          loop ()
      in
      loop ()
    in
    let spawned = Array.init (nworkers - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    stats.executed <- executed;
    stats.steals <- Atomic.get steal_count
  end;
  let out =
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None -> Error (Failure (Printf.sprintf "Pool.run: task %d never ran" i)))
      results
  in
  (out, stats)

let run_exn ?domains tasks =
  let results, stats = run ?domains tasks in
  ( Array.map (function Ok v -> v | Error e -> raise e) results,
    stats )
