(** Deterministic fault injection for the service layer.

    Every injection decision is a pure function of (seed, kind, request
    key, attempt): a seeded config replays identically across runs and
    domain schedules. Budget faults (deadline, fuel) are injected by
    tightening the request's real limits so the evaluator's own checks
    trip them; only {!Transient} and {!Fast_path_fault} — which have no
    budget to tighten — are raised directly. *)

(** Which failure mode to simulate. *)
type kind =
  | Deadline  (** force the request's monotonic deadline into the past *)
  | Fuel  (** collapse the step budget to a sliver *)
  | Transient  (** a retryable generation failure (succeeds after
                   [transient_attempts] tries) *)
  | Fast_path  (** an internal fault in the fast evaluator; the service
                   degrades to the seed evaluator *)
  | Crash  (** kill the worker handling the request (HTTP server layer:
               the exception escapes the handler and takes the worker
               domain down; the supervisor restarts it) *)

type config = {
  seed : int;  (** replay seed; same seed, same faults *)
  deadline_rate : float;  (** per-request probability in [0, 1] *)
  fuel_rate : float;
  transient_rate : float;
  transient_attempts : int;
      (** attempts on which a selected transient keeps firing; the next
          attempt succeeds, so [retries >= transient_attempts] recovers *)
  fast_fault_rate : float;
  crash_rate : float;
  mutable load_signal : float option;
      (** when [Some x], the HTTP server's brownout controller uses [x]
          as its composite load signal instead of the measured one.
          Mutable so tests can step a {e live} server deterministically
          through [Normal -> Degraded -> Critical -> Normal] without
          generating real load or sleeping. *)
}

val none : config
(** All rates zero, [load_signal = None] — injection disabled.
    [seed = 0], [transient_attempts = 2]. *)

exception Transient of string
(** A declared-transient generation failure; the service retries it with
    backoff. *)

exception Fast_path_fault of string
(** An internal fast-evaluator fault; the service re-runs the attempt on
    the seed evaluator. *)

exception Crashed of string
(** A simulated worker crash. Deliberately NOT handled by the service's
    request isolation: the server layer lets it escape so the worker
    domain genuinely dies and the supervisor path is exercised. *)

val fires : config -> kind -> key:string -> attempt:int -> bool
(** Whether this fault fires for (key, attempt) — deterministic in the
    config seed. *)

val jitter : seed:int -> key:string -> attempt:int -> float
(** A deterministic uniform draw in [0, 1) for retry-backoff jitter:
    pure in (seed, key, attempt), independent of the {!fires} streams,
    so seeded governance tests replay byte-identically. *)

val kind_name : kind -> string
